//! No-op derive macros standing in for `serde_derive` in the offline
//! build (see `shims/README.md`). The workspace only uses the derives as
//! markers — nothing is ever serialized — so the macros emit no code. Like the real `serde_derive`, they declare
//! the inert `#[serde(...)]` helper attribute so field annotations parse.

use proc_macro::TokenStream;

/// Derives nothing: `#[derive(Serialize)]` becomes a no-op marker.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Derives nothing: `#[derive(Deserialize)]` becomes a no-op marker.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
