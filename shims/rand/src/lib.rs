//! Offline deterministic stand-in for the `rand` crate (see
//! `shims/README.md`).
//!
//! Provides the subset the workspace uses: [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`], plus [`RngExt::random_range`] over
//! integer ranges and [`RngExt::random_bool`]. The generator is a
//! SplitMix64 — statistically solid for simulation/testing workloads and,
//! critically for this repo, **deterministic across platforms**, which
//! keeps generated sites and solver runs byte-reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// RNGs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named random generators.
pub mod rngs {
    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): passes BigCrush, one
            // add + three xor-shift-multiply steps.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Pre-mix the seed once so small seeds diverge immediately.
            let mut rng = StdRng {
                state: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            };
            use super::RngCore;
            let _ = rng.next_u64();
            rng
        }
    }
}

/// Integer types uniformly sampleable from a range.
pub trait UniformInt: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`. `high > low` is the caller's
    /// responsibility (checked by the range impls).
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_uniform_uint {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128) - (low as u128);
                low + (uniform_u128(rng, span) as $t)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = (high as u128) - (low as u128) + 1;
                low + (uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = ((high as i128) - (low as i128)) as u128;
                ((low as i128) + (uniform_u128(rng, span) as i128)) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                let span = ((high as i128) - (low as i128)) as u128 + 1;
                ((low as i128) + (uniform_u128(rng, span) as i128)) as $t
            }
        }
    )*};
}

impl_uniform_uint!(u8, u16, u32, u64, usize);
impl_uniform_int!(i8, i16, i32, i64, isize);

/// Uniform value in `[0, span)` by widening multiplication (no modulo
/// bias for spans below 2^64, which covers every caller here).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0, "empty sampling range");
    if span == 0 {
        return 0;
    }
    if span > u64::MAX as u128 {
        // Spans wider than 64 bits (full-width i64/u64 ranges): combine
        // two words. Modulo bias is < 2^-63 here — irrelevant for tests.
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        return wide % span;
    }
    let x = rng.next_u64() as u128;
    (x * span) >> 64
}

/// Range forms accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "random_range: empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        assert!(low <= high, "random_range: empty range");
        T::sample_inclusive(rng, low, high)
    }
}

/// Convenience sampling methods, blanket-implemented for every RNG.
pub trait RngExt: RngCore {
    /// Uniform sample from an integer range (`a..b` or `a..=b`).
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 uniform mantissa bits, the standard unit-interval recipe.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<R: RngCore> RngExt for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random_range(0usize..1000), b.random_range(0usize..1000));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.random_range(10..70);
            assert!((10..70).contains(&v));
            let w = rng.random_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let u = rng.random_range(0u8..=255);
            let _ = u; // full-width inclusive range must not overflow
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn seeds_diverge() {
        use super::RngCore;
        let mut a = StdRng::seed_from_u64(0);
        let mut b = StdRng::seed_from_u64(1);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
