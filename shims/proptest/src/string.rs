//! A tiny regex-subset generator backing `&str` strategies.
//!
//! Supports the shapes the workspace's tests use: a sequence of atoms,
//! where an atom is `.`, a character class `[...]` (literal characters and
//! `a-z` ranges), or a literal character, optionally followed by a `{m}`,
//! `{m,n}`, `?`, `*` or `+` quantifier. Unsupported constructs fall back
//! to emitting the pattern literally rather than failing, which matches
//! how these tests only ever rely on the supported subset.

use crate::test_runner::TestRng;

#[derive(Debug, Clone)]
enum Atom {
    /// `.` — any printable character (plus occasional spice: whitespace,
    /// non-ASCII, markup characters) except newline.
    AnyChar,
    /// `[...]` — one of an explicit set.
    Class(Vec<char>),
    /// A literal character.
    Literal(char),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
    match parse(pattern) {
        Some(pieces) => {
            let mut out = String::new();
            for piece in &pieces {
                let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
                for _ in 0..n {
                    out.push(pick(&piece.atom, rng));
                }
            }
            out
        }
        None => pattern.to_owned(),
    }
}

fn pick(atom: &Atom, rng: &mut TestRng) -> char {
    match atom {
        Atom::Literal(c) => *c,
        Atom::Class(set) => set[rng.below(set.len() as u64) as usize],
        Atom::AnyChar => {
            // Mostly printable ASCII, with deliberate doses of the
            // characters that stress an HTML lexer.
            match rng.below(10) {
                0 => ['<', '>', '&', ';', '#'][rng.below(5) as usize],
                1 => [' ', '\t'][rng.below(2) as usize],
                2 => ['é', 'ß', '中', '☃', 'π'][rng.below(5) as usize],
                _ => (0x20u8 + rng.below(0x5F) as u8) as char,
            }
        }
    }
}

fn parse(pattern: &str) -> Option<Vec<Piece>> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '.' => {
                i += 1;
                Atom::AnyChar
            }
            '[' => {
                let close = chars[i + 1..].iter().position(|&c| c == ']')? + i + 1;
                let set = parse_class(&chars[i + 1..close])?;
                i = close + 1;
                Atom::Class(set)
            }
            '\\' => {
                let c = *chars.get(i + 1)?;
                i += 2;
                Atom::Literal(c)
            }
            // A quantifier with no preceding atom is not a pattern we
            // understand; treat the whole string as a literal.
            '{' | '}' | '?' | '*' | '+' | ']' | '(' | ')' | '|' | '^' | '$' => return None,
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max) = parse_quantifier(&chars, &mut i)?;
        pieces.push(Piece { atom, min, max });
    }
    Some(pieces)
}

/// Parses an optional quantifier at `*i`, advancing past it.
fn parse_quantifier(chars: &[char], i: &mut usize) -> Option<(usize, usize)> {
    match chars.get(*i) {
        Some('?') => {
            *i += 1;
            Some((0, 1))
        }
        Some('*') => {
            *i += 1;
            Some((0, 8))
        }
        Some('+') => {
            *i += 1;
            Some((1, 8))
        }
        Some('{') => {
            let close = chars[*i + 1..].iter().position(|&c| c == '}')? + *i + 1;
            let body: String = chars[*i + 1..close].iter().collect();
            *i = close + 1;
            match body.split_once(',') {
                Some((lo, hi)) => {
                    let min = lo.trim().parse().ok()?;
                    let max = hi.trim().parse().ok()?;
                    (min <= max).then_some((min, max))
                }
                None => {
                    let n = body.trim().parse().ok()?;
                    Some((n, n))
                }
            }
        }
        _ => Some((1, 1)),
    }
}

/// Parses the interior of `[...]`: literals and `a-z` ranges; a leading or
/// trailing `-` is literal.
fn parse_class(body: &[char]) -> Option<Vec<char>> {
    if body.is_empty() {
        return None;
    }
    let mut set = Vec::new();
    let mut i = 0;
    while i < body.len() {
        if body[i] == '\\' {
            set.push(*body.get(i + 1)?);
            i += 2;
        } else if i + 2 < body.len() && body[i + 1] == '-' {
            let (lo, hi) = (body[i], body[i + 2]);
            if lo > hi {
                return None;
            }
            for c in lo..=hi {
                set.push(c);
            }
            i += 3;
        } else {
            set.push(body[i]);
            i += 1;
        }
    }
    Some(set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn class_with_quantifier() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..500 {
            let s = generate_pattern("[A-Za-z0-9]{1,8}", &mut rng);
            assert!((1..=8).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_alphanumeric()), "{s:?}");
        }
    }

    #[test]
    fn dot_any_respects_bounds() {
        let mut rng = TestRng::seed_from_u64(5);
        for _ in 0..200 {
            let s = generate_pattern(".{0,300}", &mut rng);
            assert!(s.chars().count() <= 300);
        }
    }

    #[test]
    fn trailing_dash_is_literal() {
        let mut rng = TestRng::seed_from_u64(6);
        for _ in 0..500 {
            let s = generate_pattern("[a-zA-Z0-9 .,;:!?-]{0,100}", &mut rng);
            assert!(
                s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || " .,;:!?-".contains(c)),
                "{s:?}"
            );
        }
    }

    #[test]
    fn literal_sequences() {
        let mut rng = TestRng::seed_from_u64(7);
        assert_eq!(generate_pattern("abc", &mut rng), "abc");
        let s = generate_pattern("a{3}", &mut rng);
        assert_eq!(s, "aaa");
    }

    #[test]
    fn unsupported_patterns_fall_back_to_literal() {
        let mut rng = TestRng::seed_from_u64(8);
        assert_eq!(generate_pattern("(a|b)", &mut rng), "(a|b)");
    }
}
