//! Collection strategies: `vec` and `btree_set`.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size interval for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below((self.max - self.min + 1) as u64) as usize
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec<S::Value>` with a size drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.pick(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// Strategy for `BTreeSet<S::Value>` aiming for a size drawn from `size`
/// (smaller when the element space cannot supply enough distinct values).
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

/// See [`btree_set`].
#[derive(Debug, Clone)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
        let target = self.size.pick(rng);
        let mut set = BTreeSet::new();
        // Duplicates are possible; bound the attempts so tiny value spaces
        // (e.g. `0u32..3`) still terminate, accepting a smaller set.
        for _ in 0..target * 4 {
            if set.len() >= target {
                break;
            }
            set.insert(self.element.generate(rng));
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_sizes_in_range() {
        let mut rng = TestRng::seed_from_u64(11);
        let s = vec(0u32..5, 2..6);
        for _ in 0..300 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn inclusive_and_exact_sizes() {
        let mut rng = TestRng::seed_from_u64(12);
        let s = vec(0u32..5, 3usize);
        assert_eq!(s.generate(&mut rng).len(), 3);
        let s = vec(0u32..5, 1..=2);
        for _ in 0..100 {
            assert!((1..=2).contains(&s.generate(&mut rng).len()));
        }
    }

    #[test]
    fn btree_set_respects_cap() {
        let mut rng = TestRng::seed_from_u64(13);
        let s = btree_set(0u32..4, 0..3);
        for _ in 0..300 {
            let set = s.generate(&mut rng);
            assert!(set.len() <= 2);
            assert!(set.iter().all(|&x| x < 4));
        }
    }
}
