//! The test runner: deterministic RNG, configuration, case loop.

use std::fmt;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Deterministic RNG driving value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> TestRng {
        let mut rng = TestRng {
            state: seed ^ 0xA076_1D64_78BD_642F,
        };
        let _ = rng.next_u64();
        rng
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        (((self.next_u64() as u128) * (bound as u128)) >> 64) as u64
    }

    /// Uniform value in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Maximum number of rejected (`prop_assume!`) cases tolerated.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the whole test fails.
    Fail(String),
    /// A `prop_assume!` precondition did not hold; the case is discarded.
    Reject(String),
}

impl TestCaseError {
    /// Constructs a failure.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// Constructs a rejection.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// FNV-1a, used to derive a stable per-test seed from the test name.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Reads `PROPTEST_SEED` (decimal or `0x`-prefixed hex). When set, the
/// value is mixed into every test's name-derived seed so a CI seed matrix
/// genuinely explores different cases; when unset each test keeps its
/// stable default seed.
fn env_seed() -> Option<u64> {
    let raw = std::env::var("PROPTEST_SEED").ok()?;
    match parse_seed(&raw) {
        Some(seed) => Some(seed),
        None => panic!("PROPTEST_SEED must be a u64 (decimal or 0x hex), got {raw:?}"),
    }
}

fn parse_seed(raw: &str) -> Option<u64> {
    let raw = raw.trim();
    match raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        Some(hex) => u64::from_str_radix(hex, 16).ok(),
        None => raw.parse().ok(),
    }
}

/// Runs the case loop for one `proptest!` test. The closure generates its
/// inputs from the RNG, records their `Debug` rendering into the second
/// argument, and returns `Ok(())` on success.
///
/// Deterministic: the RNG seed derives from the test name (perturbed by
/// `PROPTEST_SEED` when set), so a failure reproduces on every run with
/// the same environment (no shrinking is performed; the failing inputs
/// are printed verbatim).
pub fn run_proptest(
    config: &ProptestConfig,
    name: &str,
    mut case: impl FnMut(&mut TestRng, &mut Vec<String>) -> Result<(), TestCaseError>,
) {
    let mut seed = fnv1a(name.as_bytes());
    if let Some(env) = env_seed() {
        seed ^= env.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
    }
    let mut rng = TestRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        if rejected > config.max_global_rejects {
            panic!(
                "proptest '{name}': too many rejected cases \
                 ({rejected} rejects for {passed}/{} passes) — \
                 loosen the prop_assume! or the generators",
                config.cases
            );
        }
        let mut values = Vec::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut values)));
        match outcome {
            Ok(Ok(())) => passed += 1,
            Ok(Err(TestCaseError::Reject(_))) => rejected += 1,
            Ok(Err(TestCaseError::Fail(msg))) => {
                report_failure(name, passed, &values, &msg);
                panic!("proptest '{name}' failed: {msg}");
            }
            Err(payload) => {
                report_failure(name, passed, &values, "panicked (see above)");
                resume_unwind(payload);
            }
        }
    }
}

fn report_failure(name: &str, case_index: u32, values: &[String], msg: &str) {
    eprintln!("proptest '{name}': case {case_index} failed: {msg}");
    match std::env::var("PROPTEST_SEED") {
        Ok(seed) => {
            eprintln!("failing inputs (no shrinking; reproduce with PROPTEST_SEED={seed}):")
        }
        Err(_) => eprintln!("failing inputs (no shrinking; seed is derived from the test name):"),
    }
    for v in values {
        eprintln!("    {v}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_counts_cases() {
        let mut runs = 0;
        run_proptest(&ProptestConfig::with_cases(10), "counts", |_, _| {
            runs += 1;
            Ok(())
        });
        assert_eq!(runs, 10);
    }

    #[test]
    fn rejects_are_retried() {
        let mut total = 0;
        run_proptest(&ProptestConfig::with_cases(5), "rejects", |rng, _| {
            total += 1;
            if rng.below(2) == 0 {
                Err(TestCaseError::reject("coin"))
            } else {
                Ok(())
            }
        });
        assert!(total >= 5);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn failures_propagate() {
        run_proptest(&ProptestConfig::with_cases(5), "fails", |_, _| {
            Err(TestCaseError::fail("boom"))
        });
    }

    #[test]
    fn seed_parsing_accepts_decimal_and_hex() {
        assert_eq!(parse_seed("193"), Some(193));
        assert_eq!(parse_seed(" 0xC1 "), Some(0xC1));
        assert_eq!(parse_seed("0Xff"), Some(255));
        assert_eq!(parse_seed("nope"), None);
        assert_eq!(parse_seed("0x"), None);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(9);
        let mut b = TestRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
