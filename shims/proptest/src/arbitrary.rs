//! The `Arbitrary` trait and `any::<T>()`.

use std::fmt::Debug;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized + Debug {
    /// Draws one arbitrary value.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `A` (`any::<u64>()` etc.).
pub fn any<A: Arbitrary>() -> AnyStrategy<A> {
    AnyStrategy(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<A>(std::marker::PhantomData<A>);

impl<A: Arbitrary> Strategy for AnyStrategy<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary_value(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut TestRng) -> f64 {
        // Finite, wide-ranging doubles: sign * mantissa * 2^[-64, 64).
        let mantissa = rng.unit_f64();
        let exp = rng.below(128) as i32 - 64;
        let sign = if rng.below(2) == 0 { 1.0 } else { -1.0 };
        sign * mantissa * (exp as f64).exp2()
    }
}

impl Arbitrary for char {
    fn arbitrary_value(rng: &mut TestRng) -> char {
        char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
    }
}
