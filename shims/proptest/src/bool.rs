//! Boolean strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Uniform `true`/`false`.
#[derive(Debug, Clone, Copy)]
pub struct Any;

/// The uniform boolean strategy (`proptest::bool::ANY`).
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}
