//! Offline stand-in for the `proptest` crate (see `shims/README.md`).
//!
//! Implements the subset of the proptest API this workspace's property
//! tests use: the [`proptest!`] macro, the [`strategy::Strategy`] trait
//! with `prop_map`/`prop_flat_map`/`boxed`, `prop_oneof!`, [`Just`],
//! integer/float range strategies, regex-subset string strategies,
//! tuple strategies, [`collection::vec`]/[`collection::btree_set`],
//! [`option::of`], [`bool::ANY`], [`arbitrary::any`] and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **no shrinking** — failing inputs are printed verbatim;
//! * **deterministic** — the RNG seed derives from the test name (mixed
//!   with the `PROPTEST_SEED` environment variable when set, for CI seed
//!   matrices), so a failure reproduces on every run with no persistence
//!   files;
//! * strategies are plain generation functions (no `ValueTree`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod bool;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use strategy::Just;

/// The common imports: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Defines property tests. Each `fn name(binding in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: munches one test fn at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$attr:meta])*
     fn $name:ident($($args:tt)*) $body:block
     $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run_proptest(
                &__config,
                stringify!($name),
                |__rng, __values| {
                    $crate::__proptest_bind!(__rng, __values, $($args)*);
                    $body
                    Ok(())
                },
            );
        }
        $crate::__proptest_impl! { @cfg($cfg) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: binds `name in strategy`
/// parameters, recording each generated value for failure reports.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:expr, $values:expr $(,)?) => {};
    ($rng:expr, $values:expr, mut $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        #[allow(unused_mut)]
        let mut $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $values.push(format!("{} = {:?}", stringify!($name), &$name));
        $($crate::__proptest_bind!($rng, $values, $($rest)*);)?
    };
    ($rng:expr, $values:expr, $name:ident in $strat:expr $(, $($rest:tt)*)?) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), $rng);
        $values.push(format!("{} = {:?}", stringify!($name), &$name));
        $($crate::__proptest_bind!($rng, $values, $($rest)*);)?
    };
}

/// Uniform choice between the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Like `assert!`, but fails the current proptest case with input report.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{})",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {} ({}:{}): {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Like `assert_eq!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `left == right` ({}:{})\n  left: {:?}\n right: {:?}",
                        file!(),
                        line!(),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `left == right` ({}:{}): {}\n  left: {:?}\n right: {:?}",
                        file!(),
                        line!(),
                        format!($($fmt)+),
                        __l,
                        __r
                    )));
                }
            }
        }
    };
}

/// Like `assert_ne!`, but fails the current proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: `left != right` ({}:{})\n  both: {:?}",
                        file!(),
                        line!(),
                        __l
                    )));
                }
            }
        }
    };
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(format!(
                $($fmt)+
            )));
        }
    };
}
