//! Value-generation strategies and combinators.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::string::generate_pattern;
use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no shrinking: a strategy is exactly a
/// deterministic function of the RNG stream.
pub trait Strategy {
    /// The generated type (printable so failures can report inputs).
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then generates from the strategy
    /// `f` builds out of it.
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Erases the strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(move |rng| self.generate(rng)))
    }
}

/// Always produces a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T: Strategy, F: Fn(S::Value) -> T> Strategy for FlatMap<S, F> {
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// A type-erased strategy (what [`Strategy::boxed`] returns and
/// `prop_oneof!` stores).
#[derive(Clone)]
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between alternative strategies (`prop_oneof!`).
#[derive(Debug, Clone)]
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

// ---- primitive strategies --------------------------------------------

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + off) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String literals act as regex-subset patterns (e.g. `"[A-Za-z0-9]{1,8}"`).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

impl Strategy for String {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        generate_pattern(self, rng)
    }
}

// ---- tuples ----------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = (3usize..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let f = (0.25f64..0.5).generate(&mut rng);
            assert!((0.25..0.5).contains(&f));
            let i = (0u8..=255).generate(&mut rng);
            let _ = i;
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = TestRng::seed_from_u64(2);
        let s = (1usize..4).prop_flat_map(|n| (0usize..n,).prop_map(move |(k,)| (n, k)));
        for _ in 0..200 {
            let (n, k) = s.generate(&mut rng);
            assert!(k < n);
        }
    }

    #[test]
    fn union_uses_all_arms() {
        let mut rng = TestRng::seed_from_u64(3);
        let u = Union::new(vec![Just(1u32).boxed(), Just(2u32).boxed()]);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[u.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2]);
    }
}
