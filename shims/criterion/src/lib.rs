//! Offline stand-in for the `criterion` benchmark harness (see
//! `shims/README.md`).
//!
//! Provides the API surface the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`] with `sample_size`/`throughput`/
//! `bench_with_input`, and [`Bencher::iter`] — backed by a real measuring
//! loop (warm-up, calibrated iteration counts, median-of-samples) that
//! prints one line per benchmark instead of producing HTML reports.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target wall-clock budget for one benchmark's measurement phase.
const TARGET_TOTAL: Duration = Duration::from_millis(600);

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_bench(id, 20, None, &mut f);
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the per-iteration throughput (reported alongside time).
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.sample_size, self.throughput, &mut |b| {
            f(b, input)
        });
        self
    }

    /// Runs one benchmark without an explicit input.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: BenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.0);
        run_bench(&full, self.sample_size, self.throughput, &mut f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// A benchmark identifier, possibly `function/parameter`-shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId(parameter.to_string())
    }
}

/// Per-iteration throughput annotation.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Handed to the benchmark closure; call [`Bencher::iter`].
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Measures one benchmark: warm-up → calibrate iterations per sample →
/// collect samples → report the median.
fn run_bench(
    id: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    // Warm-up & calibration: one iteration, timed.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget_per_sample = TARGET_TOTAL / sample_size as u32;
    let iters = (budget_per_sample.as_nanos() / per_iter.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let low = samples[0];
    let high = samples[samples.len() - 1];

    let rate = match throughput {
        Some(Throughput::Bytes(n)) => format!("  {}/s", human_bytes(n as f64 / median)),
        Some(Throughput::Elements(n)) => format!("  {:.0} elem/s", n as f64 / median),
        None => String::new(),
    };
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {} iters){rate}",
        human_time(low),
        human_time(median),
        human_time(high),
        sample_size,
        iters,
    );
}

fn human_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

fn human_bytes(bytes_per_sec: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes_per_sec;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    format!("{v:.1} {}", UNITS[unit])
}

/// Groups benchmark functions under one entry function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs() {
        let mut c = Criterion::default();
        let mut runs = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        assert!(runs > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3).throughput(Throughput::Bytes(128));
        group.bench_with_input(BenchmarkId::from_parameter("x"), &41, |b, &n| {
            b.iter(|| n + 1)
        });
        group.finish();
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", "p").0, "f/p");
        assert_eq!(BenchmarkId::from_parameter(7).0, "7");
    }
}
