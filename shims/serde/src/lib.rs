//! Offline stand-in for the `serde` facade (see `shims/README.md`).
//!
//! The workspace uses serde only as a marker (`#[derive(Serialize,
//! Deserialize)]` on data types); nothing is serialized at runtime. The
//! traits here are satisfied by every type via blanket impls, and the
//! derive macros (re-exported from the `serde_derive` shim) expand to
//! nothing.

#![forbid(unsafe_code)]

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
