//! Quickstart: segment a tiny list page into records using both
//! approaches.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use tableseg::{assemble_records, prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};

fn main() {
    // Two sample list pages from the same (imaginary) site...
    let list_a = "<html><h1>Staff Directory Results</h1><table>\
        <tr><td>Ada Lovelace</td><td>Analytical Engines</td><td>(555) 100-0001</td></tr>\
        <tr><td>Alan Turing</td><td>Universal Machines</td><td>(555) 100-0002</td></tr>\
        <tr><td>Grace Hopper</td><td>Compiler Construction</td><td>(555) 100-0003</td></tr>\
        </table><p>Copyright 2004 Example Inc All rights reserved</p></html>";
    let list_b = "<html><h1>Staff Directory Results</h1><table>\
        <tr><td>Edsger Dijkstra</td><td>Structured Programming</td><td>(555) 100-0004</td></tr>\
        </table><p>Copyright 2004 Example Inc All rights reserved</p></html>";

    // ...and the detail pages linked from the first page's rows.
    let details = vec![
        "<html><h2>Ada Lovelace</h2><p>Dept: Analytical Engines</p><p>Tel: (555) 100-0001</p></html>",
        "<html><h2>Alan Turing</h2><p>Dept: Universal Machines</p><p>Tel: (555) 100-0002</p></html>",
        "<html><h2>Grace Hopper</h2><p>Dept: Compiler Construction</p><p>Tel: (555) 100-0003</p></html>",
    ];

    // Shared front end: template induction, table-slot detection,
    // extraction, detail-page matching.
    let prepared = prepare(&SitePages {
        list_pages: vec![list_a, list_b],
        target: 0,
        detail_pages: details,
    });
    println!(
        "front end: {} extracts kept, {} skipped, whole-page fallback: {}\n",
        prepared.observations.len(),
        prepared.observations.skipped.len(),
        prepared.used_whole_page,
    );

    for segmenter in [
        &CspSegmenter::default() as &dyn Segmenter,
        &ProbSegmenter::default(),
    ] {
        let outcome = segmenter.segment(&prepared.observations);
        println!("== {} approach ==", segmenter.name());
        for record in assemble_records(&prepared, &outcome.segmentation) {
            println!("  record {}: {:?}", record.index + 1, record.fields);
        }
        if let Some(columns) = &outcome.columns {
            println!("  column labels: {columns:?}");
        }
        println!();
    }
}
