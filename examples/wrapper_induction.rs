//! Closing the loop to wrapper induction: segment one list page using the
//! detail pages, induce an HLRT-style row wrapper from that segmentation,
//! annotate the columns semantically, then extract the records of a *new*
//! list page from the same site **without any detail pages**.
//!
//! This is the application the paper motivates: its automatic
//! segmentations are exactly the labeled examples that classic wrapper
//! induction needs from a human.
//!
//! ```sh
//! cargo run --example wrapper_induction
//! ```

use tableseg::{
    annotate_columns, induce_wrapper, prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages,
};
use tableseg_html::lexer::tokenize;
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    let spec = paper_sites::allegheny();
    let site = generate(&spec);

    // Step 1: segment page 1 with detail pages.
    let details: Vec<&str> = site.pages[0]
        .detail_html
        .iter()
        .map(String::as_str)
        .collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: 0,
        detail_pages: details,
    });
    let seg = CspSegmenter::default()
        .segment(&prepared.observations)
        .segmentation;
    println!(
        "segmented page 1: {} records from {} extracts",
        seg.records().iter().filter(|r| !r.is_empty()).count(),
        prepared.observations.len()
    );

    // Step 2: semantic column annotation via the probabilistic model.
    let prob = ProbSegmenter::default().segment(&prepared.observations);
    let columns = prob.columns.expect("prob yields columns");
    println!("\ncolumn annotation:");
    for ann in annotate_columns(&prepared.observations, &columns) {
        println!(
            "  L{} -> {:<15} (confidence {:.0}%, {} extracts)",
            ann.column + 1,
            ann.label.to_string(),
            ann.confidence * 100.0,
            ann.support
        );
    }

    // Step 3: induce the row wrapper.
    let wrapper = induce_wrapper(&prepared, &seg).expect("wrapper induced");
    println!(
        "\ninduced wrapper: head={:?} seps={:?} tail={:?}",
        wrapper.head, wrapper.seps, wrapper.tail
    );

    // Step 4: extract page 2 without touching its detail pages.
    let records = wrapper.extract(&tokenize(&site.pages[1].list_html));
    println!(
        "\nextracted {} records from page 2 (no detail pages used):",
        records.len()
    );
    for rec in records.iter().take(5) {
        println!("  {rec:?}");
    }
    if records.len() > 5 {
        println!("  ... and {} more", records.len() - 5);
    }

    // Verify against the simulator's ground truth.
    let truth = &site.pages[1].truth;
    let matched = records
        .iter()
        .filter(|r| {
            truth.records.iter().any(|t| {
                !t.values.is_empty()
                    && r.first().is_some_and(|f| {
                        f.split_whitespace().collect::<String>()
                            == t.values[0].split_whitespace().collect::<String>()
                    })
            })
        })
        .count();
    println!(
        "\n{matched}/{} extracted records match ground-truth identifiers",
        truth.len()
    );
}
