//! The paper's Section 3 vision, end to end: "the user provides a pointer
//! to the top-level page ... and the system automatically navigates the
//! site, retrieving all pages, classifying them as list and detail pages,
//! and extracting structured data from these pages."
//!
//! Starting from a single URL of a simulated site (which also serves
//! advertisement pages), this example discovers the result-page chain,
//! classifies linked pages into detail pages vs ads, segments every list
//! page, and prints the extracted relation.
//!
//! ```sh
//! cargo run --example site_navigation
//! ```

use tableseg::{assemble_records, navigate, prepare, CspSegmenter, Segmenter, SitePages};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    let spec = paper_sites::butler();
    let site = generate(&spec);
    let map = site.site_map(3); // three ad pages are linked too
    let fetch = move |url: &str| map.get(url).cloned();

    println!("starting crawl at /list/0 ...");
    let nav = navigate(&fetch, "/list/0", 4).expect("start page fetches");
    println!(
        "discovered {} list pages ({:?}), rejected {} non-detail linked pages\n",
        nav.list_pages.len(),
        nav.list_urls,
        nav.rejected
    );

    for (p, details) in nav.detail_pages.iter().enumerate() {
        let prepared = prepare(&SitePages {
            list_pages: nav.list_pages.iter().map(String::as_str).collect(),
            target: p,
            detail_pages: details.iter().map(String::as_str).collect(),
        });
        let outcome = CspSegmenter::default().segment(&prepared.observations);
        let records = assemble_records(&prepared, &outcome.segmentation);
        println!(
            "list page {} ({} detail pages found): {} records extracted",
            nav.list_urls[p],
            details.len(),
            records.len()
        );
        for rec in records.iter().take(3) {
            println!("  {:?}", rec.fields);
        }
        if records.len() > 3 {
            println!("  ... and {} more", records.len() - 3);
        }
        println!();
    }
}
