//! Dirty data: the Michigan Corrections "Parole"/"Parolee" inconsistency
//! (Section 6.3 of the paper). The list page says "Parole", the detail
//! page says "Parolee", and the string "Parole" appears on a *different*
//! record's detail page in an unrelated context. The CSP cannot satisfy
//! its constraints and must relax them; the probabilistic approach
//! tolerates the inconsistency.
//!
//! ```sh
//! cargo run --example dirty_data
//! ```

use tableseg::{prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    let spec = paper_sites::michigan();
    let site = generate(&spec);
    let page = &site.pages[0];
    let details: Vec<&str> = page.detail_html.iter().map(String::as_str).collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: 0,
        detail_pages: details,
    });

    // Find the troublesome extract.
    for (i, item) in prepared.observations.items.iter().enumerate() {
        if item.extract.text() == "Parole" {
            let pages: Vec<String> = item.pages.iter().map(|p| format!("r{}", p + 1)).collect();
            println!(
                "extract E{} = \"Parole\" was observed on detail pages {{{}}} — \
                 not on its own record's page (which says \"Parolee\")\n",
                i + 1,
                pages.join(",")
            );
        }
    }

    let csp = CspSegmenter::default().segment(&prepared.observations);
    println!(
        "CSP approach:            relaxed constraints: {} (the strict problem is unsatisfiable)",
        csp.relaxed
    );
    println!(
        "                         assigned {}/{} extracts",
        csp.segmentation.assigned_count(),
        prepared.observations.len()
    );

    let prob = ProbSegmenter::default().segment(&prepared.observations);
    println!(
        "probabilistic approach:  relaxed constraints: {}",
        prob.relaxed
    );
    println!(
        "                         assigned {}/{} extracts (inconsistencies get probability \u{3b5}, not 0)",
        prob.segmentation.assigned_count(),
        prepared.observations.len()
    );
}
