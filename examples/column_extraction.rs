//! Column extraction (Section 3.4 of the paper): "The probabilistic model
//! is more expressive than the CSP. In addition to record segmentation, we
//! can learn a model for predicting the column of an extract."
//!
//! This example segments a property-tax site with the probabilistic
//! approach and prints the reconstructed relation: rows = records,
//! columns = the learned column labels L1..Lk.
//!
//! ```sh
//! cargo run --example column_extraction
//! ```

use tableseg::prob::{segment_prob, ProbOptions};
use tableseg::{prepare, SitePages};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    let spec = paper_sites::butler();
    let site = generate(&spec);
    let page = &site.pages[1]; // the smaller page, for a readable printout
    let details: Vec<&str> = page.detail_html.iter().map(String::as_str).collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: 1,
        detail_pages: details,
    });

    let outcome = segment_prob(&prepared.observations, &ProbOptions::default());
    let columns = &outcome.columns;
    let num_columns = columns.iter().max().map_or(0, |&c| c as usize + 1);

    // Rebuild the relation: records × columns.
    let mut relation: Vec<Vec<String>> =
        vec![vec![String::new(); num_columns]; prepared.observations.num_records];
    for (i, (&record, &column)) in outcome
        .segmentation
        .assignments
        .iter()
        .map(|a| a.as_ref().expect("probabilistic output is total"))
        .zip(columns)
        .enumerate()
    {
        relation[record as usize][column as usize] = prepared.observations.items[i].extract.text();
    }

    println!("reconstructed relation from {} (page 2):\n", spec.name);
    print!("| record |");
    for c in 0..num_columns {
        print!(" L{} |", c + 1);
    }
    println!();
    for (r, row) in relation.iter().enumerate() {
        if row.iter().all(String::is_empty) {
            continue;
        }
        print!("| r{} |", r + 1);
        for cell in row {
            print!(" {cell} |");
        }
        println!();
    }
    println!(
        "\nlearned record-period distribution pi: {:?}",
        outcome
            .period
            .iter()
            .map(|p| (p * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
}
