//! Automatic detail-page identification (the paper's Section 6.1 future
//! work): given *all* pages linked from a list page — real detail pages
//! mixed with advertisements — cluster them by template similarity and
//! keep the detail cluster, then segment as usual.
//!
//! ```sh
//! cargo run --example detail_classification
//! ```

use tableseg::{identify_detail_pages, prepare, CspSegmenter, Segmenter, SitePages};
use tableseg_sitegen::ads::ad_pages;
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    let spec = paper_sites::ohio();
    let site = generate(&spec);
    let page = &site.pages[0];

    // Interleave the real detail pages with advertisement pages, as a
    // crawler following every link would collect them.
    let ads = ad_pages(3, 42);
    let mut linked: Vec<&str> = Vec::new();
    let mut truth_is_detail = Vec::new();
    for (i, d) in page.detail_html.iter().enumerate() {
        if i % 4 == 1 {
            if let Some(ad) = ads.get(i / 4) {
                linked.push(ad);
                truth_is_detail.push(false);
            }
        }
        linked.push(d);
        truth_is_detail.push(true);
    }
    println!(
        "crawled {} linked pages ({} detail, {} ads)",
        linked.len(),
        truth_is_detail.iter().filter(|&&d| d).count(),
        truth_is_detail.iter().filter(|&&d| !d).count()
    );

    // Classify.
    let detail_idx = identify_detail_pages(&linked);
    let correct = detail_idx.iter().all(|&i| truth_is_detail[i]);
    let complete = detail_idx.len() == truth_is_detail.iter().filter(|&&d| d).count();
    println!(
        "classifier kept {} pages — all detail pages: {correct}, none missed: {complete}",
        detail_idx.len()
    );

    // Segment with the classified subset (order preserved = row order).
    let details: Vec<&str> = detail_idx.iter().map(|&i| linked[i]).collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: 0,
        detail_pages: details,
    });
    let outcome = CspSegmenter::default().segment(&prepared.observations);
    let segmented = outcome
        .segmentation
        .records()
        .iter()
        .filter(|r| !r.is_empty())
        .count();
    println!(
        "segmentation over classified detail pages: {segmented}/{} records (relaxed: {})",
        page.truth.len(),
        outcome.relaxed
    );
}
