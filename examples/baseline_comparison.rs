//! Comparing the paper's methods with the layout-based baselines of
//! Section 2: a DOM `<table>/<tr>` heuristic, an IEPAD-style repeated tag
//! pattern miner, and a RoadRunner-style union-free grammar inducer.
//!
//! The baselines look only at the list page's layout; the paper's methods
//! use the *content* redundancy between list and detail pages — which is
//! why they survive the free-form and disjunctively formatted sites that
//! defeat the baselines.
//!
//! ```sh
//! cargo run --example baseline_comparison
//! ```

use tableseg::{prepare, CspSegmenter, Segmenter, SitePages};
use tableseg_baselines::{domtable, iepad, roadrunner};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    for spec in [
        paper_sites::allegheny(),  // clean grid table
        paper_sites::superpages(), // free form + disjunctive formatting
    ] {
        let site = generate(&spec);
        let page = &site.pages[0];
        println!("== {} (page 1, {} records) ==", spec.name, page.truth.len());

        // DOM heuristic.
        let dom = domtable::segment(&page.list_html);
        println!(
            "  DOM <table>/<tr> heuristic: {} records detected",
            dom.len()
        );

        // IEPAD-style repeated tag patterns.
        let pat = iepad::segment(&page.list_html);
        println!(
            "  IEPAD-style tag patterns:   {} records detected",
            pat.len()
        );

        // RoadRunner-style union-free grammar over the two sample pages.
        match roadrunner::induce(&site.pages[0].list_html, &site.pages[1].list_html) {
            Ok(grammar) => println!(
                "  RoadRunner-style grammar:   induced ({} data slots)",
                roadrunner::data_slots(&grammar)
            ),
            Err(e) => println!("  RoadRunner-style grammar:   FAILED — {e:?}"),
        }

        // The paper's CSP approach.
        let details: Vec<&str> = page.detail_html.iter().map(String::as_str).collect();
        let prepared = prepare(&SitePages {
            list_pages: site.list_htmls(),
            target: 0,
            detail_pages: details,
        });
        let outcome = CspSegmenter::default().segment(&prepared.observations);
        let non_empty = outcome
            .segmentation
            .records()
            .iter()
            .filter(|r| !r.is_empty())
            .count();
        println!(
            "  tableseg CSP approach:      {} records segmented (relaxed: {})\n",
            non_empty, outcome.relaxed
        );
    }
}
