//! Segmenting a full simulated white-pages site (the paper's Superpages
//! scenario, Figure 1): generate the site, run the complete pipeline on
//! each list page, and evaluate against the simulator's ground truth.
//!
//! ```sh
//! cargo run --example whitepages_site
//! ```

use tableseg::{assemble_records, prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};
use tableseg_eval::classify::{classify, truth_of_extracts};
use tableseg_eval::Metrics;
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn main() {
    let spec = paper_sites::superpages();
    let site = generate(&spec);
    println!("site: {} ({} list pages)\n", spec.name, site.pages.len());

    for (page_idx, page) in site.pages.iter().enumerate() {
        let details: Vec<&str> = page.detail_html.iter().map(String::as_str).collect();
        let prepared = prepare(&SitePages {
            list_pages: site.list_htmls(),
            target: page_idx,
            detail_pages: details,
        });
        println!(
            "list page {}: {} records, {} extracts kept, whole-page fallback: {}",
            page_idx + 1,
            page.truth.len(),
            prepared.observations.len(),
            prepared.used_whole_page
        );

        let spans: Vec<std::ops::Range<usize>> =
            page.truth.records.iter().map(|r| r.start..r.end).collect();
        let truth = truth_of_extracts(&prepared.extract_offsets, &spans);

        for segmenter in [
            &CspSegmenter::default() as &dyn Segmenter,
            &ProbSegmenter::default(),
        ] {
            let outcome = segmenter.segment(&prepared.observations);
            let counts = classify(&outcome.segmentation.records(), &truth, page.truth.len());
            let metrics = Metrics::from_counts(&counts);
            println!(
                "  {:<14} Cor={} InC={} FN={} FP={}  {}  relaxed={}",
                segmenter.name(),
                counts.cor,
                counts.incor,
                counts.fneg,
                counts.fpos,
                metrics,
                outcome.relaxed
            );
        }

        // Show the first assembled record from the CSP segmentation.
        let outcome = CspSegmenter::default().segment(&prepared.observations);
        if let Some(rec) = assemble_records(&prepared, &outcome.segmentation).first() {
            println!("  first record: {:?}", rec.fields);
        }
        println!();
    }
}
