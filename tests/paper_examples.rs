//! Integration tests pinning the paper's worked examples (Tables 1–3) and
//! the qualitative claims of Sections 4–6.

use tableseg::{prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};
use tableseg_extract::build_observations;
use tableseg_extract::positions::position_groups;
use tableseg_html::lexer::tokenize;
use tableseg_html::Token;

/// The Superpages running example of the paper (Figure 1, Tables 1–3):
/// three listings, the first two sharing a name and a phone number.
fn superpages_example() -> (Vec<Token>, Vec<Vec<Token>>) {
    let list = tokenize(
        "<tr><td>John Smith</td><td>221 Washington</td><td>New Holland</td><td>(740) 335-5555</td></tr>\
         <tr><td>John Smith</td><td>221R Washington St</td><td>Wash CH</td><td>(740) 335-5555</td></tr>\
         <tr><td>George W. Smith</td><td>Findlay, OH</td><td>(419) 423-1212</td></tr>",
    );
    let details = vec![
        tokenize("<h1>John Smith</h1><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p>"),
        tokenize("<h1>John Smith</h1><p>221R Washington St</p><p>Wash CH</p><p>(740) 335-5555</p>"),
        tokenize("<h1>George W. Smith</h1><p>Findlay, OH</p><p>(419) 423-1212</p>"),
    ];
    (list, details)
}

#[test]
fn table1_observation_sets() {
    let (list, details) = superpages_example();
    let refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
    let obs = build_observations(&list, &[], &refs);
    // Table 1 of the paper: eleven extracts.
    assert_eq!(obs.len(), 11);
    let expected_pages: Vec<Vec<u32>> = vec![
        vec![0, 1], // E1 John Smith
        vec![0],    // E2
        vec![0],    // E3
        vec![0, 1], // E4 phone
        vec![0, 1], // E5 John Smith again
        vec![1],    // E6
        vec![1],    // E7
        vec![0, 1], // E8 phone again
        vec![2],    // E9
        vec![2],    // E10
        vec![2],    // E11
    ];
    for (item, expected) in obs.items.iter().zip(&expected_pages) {
        assert_eq!(&item.pages, expected, "{}", item.extract.text());
    }
}

#[test]
fn table2_csp_assignment() {
    let (list, details) = superpages_example();
    let refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
    let obs = build_observations(&list, &[], &refs);
    let outcome = CspSegmenter::default().segment(&obs);
    assert!(!outcome.relaxed);
    // Table 2: E1-E4 → r1, E5-E8 → r2, E9-E11 → r3.
    let expected: Vec<Option<u32>> = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
        .into_iter()
        .map(Some)
        .collect();
    assert_eq!(outcome.segmentation.assignments, expected);
}

#[test]
fn table2_probabilistic_assignment_matches() {
    let (list, details) = superpages_example();
    let refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
    let obs = build_observations(&list, &[], &refs);
    let outcome = ProbSegmenter::default().segment(&obs);
    let expected: Vec<Option<u32>> = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
        .into_iter()
        .map(Some)
        .collect();
    assert_eq!(outcome.segmentation.assignments, expected);
}

#[test]
fn table3_shared_positions() {
    let (list, details) = superpages_example();
    let refs: Vec<&[Token]> = details.iter().map(Vec::as_slice).collect();
    let obs = build_observations(&list, &[], &refs);
    let groups = position_groups(&obs);
    // "John Smith" (E1/E5) at position 0 of pages r1 and r2; the shared
    // phone (E4/E8) at the tail position of both pages: 4 groups.
    assert_eq!(groups.len(), 4);
    // E1 and E5 compete on both pages (the paper's x11 + x51 = 1).
    assert!(groups
        .iter()
        .any(|g| g.page == 0 && g.extracts == vec![0, 4]));
    assert!(groups
        .iter()
        .any(|g| g.page == 1 && g.extracts == vec![0, 4]));
    // E4 and E8 likewise (the paper's x41 + x81 = 1).
    assert!(groups.iter().any(|g| g.extracts == vec![3, 7]));
}

#[test]
fn footnote1_matching_ignores_separators() {
    // "a string 'FirstName LastName' on list page will be matched to
    // 'FirstName <br>LastName' on the detail page".
    let list = tokenize("<td>Jane Q Doe</td>");
    let detail = tokenize("<p>Jane <br>Q <b>Doe</b></p>");
    let d2 = tokenize("<p>other</p>");
    let refs: Vec<&[Token]> = vec![&detail, &d2];
    let obs = build_observations(&list, &[], &refs);
    assert_eq!(obs.len(), 1);
    assert_eq!(obs.items[0].pages, vec![0]);
}

#[test]
fn section4_relaxation_produces_partial_assignment() {
    // The Michigan-style inconsistency in miniature.
    let list = tokenize("<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>");
    let d1 = tokenize("<p>Alpha One</p><p>Parole</p>");
    let d2 = tokenize("<p>Beta Two</p><p>Parolee</p>");
    let refs: Vec<&[Token]> = vec![&d1, &d2];
    let obs = build_observations(&list, &[], &refs);

    let csp = CspSegmenter::default().segment(&obs);
    assert!(csp.relaxed, "strict constraints are unsatisfiable");
    assert!(!csp.segmentation.is_total(), "relaxed solution is partial");

    let prob = ProbSegmenter::default().segment(&obs);
    assert!(
        prob.segmentation.is_total(),
        "the HMM tolerates the inconsistency"
    );
}

#[test]
fn section5_prob_runs_in_a_few_seconds_even_on_the_largest_page() {
    // "The CSP and probabilistic algorithms were exceedingly fast, taking
    // only a few seconds to run in all cases."
    use std::time::Instant;
    let spec = tableseg_sitegen::paper_sites::canada411(); // 25 records
    let site = tableseg_sitegen::site::generate(&spec);
    let details: Vec<&str> = site.pages[0]
        .detail_html
        .iter()
        .map(String::as_str)
        .collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: 0,
        detail_pages: details,
    });
    for segmenter in [
        &CspSegmenter::default() as &dyn Segmenter,
        &ProbSegmenter::default(),
    ] {
        let start = Instant::now();
        let _ = segmenter.segment(&prepared.observations);
        let elapsed = start.elapsed();
        assert!(
            elapsed.as_secs() < 30,
            "{} took {elapsed:?} (debug build allowance)",
            segmenter.name()
        );
    }
}
