//! Detection no-op invariance: enabling the table-region detection stage
//! must not change anything on single-table pages.
//!
//! Every page of the paper corpus is a single-table list page, so the
//! detect-enabled front end must (a) classify each one as exactly one
//! whole-page table region with `pass_through` set, (b) produce a
//! bit-identical `PreparedPage` to the classic path, and (c) reproduce
//! the committed `tests/golden/table4.txt` byte for byte through the
//! batch engine at 1, 2 and N threads.

use std::path::PathBuf;

use tableseg::html::lexer::tokenize;
use tableseg::{
    detect_regions, try_prepare_detected, try_prepare_with_template, CspSegmenter, DetectOptions,
    ProbSegmenter, RegionKind, SiteTemplate,
};
use tableseg_bench::{run_sites, run_sites_detect, table4_report};
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::generate;

fn read_golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()))
}

/// Property over the whole corpus: every single-table list page detects
/// as exactly one whole-page table region, in pass-through mode.
#[test]
fn every_paper_corpus_page_is_one_whole_page_region() {
    let opts = DetectOptions::default();
    for spec in paper_sites::all() {
        let site = generate(&spec);
        for (p, page) in site.pages.iter().enumerate() {
            let tokens = tokenize(&page.list_html);
            let detection = detect_regions(&tokens, &opts);
            assert!(
                detection.pass_through,
                "{} page {p}: single-table page must pass through",
                spec.name
            );
            assert_eq!(
                detection.regions.len(),
                1,
                "{} page {p}: exactly one region",
                spec.name
            );
            let region = &detection.regions[0];
            assert_eq!(region.kind, RegionKind::Table);
            assert_eq!(
                region.tokens,
                0..tokens.len(),
                "{} page {p}: the region must cover the whole page",
                spec.name
            );
        }
    }
}

/// On pass-through pages the detect-enabled front end must hand back the
/// classic preparation unchanged — same extracts, same offsets, same
/// fallback flags.
#[test]
fn pass_through_preparation_matches_classic_path() {
    let opts = DetectOptions::default();
    for spec in [paper_sites::butler(), paper_sites::amazon()] {
        let site = generate(&spec);
        let template = SiteTemplate::build(&site.list_htmls());
        for (p, page) in site.pages.iter().enumerate() {
            let details: Vec<&str> = page.detail_html.iter().map(String::as_str).collect();
            let classic = try_prepare_with_template(&template, p, &details)
                .unwrap_or_else(|e| panic!("{} page {p}: classic prepare: {e}", spec.name));
            let detected = try_prepare_detected(&template, p, &details, &opts)
                .unwrap_or_else(|e| panic!("{} page {p}: detect prepare: {e}", spec.name));
            assert!(detected.detection.pass_through);
            assert_eq!(detected.regions.len(), 1);
            let prepared = &detected.regions[0].prepared;
            assert_eq!(prepared.extract_offsets, classic.extract_offsets);
            assert_eq!(prepared.skipped_offsets, classic.skipped_offsets);
            assert_eq!(prepared.used_whole_page, classic.used_whole_page);
            assert_eq!(prepared.slot_tokens, classic.slot_tokens);
            assert_eq!(
                prepared.observations.len(),
                classic.observations.len(),
                "{} page {p}",
                spec.name
            );
        }
    }
}

/// The hard gate: the table4 report with detection enabled is
/// byte-identical to the committed golden at 1, 2 and N threads.
#[test]
fn table4_golden_is_byte_identical_with_detection_enabled() {
    let specs = paper_sites::all();
    let golden = read_golden("table4.txt");
    let opts = DetectOptions::default();
    let prob = ProbSegmenter::default();
    let csp = CspSegmenter::default();
    let n = tableseg::batch::default_threads().max(3);
    for threads in [1usize, 2, n] {
        let outcome = run_sites_detect(&specs, threads, &prob, &csp, &opts);
        assert_eq!(
            table4_report(&outcome.runs, false),
            golden,
            "detect-enabled table4 drifted from tests/golden/table4.txt at {threads} threads"
        );
    }
    // And the detect path agrees with the plain path run-for-run.
    let plain = run_sites(&specs, 2);
    let detect = run_sites_detect(&specs, 2, &prob, &csp, &opts);
    assert_eq!(plain.runs.len(), detect.runs.len());
    for (a, b) in plain.runs.iter().zip(&detect.runs) {
        assert_eq!(a.prob, b.prob, "{} page {}", a.site, a.page);
        assert_eq!(a.csp, b.csp, "{} page {}", a.site, a.page);
        assert_eq!(a.used_whole_page, b.used_whole_page);
        assert_eq!(a.csp_relaxed, b.csp_relaxed);
    }
}
