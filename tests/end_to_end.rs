//! End-to-end integration tests: simulator → pipeline → both segmenters →
//! evaluation, across all four information domains.

use tableseg::{assemble_records, prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};
use tableseg_eval::classify::{classify, truth_of_extracts};
use tableseg_eval::Metrics;
use tableseg_sitegen::domains::Domain;
use tableseg_sitegen::paper_sites;
use tableseg_sitegen::site::{generate, GeneratedSite, LayoutStyle, SiteSpec};

fn run_page(
    site: &GeneratedSite,
    page_idx: usize,
    segmenter: &dyn Segmenter,
) -> (tableseg_eval::classify::PageCounts, bool) {
    let page = &site.pages[page_idx];
    let details: Vec<&str> = page.detail_html.iter().map(String::as_str).collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: page_idx,
        detail_pages: details,
    });
    let spans: Vec<std::ops::Range<usize>> =
        page.truth.records.iter().map(|r| r.start..r.end).collect();
    let truth = truth_of_extracts(&prepared.extract_offsets, &spans);
    let outcome = segmenter.segment(&prepared.observations);
    (
        classify(&outcome.segmentation.records(), &truth, page.truth.len()),
        outcome.relaxed,
    )
}

#[test]
fn clean_sites_segment_perfectly_with_both_approaches() {
    for spec in [
        paper_sites::allegheny(),
        paper_sites::butler(),
        paper_sites::lee(),
        paper_sites::ohio(),
        paper_sites::sprint_canada(),
    ] {
        let site = generate(&spec);
        for page in 0..site.pages.len() {
            for segmenter in [
                &CspSegmenter::default() as &dyn Segmenter,
                &ProbSegmenter::default(),
            ] {
                let (counts, relaxed) = run_page(&site, page, segmenter);
                let m = Metrics::from_counts(&counts);
                assert!(
                    m.f1 > 0.95,
                    "{} page {page} via {}: {counts:?}",
                    spec.name,
                    segmenter.name()
                );
                assert!(
                    !relaxed,
                    "{} page {page} should not need relaxation",
                    spec.name
                );
            }
        }
    }
}

#[test]
fn dirty_sites_force_csp_relaxation_but_not_prob() {
    // Michigan page 1 (Parole/Parolee) and Canada 411 (shared town missing
    // on one detail page) are the paper's canonical CSP failures.
    for (spec, page) in [
        (paper_sites::michigan(), 0),
        (paper_sites::canada411(), 0),
        (paper_sites::canada411(), 1),
    ] {
        let site = generate(&spec);
        let (_, csp_relaxed) = run_page(&site, page, &CspSegmenter::default());
        assert!(csp_relaxed, "{} page {page}: CSP must relax", spec.name);
        let (prob_counts, prob_relaxed) = run_page(&site, page, &ProbSegmenter::default());
        assert!(
            !prob_relaxed,
            "{}: the probabilistic approach never relaxes",
            spec.name
        );
        // The probabilistic approach still gets most records right.
        let m = Metrics::from_counts(&prob_counts);
        assert!(m.recall > 0.8, "{} page {page}: {prob_counts:?}", spec.name);
    }
}

#[test]
fn probabilistic_is_at_least_as_accurate_as_csp_on_dirty_sites() {
    for spec in [
        paper_sites::amazon(),
        paper_sites::michigan(),
        paper_sites::canada411(),
    ] {
        let site = generate(&spec);
        for page in 0..site.pages.len() {
            let (prob, _) = run_page(&site, page, &ProbSegmenter::default());
            let (csp, _) = run_page(&site, page, &CspSegmenter::default());
            assert!(
                prob.cor >= csp.cor,
                "{} page {page}: prob {prob:?} vs csp {csp:?}",
                spec.name
            );
        }
    }
}

#[test]
fn numbered_sites_trigger_whole_page_fallback() {
    for spec in [
        paper_sites::amazon(),
        paper_sites::bn_books(),
        paper_sites::minnesota(),
    ] {
        let site = generate(&spec);
        let details: Vec<&str> = site.pages[0]
            .detail_html
            .iter()
            .map(String::as_str)
            .collect();
        let prepared = prepare(&SitePages {
            list_pages: site.list_htmls(),
            target: 0,
            detail_pages: details,
        });
        assert!(
            prepared.used_whole_page,
            "{}: numbered entries must break the template ({:?})",
            spec.name, prepared.template_quality
        );
    }
}

#[test]
fn grid_sites_use_the_table_slot() {
    for spec in [paper_sites::allegheny(), paper_sites::ohio()] {
        let site = generate(&spec);
        let details: Vec<&str> = site.pages[0]
            .detail_html
            .iter()
            .map(String::as_str)
            .collect();
        let prepared = prepare(&SitePages {
            list_pages: site.list_htmls(),
            target: 0,
            detail_pages: details,
        });
        assert!(
            !prepared.used_whole_page,
            "{}: clean grid site should keep its template ({:?})",
            spec.name, prepared.template_quality
        );
    }
}

#[test]
fn every_domain_round_trips() {
    for (i, domain) in Domain::ALL.into_iter().enumerate() {
        let spec = SiteSpec {
            name: format!("Domain Test {i}"),
            domain,
            layout: LayoutStyle::GridTable,
            records_per_page: vec![8, 6],
            quirks: vec![],
            missing_field_prob: 0.1,
            continuous_numbering: false,
            overlap: 0,
            seed: 1000 + i as u64,
        };
        let site = generate(&spec);
        let (counts, _) = run_page(&site, 0, &CspSegmenter::default());
        assert!(
            counts.cor >= 7,
            "{domain:?}: {counts:?} — clean data should segment"
        );
    }
}

#[test]
fn assembled_records_contain_row_values() {
    let spec = paper_sites::butler();
    let site = generate(&spec);
    let page = &site.pages[0];
    let details: Vec<&str> = page.detail_html.iter().map(String::as_str).collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: 0,
        detail_pages: details,
    });
    let outcome = CspSegmenter::default().segment(&prepared.observations);
    let records = assemble_records(&prepared, &outcome.segmentation);
    assert_eq!(records.len(), page.truth.len());
    for (rec, truth) in records.iter().zip(&page.truth.records) {
        // The salient identifier must be in the assembled record. Extract
        // text is token-joined with spaces, so compare ignoring whitespace.
        let squash = |s: &str| s.chars().filter(|c| !c.is_whitespace()).collect::<String>();
        let joined = squash(&rec.fields.join("|"));
        let id = squash(&truth.values[0]);
        assert!(
            joined.contains(&id),
            "record {}: {joined} missing {id}",
            rec.index
        );
    }
}

#[test]
fn column_labels_are_consistent_within_clean_sites() {
    let spec = paper_sites::allegheny();
    let site = generate(&spec);
    let page = &site.pages[0];
    let details: Vec<&str> = page.detail_html.iter().map(String::as_str).collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: 0,
        detail_pages: details,
    });
    let outcome = ProbSegmenter::default().segment(&prepared.observations);
    let columns = outcome.columns.expect("prob yields columns");
    // The first extract of every record must carry the same column label
    // (records start at L1).
    let seg = &outcome.segmentation;
    let mut first_cols = Vec::new();
    for extracts in seg.records() {
        if let Some(&first) = extracts.first() {
            first_cols.push(columns[first]);
        }
    }
    assert!(!first_cols.is_empty());
    assert!(
        first_cols.iter().all(|&c| c == first_cols[0]),
        "{first_cols:?}"
    );
}

#[test]
fn continued_numbering_repairs_the_template() {
    // The paper's proposed fix (Section 6.3): follow the "Next" link so
    // entry numbers differ between sample pages. With numbering continued
    // across pages, the template no longer absorbs the numbers and the
    // table slot is usable again.
    let mut spec = paper_sites::bn_books();
    spec.continuous_numbering = true;
    let site = generate(&spec);
    let details: Vec<&str> = site.pages[0]
        .detail_html
        .iter()
        .map(String::as_str)
        .collect();
    let prepared = prepare(&SitePages {
        list_pages: site.list_htmls(),
        target: 0,
        detail_pages: details,
    });
    assert!(
        !prepared.used_whole_page,
        "continued numbering should restore the template: {:?}",
        prepared.template_quality
    );
}
