//! Black-box service test: a served segmentation of the 12-site paper
//! corpus must be byte-identical to the batch `table4` golden — on a
//! cold cache, on a warm cache (template reuse, zero re-inductions,
//! observed via counters), and after explicit invalidation — at 1, 2
//! and N batch worker threads.
//!
//! The daemon is booted on an ephemeral port and driven over raw TCP
//! through the same client helpers an external caller would use; the
//! Table-4 rows are reconstructed purely from response bytes (extract
//! offsets + record groups) plus the locally generated ground truth.

use std::net::SocketAddr;
use std::path::PathBuf;

use tableseg::template::induction_count;
use tableseg_bench::servebench::corpus_requests;
use tableseg_bench::{table4_report, PageRun};
use tableseg_eval::classify::{classify, truth_of_extracts};
use tableseg_serve::client;
use tableseg_serve::proto::SegmentResponse;
use tableseg_serve::{SegmentRequest, Server, ServerConfig};
use tableseg_sitegen::site::GeneratedSite;

fn read_golden(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/golden")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden {}: {e}", path.display()))
}

/// Reconstructs the batch harness's `PageRun`s from a served response:
/// classification happens client-side against the locally generated
/// ground truth, exactly as `run_sites` does it.
fn runs_from_response(site: &GeneratedSite, name: &str, resp: &SegmentResponse) -> Vec<PageRun> {
    resp.page_results
        .iter()
        .map(|p| {
            assert_ne!(
                p.status, "failed",
                "{name} page {} failed: {:?}",
                p.target, p.error
            );
            let spans: Vec<std::ops::Range<usize>> = site.pages[p.target]
                .truth
                .records
                .iter()
                .map(|r| r.start..r.end)
                .collect();
            let truth = truth_of_extracts(&p.offsets, &spans);
            let num_truth = site.pages[p.target].truth.len();
            let prob = p.prob.as_ref().expect("prob result");
            let csp = p.csp.as_ref().expect("csp result");
            PageRun {
                site: name.to_string(),
                page: p.target,
                prob: classify(&prob.groups, &truth, num_truth),
                csp: classify(&csp.groups, &truth, num_truth),
                used_whole_page: p.whole_page,
                csp_relaxed: csp.relaxed,
            }
        })
        .collect()
}

/// One full pass over the corpus; returns the Table-4 report plus every
/// response for further assertions.
fn served_pass(
    addr: SocketAddr,
    corpus: &[(GeneratedSite, SegmentRequest)],
) -> (String, Vec<SegmentResponse>) {
    let mut runs = Vec::new();
    let mut responses = Vec::new();
    for (site, request) in corpus {
        let resp = client::segment(addr, request, None, true)
            .unwrap_or_else(|e| panic!("segment {} failed: {e}", request.site));
        assert_eq!(
            resp.pages,
            resp.ok + resp.degraded + resp.failed,
            "{}: page accounting broken",
            request.site
        );
        runs.extend(runs_from_response(site, &request.site, &resp));
        responses.push(resp);
    }
    (table4_report(&runs, false), responses)
}

#[test]
fn served_segmentation_matches_table4_golden_cold_warm_and_after_invalidation() {
    let corpus = corpus_requests();
    let golden = read_golden("table4.txt");
    let n = tableseg::batch::default_threads().max(3);

    for batch_threads in [1usize, 2, n] {
        let server = Server::start(ServerConfig {
            batch_threads,
            workers: 2,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        let addr = server.addr();

        // Cold: exactly one induction per site, report matches golden.
        let before = induction_count();
        let (cold_report, cold_responses) = served_pass(addr, &corpus);
        assert_eq!(
            induction_count() - before,
            corpus.len(),
            "cold pass must induce exactly once per site ({batch_threads} threads)"
        );
        assert_eq!(
            cold_report, golden,
            "cold served report drifted from the batch golden ({batch_threads} threads)"
        );
        for resp in &cold_responses {
            assert_eq!(resp.cache, "cold", "{}", resp.site);
            assert!(
                resp.manifest.contains("\"template.inductions\": 1"),
                "{}: cold manifest should record one induction",
                resp.site
            );
        }

        // Warm: zero inductions, nothing recomputed, same bytes.
        let before = induction_count();
        let (warm_report, warm_responses) = served_pass(addr, &corpus);
        assert_eq!(
            induction_count() - before,
            0,
            "warm pass must not re-induce ({batch_threads} threads)"
        );
        assert_eq!(
            warm_report, golden,
            "warm served report drifted ({batch_threads} threads)"
        );
        for (resp, cold) in warm_responses.iter().zip(&cold_responses) {
            assert_eq!(resp.cache, "warm", "{}", resp.site);
            assert_eq!(
                resp.generation, cold.generation,
                "{}: warm hit must not change the generation",
                resp.site
            );
            assert!(
                resp.page_results.iter().all(|p| p.cached),
                "{}: warm targets must come from the result cache",
                resp.site
            );
            assert!(
                resp.manifest.contains("\"template.inductions\": 0"),
                "{}: warm manifest must record zero inductions",
                resp.site
            );
        }

        // Post-invalidation: cold again, generation bumped, same bytes.
        for (_, request) in &corpus {
            let reply = client::invalidate(addr, &request.site).expect("invalidate");
            assert!(reply.starts_with("invalidated"), "{reply}");
        }
        let before = induction_count();
        let (post_report, post_responses) = served_pass(addr, &corpus);
        assert_eq!(induction_count() - before, corpus.len());
        assert_eq!(
            post_report, golden,
            "post-invalidation report drifted ({batch_threads} threads)"
        );
        for (resp, warm) in post_responses.iter().zip(&warm_responses) {
            assert_eq!(resp.cache, "cold", "{}", resp.site);
            assert!(
                resp.generation > warm.generation,
                "{}: invalidation must advance the generation",
                resp.site
            );
        }

        server.shutdown();
    }
}
