//! Smoke tests for the `tableseg` CLI binary.

use std::io::Write;
use std::process::Command;

fn write_temp(dir: &std::path::Path, name: &str, content: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    let mut f = std::fs::File::create(&path).expect("create temp file");
    f.write_all(content.as_bytes()).expect("write temp file");
    path
}

fn fixture(dir: &std::path::Path) -> (Vec<std::path::PathBuf>, Vec<std::path::PathBuf>) {
    let page = |body: &str| {
        format!(
            "<html><h1>CLI Test Results</h1><table>{body}</table>\
             <p>Copyright 2004 CLI Test Inc</p></html>"
        )
    };
    let lists = vec![
        write_temp(
            dir,
            "list1.html",
            &page(
                "<tr><td>Ada Lovelace</td><td>(555) 100-0001</td></tr>\
                 <tr><td>Alan Turing</td><td>(555) 100-0002</td></tr>",
            ),
        ),
        write_temp(
            dir,
            "list2.html",
            &page("<tr><td>Grace Hopper</td><td>(555) 100-0003</td></tr>"),
        ),
    ];
    let details = vec![
        write_temp(
            dir,
            "d1.html",
            "<html><h2>Ada Lovelace</h2><p>(555) 100-0001</p></html>",
        ),
        write_temp(
            dir,
            "d2.html",
            "<html><h2>Alan Turing</h2><p>(555) 100-0002</p></html>",
        ),
    ];
    (lists, details)
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_tableseg"))
        .args(args)
        .output()
        .expect("run tableseg binary")
}

#[test]
fn segments_files_from_disk() {
    let dir = std::env::temp_dir().join("tableseg-cli-test-1");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (lists, details) = fixture(&dir);

    for method in ["csp", "prob", "hybrid"] {
        let out = run(&[
            "--list",
            lists[0].to_str().unwrap(),
            "--list",
            lists[1].to_str().unwrap(),
            "--detail",
            details[0].to_str().unwrap(),
            "--detail",
            details[1].to_str().unwrap(),
            "--method",
            method,
        ]);
        assert!(out.status.success(), "{method}: {out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains("Ada Lovelace"), "{method}: {stdout}");
        assert!(stdout.contains("Alan Turing"), "{method}: {stdout}");
        assert_eq!(stdout.lines().count(), 2, "{method}: {stdout}");
    }
}

#[test]
fn wrapper_and_columns_flags() {
    let dir = std::env::temp_dir().join("tableseg-cli-test-2");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (lists, details) = fixture(&dir);
    let out = run(&[
        "--list",
        lists[0].to_str().unwrap(),
        "--list",
        lists[1].to_str().unwrap(),
        "--detail",
        details[0].to_str().unwrap(),
        "--detail",
        details[1].to_str().unwrap(),
        "--method",
        "prob",
        "--columns",
        "--wrapper",
        "--verbose",
    ]);
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("column annotation"), "{stderr}");
    assert!(stderr.contains("person-name"), "{stderr}");
    assert!(stderr.contains("induced row wrapper"), "{stderr}");
    assert!(stderr.contains("front end:"), "{stderr}");
}

#[test]
fn manifest_flag_writes_three_deterministic_sinks() {
    let dir = std::env::temp_dir().join("tableseg-cli-test-4");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let (lists, details) = fixture(&dir);
    let run_manifest = |out_name: &str| -> std::path::PathBuf {
        let path = dir.join(out_name);
        let out = Command::new(env!("CARGO_BIN_EXE_tableseg"))
            .args([
                "--list",
                lists[0].to_str().unwrap(),
                "--detail",
                details[0].to_str().unwrap(),
                "--detail",
                details[1].to_str().unwrap(),
                "--method",
                "csp,prob",
                "--manifest",
                path.to_str().unwrap(),
            ])
            .env("TABLESEG_MANIFEST_DETERMINISTIC", "1")
            .output()
            .expect("run tableseg binary");
        assert!(out.status.success(), "{out:?}");
        path
    };

    let first = run_manifest("run-a.json");
    let json = std::fs::read_to_string(&first).expect("summary json");
    assert!(
        json.contains("\"schema\": \"tableseg.manifest/v1\""),
        "{json}"
    );
    assert!(json.contains("\"tool\": \"tableseg\""), "{json}");
    assert!(json.contains("\"pages.processed\": 1"), "{json}");
    assert!(
        json.contains("\"volatile\": {\"redacted\": true}"),
        "{json}"
    );
    let jsonl = std::fs::read_to_string(dir.join("run-a.json.jsonl")).expect("event log");
    assert!(jsonl.lines().last().unwrap().contains("\"event\": \"end\""));
    let prom = std::fs::read_to_string(dir.join("run-a.json.prom")).expect("prometheus text");
    assert!(prom.contains("tableseg_pages_processed_total 1"), "{prom}");

    // Two identical deterministic runs produce byte-identical sinks.
    let second = run_manifest("run-b.json");
    for ext in ["", ".jsonl", ".prom"] {
        let a = std::fs::read(format!("{}{ext}", first.display())).unwrap();
        let b = std::fs::read(format!("{}{ext}", second.display())).unwrap();
        assert_eq!(a, b, "sink {ext:?} not byte-identical across runs");
    }
}

#[test]
fn missing_arguments_fail_cleanly() {
    let out = run(&[]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");

    let out = run(&["--bogus"]);
    assert!(!out.status.success());

    let out = run(&[
        "--list",
        "/nonexistent/x.html",
        "--detail",
        "/nonexistent/y.html",
    ]);
    assert!(!out.status.success());
}
