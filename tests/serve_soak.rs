//! Concurrency/soak test: N client threads hammering overlapping sites
//! while an invalidator thread interleaves cache invalidations.
//!
//! Asserts, on every response: page accounting holds
//! (`pages == ok + degraded + failed`), the cache kind is one of the
//! known labels, and — the determinism property — every `(site, cache
//! kind)` pair produces exactly one distinct redacted manifest byte
//! string across the whole run, no matter which thread asked or what
//! the invalidator was doing. The run finishing at all is the
//! no-deadlock assertion.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use tableseg_bench::servebench::corpus_requests;
use tableseg_serve::client;
use tableseg_serve::{Server, ServerConfig};

const CLIENTS: usize = 4;
const REQUESTS_PER_CLIENT: usize = 18;

#[test]
fn soaked_daemon_stays_consistent_and_deterministic() {
    let corpus = Arc::new(corpus_requests());
    let server = Server::start(ServerConfig {
        workers: 4,
        batch_threads: 2,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();

    // Invalidator: cycles the sites until the clients are done.
    let stop = Arc::new(AtomicBool::new(false));
    let invalidator = {
        let corpus = Arc::clone(&corpus);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut i = 0usize;
            let mut invalidated = 0usize;
            while !stop.load(Ordering::SeqCst) {
                let (_, request) = &corpus[i % corpus.len()];
                i += 1;
                let reply = client::invalidate(addr, &request.site).expect("invalidate");
                assert!(
                    reply.starts_with("invalidated") || reply.starts_with("unknown"),
                    "unexpected invalidate reply: {reply}"
                );
                invalidated += 1;
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            invalidated
        })
    };

    // Clients: overlapping sites (each starts at a different offset),
    // every response checked and its manifest collected.
    let mut clients = Vec::new();
    for client_idx in 0..CLIENTS {
        let corpus = Arc::clone(&corpus);
        clients.push(std::thread::spawn(move || {
            let mut manifests: Vec<(String, String, String)> = Vec::new();
            for i in 0..REQUESTS_PER_CLIENT {
                let (_, request) = &corpus[(client_idx + i) % corpus.len()];
                let resp = client::segment(addr, request, None, true)
                    .unwrap_or_else(|e| panic!("segment {} failed: {e}", request.site));
                assert_eq!(
                    resp.pages,
                    resp.ok + resp.degraded + resp.failed,
                    "{}: page accounting broken",
                    resp.site
                );
                assert_eq!(resp.pages, request.targets.len(), "{}", resp.site);
                assert_eq!(resp.failed, 0, "{}: clean corpus must not fail", resp.site);
                assert!(
                    ["cold", "warm", "refresh", "rebuild"].contains(&resp.cache.as_str()),
                    "unknown cache kind {}",
                    resp.cache
                );
                // The per-target cached/computed pattern is part of the
                // request's observable state: a warm hit that found only
                // some targets resident legitimately recomputes the rest
                // (and its manifest says so). Manifests must be a
                // deterministic function of (site, kind, pattern).
                let pattern: String = resp
                    .page_results
                    .iter()
                    .map(|p| if p.cached { 'c' } else { '.' })
                    .collect();
                let key = format!("{}/{}", resp.cache, pattern);
                manifests.push((resp.site.clone(), key, resp.manifest));
            }
            manifests
        }));
    }

    let mut by_kind: HashMap<(String, String), Vec<String>> = HashMap::new();
    for handle in clients {
        for (site, kind, manifest) in handle.join().expect("client thread") {
            by_kind.entry((site, kind)).or_default().push(manifest);
        }
    }
    stop.store(true, Ordering::SeqCst);
    let invalidated = invalidator.join().expect("invalidator thread");
    assert!(invalidated > 0, "invalidator never ran");
    server.shutdown();

    // Determinism: for one site and one cache kind, the redacted
    // manifest is a single byte string, however many threads asked.
    for ((site, kind), manifests) in &by_kind {
        let first = &manifests[0];
        for m in manifests {
            assert_eq!(
                m, first,
                "manifest for ({site}, {kind}) not deterministic under redact"
            );
        }
    }
    // The interleaved invalidations must actually have produced both
    // cold and warm traffic — otherwise the test proved nothing.
    let kinds: Vec<&str> = by_kind.keys().map(|(_, k)| k.as_str()).collect();
    assert!(
        kinds.iter().any(|k| k.starts_with("cold/")),
        "no cold requests observed"
    );
    assert!(
        kinds.iter().any(|k| k.starts_with("warm/")),
        "no warm requests observed"
    );
}
