//! Chaos-at-the-door: the daemon must answer hostile traffic with 4xx/5xx
//! instead of panicking, and `/healthz` must stay green throughout.
//!
//! Covered: truncated bodies, oversized payloads (rejected from the
//! `Content-Length` header alone), malformed HTTP, garbage segment
//! bodies, mid-request disconnects, wrong methods, unknown endpoints,
//! out-of-range targets (caught by the fallible pipeline and reported
//! as a failed page inside a 200), empty site samples, and a
//! zero-depth admission queue (429 + `Retry-After` from the acceptor).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream};
use std::time::Duration;

use tableseg_serve::client;
use tableseg_serve::proto::encode_request;
use tableseg_serve::{SegmentRequest, Server, ServerConfig, TargetSpec};

/// Writes raw bytes, half-closes the write side, and reads the status
/// code of whatever comes back.
fn raw_exchange(addr: SocketAddr, bytes: &[u8]) -> Option<u16> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .ok()?;
    stream.write_all(bytes).ok()?;
    stream.shutdown(Shutdown::Write).ok()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).ok()?;
    let head = std::str::from_utf8(&raw).ok()?;
    head.strip_prefix("HTTP/1.1 ")?
        .split(' ')
        .next()?
        .parse()
        .ok()
}

fn tiny_request() -> SegmentRequest {
    SegmentRequest {
        site: "chaos-site".to_string(),
        list_pages: vec![
            "<html><table><tr><td>Ada</td></tr><tr><td>Alan</td></tr></table></html>".to_string(),
            "<html><table><tr><td>Grace</td></tr></table></html>".to_string(),
        ],
        targets: vec![TargetSpec {
            target: 0,
            details: vec!["<h2>Ada</h2>".to_string()],
        }],
    }
}

#[test]
fn hostile_traffic_gets_4xx_5xx_and_healthz_stays_green() {
    let server = Server::start(ServerConfig {
        workers: 2,
        max_body: 64 * 1024,
        read_timeout: Duration::from_millis(500),
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    assert!(client::healthz(addr), "daemon must start healthy");

    // Malformed HTTP.
    assert_eq!(raw_exchange(addr, b"NONSENSE\r\n\r\n"), Some(400));
    assert_eq!(raw_exchange(addr, b"GET\r\n\r\n"), Some(400));
    assert_eq!(
        raw_exchange(
            addr,
            b"POST /segment HTTP/1.1\r\ncontent-length: ten\r\n\r\n"
        ),
        Some(400)
    );

    // Oversized payload: rejected from the header, body never read.
    assert_eq!(
        raw_exchange(
            addr,
            b"POST /segment HTTP/1.1\r\ncontent-length: 99999999\r\n\r\n"
        ),
        Some(413)
    );

    // Truncated body: the peer half-closes before content-length bytes.
    assert_eq!(
        raw_exchange(
            addr,
            b"POST /segment HTTP/1.1\r\ncontent-length: 500\r\n\r\nonly this"
        ),
        Some(400)
    );

    // Mid-request disconnect: partial head, then the connection drops
    // entirely. No response can be delivered; the daemon must survive.
    {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(b"POST /segm").expect("partial write");
        drop(stream);
    }

    // Garbage segment body: parsed, rejected, 400.
    let resp = client::http_request(addr, "POST", "/segment", &[], b"not a tablesegd request")
        .expect("transport");
    assert_eq!(resp.status, 400);

    // Non-UTF-8 segment body.
    let resp = client::http_request(addr, "POST", "/segment", &[], &[0xff, 0xfe, 0x00, 0x80])
        .expect("transport");
    assert_eq!(resp.status, 400);

    // Wrong method / unknown endpoint.
    let resp = client::http_request(addr, "GET", "/segment", &[], b"").expect("transport");
    assert_eq!(resp.status, 405);
    let resp = client::http_request(addr, "POST", "/nope", &[], b"").expect("transport");
    assert_eq!(resp.status, 404);

    // Empty site sample: the fallible pipeline reports it, 422.
    let empty = SegmentRequest {
        site: "empty".to_string(),
        list_pages: Vec::new(),
        targets: Vec::new(),
    };
    let resp = client::http_request(
        addr,
        "POST",
        "/segment",
        &[],
        encode_request(&empty).as_bytes(),
    )
    .expect("transport");
    assert_eq!(resp.status, 422);

    // Out-of-range target: caught by `outcome`'s fallible path and
    // reported as a failed page inside a successful response.
    let mut bad_target = tiny_request();
    bad_target.targets[0].target = 99;
    let resp = client::segment(addr, &bad_target, None, true).expect("segment");
    assert_eq!(resp.pages, 1);
    assert_eq!(resp.failed, 1);
    assert_eq!(resp.pages, resp.ok + resp.degraded + resp.failed);
    let page = &resp.page_results[0];
    assert_eq!(page.status, "failed");
    assert_eq!(
        page.error.as_ref().map(|(s, _)| s.as_str()),
        Some("template")
    );

    // A well-formed request still works after all of the above.
    let resp = client::segment(addr, &tiny_request(), None, true).expect("segment");
    assert_eq!(resp.pages, resp.ok + resp.degraded + resp.failed);
    assert_eq!(resp.failed, 0);

    // An expired deadline fails pages gracefully via the serve stage —
    // on a fresh site, so the result cache cannot answer first.
    let mut rushed = tiny_request();
    rushed.site = "chaos-deadline".to_string();
    let resp = client::segment(addr, &rushed, Some(0), true).expect("segment");
    assert_eq!(resp.failed, resp.pages);
    assert_eq!(
        resp.page_results[0].error.as_ref().map(|(s, _)| s.as_str()),
        Some("serve")
    );
    // The expiry must not poison the result cache: the same request
    // with time to spare computes the target and succeeds.
    let resp = client::segment(addr, &rushed, None, true).expect("segment");
    assert_eq!(resp.failed, 0, "deadline failure must not be cached");
    assert!(resp.page_results.iter().all(|p| !p.cached));

    // Throughout all of it: healthy, and /metrics still renders.
    assert!(
        client::healthz(addr),
        "daemon must stay healthy under chaos"
    );
    let metrics = client::metrics(addr).expect("metrics");
    assert!(metrics.contains("tableseg_serve_requests_total"));
    server.shutdown();
}

#[test]
fn zero_depth_queue_rejects_with_retry_after() {
    let server = Server::start(ServerConfig {
        workers: 1,
        queue_depth: 0,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port");
    let addr = server.addr();
    // The rejection is written from the acceptor the moment the
    // connection lands — no request bytes needed (writing any would
    // race the acceptor's close and read back a reset instead).
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .expect("timeout");
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).expect("read rejection");
    let head = String::from_utf8_lossy(&raw);
    assert!(
        head.starts_with("HTTP/1.1 429 "),
        "zero-depth queue must shed all load, got: {head}"
    );
    assert!(
        head.to_ascii_lowercase().contains("retry-after: 1"),
        "429 must carry Retry-After, got: {head}"
    );
    server.shutdown();
}
