//! Property tests over the full pipeline: random sites in, invariants out.

use proptest::prelude::*;

use tableseg::{prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};
use tableseg_sitegen::domains::Domain;
use tableseg_sitegen::site::{generate, LayoutStyle, SiteSpec};

fn arb_spec() -> impl Strategy<Value = SiteSpec> {
    (
        prop_oneof![
            Just(Domain::WhitePages),
            Just(Domain::Books),
            Just(Domain::PropertyTax),
            Just(Domain::Corrections),
        ],
        prop_oneof![
            Just(LayoutStyle::GridTable),
            Just(LayoutStyle::FreeForm),
            Just(LayoutStyle::NumberedList),
        ],
        2usize..10,
        2usize..10,
        0.0f64..0.4,
        any::<u64>(),
    )
        .prop_map(|(domain, layout, n1, n2, missing, seed)| SiteSpec {
            name: "Prop Site".into(),
            domain,
            layout,
            records_per_page: vec![n1, n2],
            quirks: vec![],
            missing_field_prob: missing,
            continuous_numbering: false,
            overlap: 0,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the site looks like, the pipeline and both segmenters
    /// uphold their structural invariants.
    #[test]
    fn pipeline_invariants_hold_on_random_sites(spec in arb_spec()) {
        let site = generate(&spec);
        let details: Vec<&str> = site.pages[0]
            .detail_html
            .iter()
            .map(String::as_str)
            .collect();
        let num_records = details.len();
        let prepared = prepare(&SitePages {
            list_pages: site.list_htmls(),
            target: 0,
            detail_pages: details,
        });
        let obs = &prepared.observations;
        prop_assert_eq!(obs.num_records, num_records);
        prop_assert_eq!(prepared.extract_offsets.len(), obs.items.len());

        // Every kept extract has a non-empty, sorted, in-range D_i that is
        // not the full record set (when K > 1).
        for item in &obs.items {
            prop_assert!(!item.pages.is_empty());
            prop_assert!(item.pages.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(item.pages.iter().all(|&p| (p as usize) < num_records));
            if num_records > 1 {
                prop_assert!(item.pages.len() < num_records);
            }
        }

        // CSP output obeys occurrence + contiguity whenever it claims a
        // non-relaxed solve.
        let csp = CspSegmenter::default().segment(obs);
        prop_assert_eq!(csp.segmentation.assignments.len(), obs.items.len());
        if !csp.relaxed {
            prop_assert!(csp.segmentation.check(obs).is_empty());
        }
        for (i, a) in csp.segmentation.assignments.iter().enumerate() {
            if let Some(r) = a {
                prop_assert!((*r as usize) < num_records);
                if !csp.relaxed {
                    prop_assert!(obs.items[i].on_page(*r), "E{} outside D_i", i + 1);
                }
            }
        }

        // Probabilistic output is total, monotone in record labels, and
        // within range.
        let prob = ProbSegmenter::default().segment(obs);
        prop_assert!(prob.segmentation.is_total());
        let labels: Vec<u32> = prob
            .segmentation
            .assignments
            .iter()
            .map(|a| a.expect("total"))
            .collect();
        prop_assert!(labels.windows(2).all(|w| w[0] <= w[1]), "{:?}", labels);
        prop_assert!(labels.iter().all(|&r| (r as usize) < num_records.max(1)));
        let columns = prob.columns.expect("prob yields columns");
        prop_assert_eq!(columns.len(), obs.items.len());

        // Determinism of the full stack.
        let csp2 = CspSegmenter::default().segment(obs);
        prop_assert_eq!(csp.segmentation, csp2.segmentation);
        let prob2 = ProbSegmenter::default().segment(obs);
        prop_assert_eq!(prob.segmentation, prob2.segmentation);
    }
}
