//! Pipeline-level chaos properties: a fault-injected site driven through
//! the fallible front end and both segmenters returns `Ok` / `Degraded` /
//! `Failed` per page — it never panics out and never aborts the process,
//! for any fault probability and seed.

use proptest::prelude::*;

use tableseg::outcome::PageOutcome;
use tableseg::robustness::RobustnessReport;
use tableseg::{
    prepare_outcome, try_prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages, SiteTemplate,
};
use tableseg_sitegen::chaos::{generate_chaotic, ChaosConfig};
use tableseg_sitegen::paper_sites;

/// Runs one damaged site through the full fallible path and folds every
/// page into a report. Any panic escaping this function fails the test —
/// that is the property.
fn drive_site(site: &tableseg_sitegen::GeneratedSite) -> RobustnessReport {
    let mut report = RobustnessReport::new();
    let list_htmls = site.list_htmls();
    let template = match SiteTemplate::try_build(&list_htmls) {
        Ok(t) => t,
        Err(e) => {
            for _ in &site.pages {
                report.record_error(&e);
            }
            return report;
        }
    };
    for (page, gp) in site.pages.iter().enumerate() {
        let details: Vec<&str> = gp.detail_html.iter().map(String::as_str).collect();
        let outcome = prepare_outcome(&template, page, &details);
        match outcome.page() {
            Some(prepared) => {
                let prob = ProbSegmenter::default().try_segment(&prepared.observations);
                let csp = CspSegmenter::default().try_segment(&prepared.observations);
                match (&prob, &csp) {
                    (Ok(_), Ok(_)) => report.record(&outcome),
                    (Err(e), _) | (_, Err(e)) => report.record_error(e),
                }
            }
            None => report.record(&outcome),
        }
    }
    report
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Uniform chaos at any probability in (0, 0.5] over a real paper
    /// site: every page resolves to exactly one outcome and the counts
    /// reconcile. The process surviving this loop *is* the assertion.
    #[test]
    fn chaotic_site_never_aborts(p in 0.05f64..0.5, seed in any::<u64>()) {
        let (site, _) = generate_chaotic(&paper_sites::butler(), &ChaosConfig::uniform(p, seed));
        let report = drive_site(&site);
        prop_assert_eq!(report.pages, site.pages.len());
        prop_assert_eq!(report.pages, report.ok + report.degraded + report.failed);
    }

    /// The one-shot fallible entry point tolerates pathological inputs:
    /// any subset of a damaged site's pages, any target index (including
    /// out of bounds), empty page sets.
    #[test]
    fn try_prepare_total_on_damaged_input(
        p in 0.0f64..1.0,
        seed in any::<u64>(),
        keep in 0usize..3,
        target in 0usize..4,
    ) {
        let (site, _) = generate_chaotic(&paper_sites::ohio(), &ChaosConfig::uniform(p, seed));
        let list_htmls = site.list_htmls();
        let kept: Vec<&str> = list_htmls.into_iter().take(keep).collect();
        let details: Vec<&str> = site.pages[0]
            .detail_html
            .iter()
            .map(String::as_str)
            .collect();
        // Err is fine, panicking is not.
        let _ = try_prepare(&SitePages {
            list_pages: kept,
            target,
            detail_pages: details,
        });
    }
}

#[test]
fn every_fault_class_alone_resolves_every_page() {
    // Each fault kind at p=1 over one site: all pages get an outcome.
    use tableseg_sitegen::chaos::FaultKind;
    for kind in FaultKind::ALL {
        let (site, _) = generate_chaotic(&paper_sites::lee(), &ChaosConfig::only(kind, 1.0, 0xBAD));
        let report = drive_site(&site);
        assert_eq!(
            report.pages,
            report.ok + report.degraded + report.failed,
            "{kind:?}"
        );
    }
}

#[test]
fn blanked_site_degrades_not_dies() {
    // The harshest single fault: every page (list + detail) blanked.
    use tableseg_sitegen::chaos::FaultKind;
    let (site, log) = generate_chaotic(
        &paper_sites::butler(),
        &ChaosConfig::only(FaultKind::BlankPage, 1.0, 1),
    );
    assert!(!log.is_empty());
    let report = drive_site(&site);
    assert_eq!(report.pages, site.pages.len());
    assert_eq!(report.ok, 0, "blank pages cannot be clean: {report:?}");
}

#[test]
fn degraded_outcome_is_still_segmentable() {
    // A 404-dropped detail page degrades the page but the observation
    // table still drives both segmenters to an answer.
    use tableseg_sitegen::chaos::FaultKind;
    let (site, _) = generate_chaotic(
        &paper_sites::butler(),
        &ChaosConfig::only(FaultKind::DropDetailPage, 1.0, 2),
    );
    let list_htmls = site.list_htmls();
    let template = SiteTemplate::try_build(&list_htmls).expect("list pages undamaged");
    let details: Vec<&str> = site.pages[0]
        .detail_html
        .iter()
        .map(String::as_str)
        .collect();
    let outcome = prepare_outcome(&template, 0, &details);
    let prepared = outcome.page().expect("processed");
    match outcome {
        PageOutcome::Failed { ref error } => panic!("should not fail: {error}"),
        _ => {
            let seg = CspSegmenter::default().try_segment(&prepared.observations);
            assert!(seg.is_ok(), "{seg:?}");
        }
    }
}
