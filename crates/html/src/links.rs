//! Hyperlink extraction from token streams.
//!
//! The paper's structure assumption is navigational: "Each item or record
//! often has a link to a *detail page*" (Section 1), and the envisioned
//! application "automatically navigates the site" (Section 3). This module
//! recovers the links — target and anchor text — from a tokenized page, so
//! the navigator can follow them.

use crate::lexer::{is_closing, tag_name};
use crate::token::Token;

/// One hyperlink on a page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Link {
    /// The `href` target, with surrounding quotes removed.
    pub href: String,
    /// The visible anchor text (token texts joined with spaces).
    pub text: String,
    /// Byte offset of the opening `<a>` tag in the page source.
    pub offset: usize,
}

/// Extracts the `href` attribute from a normalized `<a ...>` tag.
pub fn href_of(tag: &str) -> Option<String> {
    let lower = tag.to_ascii_lowercase();
    let at = lower.find("href")?;
    let rest = &tag[at + 4..];
    let rest = rest.trim_start();
    let rest = rest.strip_prefix('=')?;
    let rest = rest.trim_start();
    let mut chars = rest.chars();
    let (quote, body) = match chars.next()? {
        q @ ('"' | '\'') => (Some(q), &rest[1..]),
        _ => (None, rest),
    };
    let end = match quote {
        Some(q) => body.find(q)?,
        None => body
            .find(|c: char| c.is_whitespace() || c == '>')
            .unwrap_or(body.len()),
    };
    Some(body[..end].to_owned())
}

/// Extracts all links from a token stream. Anchor text is everything
/// between `<a>` and `</a>` (nested tags skipped); unterminated anchors
/// run to the end of the page.
pub fn extract_links(tokens: &[Token]) -> Vec<Link> {
    let mut out = Vec::new();
    let mut current: Option<(String, usize, Vec<String>)> = None;
    for tok in tokens {
        if tok.is_html() {
            if tag_name(&tok.text) == "a" {
                if is_closing(&tok.text) {
                    if let Some((href, offset, words)) = current.take() {
                        out.push(Link {
                            href,
                            text: words.join(" "),
                            offset,
                        });
                    }
                } else if let Some(href) = href_of(&tok.text) {
                    // A new anchor implicitly closes a dangling one.
                    if let Some((h, o, w)) = current.take() {
                        out.push(Link {
                            href: h,
                            text: w.join(" "),
                            offset: o,
                        });
                    }
                    current = Some((href, tok.offset, Vec::new()));
                }
            }
        } else if let Some((_, _, words)) = current.as_mut() {
            words.push(tok.text.clone());
        }
    }
    if let Some((href, offset, words)) = current {
        out.push(Link {
            href,
            text: words.join(" "),
            offset,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn links(html: &str) -> Vec<Link> {
        extract_links(&tokenize(html))
    }

    #[test]
    fn simple_links() {
        let l = links(r#"<a href="/detail/1">More Info</a> text <a href='/next'>Next</a>"#);
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].href, "/detail/1");
        assert_eq!(l[0].text, "More Info");
        assert_eq!(l[1].href, "/next");
        assert_eq!(l[1].text, "Next");
    }

    #[test]
    fn unquoted_href() {
        let l = links("<a href=/plain>go</a>");
        assert_eq!(l[0].href, "/plain");
    }

    #[test]
    fn nested_markup_in_anchor() {
        let l = links(r#"<a href="/x"><b>Bold</b> words</a>"#);
        assert_eq!(l[0].text, "Bold words");
    }

    #[test]
    fn anchor_without_href_is_ignored() {
        assert!(links("<a name=top>anchor</a>").is_empty());
    }

    #[test]
    fn unterminated_anchor_flushes() {
        let l = links(r#"<a href="/y">dangling"#);
        assert_eq!(l.len(), 1);
        assert_eq!(l[0].text, "dangling");
    }

    #[test]
    fn implicit_close_on_new_anchor() {
        let l = links(r#"<a href="/a">one <a href="/b">two</a>"#);
        assert_eq!(l.len(), 2);
        assert_eq!(l[0].text, "one");
        assert_eq!(l[1].text, "two");
    }

    #[test]
    fn offsets_point_at_tags() {
        let html = r#"xx <a href="/z">z</a>"#;
        let l = links(html);
        assert!(html[l[0].offset..].starts_with("<a"));
    }

    #[test]
    fn href_of_variants() {
        assert_eq!(href_of(r#"<a href="/q">"#).as_deref(), Some("/q"));
        assert_eq!(href_of("<a href='/q'>").as_deref(), Some("/q"));
        assert_eq!(href_of("<a href=/q>").as_deref(), Some("/q"));
        assert_eq!(href_of("<a href = \"/q\">").as_deref(), Some("/q"));
        assert_eq!(href_of("<a class=x>"), None);
    }
}
