//! Token-text interning: the pipeline-wide symbol front end.
//!
//! Every downstream stage — template induction, LCS alignment, extract
//! derivation, separator classification, extract matching, evidence
//! building — compares token *texts*. Comparing interned `u32` symbols
//! instead keeps those inner loops to a single integer compare and lets
//! per-site state (occurrence indexes, separator masks) be keyed by dense
//! symbol ids. Pages are interned **once per site**; strings are
//! materialized again only at report/annotation time.
//!
//! Symbols also carry the token's syntactic [`TypeSet`]: the lexer derives
//! types deterministically from the text (tags are `<...>` and always
//! typed `html`; everything else goes through
//! [`TypeSet::classify_text`]), so two tokens with equal text always have
//! equal types and the set can be stored per symbol.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use crate::token::{Token, TypeSet};

/// A symbol id for an interned token text.
pub type Symbol = u32;

/// A fast non-cryptographic hasher (the FxHash multiply-rotate scheme)
/// for the symbol front end's hot maps: the interner's text table, the
/// per-page occurrence buckets, and needle memo tables. None of those
/// maps is ever iterated, so hash order cannot leak into output; keys are
/// in-process token texts, so DoS-resistant hashing buys nothing here.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastHasher(u64);

impl FastHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FastHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = rest.len() as u64;
            for &b in rest {
                word = (word << 8) | b as u64;
            }
            self.add(word);
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// [`std::collections::HashMap`] with [`FastHasher`].
pub type FastMap<K, V> = HashMap<K, V, BuildHasherDefault<FastHasher>>;

/// The sentinel symbol for a text that is *not* in an interner, produced
/// by the read-only [`Interner::project_tokens`]. Never allocated by
/// [`Interner::intern`], so it compares unequal to every real symbol.
pub const UNKNOWN_SYMBOL: Symbol = Symbol::MAX;

/// Interns token texts to dense `u32` symbols, remembering each symbol's
/// text and syntactic types.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    map: FastMap<String, Symbol>,
    texts: Vec<String>,
    types: Vec<TypeSet>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns one text with its syntactic types, returning its symbol.
    ///
    /// The first interning of a text fixes its types; the lexer's
    /// text-to-types mapping is deterministic, so later internings of the
    /// same text always carry the same set.
    pub fn intern_typed(&mut self, text: &str, types: TypeSet) -> Symbol {
        // Single owned key, allocated only on a miss (the seed version
        // called `to_owned()` twice per new text).
        match self.map.entry(text.to_owned()) {
            Entry::Occupied(e) => *e.get(),
            Entry::Vacant(e) => {
                let sym = Symbol::try_from(self.texts.len()).expect("fewer than 2^32 tokens");
                assert!(sym != UNKNOWN_SYMBOL, "interner full");
                self.texts.push(e.key().clone());
                self.types.push(types);
                e.insert(sym);
                sym
            }
        }
    }

    /// Interns one bare text, classifying its types from the text alone
    /// (tags — texts of the form `<...>` with length > 1 — type as
    /// `html`, everything else via [`TypeSet::classify_text`]).
    pub fn intern(&mut self, text: &str) -> Symbol {
        let types = if text.len() > 1 && text.starts_with('<') {
            TypeSet::html()
        } else {
            TypeSet::classify_text(text)
        };
        self.intern_typed(text, types)
    }

    /// Interns one token, taking the types the lexer assigned.
    pub fn intern_token(&mut self, token: &Token) -> Symbol {
        self.intern_typed(&token.text, token.types)
    }

    /// Interns a whole token stream.
    pub fn intern_tokens(&mut self, tokens: &[Token]) -> Vec<Symbol> {
        tokens.iter().map(|t| self.intern_token(t)).collect()
    }

    /// Looks up a text without interning it.
    pub fn lookup(&self, text: &str) -> Option<Symbol> {
        self.map.get(text).copied()
    }

    /// Maps a token stream through the interner **read-only**: tokens
    /// whose text is not interned become [`UNKNOWN_SYMBOL`].
    ///
    /// This is how detail pages enter the symbol domain: extract needles
    /// always come from already-interned list pages, so a detail token
    /// that misses the interner cannot equal any needle token — one
    /// shared sentinel loses nothing, and the site interner stays
    /// immutable (and freely shared across batch worker threads).
    pub fn project_tokens(&self, tokens: &[Token]) -> Vec<Symbol> {
        tokens
            .iter()
            .map(|t| self.lookup(&t.text).unwrap_or(UNKNOWN_SYMBOL))
            .collect()
    }

    /// Interns a zero-copy scanned stream (see [`crate::scan()`]) without
    /// materializing owned [`Token`]s: each span is resolved against the
    /// page it was scanned from and interned with its lexer-assigned
    /// types. Equivalent to `intern_tokens(&scanned.to_tokens(input))`.
    pub fn intern_scanned(
        &mut self,
        scanned: &crate::scan::ScanTokens,
        input: &str,
    ) -> Vec<Symbol> {
        scanned
            .iter(input)
            .map(|(text, types, _)| self.intern_typed(text, types))
            .collect()
    }

    /// Read-only projection of a zero-copy scanned stream; the span-token
    /// counterpart of [`Interner::project_tokens`].
    pub fn project_scanned(&self, scanned: &crate::scan::ScanTokens, input: &str) -> Vec<Symbol> {
        scanned
            .iter(input)
            .map(|(text, _, _)| self.lookup(text).unwrap_or(UNKNOWN_SYMBOL))
            .collect()
    }

    /// Looks up the text of a symbol.
    pub fn text(&self, sym: Symbol) -> &str {
        &self.texts[sym as usize]
    }

    /// Looks up the syntactic types of a symbol.
    pub fn types(&self, sym: Symbol) -> TypeSet {
        self.types[sym as usize]
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Returns `true` if no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;
    use crate::token::TokenType;

    #[test]
    fn interning_is_stable() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        let a2 = i.intern("foo");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.text(a), "foo");
        assert_eq!(i.text(b), "bar");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn intern_tokens_maps_stream() {
        let toks = tokenize("<td>a</td><td>a</td>");
        let mut i = Interner::new();
        let syms = i.intern_tokens(&toks);
        assert_eq!(syms.len(), 6);
        assert_eq!(syms[0], syms[3], "<td> interned identically");
        assert_eq!(syms[1], syms[4], "'a' interned identically");
    }

    #[test]
    fn symbols_carry_token_types() {
        let toks = tokenize("<td>John 42</td>");
        let mut i = Interner::new();
        let syms = i.intern_tokens(&toks);
        assert!(i.types(syms[0]).contains(TokenType::Html));
        assert!(i.types(syms[1]).contains(TokenType::Capitalized));
        assert!(i.types(syms[2]).contains(TokenType::Numeric));
    }

    #[test]
    fn bare_intern_classifies_like_the_lexer() {
        let mut i = Interner::new();
        for (text, ty) in [
            ("<td>", TokenType::Html),
            ("</table>", TokenType::Html),
            ("<", TokenType::Punctuation),
            ("(", TokenType::Punctuation),
            ("Smith", TokenType::Capitalized),
            ("5555", TokenType::Numeric),
        ] {
            let sym = i.intern(text);
            assert!(i.types(sym).contains(ty), "{text}");
        }
    }

    #[test]
    fn projection_is_read_only() {
        let list = tokenize("<td>John</td>");
        let detail = tokenize("<p>John Doe</p>");
        let mut i = Interner::new();
        let list_syms = i.intern_tokens(&list);
        let before = i.len();
        let detail_syms = i.project_tokens(&detail);
        assert_eq!(i.len(), before, "projection never interns");
        // "John" resolves to its list symbol; unseen texts to the sentinel.
        assert_eq!(detail_syms[1], list_syms[1]);
        assert_eq!(detail_syms[0], UNKNOWN_SYMBOL);
        assert_eq!(detail_syms[2], UNKNOWN_SYMBOL);
        assert_eq!(i.lookup("John"), Some(list_syms[1]));
        assert_eq!(i.lookup("Doe"), None);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
        assert_eq!(i.lookup("x"), None);
    }

    #[test]
    fn fast_hasher_distinguishes_and_repeats() {
        fn h(bytes: &[u8]) -> u64 {
            let mut hasher = FastHasher::default();
            hasher.write(bytes);
            hasher.finish()
        }
        assert_eq!(h(b"John Smith"), h(b"John Smith"));
        assert_ne!(h(b"John Smith"), h(b"John Smit"));
        assert_ne!(h(b"ab"), h(b"ba"));
        assert_ne!(h(b""), h(b"\0"));
        // Length feeds the tail word: a short prefix of zeros differs
        // from fewer zeros.
        assert_ne!(h(&[0, 0]), h(&[0]));
    }
}
