//! A small, forgiving DOM parser.
//!
//! The paper's methods deliberately avoid the DOM ("A naive approach based
//! on using HTML tags will not work", Section 1), but a DOM is still needed
//! as a *substrate* for two things in this reproduction:
//!
//! * the DOM-heuristic baseline (`tableseg-baselines`), which implements the
//!   `<table>`-based record-boundary detection the paper argues against, and
//! * round-trip tests for the site simulator.
//!
//! The parser accepts the token stream from [`crate::lexer`] and builds a
//! tree, handling void elements and recovering from mismatched close tags by
//! popping to the nearest matching open element (or ignoring the close tag).

use crate::lexer::{is_closing, tag_name, tokenize};
use crate::token::Token;

/// A DOM node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// An element with a lowercase tag name, its raw normalized open tag,
    /// and child nodes.
    Element {
        /// Lowercase tag name, e.g. `td`.
        name: String,
        /// The normalized open tag as produced by the lexer, attributes
        /// included, e.g. `<td align=left>`.
        open_tag: String,
        /// Child nodes in document order.
        children: Vec<Node>,
    },
    /// A run of visible text (one lexer text token).
    Text(String),
}

impl Node {
    /// The tag name if this is an element.
    pub fn name(&self) -> Option<&str> {
        match self {
            Node::Element { name, .. } => Some(name),
            Node::Text(_) => None,
        }
    }

    /// Child nodes (empty for text nodes).
    pub fn children(&self) -> &[Node] {
        match self {
            Node::Element { children, .. } => children,
            Node::Text(_) => &[],
        }
    }

    /// Concatenates all descendant text, separating tokens with spaces.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        self.collect_text(&mut out);
        out
    }

    fn collect_text(&self, out: &mut String) {
        match self {
            Node::Text(t) => {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(t);
            }
            Node::Element { children, .. } => {
                for c in children {
                    c.collect_text(out);
                }
            }
        }
    }

    /// Depth-first pre-order iterator over all descendant nodes, including
    /// `self`.
    pub fn descendants(&self) -> Descendants<'_> {
        Descendants { stack: vec![self] }
    }

    /// Finds all descendant elements with the given lowercase tag name.
    pub fn find_all(&self, name: &str) -> Vec<&Node> {
        self.descendants()
            .filter(|n| n.name() == Some(name))
            .collect()
    }

    /// Counts all descendant text tokens.
    pub fn text_token_count(&self) -> usize {
        self.descendants()
            .filter(|n| matches!(n, Node::Text(_)))
            .count()
    }
}

/// Iterator returned by [`Node::descendants`].
pub struct Descendants<'a> {
    stack: Vec<&'a Node>,
}

impl<'a> Iterator for Descendants<'a> {
    type Item = &'a Node;

    fn next(&mut self) -> Option<&'a Node> {
        let node = self.stack.pop()?;
        if let Node::Element { children, .. } = node {
            // Push in reverse so iteration is in document order.
            for c in children.iter().rev() {
                self.stack.push(c);
            }
        }
        Some(node)
    }
}

/// HTML void elements: they never have children or close tags.
const VOID_ELEMENTS: &[&str] = &[
    "area", "base", "br", "col", "embed", "hr", "img", "input", "link", "meta", "param", "source",
    "track", "wbr",
];

/// Returns `true` for HTML void elements (`<br>`, `<img>`, ...).
pub fn is_void(name: &str) -> bool {
    VOID_ELEMENTS.contains(&name)
}

/// Parses a document into a virtual root element named `#root`.
pub fn parse(input: &str) -> Node {
    parse_tokens(&tokenize(input))
}

/// Parses an already-tokenized document.
pub fn parse_tokens(tokens: &[Token]) -> Node {
    let mut stack: Vec<Node> = vec![Node::Element {
        name: "#root".to_owned(),
        open_tag: String::new(),
        children: Vec::new(),
    }];

    for tok in tokens {
        if tok.is_html() {
            let raw = &tok.text;
            let name = tag_name(raw).to_owned();
            if is_closing(raw) {
                close_element(&mut stack, &name);
            } else {
                let self_closing = raw.ends_with("/>") || is_void(&name);
                let node = Node::Element {
                    name: name.clone(),
                    open_tag: raw.clone(),
                    children: Vec::new(),
                };
                if self_closing {
                    append_child(&mut stack, node);
                } else {
                    stack.push(node);
                }
            }
        } else {
            append_child(&mut stack, Node::Text(tok.text.clone()));
        }
    }

    // Implicitly close any elements left open.
    while stack.len() > 1 {
        let node = stack.pop().expect("len > 1");
        append_child(&mut stack, node);
    }
    stack.pop().expect("root")
}

fn append_child(stack: &mut [Node], child: Node) {
    if let Some(Node::Element { children, .. }) = stack.last_mut() {
        children.push(child);
    }
}

fn close_element(stack: &mut Vec<Node>, name: &str) {
    // Find the matching open element (excluding the root).
    let Some(pos) = stack
        .iter()
        .skip(1)
        .rposition(|n| n.name() == Some(name))
        .map(|p| p + 1)
    else {
        // Stray close tag: ignore.
        return;
    };
    // Implicitly close everything opened after it, then close it.
    while stack.len() > pos {
        let node = stack.pop().expect("len > pos >= 1");
        append_child(stack, node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_tree() {
        let root = parse("<table><tr><td>A</td><td>B</td></tr></table>");
        let tables = root.find_all("table");
        assert_eq!(tables.len(), 1);
        let rows = tables[0].find_all("tr");
        assert_eq!(rows.len(), 1);
        let cells = rows[0].find_all("td");
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].text_content(), "A");
        assert_eq!(cells[1].text_content(), "B");
    }

    #[test]
    fn void_elements_have_no_children() {
        let root = parse("a<br>b<img src=x>c");
        // All three text nodes are siblings under the root.
        assert_eq!(root.children().len(), 5);
        assert_eq!(root.text_content(), "a b c");
    }

    #[test]
    fn self_closing_syntax() {
        let root = parse("x<br/>y");
        assert_eq!(root.text_content(), "x y");
        assert_eq!(root.find_all("br").len(), 1);
    }

    #[test]
    fn recovers_from_unclosed_elements() {
        let root = parse("<div><b>bold<i>both</div>after");
        assert_eq!(root.text_content(), "bold both after");
        let divs = root.find_all("div");
        assert_eq!(divs.len(), 1);
        // <b> and <i> were implicitly closed inside the div.
        assert_eq!(divs[0].find_all("b").len(), 1);
    }

    #[test]
    fn stray_close_tags_ignored() {
        let root = parse("a</td>b</table>c");
        assert_eq!(root.text_content(), "a b c");
    }

    #[test]
    fn mismatched_close_pops_to_match() {
        // </tr> closes the still-open <td> implicitly.
        let root = parse("<tr><td>x</tr><tr><td>y</tr>");
        let rows = root.find_all("tr");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].text_content(), "x");
        assert_eq!(rows[1].text_content(), "y");
    }

    #[test]
    fn text_token_count_counts_words() {
        let root = parse("<td>John Smith</td><td>(740) 335-5555</td>");
        // John, Smith, (, 740, ), 335, -, 5555
        assert_eq!(root.text_token_count(), 8);
    }

    #[test]
    fn descendants_in_document_order() {
        let root = parse("<a>1<b>2</b>3</a>");
        let texts: Vec<String> = root
            .descendants()
            .filter_map(|n| match n {
                Node::Text(t) => Some(t.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(texts, ["1", "2", "3"]);
    }

    #[test]
    fn empty_document() {
        let root = parse("");
        assert_eq!(root.children().len(), 0);
        assert_eq!(root.text_content(), "");
    }

    #[test]
    fn nested_tables() {
        let root = parse("<table><tr><td><table><tr><td>inner</td></tr></table></td></tr></table>");
        assert_eq!(root.find_all("table").len(), 2);
    }
}
