//! The streaming zero-copy page scanner — the production front end.
//!
//! [`scan`] produces the exact token stream of [`crate::lexer::tokenize`]
//! (same texts, same [`TypeSet`]s, same byte offsets) without allocating a
//! `String` per token. Tokens are [`SpanToken`]s: small fixed-size records
//! whose text is a byte range into either the page itself (the common
//! case — words, punctuation, already-normalized tags) or a per-page
//! append-only *arena* holding the few texts that cannot be borrowed
//! (entity-decoded words, normalized tags). A typical page borrows well
//! over 95% of its tokens, so scanning a page costs two growable buffers
//! — the token vector and a small arena — instead of one heap string per
//! token.
//!
//! The hot loops are byte-oriented: a 256-entry class table drives bulk
//! runs over words and whitespace, tag ends and comment/script terminators
//! are found with a SWAR `memchr`, and per-`char` decoding only happens on
//! the rare bytes that need it (entities, non-ASCII). The allocating
//! lexer remains in [`crate::lexer`] as the differential oracle; the
//! equivalence is enforced token-for-token by unit tests here and by the
//! `lexer_props` property suite on arbitrary inputs.
//!
//! Lifetimes are explicit rather than borrowed: a [`SpanToken`] stores
//! ranges, not references, so [`ScanTokens`] is `'static`, freely
//! shareable, and the crate keeps its `#![forbid(unsafe_code)]`. Callers
//! re-supply the page text to resolve a span ([`ScanTokens::text`]); the
//! pipeline owns the page for the duration of a site anyway.

use crate::entities::decode_entity;
use crate::lexer::{is_closing, normalize_tag, tag_name};
use crate::token::{Token, TypeSet};

/// Byte classes driving the scanner's dispatch loop.
const CL_PUNCT: u8 = 0;
const CL_WS: u8 = 1;
const CL_WORD: u8 = 2;
const CL_LT: u8 = 3;
const CL_AMP: u8 = 4;
const CL_HI: u8 = 5;

/// The 256-entry byte class table. ASCII whitespace here is exactly the
/// set `char::is_whitespace` accepts below 0x80 (HT, LF, VT, FF, CR,
/// space); word bytes are ASCII alphanumerics; bytes ≥ 0x80 defer to
/// per-`char` decoding.
const CLASS: [u8; 256] = build_class();

const fn build_class() -> [u8; 256] {
    let mut t = [CL_PUNCT; 256];
    let mut b = 0usize;
    while b < 256 {
        let c = b as u8;
        t[b] = if c == b'<' {
            CL_LT
        } else if c == b'&' {
            CL_AMP
        } else if c >= 0x80 {
            CL_HI
        } else if matches!(c, b'\t' | b'\n' | 0x0B | 0x0C | b'\r' | b' ') {
            CL_WS
        } else if c.is_ascii_alphanumeric() {
            CL_WORD
        } else {
            CL_PUNCT
        };
        b += 1;
    }
    t
}

/// SWAR `memchr`: finds the first occurrence of `needle` in `hay`, eight
/// bytes per step, without `unsafe` or an external crate.
#[inline]
pub fn memchr(needle: u8, hay: &[u8]) -> Option<usize> {
    const LO: u64 = 0x0101_0101_0101_0101;
    const HI: u64 = 0x8080_8080_8080_8080;
    let broadcast = needle as u64 * LO;
    let mut chunks = hay.chunks_exact(8);
    let mut base = 0usize;
    for chunk in &mut chunks {
        let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        let x = word ^ broadcast;
        if x.wrapping_sub(LO) & !x & HI != 0 {
            // A zero byte exists in x; locate it within the chunk.
            for (j, &b) in chunk.iter().enumerate() {
                if b == needle {
                    return Some(base + j);
                }
            }
        }
        base += 8;
    }
    let tail = chunks.remainder();
    tail.iter().position(|&b| b == needle).map(|j| base + j)
}

/// Where a token's text lives: borrowed from the page or owned by the
/// scan's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpanKind {
    /// `start..start+len` indexes the scanned page.
    Input,
    /// `start..start+len` indexes [`ScanTokens::arena`].
    Arena,
}

/// One scanned token: a text span, its syntactic types, and its byte
/// offset in the page — 16 bytes, no heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanToken {
    start: u32,
    len: u32,
    /// Byte offset of the token in the scanned page, identical to the
    /// oracle lexer's [`Token::offset`].
    pub offset: u32,
    /// The token's syntactic types, identical to the oracle lexer's.
    pub types: TypeSet,
    kind: SpanKind,
}

impl SpanToken {
    /// Returns `true` if the token's text is borrowed from the page
    /// (the zero-copy case).
    #[inline]
    pub fn is_borrowed(&self) -> bool {
        self.kind == SpanKind::Input
    }
}

/// The scan result: span tokens plus the arena holding the few texts that
/// could not be borrowed from the page.
///
/// Resolving a span needs the page the tokens were scanned from; callers
/// pass the *same* `&str` back to [`ScanTokens::text`] /
/// [`ScanTokens::to_tokens`]. (Ranges were validated against that input
/// during the scan; a different string is caught by a length debug
/// assertion at best and produces garbage text at worst, exactly like
/// indexing with offsets from another page.)
#[derive(Debug, Clone, Default)]
pub struct ScanTokens {
    tokens: Vec<SpanToken>,
    arena: String,
    input_len: usize,
}

impl ScanTokens {
    /// Number of tokens.
    #[inline]
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the page produced no tokens.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The scanned tokens.
    #[inline]
    pub fn tokens(&self) -> &[SpanToken] {
        &self.tokens
    }

    /// Bytes held by the arena (texts that could not be borrowed).
    #[inline]
    pub fn arena_len(&self) -> usize {
        self.arena.len()
    }

    /// Resolves one token's text against the page it was scanned from.
    #[inline]
    pub fn text<'a>(&'a self, input: &'a str, tok: &SpanToken) -> &'a str {
        debug_assert_eq!(
            input.len(),
            self.input_len,
            "resolve against the scanned page"
        );
        let range = tok.start as usize..(tok.start + tok.len) as usize;
        match tok.kind {
            SpanKind::Input => &input[range],
            SpanKind::Arena => &self.arena[range],
        }
    }

    /// Iterates `(text, types, offset)` resolved against the page.
    pub fn iter<'a>(
        &'a self,
        input: &'a str,
    ) -> impl Iterator<Item = (&'a str, TypeSet, usize)> + 'a {
        self.tokens
            .iter()
            .map(move |t| (self.text(input, t), t.types, t.offset as usize))
    }

    /// Materializes the owned [`Token`] stream — byte-identical to what
    /// [`crate::lexer::tokenize`] returns for the same page. Used where
    /// token texts must outlive the page (list pages feeding template
    /// induction) and by the differential tests.
    pub fn to_tokens(&self, input: &str) -> Vec<Token> {
        self.iter(input)
            .map(|(text, types, offset)| Token {
                text: text.to_owned(),
                types,
                offset,
            })
            .collect()
    }
}

/// Scans a page into span tokens. Produces exactly the token stream of
/// [`crate::lexer::tokenize`] — texts, types, offsets — while borrowing
/// nearly every token's text from `input`.
///
/// # Panics
///
/// Panics if `input` is 4 GiB or larger (spans are 32-bit; no real page
/// approaches this).
pub fn scan(input: &str) -> ScanTokens {
    assert!(
        u32::try_from(input.len()).is_ok(),
        "page too large for 32-bit token spans"
    );
    Scanner::new(input).run()
}

/// Word accumulation state: nothing pending, a contiguous borrowed run, or
/// an arena copy (after an entity decode joined the word).
#[derive(Clone, Copy)]
enum Word {
    None,
    /// `start..end` of the page; `end` always equals the scan position.
    Borrowed {
        start: usize,
        end: usize,
    },
    /// Arena bytes `start..arena.len()`; `offset` is the word's position
    /// in the page.
    Arena {
        start: usize,
        offset: usize,
    },
}

struct Scanner<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<SpanToken>,
    arena: String,
    skip_until: Option<&'static [u8]>,
}

impl<'a> Scanner<'a> {
    fn new(input: &'a str) -> Self {
        Scanner {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            // Same density estimate as the oracle lexer.
            out: Vec::with_capacity(input.len() / 6 + 8),
            arena: String::new(),
            skip_until: None,
        }
    }

    fn run(mut self) -> ScanTokens {
        while self.pos < self.bytes.len() {
            if let Some(close) = self.skip_until {
                self.skip_raw_text(close);
                continue;
            }
            if self.bytes[self.pos] == b'<' {
                self.lex_markup();
            } else {
                self.lex_text();
            }
        }
        ScanTokens {
            tokens: self.out,
            arena: self.arena,
            input_len: self.input.len(),
        }
    }

    #[inline]
    fn push_input(&mut self, start: usize, end: usize, types: TypeSet, offset: usize) {
        self.out.push(SpanToken {
            start: start as u32,
            len: (end - start) as u32,
            offset: offset as u32,
            types,
            kind: SpanKind::Input,
        });
    }

    #[inline]
    fn push_arena(&mut self, start: usize, types: TypeSet, offset: usize) {
        self.out.push(SpanToken {
            start: start as u32,
            len: (self.arena.len() - start) as u32,
            offset: offset as u32,
            types,
            kind: SpanKind::Arena,
        });
    }

    /// Skips script/style contents: hop `<` to `<` until one starts the
    /// (case-insensitive) closing tag, which the main loop then lexes.
    fn skip_raw_text(&mut self, close: &'static [u8]) {
        let hay = &self.bytes[self.pos..];
        let mut i = 0usize;
        loop {
            match memchr(b'<', &hay[i..]) {
                Some(j) => {
                    let at = i + j;
                    if hay.len() - at >= close.len()
                        && hay[at..at + close.len()].eq_ignore_ascii_case(close)
                    {
                        self.pos += at;
                        self.skip_until = None;
                        return;
                    }
                    i = at + 1;
                }
                None => {
                    // Unterminated script/style: consume to end of input.
                    self.pos = self.bytes.len();
                    self.skip_until = None;
                    return;
                }
            }
        }
    }

    fn lex_markup(&mut self) {
        let start = self.pos;
        let rest = &self.bytes[start..];
        if rest.starts_with(b"<!--") {
            // Find "-->": hop '-' to '-' with memchr. The oracle searches
            // from the start of the comment, where the earliest possible
            // hit is byte 2 (`<!-->` is a complete comment).
            let mut i = 2usize;
            loop {
                match memchr(b'-', &rest[i..]) {
                    Some(j) if rest[i + j..].starts_with(b"-->") => {
                        self.pos = start + i + j + 3;
                        return;
                    }
                    Some(j) => i += j + 1,
                    None => {
                        self.pos = self.bytes.len();
                        return;
                    }
                }
            }
        }
        // A bare '<' not beginning a tag is literal text. Non-ASCII lead
        // bytes are never `is_ascii_alphabetic`, matching the char test.
        let is_tag_start = rest
            .get(1)
            .is_some_and(|&b| b.is_ascii_alphabetic() || b == b'/' || b == b'!');
        if !is_tag_start {
            self.push_input(start, start + 1, TypeSet::classify_text("<"), start);
            self.pos += 1;
            return;
        }
        match memchr(b'>', rest) {
            Some(end) => {
                let raw_bytes = &rest[..=end];
                self.pos = start + end + 1;
                if tag_is_normalized(raw_bytes) {
                    self.push_input(start, start + end + 1, TypeSet::html(), start);
                    let closing = raw_bytes[1] == b'/';
                    if !closing {
                        // Name bytes are already lowercase here.
                        self.enter_raw_text_if_needed(&raw_bytes[1..]);
                    }
                } else {
                    let raw = &self.input[start..start + end + 1];
                    let normalized = normalize_tag(raw);
                    let closing = is_closing(&normalized);
                    let skip = if closing {
                        None
                    } else {
                        raw_text_close(tag_name(&normalized))
                    };
                    let astart = self.arena.len();
                    self.arena.push_str(&normalized);
                    self.push_arena(astart, TypeSet::html(), start);
                    self.skip_until = skip;
                }
            }
            None => {
                // Unterminated tag: treat the '<' as text and continue.
                self.push_input(start, start + 1, TypeSet::classify_text("<"), start);
                self.pos += 1;
            }
        }
    }

    /// On a clean (already-normalized) non-closing tag, checks whether its
    /// name opens a raw-text element. `inner` starts at the name byte.
    #[inline]
    fn enter_raw_text_if_needed(&mut self, inner: &[u8]) {
        // The name ends at ' ', '/' or '>' — same cut as `tag_name`.
        let name_len = inner
            .iter()
            .position(|&b| b == b' ' || b == b'/' || b == b'>')
            .unwrap_or(inner.len());
        if let Ok(name) = std::str::from_utf8(&inner[..name_len]) {
            self.skip_until = raw_text_close(name);
        }
    }

    fn lex_text(&mut self) {
        let mut word = Word::None;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            match CLASS[b as usize] {
                CL_LT => break,
                CL_WS => {
                    self.flush_word(&mut word);
                    // Bulk-skip the whitespace run.
                    let mut i = self.pos + 1;
                    while i < self.bytes.len() && CLASS[self.bytes[i] as usize] == CL_WS {
                        i += 1;
                    }
                    self.pos = i;
                }
                CL_WORD => {
                    // Bulk-consume the ASCII alphanumeric run.
                    let run_start = self.pos;
                    let mut i = run_start + 1;
                    while i < self.bytes.len() && CLASS[self.bytes[i] as usize] == CL_WORD {
                        i += 1;
                    }
                    match word {
                        Word::None => {
                            word = Word::Borrowed {
                                start: run_start,
                                end: i,
                            }
                        }
                        Word::Borrowed { start, .. } => word = Word::Borrowed { start, end: i },
                        Word::Arena { .. } => self.arena.push_str(&self.input[run_start..i]),
                    }
                    self.pos = i;
                }
                CL_PUNCT => {
                    self.flush_word(&mut word);
                    let p = self.pos;
                    self.push_input(p, p + 1, TypeSet::classify_text(&self.input[p..p + 1]), p);
                    self.pos = p + 1;
                }
                CL_AMP => match decode_entity(self.input, self.pos) {
                    Some((ch, used)) => {
                        if ch.is_whitespace() {
                            self.flush_word(&mut word);
                            self.pos += used;
                        } else if ch.is_alphanumeric() {
                            // The decoded char joins the word, which must
                            // now live in the arena.
                            match word {
                                Word::None => {
                                    word = Word::Arena {
                                        start: self.arena.len(),
                                        offset: self.pos,
                                    };
                                }
                                Word::Borrowed { start, end } => {
                                    let astart = self.arena.len();
                                    self.arena.push_str(&self.input[start..end]);
                                    word = Word::Arena {
                                        start: astart,
                                        offset: start,
                                    };
                                }
                                Word::Arena { .. } => {}
                            }
                            self.arena.push(ch);
                            self.pos += used;
                        } else {
                            self.flush_word(&mut word);
                            let astart = self.arena.len();
                            self.arena.push(ch);
                            let types = TypeSet::classify_text(&self.arena[astart..]);
                            self.push_arena(astart, types, self.pos);
                            self.pos += used;
                        }
                    }
                    None => {
                        // Not an entity: '&' is an ordinary punctuation char.
                        self.flush_word(&mut word);
                        let p = self.pos;
                        self.push_input(p, p + 1, TypeSet::classify_text("&"), p);
                        self.pos = p + 1;
                    }
                },
                _ => {
                    // CL_HI: non-ASCII — decode the char.
                    let Some(ch) = self.input[self.pos..].chars().next() else {
                        // `pos` is always advanced by whole chars, so this
                        // is unreachable — resynchronize if it ever breaks.
                        self.flush_word(&mut word);
                        self.pos += 1;
                        continue;
                    };
                    let used = ch.len_utf8();
                    if ch.is_whitespace() {
                        self.flush_word(&mut word);
                    } else if ch.is_alphanumeric() {
                        match word {
                            Word::None => {
                                word = Word::Borrowed {
                                    start: self.pos,
                                    end: self.pos + used,
                                }
                            }
                            Word::Borrowed { start, end } => {
                                debug_assert_eq!(end, self.pos, "borrowed word is contiguous");
                                word = Word::Borrowed {
                                    start,
                                    end: self.pos + used,
                                };
                            }
                            Word::Arena { .. } => self.arena.push(ch),
                        }
                    } else {
                        self.flush_word(&mut word);
                        let p = self.pos;
                        let types = TypeSet::classify_text(&self.input[p..p + used]);
                        self.push_input(p, p + used, types, p);
                    }
                    self.pos += used;
                }
            }
        }
        self.flush_word(&mut word);
    }

    fn flush_word(&mut self, word: &mut Word) {
        match *word {
            Word::None => {}
            Word::Borrowed { start, end } => {
                let types = TypeSet::classify_text(&self.input[start..end]);
                self.push_input(start, end, types, start);
            }
            Word::Arena { start, offset } => {
                let types = TypeSet::classify_text(&self.arena[start..]);
                self.push_arena(start, types, offset);
            }
        }
        *word = Word::None;
    }
}

/// The closing needle if `name` opens a raw-text element.
#[inline]
fn raw_text_close(name: &str) -> Option<&'static [u8]> {
    match name {
        "script" => Some(b"</script"),
        "style" => Some(b"</style"),
        _ => None,
    }
}

/// Returns `true` if a raw tag (including `<` and `>`) is byte-identical
/// to its [`normalize_tag`] form, so its text can be borrowed from the
/// page. Conservative: any non-ASCII byte takes the slow path (Unicode
/// whitespace would be collapsed by normalization).
fn tag_is_normalized(raw: &[u8]) -> bool {
    let inner = &raw[1..raw.len() - 1];
    if inner.first() == Some(&b' ') {
        return false;
    }
    let mut in_name = true;
    for (j, &b) in inner.iter().enumerate() {
        if b >= 0x80 || matches!(b, b'\t' | b'\n' | 0x0B | 0x0C | b'\r') {
            return false;
        }
        if b == b' ' {
            in_name = false;
            // No runs, no trailing space before '>'.
            if j + 1 == inner.len() || inner[j + 1] == b' ' {
                return false;
            }
        } else if in_name && b.is_ascii_uppercase() {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    /// The workhorse assertion: scan ≡ tokenize, token for token.
    fn assert_equiv(input: &str) {
        let oracle = tokenize(input);
        let scanned = scan(input);
        let got = scanned.to_tokens(input);
        assert_eq!(got, oracle, "scan ≢ tokenize on {input:?}");
    }

    #[test]
    fn matches_oracle_on_lexer_test_corpus() {
        for input in [
            "",
            "  \n\t ",
            "<tr><td>John Smith</td></tr>",
            "(740) 335-5555",
            "AT&amp;T",
            "&#66;ob",
            "a&nbsp;b",
            "a<!-- hidden <b> -->c",
            "a<!-- unterminated",
            "a<!-- tricky -- ->x--->b",
            "<script>var x = '<td>data</td>';</script>after",
            "<style>td { color: red }</style>x",
            "<SCRIPT>boom</SCRIPT>y",
            "<script>never closed",
            "<script src=x>var a;</script>done",
            "<script/>not skipped?",
            "<TD ALIGN=left>",
            "<td\n  align = 'x'>",
            "<BR/>",
            "3 < 4",
            "<td never closes",
            "<td>Hi, Bob</td>",
            "Montréal, QC",
            "naïve café — über",
            "<p>price: $4.99 &lt; $10</p>",
            "<!DOCTYPE html><html a=1></html>",
            "x<y>z",
            "< td>",
            "<>",
            "<\u{00e9}>",
            "&bogus; &#xZZ; &",
            "A&#768;B",
            "<td >one</td\t>",
            "word&#65;more",
            "tail&#32;space",
            "&amp;&amp;",
            "ไทย ภาษา",
            "１２３ fullwidth",
        ] {
            assert_equiv(input);
        }
    }

    #[test]
    fn common_tokens_are_borrowed() {
        let page = "<tr><td align=x>John Smith</td><td>(555) 100-0001</td></tr>";
        let scanned = scan(page);
        assert!(scanned.tokens().iter().all(SpanToken::is_borrowed));
        assert_eq!(scanned.arena_len(), 0);
    }

    #[test]
    fn arena_holds_only_decoded_and_normalized_texts() {
        let page = "<TD>AT&amp;T &#66;ob</TD>";
        let scanned = scan(page);
        let texts: Vec<&str> = scanned
            .tokens()
            .iter()
            .filter(|t| !t.is_borrowed())
            .map(|t| scanned.text(page, t))
            .collect();
        assert_eq!(texts, ["<td>", "&", "Bob", "</td>"]);
        assert_equiv(page);
    }

    #[test]
    fn word_spanning_entity_then_run_stays_joined() {
        // Entity first, ASCII run after: the arena word keeps growing.
        assert_equiv("&#66;obby");
        // Borrowed run, entity, another run: converts mid-word.
        assert_equiv("Bo&#98;by");
        let scanned = scan("Bo&#98;by");
        let toks = scanned.to_tokens("Bo&#98;by");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].text, "Bobby");
        assert_eq!(toks[0].offset, 0);
    }

    #[test]
    fn memchr_agrees_with_position() {
        let hay = b"abcdefghijklmnop<qrstuvwx>yz&";
        for needle in [b'<', b'>', b'&', b'a', b'z', b'Q', 0u8, 0xFFu8] {
            assert_eq!(
                memchr(needle, hay),
                hay.iter().position(|&b| b == needle),
                "needle {needle:#x}"
            );
        }
        assert_eq!(memchr(b'x', b""), None);
        for n in 0..24 {
            let hay = vec![b'a'; n];
            assert_eq!(memchr(b'a', &hay), if n == 0 { None } else { Some(0) });
            assert_eq!(memchr(b'b', &hay), None);
        }
    }

    #[test]
    fn tag_cleanliness_matches_normalize() {
        for raw in [
            "<td>",
            "<td align=left>",
            "<br/>",
            "</table>",
            "<td  double>",
            "<td trailing >",
            "< leading>",
            "<TD>",
            "<td ALIGN=Left>",
            "<td\talign=x>",
            "<a href='x y'>",
            "<!doctype html>",
        ] {
            let clean = tag_is_normalized(raw.as_bytes());
            let expect = normalize_tag(raw) == raw;
            assert_eq!(clean, expect, "{raw:?}");
        }
    }

    #[test]
    fn offsets_are_page_byte_offsets() {
        let page = "<td>Hi, Bob &amp; Ann</td>";
        let scanned = scan(page);
        for (text, _types, offset) in scanned.iter(page) {
            if !text.starts_with('<') {
                let first = text.chars().next().expect("non-empty token");
                // Entity-decoded texts start at the '&' of the entity.
                if page[offset..].starts_with(first) {
                    continue;
                }
                assert!(page[offset..].starts_with('&'), "{text:?} at {offset}");
            }
        }
    }

    #[test]
    fn comment_terminator_edge_cases() {
        for input in ["<!-->after", "<!--->after", "<!---->after", "<!-- -- -->x"] {
            assert_equiv(input);
        }
    }
}
