//! The pipeline-wide error taxonomy.
//!
//! Real hidden-web input is messy — truncated pages, dead detail links,
//! encoding damage — and the paper's own failure analysis (Section 6.3)
//! is a catalogue of inputs that break naive assumptions. Instead of
//! panicking, every stage of the pipeline reports a [`SegError`]; the
//! batch layer turns them into per-page outcomes so one poisoned page
//! cannot abort a site or a run.
//!
//! The taxonomy lives in this crate because `tableseg-html` is the root
//! of the workspace dependency graph: template induction, extraction,
//! both solvers and the core pipeline all see it without a new crate.
//!
//! Every variant knows which pipeline stage it is attributed to
//! ([`SegError::stage`]); the labels match the timing registry's stage
//! labels, so run-level reports can pivot failures by stage.

use std::fmt;

/// Why a page (or site) could not be processed.
///
/// A `thiserror`-style enum, hand-rolled because the workspace builds
/// offline: each variant carries enough context to diagnose the failure
/// without a debugger, and [`SegError::stage`] attributes it to one of
/// the pipeline stages.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SegError {
    /// An input that must be non-empty was empty (no list pages, an empty
    /// token stream where content was required, ...).
    EmptyInput {
        /// What was empty.
        what: &'static str,
    },
    /// The requested target page index does not exist.
    TargetOutOfBounds {
        /// The requested page index.
        target: usize,
        /// How many pages exist.
        pages: usize,
    },
    /// Two streams that must align token-for-token do not.
    StreamMisaligned {
        /// What was misaligned.
        what: &'static str,
        /// Expected length.
        expected: usize,
        /// Actual length.
        got: usize,
    },
    /// The table slot produced no extracts at all (blank or fully
    /// separator page).
    NoExtracts,
    /// Every extract was filtered out of the observation table, so there
    /// is nothing to segment.
    NoObservations {
        /// How many extracts were derived (and skipped).
        skipped: usize,
    },
    /// A solver could not produce a usable assignment.
    SolverFailed {
        /// Which solver ("CSP", "probabilistic", ...).
        solver: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// A stage panicked; the panic was caught and converted. This is the
    /// last-resort backstop — any `Internal` error in a run is a bug, but
    /// it is a *reported* bug instead of an aborted batch.
    Internal {
        /// Stage label the panic was caught in.
        stage: &'static str,
        /// The panic payload, if it was a string.
        detail: String,
    },
}

impl SegError {
    /// The pipeline stage this error is attributed to. Labels match
    /// `tableseg::timing::Stage::label()` so failure counts can share the
    /// timing registry's stage axis.
    pub fn stage(&self) -> &'static str {
        match self {
            SegError::EmptyInput { .. } => "tokenize",
            SegError::TargetOutOfBounds { .. } | SegError::StreamMisaligned { .. } => "template",
            SegError::NoExtracts => "extract",
            SegError::NoObservations { .. } => "match",
            SegError::SolverFailed { .. } => "solve",
            SegError::Internal { stage, .. } => stage,
        }
    }
}

impl fmt::Display for SegError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegError::EmptyInput { what } => write!(f, "empty input: {what}"),
            SegError::TargetOutOfBounds { target, pages } => {
                write!(f, "target page {target} out of bounds ({pages} pages)")
            }
            SegError::StreamMisaligned {
                what,
                expected,
                got,
            } => write!(f, "misaligned {what}: expected {expected}, got {got}"),
            SegError::NoExtracts => write!(f, "table slot yielded no extracts"),
            SegError::NoObservations { skipped } => {
                write!(f, "no observations: all {skipped} extracts filtered out")
            }
            SegError::SolverFailed { solver, detail } => {
                write!(f, "{solver} solver failed: {detail}")
            }
            SegError::Internal { stage, detail } => {
                write!(f, "internal error in {stage} stage: {detail}")
            }
        }
    }
}

impl std::error::Error for SegError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_context() {
        let e = SegError::TargetOutOfBounds {
            target: 3,
            pages: 2,
        };
        assert_eq!(e.to_string(), "target page 3 out of bounds (2 pages)");
        let e = SegError::SolverFailed {
            solver: "CSP",
            detail: "no assignment".into(),
        };
        assert!(e.to_string().contains("CSP"));
    }

    #[test]
    fn stages_cover_the_pipeline() {
        assert_eq!(SegError::EmptyInput { what: "x" }.stage(), "tokenize");
        assert_eq!(
            SegError::TargetOutOfBounds {
                target: 0,
                pages: 0
            }
            .stage(),
            "template"
        );
        assert_eq!(SegError::NoExtracts.stage(), "extract");
        assert_eq!(SegError::NoObservations { skipped: 4 }.stage(), "match");
        assert_eq!(
            SegError::SolverFailed {
                solver: "CSP",
                detail: String::new()
            }
            .stage(),
            "solve"
        );
        assert_eq!(
            SegError::Internal {
                stage: "decode",
                detail: String::new()
            }
            .stage(),
            "decode"
        );
    }

    #[test]
    fn is_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(SegError::NoExtracts);
        assert!(e.to_string().contains("no extracts"));
    }
}
