//! Tokens and the eight syntactic token types of the paper (Section 3.1).

use std::fmt;

use serde::{Deserialize, Serialize};

/// One of the eight syntactic token types.
///
/// The paper assigns each token "one or more syntactic types ... based on the
/// characters appearing in it. The three basic syntactic types we consider
/// are: HTML, punctuation, and alphanumeric. In addition, the alphanumeric
/// type can be either numeric or alphabetic, and the alphabetic can be
/// capitalized, lowercased or allcaps. This gives us a total of eight
/// (non-mutually exclusive) possible token types."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum TokenType {
    /// An HTML tag, e.g. `<td>` or `</table>`.
    Html = 0,
    /// A punctuation character, e.g. `(` or `-`.
    Punctuation = 1,
    /// A run of letters and/or digits.
    Alphanumeric = 2,
    /// An alphanumeric token consisting only of digits.
    Numeric = 3,
    /// An alphanumeric token consisting only of letters.
    Alphabetic = 4,
    /// An alphabetic token whose first letter is uppercase and whose
    /// remaining letters (if any) are lowercase, e.g. `Smith`.
    Capitalized = 5,
    /// An alphabetic token consisting only of lowercase letters.
    Lowercase = 6,
    /// An alphabetic token consisting only of uppercase letters, e.g. `OH`.
    Allcaps = 7,
}

impl TokenType {
    /// All eight types in index order. The index of a type in this slice is
    /// its bit position inside a [`TypeSet`] and its feature index in the
    /// probabilistic model's emission vector.
    pub const ALL: [TokenType; 8] = [
        TokenType::Html,
        TokenType::Punctuation,
        TokenType::Alphanumeric,
        TokenType::Numeric,
        TokenType::Alphabetic,
        TokenType::Capitalized,
        TokenType::Lowercase,
        TokenType::Allcaps,
    ];

    /// Number of distinct token types.
    pub const COUNT: usize = 8;

    /// The bit position of this type inside a [`TypeSet`].
    #[inline]
    pub const fn bit(self) -> u8 {
        self as u8
    }

    /// A short lowercase name, matching the paper's vocabulary.
    pub const fn name(self) -> &'static str {
        match self {
            TokenType::Html => "html",
            TokenType::Punctuation => "punctuation",
            TokenType::Alphanumeric => "alphanumeric",
            TokenType::Numeric => "numeric",
            TokenType::Alphabetic => "alphabetic",
            TokenType::Capitalized => "capitalized",
            TokenType::Lowercase => "lowercase",
            TokenType::Allcaps => "allcaps",
        }
    }
}

impl fmt::Display for TokenType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A set of [`TokenType`]s, stored as one bit per type.
///
/// The paper's types are non-mutually exclusive (`Smith` is alphanumeric,
/// alphabetic *and* capitalized), so a token carries a set rather than a
/// single label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct TypeSet(u8);

impl TypeSet {
    /// The empty set.
    pub const EMPTY: TypeSet = TypeSet(0);

    /// Creates a set from a raw bit pattern. Bit `i` corresponds to
    /// `TokenType::ALL[i]`.
    #[inline]
    pub const fn from_bits(bits: u8) -> TypeSet {
        TypeSet(bits)
    }

    /// The raw bit pattern.
    #[inline]
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// A set containing exactly one type.
    #[inline]
    pub const fn single(ty: TokenType) -> TypeSet {
        TypeSet(1 << ty.bit())
    }

    /// Returns `true` if `ty` is in the set.
    #[inline]
    pub const fn contains(self, ty: TokenType) -> bool {
        self.0 & (1 << ty.bit()) != 0
    }

    /// Inserts `ty` into the set.
    #[inline]
    pub fn insert(&mut self, ty: TokenType) {
        self.0 |= 1 << ty.bit();
    }

    /// Returns the union of two sets.
    #[inline]
    pub const fn union(self, other: TypeSet) -> TypeSet {
        TypeSet(self.0 | other.0)
    }

    /// Returns the intersection of two sets.
    #[inline]
    pub const fn intersection(self, other: TypeSet) -> TypeSet {
        TypeSet(self.0 & other.0)
    }

    /// Returns `true` if the set is empty.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of types in the set.
    #[inline]
    pub const fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates over the types in the set, in `TokenType::ALL` order.
    pub fn iter(self) -> impl Iterator<Item = TokenType> {
        TokenType::ALL
            .into_iter()
            .filter(move |ty| self.contains(*ty))
    }

    /// Classifies a text fragment (a word or punctuation character produced
    /// by the lexer — *not* an HTML tag) into its set of types.
    ///
    /// * a single punctuation / symbol character → `punctuation`;
    /// * letters and/or digits → `alphanumeric`, refined into
    ///   `numeric` / `alphabetic` / `capitalized` / `lowercase` / `allcaps`.
    ///
    /// Tokens mixing letters and digits (e.g. `221R`) are `alphanumeric`
    /// only, matching the paper's three basic types.
    pub fn classify_text(text: &str) -> TypeSet {
        let mut set = TypeSet::EMPTY;
        if text.is_empty() {
            return set;
        }
        let mut all_digit = true;
        let mut all_alpha = true;
        let mut any_alnum = false;
        for ch in text.chars() {
            if ch.is_ascii_digit() {
                all_alpha = false;
                any_alnum = true;
            } else if ch.is_alphabetic() {
                all_digit = false;
                any_alnum = true;
            } else {
                all_digit = false;
                all_alpha = false;
            }
        }
        if !any_alnum {
            // Pure punctuation / symbols.
            set.insert(TokenType::Punctuation);
            return set;
        }
        set.insert(TokenType::Alphanumeric);
        if all_digit {
            set.insert(TokenType::Numeric);
        } else if all_alpha {
            set.insert(TokenType::Alphabetic);
            let mut chars = text.chars();
            let first = chars.next().expect("non-empty");
            let rest_lower = chars.clone().all(|c| c.is_lowercase());
            let all_upper = text.chars().all(|c| c.is_uppercase());
            let all_lower = text.chars().all(|c| c.is_lowercase());
            if first.is_uppercase() && rest_lower {
                set.insert(TokenType::Capitalized);
            }
            if all_upper {
                set.insert(TokenType::Allcaps);
            }
            if all_lower {
                set.insert(TokenType::Lowercase);
            }
        }
        set
    }

    /// The set for an HTML tag token.
    #[inline]
    pub const fn html() -> TypeSet {
        TypeSet::single(TokenType::Html)
    }
}

impl fmt::Debug for TypeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TypeSet{{")?;
        let mut first = true;
        for ty in self.iter() {
            if !first {
                write!(f, "|")?;
            }
            write!(f, "{ty}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

impl FromIterator<TokenType> for TypeSet {
    fn from_iter<I: IntoIterator<Item = TokenType>>(iter: I) -> Self {
        let mut set = TypeSet::EMPTY;
        for ty in iter {
            set.insert(ty);
        }
        set
    }
}

/// A lexical token: a slice of page text plus its syntactic types and its
/// byte offset in the source document.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Token {
    /// The token text. For HTML tokens this is the normalized tag (see
    /// [`crate::lexer`]); for text tokens it is the entity-decoded word or
    /// punctuation character.
    pub text: String,
    /// The syntactic types of the token.
    pub types: TypeSet,
    /// Byte offset of the start of the token in the source document.
    pub offset: usize,
}

impl Token {
    /// Builds a text token, classifying its types.
    pub fn text(text: impl Into<String>, offset: usize) -> Token {
        let text = text.into();
        let types = TypeSet::classify_text(&text);
        Token {
            text,
            types,
            offset,
        }
    }

    /// Builds an HTML tag token.
    pub fn tag(text: impl Into<String>, offset: usize) -> Token {
        Token {
            text: text.into(),
            types: TypeSet::html(),
            offset,
        }
    }

    /// Returns `true` if the token is an HTML tag.
    #[inline]
    pub fn is_html(&self) -> bool {
        self.types.contains(TokenType::Html)
    }

    /// Returns `true` if the token is a punctuation character.
    #[inline]
    pub fn is_punctuation(&self) -> bool {
        self.types.contains(TokenType::Punctuation)
    }

    /// Returns `true` if the token is visible text (not an HTML tag).
    #[inline]
    pub fn is_text(&self) -> bool {
        !self.is_html()
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_capitalized() {
        let set = TypeSet::classify_text("Smith");
        assert!(set.contains(TokenType::Alphanumeric));
        assert!(set.contains(TokenType::Alphabetic));
        assert!(set.contains(TokenType::Capitalized));
        assert!(!set.contains(TokenType::Lowercase));
        assert!(!set.contains(TokenType::Allcaps));
        assert!(!set.contains(TokenType::Numeric));
        assert!(!set.contains(TokenType::Html));
    }

    #[test]
    fn classify_allcaps() {
        let set = TypeSet::classify_text("OH");
        assert!(set.contains(TokenType::Allcaps));
        assert!(set.contains(TokenType::Alphabetic));
        assert!(!set.contains(TokenType::Capitalized));
        assert!(!set.contains(TokenType::Lowercase));
    }

    #[test]
    fn classify_single_uppercase_letter_is_both_capitalized_and_allcaps() {
        // Non-mutually exclusive types: "W" is capitalized and allcaps.
        let set = TypeSet::classify_text("W");
        assert!(set.contains(TokenType::Capitalized));
        assert!(set.contains(TokenType::Allcaps));
    }

    #[test]
    fn classify_lowercase() {
        let set = TypeSet::classify_text("street");
        assert!(set.contains(TokenType::Lowercase));
        assert!(set.contains(TokenType::Alphabetic));
        assert!(!set.contains(TokenType::Capitalized));
    }

    #[test]
    fn classify_numeric() {
        let set = TypeSet::classify_text("5555");
        assert!(set.contains(TokenType::Numeric));
        assert!(set.contains(TokenType::Alphanumeric));
        assert!(!set.contains(TokenType::Alphabetic));
    }

    #[test]
    fn classify_mixed_alnum_is_only_alphanumeric() {
        let set = TypeSet::classify_text("221R");
        assert!(set.contains(TokenType::Alphanumeric));
        assert!(!set.contains(TokenType::Numeric));
        assert!(!set.contains(TokenType::Alphabetic));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn classify_punctuation() {
        for p in ["(", ")", "-", ",", ".", "~", "$", "&"] {
            let set = TypeSet::classify_text(p);
            assert!(set.contains(TokenType::Punctuation), "{p}");
            assert_eq!(set.len(), 1, "{p}");
        }
    }

    #[test]
    fn classify_empty_is_empty_set() {
        assert!(TypeSet::classify_text("").is_empty());
    }

    #[test]
    fn typeset_set_operations() {
        let a: TypeSet = [TokenType::Alphanumeric, TokenType::Numeric]
            .into_iter()
            .collect();
        let b: TypeSet = [TokenType::Alphanumeric, TokenType::Alphabetic]
            .into_iter()
            .collect();
        assert_eq!(
            a.union(b).iter().count(),
            3,
            "union has alnum, numeric, alphabetic"
        );
        assert_eq!(a.intersection(b), TypeSet::single(TokenType::Alphanumeric));
        assert_eq!(a.len(), 2);
        assert!(!a.is_empty());
        assert!(TypeSet::EMPTY.is_empty());
    }

    #[test]
    fn typeset_bit_roundtrip() {
        for ty in TokenType::ALL {
            let set = TypeSet::single(ty);
            assert!(set.contains(ty));
            assert_eq!(set.len(), 1);
            assert_eq!(set.iter().next(), Some(ty));
            assert_eq!(TypeSet::from_bits(set.bits()), set);
        }
    }

    #[test]
    fn token_constructors() {
        let t = Token::text("Smith", 10);
        assert!(t.is_text());
        assert!(!t.is_html());
        assert_eq!(t.offset, 10);

        let t = Token::tag("<td>", 0);
        assert!(t.is_html());
        assert!(!t.is_text());
        assert!(!t.is_punctuation());
    }

    #[test]
    fn display_forms() {
        assert_eq!(TokenType::Allcaps.to_string(), "allcaps");
        assert_eq!(Token::text("hi", 0).to_string(), "hi");
        let set = TypeSet::single(TokenType::Html);
        assert_eq!(format!("{set:?}"), "TypeSet{html}");
    }
}
