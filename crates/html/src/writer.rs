//! Helpers for *generating* HTML (used by the site simulator).
//!
//! The generator builds pages by appending tags and escaped text to a
//! buffer; [`HtmlWriter`] keeps that readable and guarantees the output is
//! well-formed enough for the lexer to round-trip.

use crate::entities::encode_text;
use crate::Token;

/// Renders a token stream back to HTML that re-tokenizes to an identical
/// stream (same texts, same [`TypeSet`](crate::TypeSet)s).
///
/// Tags are emitted verbatim; text and punctuation tokens are
/// entity-escaped and followed by a space so adjacent words do not merge.
/// Source offsets are not preserved — the original inter-token whitespace
/// is gone — which is exactly why the pipeline compares token *streams*,
/// never raw bytes.
pub fn render_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        if t.is_html() {
            out.push_str(&t.text);
        } else {
            out.push_str(&encode_text(&t.text));
            out.push(' ');
        }
    }
    out
}

/// An append-only HTML builder.
#[derive(Debug, Default, Clone)]
pub struct HtmlWriter {
    buf: String,
    open: Vec<String>,
}

impl HtmlWriter {
    /// Creates an empty writer.
    pub fn new() -> HtmlWriter {
        HtmlWriter::default()
    }

    /// Appends an open tag (no attributes) and pushes it on the open stack.
    pub fn open(&mut self, name: &str) -> &mut Self {
        self.buf.push('<');
        self.buf.push_str(name);
        self.buf.push('>');
        self.open.push(name.to_owned());
        self
    }

    /// Appends an open tag with a raw attribute string.
    pub fn open_attrs(&mut self, name: &str, attrs: &str) -> &mut Self {
        self.buf.push('<');
        self.buf.push_str(name);
        if !attrs.is_empty() {
            self.buf.push(' ');
            self.buf.push_str(attrs);
        }
        self.buf.push('>');
        self.open.push(name.to_owned());
        self
    }

    /// Closes the most recently opened tag.
    ///
    /// # Panics
    ///
    /// Panics if there is no open tag — that is a bug in the generator.
    pub fn close(&mut self) -> &mut Self {
        let name = self.open.pop().expect("close() with no open tag");
        self.buf.push_str("</");
        self.buf.push_str(&name);
        self.buf.push('>');
        self
    }

    /// Appends a void tag such as `<br>` or `<hr>`.
    pub fn void(&mut self, name: &str) -> &mut Self {
        self.buf.push('<');
        self.buf.push_str(name);
        self.buf.push('>');
        self
    }

    /// Appends escaped text.
    pub fn text(&mut self, text: &str) -> &mut Self {
        self.buf.push_str(&encode_text(text));
        self
    }

    /// Appends raw, pre-escaped markup.
    pub fn raw(&mut self, raw: &str) -> &mut Self {
        self.buf.push_str(raw);
        self
    }

    /// Appends a newline (cosmetic only; the lexer ignores whitespace).
    pub fn newline(&mut self) -> &mut Self {
        self.buf.push('\n');
        self
    }

    /// Convenience: `open(name)`, `text(text)`, `close()`.
    pub fn element(&mut self, name: &str, text: &str) -> &mut Self {
        self.open(name).text(text).close()
    }

    /// Number of currently open tags.
    pub fn depth(&self) -> usize {
        self.open.len()
    }

    /// Current length of the output buffer in bytes. Callers use this to
    /// record the byte spans of page regions (e.g. record rows) as they are
    /// written.
    pub fn snapshot_len(&self) -> usize {
        self.buf.len()
    }

    /// Finishes the document, closing any still-open tags.
    pub fn finish(mut self) -> String {
        while !self.open.is_empty() {
            self.close();
        }
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::parse;

    #[test]
    fn builds_balanced_markup() {
        let mut w = HtmlWriter::new();
        w.open("table");
        w.open("tr");
        w.element("td", "A & B");
        w.close();
        w.close();
        let html = w.finish();
        assert_eq!(html, "<table><tr><td>A &amp; B</td></tr></table>");
    }

    #[test]
    fn finish_closes_open_tags() {
        let mut w = HtmlWriter::new();
        w.open("div").open("p").text("x");
        assert_eq!(w.depth(), 2);
        assert_eq!(w.finish(), "<div><p>x</p></div>");
    }

    #[test]
    fn round_trips_through_dom() {
        let mut w = HtmlWriter::new();
        w.open("html").open("body");
        w.element("h1", "Results");
        w.open_attrs("table", "border=1");
        for row in ["John Smith", "Jane Doe"] {
            w.open("tr").element("td", row).close();
        }
        w.void("hr");
        let html = w.finish();
        let dom = parse(&html);
        assert_eq!(dom.find_all("tr").len(), 2);
        assert_eq!(dom.find_all("hr").len(), 1);
        assert!(dom.text_content().contains("Jane Doe"));
    }

    #[test]
    #[should_panic(expected = "close() with no open tag")]
    fn close_without_open_panics() {
        HtmlWriter::new().close();
    }

    #[test]
    fn escapes_text() {
        let mut w = HtmlWriter::new();
        w.text("3 < 4 > 2 & so on");
        assert_eq!(w.finish(), "3 &lt; 4 &gt; 2 &amp; so on");
    }

    #[test]
    fn render_tokens_round_trips_entities() {
        let html = "<td>Smith &amp; Sons</td><p>3 &lt; 4</p>";
        let tokens = crate::lexer::tokenize(html);
        let rendered = render_tokens(&tokens);
        let again = crate::lexer::tokenize(&rendered);
        assert_eq!(tokens.len(), again.len(), "{rendered}");
        for (a, b) in tokens.iter().zip(&again) {
            assert_eq!(a.text, b.text);
            assert_eq!(a.types, b.types);
        }
        // The decoded ampersand must have been re-escaped, not left bare.
        assert!(rendered.contains("&amp;"), "{rendered}");
    }
}
