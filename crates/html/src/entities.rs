//! HTML entity ("escape sequence") decoding.
//!
//! The paper's preprocessing step converts HTML escape sequences to ASCII
//! text before tokens are typed (Section 3.1). This module implements the
//! named entities that occur in practice on the kinds of pages the paper
//! targets, plus numeric character references.

/// Decodes the entity following a `&` at `input[start..]` (with `start`
/// pointing *at* the `&`). Returns `(decoded, bytes_consumed)` on success.
///
/// Unknown or malformed entities are not decoded; the caller should treat
/// the `&` as a literal character.
pub fn decode_entity(input: &str, start: usize) -> Option<(char, usize)> {
    let rest = &input[start..];
    debug_assert!(rest.starts_with('&'));
    // Byte-level search: a `[..12]` string slice could split a multi-byte
    // character and panic; `;` is ASCII so byte search is exact.
    let window = &rest.as_bytes()[..rest.len().min(12)];
    let semi = window.iter().position(|&b| b == b';')?;
    let body = &rest[1..semi];
    let consumed = semi + 1;
    if let Some(num) = body.strip_prefix('#') {
        let code = if let Some(hex) = num.strip_prefix('x').or_else(|| num.strip_prefix('X')) {
            u32::from_str_radix(hex, 16).ok()?
        } else {
            num.parse::<u32>().ok()?
        };
        let ch = char::from_u32(code)?;
        return Some((ch, consumed));
    }
    let ch = match body {
        "amp" => '&',
        "lt" => '<',
        "gt" => '>',
        "quot" => '"',
        "apos" => '\'',
        // Non-breaking space renders as a space; the paper's tokenizer only
        // needs it to separate words.
        "nbsp" => ' ',
        "copy" => '\u{a9}',
        "reg" => '\u{ae}',
        "trade" => '\u{2122}',
        "mdash" => '\u{2014}',
        "ndash" => '\u{2013}',
        "hellip" => '\u{2026}',
        "middot" => '\u{b7}',
        "bull" => '\u{2022}',
        "laquo" => '\u{ab}',
        "raquo" => '\u{bb}',
        "deg" => '\u{b0}',
        "cent" => '\u{a2}',
        "pound" => '\u{a3}',
        "frac12" => '\u{bd}',
        "frac14" => '\u{bc}',
        _ => return None,
    };
    Some((ch, consumed))
}

/// Decodes all entities in `input`, leaving malformed sequences untouched.
pub fn decode_all(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    let mut i = 0;
    let bytes = input.as_bytes();
    while i < bytes.len() {
        if bytes[i] == b'&' {
            if let Some((ch, used)) = decode_entity(input, i) {
                out.push(ch);
                i += used;
                continue;
            }
        }
        // Advance over one whole UTF-8 character.
        let ch_len = utf8_len(bytes[i]);
        out.push_str(&input[i..i + ch_len]);
        i += ch_len;
    }
    out
}

/// Encodes the characters that must be escaped in HTML text content.
pub fn encode_text(input: &str) -> String {
    let mut out = String::with_capacity(input.len());
    for ch in input.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(ch),
        }
    }
    out
}

/// Length in bytes of the UTF-8 character starting with `first_byte`.
#[inline]
fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_entities() {
        assert_eq!(decode_all("a &amp; b"), "a & b");
        assert_eq!(decode_all("&lt;b&gt;"), "<b>");
        assert_eq!(decode_all("&quot;hi&quot;"), "\"hi\"");
        assert_eq!(decode_all("x&nbsp;y"), "x y");
    }

    #[test]
    fn numeric_entities() {
        assert_eq!(decode_all("&#65;"), "A");
        assert_eq!(decode_all("&#x41;"), "A");
        assert_eq!(decode_all("&#X41;"), "A");
        assert_eq!(decode_all("&#8212;"), "\u{2014}");
    }

    #[test]
    fn malformed_entities_pass_through() {
        assert_eq!(decode_all("AT&T"), "AT&T");
        assert_eq!(decode_all("&unknown;"), "&unknown;");
        assert_eq!(decode_all("&"), "&");
        assert_eq!(decode_all("&;"), "&;");
        assert_eq!(decode_all("&#;"), "&#;");
        assert_eq!(decode_all("&#xZZ;"), "&#xZZ;");
        // No semicolon within the lookahead window.
        assert_eq!(decode_all("&amp this"), "&amp this");
    }

    #[test]
    fn invalid_codepoint_passes_through() {
        assert_eq!(decode_all("&#x110000;"), "&#x110000;");
        assert_eq!(decode_all("&#xD800;"), "&#xD800;");
    }

    #[test]
    fn multibyte_input_survives() {
        assert_eq!(decode_all("café &amp; bar"), "café & bar");
        assert_eq!(decode_all("日本語"), "日本語");
    }

    #[test]
    fn encode_text_escapes() {
        assert_eq!(encode_text("a < b & c > d"), "a &lt; b &amp; c &gt; d");
        assert_eq!(encode_text("plain"), "plain");
    }

    #[test]
    fn encode_decode_roundtrip() {
        for s in ["a & b", "<tag>", "no specials", "&&&&"] {
            assert_eq!(decode_all(&encode_text(s)), s);
        }
    }
}
