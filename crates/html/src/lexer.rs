//! The page tokenizer (Section 3.1 of the paper).
//!
//! "The pages are tokenized — the text is split into individual words, or
//! more accurately tokens, and HTML escape sequences are converted to ASCII
//! text."
//!
//! Rules:
//!
//! * an HTML tag `<...>` becomes a single [`Token`] of type `html`, with its
//!   tag name lowercased and internal whitespace normalized so that
//!   template induction can compare tags across pages byte-for-byte;
//! * HTML comments and the contents of `<script>` and `<style>` elements are
//!   skipped (they are invisible and never carry table data);
//! * visible text is entity-decoded and split into *words* (maximal runs of
//!   alphanumeric characters) and individual punctuation characters, each a
//!   token typed by [`TypeSet::classify_text`](crate::TypeSet::classify_text).

use crate::entities::decode_entity;
use crate::token::Token;

/// Tokenizes an HTML document into the paper's token stream.
pub fn tokenize(input: &str) -> Vec<Token> {
    Lexer::new(input).run()
}

/// Tokenizes and keeps only visible-text tokens (drops HTML tags).
///
/// Detail-page matching "ignores intervening separators" (footnote 1 of the
/// paper); dropping tags is the first step of that.
pub fn tokenize_text(input: &str) -> Vec<Token> {
    tokenize(input).into_iter().filter(Token::is_text).collect()
}

/// Tokenizes an arbitrary byte string — the form pages arrive in off the
/// wire, where nothing guarantees valid UTF-8 (truncated multi-byte
/// sequences, mixed encodings, binary junk behind a dead link).
///
/// Invalid sequences are decoded lossily (replaced with U+FFFD) before
/// tokenization, so this function is total: any byte string produces a
/// token stream. **Offset caveat:** when a lossy decode happened, token
/// offsets refer to the *decoded* text, not to `bytes` — a 1-byte invalid
/// sequence becomes the 3-byte U+FFFD, shifting everything after it. Use
/// [`tokenize_bytes_flagged`] to learn whether that remap occurred; only
/// when its `decoded` flag is `false` are offsets byte offsets into
/// `bytes`.
pub fn tokenize_bytes(bytes: &[u8]) -> Vec<Token> {
    tokenize_bytes_flagged(bytes).tokens
}

/// A byte-string token stream plus its decode provenance.
#[derive(Debug, Clone)]
pub struct BytesTokens {
    /// The token stream of the (possibly lossily decoded) page.
    pub tokens: Vec<Token>,
    /// `true` if the input was not valid UTF-8 and was decoded lossily.
    /// Token offsets then index the *decoded* text (each invalid sequence
    /// replaced by the 3-byte U+FFFD), **not** the input bytes. When
    /// `false`, offsets are byte offsets into the input as usual.
    pub decoded: bool,
}

/// [`tokenize_bytes`] with the offset semantics made explicit: the
/// `decoded` flag records whether a lossy decode remapped token offsets
/// away from input byte positions.
pub fn tokenize_bytes_flagged(bytes: &[u8]) -> BytesTokens {
    match String::from_utf8_lossy(bytes) {
        std::borrow::Cow::Borrowed(s) => BytesTokens {
            tokens: tokenize(s),
            decoded: false,
        },
        std::borrow::Cow::Owned(s) => BytesTokens {
            tokens: tokenize(&s),
            decoded: true,
        },
    }
}

struct Lexer<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    out: Vec<Token>,
    /// When inside `<script>`/`<style>`, the closing tag we are looking for.
    skip_until: Option<&'static str>,
}

impl<'a> Lexer<'a> {
    fn new(input: &'a str) -> Self {
        Lexer {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            // A typical page yields roughly one token per 6 bytes.
            out: Vec::with_capacity(input.len() / 6 + 8),
            skip_until: None,
        }
    }

    fn run(mut self) -> Vec<Token> {
        while self.pos < self.bytes.len() {
            if let Some(close) = self.skip_until {
                self.skip_raw_text(close);
                continue;
            }
            if self.bytes[self.pos] == b'<' {
                self.lex_markup();
            } else {
                self.lex_text();
            }
        }
        self.out
    }

    /// Skips raw text (script/style contents) until the closing tag, which
    /// is then lexed normally.
    fn skip_raw_text(&mut self, close: &'static str) {
        let rest = &self.input[self.pos..];
        match find_ci(rest, close) {
            Some(idx) => {
                self.pos += idx;
                self.skip_until = None;
                // The next iteration lexes the closing tag itself.
            }
            None => {
                // Unterminated script/style: consume to end of input.
                self.pos = self.bytes.len();
                self.skip_until = None;
            }
        }
    }

    fn lex_markup(&mut self) {
        let start = self.pos;
        let rest = &self.input[start..];
        if rest.starts_with("<!--") {
            match rest.find("-->") {
                Some(end) => self.pos = start + end + 3,
                None => self.pos = self.bytes.len(),
            }
            return;
        }
        // A bare '<' not beginning a tag is literal text.
        let is_tag_start = rest[1..]
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_alphabetic() || c == '/' || c == '!');
        if !is_tag_start {
            // Emit '<' as punctuation and move on.
            self.out.push(Token::text("<", start));
            self.pos += 1;
            return;
        }
        match rest.find('>') {
            Some(end) => {
                let raw = &rest[..=end];
                let normalized = normalize_tag(raw);
                let name = tag_name(&normalized).to_owned();
                let closing = is_closing(&normalized);
                self.out.push(Token::tag(normalized, start));
                self.pos = start + end + 1;
                if !closing {
                    if name == "script" {
                        self.skip_until = Some("</script");
                    } else if name == "style" {
                        self.skip_until = Some("</style");
                    }
                }
            }
            None => {
                // Unterminated tag: treat the '<' as text and continue.
                self.out.push(Token::text("<", start));
                self.pos += 1;
            }
        }
    }

    fn lex_text(&mut self) {
        // Accumulate one decoded word; flush at whitespace/punct/tag.
        let mut word = String::new();
        let mut word_start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b == b'<' {
                break;
            }
            let (ch, used) = if b == b'&' {
                match decode_entity(self.input, self.pos) {
                    Some((ch, used)) => (ch, used),
                    None => ('&', 1),
                }
            } else {
                match self.input.get(self.pos..).and_then(|s| s.chars().next()) {
                    Some(ch) => (ch, ch.len_utf8()),
                    // `pos` is always advanced by whole characters, so this
                    // is unreachable — but if the invariant ever breaks,
                    // resynchronize by skipping one byte instead of
                    // panicking mid-page.
                    None => {
                        self.flush_word(&mut word, word_start);
                        self.pos += 1;
                        word_start = self.pos;
                        continue;
                    }
                }
            };
            if ch.is_whitespace() {
                self.flush_word(&mut word, word_start);
                self.pos += used;
                word_start = self.pos;
            } else if ch.is_alphanumeric() {
                if word.is_empty() {
                    word_start = self.pos;
                }
                word.push(ch);
                self.pos += used;
            } else {
                // Punctuation or symbol: its own token.
                self.flush_word(&mut word, word_start);
                self.out.push(Token::text(ch.to_string(), self.pos));
                self.pos += used;
                word_start = self.pos;
            }
        }
        self.flush_word(&mut word, word_start);
    }

    fn flush_word(&mut self, word: &mut String, start: usize) {
        if !word.is_empty() {
            self.out.push(Token::text(std::mem::take(word), start));
        }
    }
}

/// Case-insensitive ASCII substring search.
fn find_ci(haystack: &str, needle: &str) -> Option<usize> {
    let h = haystack.as_bytes();
    let n = needle.as_bytes();
    if n.is_empty() || h.len() < n.len() {
        return None;
    }
    (0..=h.len() - n.len()).find(|&i| h[i..i + n.len()].eq_ignore_ascii_case(n))
}

/// Normalizes a raw tag: lowercases the tag name, collapses whitespace runs
/// to a single space, trims whitespace before `>`. Shared with the
/// zero-copy scanner's slow path ([`crate::scan()`]).
pub(crate) fn normalize_tag(raw: &str) -> String {
    debug_assert!(raw.starts_with('<') && raw.ends_with('>'));
    let inner = &raw[1..raw.len() - 1];
    let mut out = String::with_capacity(raw.len());
    out.push('<');
    // Split into the name part and the attribute remainder.
    let inner = inner.trim();
    let name_end = inner
        .find(|c: char| c.is_whitespace())
        .unwrap_or(inner.len());
    let (name, attrs) = inner.split_at(name_end);
    for ch in name.chars() {
        out.push(ch.to_ascii_lowercase());
    }
    let attrs = attrs.trim();
    if !attrs.is_empty() {
        out.push(' ');
        let mut prev_space = false;
        for ch in attrs.chars() {
            if ch.is_whitespace() {
                if !prev_space {
                    out.push(' ');
                }
                prev_space = true;
            } else {
                out.push(ch);
                prev_space = false;
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
    }
    out.push('>');
    out
}

/// Extracts the lowercase tag name from a normalized tag, without any
/// leading `/`.
pub fn tag_name(normalized: &str) -> &str {
    let inner = normalized
        .trim_start_matches('<')
        .trim_end_matches('>')
        .trim_start_matches('/');
    let end = inner
        .find(|c: char| c.is_whitespace() || c == '/')
        .unwrap_or(inner.len());
    &inner[..end]
}

/// Returns `true` if a normalized tag is a closing tag (`</...>`).
pub fn is_closing(normalized: &str) -> bool {
    normalized.starts_with("</")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::TokenType;

    fn texts(input: &str) -> Vec<String> {
        tokenize(input).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn simple_row() {
        assert_eq!(
            texts("<tr><td>John Smith</td></tr>"),
            ["<tr>", "<td>", "John", "Smith", "</td>", "</tr>"]
        );
    }

    #[test]
    fn phone_number_tokenization() {
        assert_eq!(
            texts("(740) 335-5555"),
            ["(", "740", ")", "335", "-", "5555"]
        );
    }

    #[test]
    fn entities_decoded_inside_words() {
        // &amp; becomes a punctuation token; &#65; joins the word.
        assert_eq!(texts("AT&amp;T"), ["AT", "&", "T"]);
        assert_eq!(texts("&#66;ob"), ["Bob"]);
        let toks = tokenize("&#66;ob");
        assert!(toks[0].types.contains(TokenType::Capitalized));
    }

    #[test]
    fn nbsp_separates_words() {
        assert_eq!(texts("a&nbsp;b"), ["a", "b"]);
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(texts("a<!-- hidden <b> -->c"), ["a", "c"]);
        assert_eq!(texts("a<!-- unterminated"), ["a"]);
    }

    #[test]
    fn script_and_style_contents_skipped() {
        assert_eq!(
            texts("<script>var x = '<td>data</td>';</script>after"),
            ["<script>", "</script>", "after"]
        );
        assert_eq!(
            texts("<style>td { color: red }</style>x"),
            ["<style>", "</style>", "x"]
        );
        assert_eq!(
            texts("<SCRIPT>boom</SCRIPT>y"),
            ["<script>", "</script>", "y"]
        );
    }

    #[test]
    fn unterminated_script_consumes_rest() {
        assert_eq!(texts("<script>never closed"), ["<script>"]);
    }

    #[test]
    fn tag_normalization() {
        assert_eq!(texts("<TD ALIGN=left>"), ["<td ALIGN=left>"]);
        assert_eq!(texts("<td\n  align = 'x'>"), ["<td align = 'x'>"]);
        assert_eq!(texts("<BR/>"), ["<br/>"]);
    }

    #[test]
    fn bare_less_than_is_text() {
        assert_eq!(texts("3 < 4"), ["3", "<", "4"]);
        let toks = tokenize("3 < 4");
        assert!(toks[1].types.contains(TokenType::Punctuation));
    }

    #[test]
    fn unterminated_tag_degrades_to_text() {
        assert_eq!(texts("<td never closes"), ["<", "td", "never", "closes"]);
    }

    #[test]
    fn offsets_point_into_source() {
        let src = "<td>Hi, Bob</td>";
        let toks = tokenize(src);
        for t in &toks {
            if !t.text.starts_with('<') || t.text == "<" {
                // Text tokens: source at offset starts with first char.
                assert!(src[t.offset..].starts_with(t.text.chars().next().unwrap()));
            }
        }
        assert_eq!(toks[0].offset, 0);
        assert_eq!(toks[1].text, "Hi");
        assert_eq!(toks[1].offset, 4);
    }

    #[test]
    fn tokenize_text_drops_tags() {
        let toks = tokenize_text("<tr><td>John</td><td>Smith</td></tr>");
        let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["John", "Smith"]);
    }

    #[test]
    fn tag_name_extraction() {
        assert_eq!(tag_name("<td align=left>"), "td");
        assert_eq!(tag_name("</table>"), "table");
        assert_eq!(tag_name("<br/>"), "br");
        assert!(is_closing("</td>"));
        assert!(!is_closing("<td>"));
    }

    #[test]
    fn unicode_text() {
        assert_eq!(texts("Montréal, QC"), ["Montréal", ",", "QC"]);
        let toks = tokenize("Montréal");
        assert!(toks[0].types.contains(TokenType::Capitalized));
    }

    #[test]
    fn empty_input() {
        assert!(tokenize("").is_empty());
    }

    #[test]
    fn whitespace_only() {
        assert!(tokenize("  \n\t ").is_empty());
    }
}
