//! HTML substrate for the `tableseg` pipeline.
//!
//! The segmentation algorithms of Lerman et al. (SIGMOD 2004) operate on
//! *token streams*, not DOM trees: a page is split into words ("tokens"),
//! HTML escape sequences are converted to ASCII, and every token is assigned
//! one or more of eight **syntactic token types** (Section 3.1 of the paper):
//!
//! * `html` — an HTML tag,
//! * `punctuation` — a punctuation character,
//! * `alphanumeric` — a run of letters and/or digits, which may additionally
//!   be `numeric` or `alphabetic`, and an alphabetic token may additionally
//!   be `capitalized`, `lowercase`, or `allcaps`.
//!
//! The types are deliberately **non-mutually exclusive** and are represented
//! here as a bitset ([`TypeSet`]).
//!
//! This crate provides:
//!
//! * [`lexer::tokenize`] — the page tokenizer, producing [`Token`]s with
//!   source offsets,
//! * [`intern`] — token-text interning: pages are mapped once to dense
//!   `u32` [`Symbol`]s so that every downstream comparison (template LCS,
//!   extract matching, separator tests) is an integer compare,
//! * [`entities`] — HTML entity decoding (escape sequences → ASCII),
//! * [`dom`] — a small, forgiving DOM parser used by the DOM-heuristic
//!   baseline and by the site simulator's round-trip tests,
//! * [`writer`] — escaping helpers used when *generating* HTML.
//!
//! # Example
//!
//! ```
//! use tableseg_html::{lexer::tokenize, TokenType};
//!
//! let toks = tokenize("<tr><td>John Smith</td><td>(740) 335-5555</td></tr>");
//! let texts: Vec<&str> = toks.iter().map(|t| t.text.as_str()).collect();
//! assert_eq!(
//!     texts,
//!     ["<tr>", "<td>", "John", "Smith", "</td>", "<td>", "(", "740", ")",
//!      "335", "-", "5555", "</td>", "</tr>"]
//! );
//! assert!(toks[2].types.contains(TokenType::Capitalized));
//! assert!(toks[7].types.contains(TokenType::Numeric));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dom;
pub mod entities;
pub mod error;
pub mod intern;
pub mod lexer;
pub mod links;
pub mod scan;
pub mod token;
pub mod writer;

pub use error::SegError;
pub use intern::{FastHasher, FastMap, Interner, Symbol, UNKNOWN_SYMBOL};
pub use links::{extract_links, Link};
pub use scan::{scan, ScanTokens, SpanToken};
pub use token::{Token, TokenType, TypeSet};
pub use writer::render_tokens;
