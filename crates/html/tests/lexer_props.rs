//! Property tests for the HTML substrate: writer → lexer → DOM
//! round-trips and lexer robustness on arbitrary input.

use proptest::prelude::*;

use tableseg_html::dom::parse;
use tableseg_html::lexer::tokenize;
use tableseg_html::scan::scan;
use tableseg_html::writer::{render_tokens, HtmlWriter};
use tableseg_html::{Interner, TypeSet};

/// Asserts the zero-copy scanner reproduces the oracle lexer exactly —
/// texts, types, offsets — and that both interning paths agree.
fn assert_scan_equiv(input: &str) -> Result<(), TestCaseError> {
    let oracle = tokenize(input);
    let scanned = scan(input);
    let got = scanned.to_tokens(input);
    prop_assert_eq!(&got, &oracle, "scan ≢ tokenize on {:?}", input);
    let mut a = Interner::new();
    let mut b = Interner::new();
    prop_assert_eq!(
        a.intern_scanned(&scanned, input),
        b.intern_tokens(&oracle),
        "interned streams diverged on {:?}",
        input
    );
    prop_assert_eq!(a.len(), b.len());
    Ok(())
}

/// Words safe to embed as text content (no markup characters; the writer
/// escapes those anyway, but keeping them plain makes assertions direct).
fn arb_word() -> impl Strategy<Value = String> {
    "[A-Za-z0-9]{1,10}"
}

/// A fragment of page markup: tags, words, entities, punctuation — the
/// pieces are concatenated with or without separating spaces, so entity
/// and word boundaries land in arbitrary places.
fn arb_html_piece() -> impl Strategy<Value = String> {
    prop_oneof![
        arb_tag().prop_map(|t| format!("<{t}>")),
        arb_tag().prop_map(|t| format!("</{t}>")),
        arb_word(),
        prop_oneof![
            Just("&amp;".to_owned()),
            Just("&lt;".to_owned()),
            Just("&gt;".to_owned()),
            Just("&quot;".to_owned()),
            Just("&nbsp;".to_owned()),
            Just("&#65;".to_owned()),
        ],
        prop_oneof![
            Just("(".to_owned()),
            Just(")".to_owned()),
            Just(",".to_owned()),
            Just(".".to_owned()),
            Just("-".to_owned()),
            Just("$".to_owned()),
        ],
    ]
}

fn arb_tag() -> impl Strategy<Value = String> {
    prop_oneof![
        Just("div".to_owned()),
        Just("p".to_owned()),
        Just("td".to_owned()),
        Just("tr".to_owned()),
        Just("b".to_owned()),
        Just("span".to_owned()),
    ]
}

proptest! {
    /// The lexer never panics and produces typed tokens on arbitrary
    /// (possibly malformed) input.
    #[test]
    fn lexer_total_on_arbitrary_input(input in ".{0,300}") {
        let tokens = tokenize(&input);
        for t in tokens {
            prop_assert!(!t.text.is_empty());
            prop_assert!(t.offset <= input.len());
            if !t.is_html() {
                prop_assert!(!t.types.is_empty() || t.text.chars().all(char::is_whitespace));
            }
        }
    }

    /// The byte-level entry point is total: arbitrary byte strings —
    /// including invalid UTF-8, stray `<`, and NUL bytes — tokenize
    /// without panicking, and every token's text is non-empty.
    #[test]
    fn tokenize_bytes_total_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let tokens = tableseg_html::lexer::tokenize_bytes(&bytes);
        for t in &tokens {
            prop_assert!(!t.text.is_empty());
            // Lossy decoding can grow the text — each invalid byte may
            // become one 3-byte U+FFFD — so offsets are bounded by 3x.
            prop_assert!(t.offset <= bytes.len() * 3);
        }
    }

    /// Writer output tokenizes back to exactly the words written, in
    /// order, with balanced tags.
    #[test]
    fn writer_lexer_roundtrip(
        structure in proptest::collection::vec((arb_tag(), proptest::collection::vec(arb_word(), 0..4)), 1..8),
    ) {
        let mut w = HtmlWriter::new();
        let mut expected_words = Vec::new();
        for (tag, words) in &structure {
            w.open(tag);
            for word in words {
                w.text(word);
                w.text(" ");
                expected_words.push(word.clone());
            }
            w.close();
        }
        let html = w.finish();
        let tokens = tokenize(&html);
        let words: Vec<&str> = tokens
            .iter()
            .filter(|t| t.is_text())
            .map(|t| t.text.as_str())
            .collect();
        prop_assert_eq!(words, expected_words.iter().map(String::as_str).collect::<Vec<_>>());
        // Open and close tags balance.
        let opens = tokens.iter().filter(|t| t.is_html() && !t.text.starts_with("</")).count();
        let closes = tokens.iter().filter(|t| t.text.starts_with("</")).count();
        prop_assert_eq!(opens, closes);
    }

    /// DOM parsing of writer output preserves the full text content.
    #[test]
    fn writer_dom_roundtrip(words in proptest::collection::vec(arb_word(), 1..10)) {
        let mut w = HtmlWriter::new();
        w.open("html").open("body");
        for word in &words {
            w.element("p", word);
        }
        let html = w.finish();
        let dom = parse(&html);
        let text = dom.text_content();
        for word in &words {
            prop_assert!(text.contains(word.as_str()), "{} missing from {}", word, text);
        }
    }

    /// Entity decoding never panics and is identity on entity-free ASCII.
    #[test]
    fn entities_total(input in "[a-zA-Z0-9 .,;:!?-]{0,100}") {
        let decoded = tableseg_html::entities::decode_all(&input);
        prop_assert_eq!(decoded, input);
    }

    /// Tokenizer round-trip: `tokenize → render_tokens → tokenize` yields
    /// an identical token stream — same texts and same `TypeSet` bitsets —
    /// over generated HTML that mixes tags, words, punctuation and
    /// entities at arbitrary boundaries.
    #[test]
    fn tokenize_render_tokenize_is_identity(
        pieces in proptest::collection::vec((arb_html_piece(), proptest::bool::ANY), 0..30),
    ) {
        let mut html = String::new();
        for (piece, spaced) in &pieces {
            html.push_str(piece);
            if *spaced {
                html.push(' ');
            }
        }
        let tokens = tokenize(&html);
        let rendered = render_tokens(&tokens);
        let again = tokenize(&rendered);
        prop_assert_eq!(
            tokens.len(),
            again.len(),
            "token count changed\nsource:   {:?}\nrendered: {:?}",
            html,
            rendered
        );
        for (a, b) in tokens.iter().zip(&again) {
            prop_assert_eq!(&a.text, &b.text, "text drifted in {:?}", rendered);
            prop_assert_eq!(a.types, b.types, "types drifted for {:?} in {:?}", &a.text, rendered);
        }
    }

    /// The zero-copy scanner is equivalent to the allocating oracle on
    /// arbitrary (possibly malformed) text input.
    #[test]
    fn scan_equals_tokenize_on_arbitrary_input(input in ".{0,300}") {
        assert_scan_equiv(&input)?;
    }

    /// The equivalence holds on arbitrary *byte* strings after the same
    /// lossy decode the byte-level entry point performs — invalid UTF-8,
    /// NUL bytes, stray markup and all.
    #[test]
    fn scan_equals_tokenize_on_arbitrary_bytes(
        bytes in proptest::collection::vec(any::<u8>(), 0..400),
    ) {
        let text = String::from_utf8_lossy(&bytes);
        assert_scan_equiv(&text)?;
    }

    /// The equivalence holds over the round-trip `render_tokens` corpus:
    /// generated HTML mixing tags, words, entities and punctuation at
    /// arbitrary boundaries, plus its rendered normal form.
    #[test]
    fn scan_equals_tokenize_on_rendered_corpus(
        pieces in proptest::collection::vec((arb_html_piece(), proptest::bool::ANY), 0..30),
    ) {
        let mut html = String::new();
        for (piece, spaced) in &pieces {
            html.push_str(piece);
            if *spaced {
                html.push(' ');
            }
        }
        assert_scan_equiv(&html)?;
        let rendered = render_tokens(&tokenize(&html));
        assert_scan_equiv(&rendered)?;
    }

    /// Type classification is deterministic and consistent with the
    /// non-mutually-exclusive hierarchy.
    #[test]
    fn typeset_hierarchy(word in "[A-Za-z0-9]{1,12}") {
        use tableseg_html::TokenType as T;
        let set = TypeSet::classify_text(&word);
        prop_assert!(set.contains(T::Alphanumeric));
        if set.contains(T::Numeric) {
            prop_assert!(!set.contains(T::Alphabetic));
        }
        for sub in [T::Capitalized, T::Lowercase, T::Allcaps] {
            if set.contains(sub) {
                prop_assert!(set.contains(T::Alphabetic), "{:?} for {}", set, word);
            }
        }
    }
}
