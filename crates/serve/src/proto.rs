//! The `tablesegd/v1` segmentation codec.
//!
//! A line-oriented text format in which HTML pages travel as
//! length-prefixed blocks (`page <len>\n<len bytes>\n`), so page bytes
//! need no escaping and the parser never scans inside them. One request
//! carries one site's sample list pages plus any number of targets (a
//! list-page index and its detail pages); the response carries one
//! result block per target plus the per-request run manifest.
//!
//! Both directions are parsed by the same helpers; the client
//! ([`crate::client`]) and the black-box test suites reuse this module,
//! so a codec bug fails loudly on both ends.

/// One target to segment: a list-page index plus its detail pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TargetSpec {
    /// Index into the request's list pages of the page to segment.
    pub target: usize,
    /// Detail-page HTML, in record order.
    pub details: Vec<String>,
}

/// A segmentation request: a site's sample list pages plus targets.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentRequest {
    /// Site name — the cache key.
    pub site: String,
    /// Sample list-page HTML.
    pub list_pages: Vec<String>,
    /// The pages to segment.
    pub targets: Vec<TargetSpec>,
}

/// One segmenter's verdict on one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmenterMsg {
    /// `true` if the approach relaxed its constraints (notes `c`/`d`).
    pub relaxed: bool,
    /// Record groups: indices into the page's kept extracts.
    pub groups: Vec<Vec<usize>>,
}

/// One per-target result block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageResultMsg {
    /// The target list-page index.
    pub target: usize,
    /// `"ok"`, `"degraded"` or `"failed"`.
    pub status: String,
    /// `true` when the result came from the per-site result cache
    /// (no pipeline stage re-ran for this page).
    pub cached: bool,
    /// Whole-page fallback flag (the paper's notes `a`/`b`).
    pub whole_page: bool,
    /// Warning labels, in detection order.
    pub warnings: Vec<String>,
    /// Byte offsets of the kept extracts in the target page.
    pub offsets: Vec<usize>,
    /// Probabilistic-approach result (absent when the page failed).
    pub prob: Option<SegmenterMsg>,
    /// CSP-approach result (absent when the page failed).
    pub csp: Option<SegmenterMsg>,
    /// `(stage, message)` when the page failed.
    pub error: Option<(String, String)>,
}

/// A segmentation response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentResponse {
    /// Site name, echoed.
    pub site: String,
    /// How the site state was obtained: `"cold"`, `"warm"`,
    /// `"refresh"` or `"rebuild"`.
    pub cache: String,
    /// The site's cache generation after this request.
    pub generation: u64,
    /// Targets attempted (always `ok + degraded + failed`).
    pub pages: usize,
    /// Targets with a clean outcome.
    pub ok: usize,
    /// Targets processed with warnings.
    pub degraded: usize,
    /// Targets that failed.
    pub failed: usize,
    /// One block per target, in request order.
    pub page_results: Vec<PageResultMsg>,
    /// The per-request run manifest (JSON).
    pub manifest: String,
}

const MAGIC_REQUEST: &str = "tablesegd/v1 segment";
const MAGIC_RESPONSE: &str = "tablesegd/v1 result";

fn push_block(out: &mut String, html: &str) {
    out.push_str(&format!("page {}\n", html.len()));
    out.push_str(html);
    out.push('\n');
}

/// Encodes a request body.
pub fn encode_request(req: &SegmentRequest) -> String {
    let mut out = String::new();
    out.push_str(MAGIC_REQUEST);
    out.push('\n');
    out.push_str(&format!("site {}\n", req.site));
    out.push_str(&format!("lists {}\n", req.list_pages.len()));
    for p in &req.list_pages {
        push_block(&mut out, p);
    }
    out.push_str(&format!("targets {}\n", req.targets.len()));
    for t in &req.targets {
        out.push_str(&format!(
            "target {} details {}\n",
            t.target,
            t.details.len()
        ));
        for d in &t.details {
            push_block(&mut out, d);
        }
    }
    out.push_str("end\n");
    out
}

/// A cursor over the line-oriented body. Tracks a byte offset so
/// length-prefixed blocks can be sliced without scanning.
struct Cursor<'a> {
    text: &'a str,
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn line(&mut self) -> Result<&'a str, String> {
        if self.pos >= self.text.len() {
            return Err("unexpected end of body".to_string());
        }
        let rest = &self.text[self.pos..];
        let end = rest.find('\n').ok_or("unterminated line")?;
        self.pos += end + 1;
        Ok(&rest[..end])
    }

    /// Reads a `page <len>` line plus the block it announces.
    fn block(&mut self) -> Result<&'a str, String> {
        let line = self.line()?;
        let len: usize = line
            .strip_prefix("page ")
            .ok_or_else(|| format!("expected page block, got {line:?}"))?
            .parse()
            .map_err(|_| "bad page length".to_string())?;
        if self.pos + len + 1 > self.text.len() {
            return Err("page block truncated".to_string());
        }
        if !self.text.is_char_boundary(self.pos + len) {
            return Err("page length splits a utf-8 sequence".to_string());
        }
        let block = &self.text[self.pos..self.pos + len];
        self.pos += len;
        let nl = self.line()?;
        if !nl.is_empty() {
            return Err("page block not newline-terminated".to_string());
        }
        Ok(block)
    }

    fn keyword(&mut self, word: &str) -> Result<&'a str, String> {
        let line = self.line()?;
        match line.strip_prefix(word) {
            Some("") => Ok(""),
            Some(rest) if rest.starts_with(' ') => Ok(&rest[1..]),
            _ => Err(format!("expected {word:?}, got {line:?}")),
        }
    }
}

fn parse_usize(s: &str, what: &str) -> Result<usize, String> {
    s.trim().parse().map_err(|_| format!("bad {what}: {s:?}"))
}

/// Parses a request body.
pub fn parse_request(body: &str) -> Result<SegmentRequest, String> {
    let mut c = Cursor { text: body, pos: 0 };
    if c.line()? != MAGIC_REQUEST {
        return Err("not a tablesegd/v1 segment request".to_string());
    }
    let site = c.keyword("site")?.to_string();
    if site.is_empty() {
        return Err("empty site name".to_string());
    }
    let lists = parse_usize(c.keyword("lists")?, "list count")?;
    let mut list_pages = Vec::with_capacity(lists.min(64));
    for _ in 0..lists {
        list_pages.push(c.block()?.to_string());
    }
    let targets = parse_usize(c.keyword("targets")?, "target count")?;
    let mut target_specs = Vec::with_capacity(targets.min(64));
    for _ in 0..targets {
        let rest = c.keyword("target")?;
        let (idx, det) = rest.split_once(" details ").ok_or("bad target line")?;
        let target = parse_usize(idx, "target index")?;
        let details_n = parse_usize(det, "detail count")?;
        let mut details = Vec::with_capacity(details_n.min(64));
        for _ in 0..details_n {
            details.push(c.block()?.to_string());
        }
        target_specs.push(TargetSpec { target, details });
    }
    if c.line()? != "end" {
        return Err("missing end marker".to_string());
    }
    Ok(SegmentRequest {
        site,
        list_pages,
        targets: target_specs,
    })
}

fn encode_list(values: &[usize]) -> String {
    if values.is_empty() {
        return "-".to_string();
    }
    values
        .iter()
        .map(usize::to_string)
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_list(s: &str) -> Result<Vec<usize>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',').map(|v| parse_usize(v, "list item")).collect()
}

fn encode_groups(groups: &[Vec<usize>]) -> String {
    if groups.is_empty() {
        return "-".to_string();
    }
    groups
        .iter()
        .map(|g| g.iter().map(usize::to_string).collect::<Vec<_>>().join(" "))
        .collect::<Vec<_>>()
        .join("|")
}

fn parse_groups(s: &str) -> Result<Vec<Vec<usize>>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split('|')
        .map(|g| {
            g.split(' ')
                .filter(|t| !t.is_empty())
                .map(|t| parse_usize(t, "group item"))
                .collect()
        })
        .collect()
}

fn encode_segmenter(out: &mut String, name: &str, m: &SegmenterMsg) {
    out.push_str(&format!(
        "{name} relaxed {} groups {}\n",
        m.relaxed as u8,
        encode_groups(&m.groups)
    ));
}

fn parse_segmenter(rest: &str) -> Result<SegmenterMsg, String> {
    let rest = rest.strip_prefix("relaxed ").ok_or("bad segmenter line")?;
    let (flag, groups) = rest.split_once(" groups ").ok_or("bad segmenter line")?;
    Ok(SegmenterMsg {
        relaxed: flag.trim() == "1",
        groups: parse_groups(groups)?,
    })
}

/// Encodes a response body.
pub fn encode_response(resp: &SegmentResponse) -> String {
    let mut out = String::new();
    out.push_str(MAGIC_RESPONSE);
    out.push('\n');
    out.push_str(&format!("site {}\n", resp.site));
    out.push_str(&format!("cache {}\n", resp.cache));
    out.push_str(&format!("generation {}\n", resp.generation));
    out.push_str(&format!(
        "pages {} ok {} degraded {} failed {}\n",
        resp.pages, resp.ok, resp.degraded, resp.failed
    ));
    for p in &resp.page_results {
        out.push_str(&format!(
            "page {} {} {}\n",
            p.target,
            p.status,
            if p.cached { "cached" } else { "computed" }
        ));
        out.push_str(&format!("whole_page {}\n", p.whole_page as u8));
        let warnings = if p.warnings.is_empty() {
            "-".to_string()
        } else {
            p.warnings.join(",")
        };
        out.push_str(&format!("warnings {warnings}\n"));
        out.push_str(&format!("offsets {}\n", encode_list(&p.offsets)));
        if let Some(prob) = &p.prob {
            encode_segmenter(&mut out, "prob", prob);
        }
        if let Some(csp) = &p.csp {
            encode_segmenter(&mut out, "csp", csp);
        }
        if let Some((stage, message)) = &p.error {
            out.push_str(&format!("error {stage} {}\n", message.replace('\n', " ")));
        }
        out.push_str("endpage\n");
    }
    out.push_str(&format!("manifest {}\n", resp.manifest.len()));
    out.push_str(&resp.manifest);
    out.push('\n');
    out.push_str("end\n");
    out
}

/// Parses a response body.
pub fn parse_response(body: &str) -> Result<SegmentResponse, String> {
    let mut c = Cursor { text: body, pos: 0 };
    if c.line()? != MAGIC_RESPONSE {
        return Err("not a tablesegd/v1 result".to_string());
    }
    let site = c.keyword("site")?.to_string();
    let cache = c.keyword("cache")?.to_string();
    let generation: u64 = c
        .keyword("generation")?
        .parse()
        .map_err(|_| "bad generation".to_string())?;
    let counts = c.keyword("pages")?;
    let nums: Vec<&str> = counts.split(' ').collect();
    if nums.len() != 7 || nums[1] != "ok" || nums[3] != "degraded" || nums[5] != "failed" {
        return Err(format!("bad pages line: {counts:?}"));
    }
    let pages = parse_usize(nums[0], "pages")?;
    let ok = parse_usize(nums[2], "ok")?;
    let degraded = parse_usize(nums[4], "degraded")?;
    let failed = parse_usize(nums[6], "failed")?;
    let mut page_results = Vec::with_capacity(pages.min(64));
    for _ in 0..pages {
        let head = c.keyword("page")?;
        let parts: Vec<&str> = head.split(' ').collect();
        if parts.len() != 3 {
            return Err(format!("bad page head: {head:?}"));
        }
        let target = parse_usize(parts[0], "target")?;
        let status = parts[1].to_string();
        let cached = match parts[2] {
            "cached" => true,
            "computed" => false,
            other => return Err(format!("bad cache marker: {other:?}")),
        };
        let whole_page = c.keyword("whole_page")? == "1";
        let warnings_raw = c.keyword("warnings")?;
        let warnings = if warnings_raw == "-" {
            Vec::new()
        } else {
            warnings_raw.split(',').map(str::to_string).collect()
        };
        let offsets = parse_list(c.keyword("offsets")?)?;
        let mut prob = None;
        let mut csp = None;
        let mut error = None;
        loop {
            let line = c.line()?;
            if line == "endpage" {
                break;
            } else if let Some(rest) = line.strip_prefix("prob ") {
                prob = Some(parse_segmenter(rest)?);
            } else if let Some(rest) = line.strip_prefix("csp ") {
                csp = Some(parse_segmenter(rest)?);
            } else if let Some(rest) = line.strip_prefix("error ") {
                let (stage, message) = rest.split_once(' ').unwrap_or((rest, ""));
                error = Some((stage.to_string(), message.to_string()));
            } else {
                return Err(format!("unexpected line in page block: {line:?}"));
            }
        }
        page_results.push(PageResultMsg {
            target,
            status,
            cached,
            whole_page,
            warnings,
            offsets,
            prob,
            csp,
            error,
        });
    }
    let manifest_len = parse_usize(c.keyword("manifest")?, "manifest length")?;
    if c.pos + manifest_len + 1 > body.len() {
        return Err("manifest truncated".to_string());
    }
    let manifest = body[c.pos..c.pos + manifest_len].to_string();
    c.pos += manifest_len;
    if !c.line()?.is_empty() {
        return Err("manifest not newline-terminated".to_string());
    }
    if c.line()? != "end" {
        return Err("missing end marker".to_string());
    }
    Ok(SegmentResponse {
        site,
        cache,
        generation,
        pages,
        ok,
        degraded,
        failed,
        page_results,
        manifest,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> SegmentRequest {
        SegmentRequest {
            site: "whitepages".to_string(),
            list_pages: vec![
                "<html>list one\nwith a newline</html>".to_string(),
                "<html>page 12\nend\n</html>".to_string(),
            ],
            targets: vec![
                TargetSpec {
                    target: 0,
                    details: vec!["<h2>Ada</h2>".to_string(), "<h2>Alan</h2>".to_string()],
                },
                TargetSpec {
                    target: 1,
                    details: Vec::new(),
                },
            ],
        }
    }

    #[test]
    fn request_roundtrips() {
        let req = sample_request();
        let parsed = parse_request(&encode_request(&req)).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn request_with_protocol_keywords_in_pages_roundtrips() {
        // Page bytes containing codec keywords must not confuse the
        // parser — blocks are length-prefixed, never scanned.
        let mut req = sample_request();
        req.list_pages[0] = "end\ntargets 9\npage 3\nxyz\n".to_string();
        let parsed = parse_request(&encode_request(&req)).unwrap();
        assert_eq!(parsed, req);
    }

    #[test]
    fn response_roundtrips() {
        let resp = SegmentResponse {
            site: "whitepages".to_string(),
            cache: "warm".to_string(),
            generation: 3,
            pages: 2,
            ok: 1,
            degraded: 0,
            failed: 1,
            page_results: vec![
                PageResultMsg {
                    target: 0,
                    status: "ok".to_string(),
                    cached: true,
                    whole_page: false,
                    warnings: Vec::new(),
                    offsets: vec![10, 25, 40],
                    prob: Some(SegmenterMsg {
                        relaxed: false,
                        groups: vec![vec![0, 1], vec![2]],
                    }),
                    csp: Some(SegmenterMsg {
                        relaxed: true,
                        groups: vec![vec![0], vec![1, 2]],
                    }),
                    error: None,
                },
                PageResultMsg {
                    target: 1,
                    status: "failed".to_string(),
                    cached: false,
                    whole_page: false,
                    warnings: vec!["empty_list_page".to_string()],
                    offsets: Vec::new(),
                    prob: None,
                    csp: None,
                    error: Some(("serve".to_string(), "deadline exceeded".to_string())),
                },
            ],
            manifest: "{\n  \"tool\": \"tablesegd\"\n}".to_string(),
        };
        let parsed = parse_response(&encode_response(&resp)).unwrap();
        assert_eq!(parsed, resp);
    }

    #[test]
    fn truncated_and_garbage_bodies_are_errors() {
        assert!(parse_request("").is_err());
        assert!(parse_request("tablesegd/v1 segment\nsite x\nlists 1\npage 99\nshort\n").is_err());
        assert!(parse_request("GET / HTTP/1.1").is_err());
        assert!(parse_response("tablesegd/v1 result\nsite x\n").is_err());
    }
}
