//! `tablesegd`: the resident segmentation service.
//!
//! The paper's pipeline learns a per-site template once and reuses it
//! across pages — exactly the shape of a long-running server. This crate
//! turns the batch pipeline into one:
//!
//! * [`http`] — a hand-rolled, std-only HTTP/1.1 front door (no
//!   dependencies; the build environment is offline by design);
//! * [`proto`] — the line-based request/response codec for segmentation
//!   jobs (length-prefixed HTML blocks, so page bytes need no escaping);
//! * [`cache`] — a sharded LRU cache of per-site state (interner +
//!   [`tableseg::SiteTemplate`] + page indexes) with explicit
//!   invalidation and generation counters;
//! * [`server`] — the daemon itself: bounded admission queue (429 +
//!   `Retry-After` on overflow), per-request deadlines, incremental
//!   re-segmentation via [`tableseg::SiteTemplate::try_refresh`], and
//!   the `tableseg-obs` Prometheus sink on `/metrics`;
//! * [`client`] — raw-TCP client helpers shared by `tablesegctl`, the
//!   black-box test suites and `servebench`.
//!
//! Binaries: `tablesegd` (the daemon) and `tablesegctl` (client CLI).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod client;
pub mod http;
pub mod proto;
pub mod server;

pub use cache::{fingerprint, CacheStats, SiteCache};
pub use client::HttpResponse;
pub use http::{HttpError, HttpRequest};
pub use proto::{PageResultMsg, SegmentRequest, SegmentResponse, SegmenterMsg, TargetSpec};
pub use server::{Server, ServerConfig};
