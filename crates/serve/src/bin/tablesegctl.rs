//! `tablesegctl`: client CLI for a running `tablesegd`.
//!
//! Subcommands:
//!
//! * `health ADDR` — exit 0 when `/healthz` answers 200;
//! * `metrics ADDR` — print the Prometheus dump;
//! * `invalidate ADDR SITE` — drop a site's cached state;
//! * `segment ADDR SITE TARGET LIST... [-- DETAIL...]` — segment list
//!   page `TARGET` (an index into the `LIST` files) and print the
//!   per-page result blocks.

use std::net::{SocketAddr, ToSocketAddrs};

use tableseg_serve::client;
use tableseg_serve::{SegmentRequest, TargetSpec};

fn usage() -> ! {
    eprintln!(
        "tablesegctl: drive a running tablesegd\n\
         \n\
         USAGE:\n\
         \x20 tablesegctl health ADDR\n\
         \x20 tablesegctl metrics ADDR\n\
         \x20 tablesegctl invalidate ADDR SITE\n\
         \x20 tablesegctl segment ADDR SITE TARGET LIST.html... [-- DETAIL.html...]"
    );
    std::process::exit(2);
}

fn resolve(addr: &str) -> SocketAddr {
    addr.to_socket_addrs()
        .ok()
        .and_then(|mut a| a.next())
        .unwrap_or_else(|| {
            eprintln!("bad address: {addr}");
            std::process::exit(2);
        })
}

fn read_file(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        std::process::exit(1);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("health") if args.len() == 2 => {
            let ok = client::healthz(resolve(&args[1]));
            println!("{}", if ok { "ok" } else { "unhealthy" });
            std::process::exit(if ok { 0 } else { 1 });
        }
        Some("metrics") if args.len() == 2 => match client::metrics(resolve(&args[1])) {
            Ok(dump) => print!("{dump}"),
            Err(e) => {
                eprintln!("metrics failed: {e}");
                std::process::exit(1);
            }
        },
        Some("invalidate") if args.len() == 3 => {
            match client::invalidate(resolve(&args[1]), &args[2]) {
                Ok(reply) => println!("{reply}"),
                Err(e) => {
                    eprintln!("invalidate failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some("segment") if args.len() >= 5 => {
            let addr = resolve(&args[1]);
            let site = args[2].clone();
            let target: usize = args[3].parse().unwrap_or_else(|_| {
                eprintln!("bad target index: {}", args[3]);
                std::process::exit(2);
            });
            let rest = &args[4..];
            let split = rest.iter().position(|a| a == "--").unwrap_or(rest.len());
            let list_pages: Vec<String> = rest[..split].iter().map(|p| read_file(p)).collect();
            let details: Vec<String> = rest[split..].iter().skip(1).map(|p| read_file(p)).collect();
            let job = SegmentRequest {
                site,
                list_pages,
                targets: vec![TargetSpec { target, details }],
            };
            match client::segment(addr, &job, None, false) {
                Ok(resp) => {
                    println!(
                        "site {} cache {} generation {} pages {} ok {} degraded {} failed {}",
                        resp.site,
                        resp.cache,
                        resp.generation,
                        resp.pages,
                        resp.ok,
                        resp.degraded,
                        resp.failed
                    );
                    for p in resp.page_results {
                        let n = p.offsets.len();
                        println!(
                            "page {} {} {} extracts {n}",
                            p.target,
                            p.status,
                            if p.cached { "cached" } else { "computed" }
                        );
                        if let Some((stage, msg)) = p.error {
                            println!("  error[{stage}]: {msg}");
                        }
                    }
                }
                Err(e) => {
                    eprintln!("segment failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        _ => usage(),
    }
}
