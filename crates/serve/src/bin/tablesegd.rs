//! The `tablesegd` daemon binary.
//!
//! Binds the segmentation service and runs until killed. All knobs map
//! onto [`tableseg_serve::ServerConfig`]; defaults are printed by
//! `--help`.

use std::time::Duration;

use tableseg_serve::{Server, ServerConfig};

fn usage() -> ! {
    let d = ServerConfig::default();
    eprintln!(
        "tablesegd: resident table-segmentation service\n\
         \n\
         USAGE: tablesegd [FLAGS]\n\
         \n\
         FLAGS:\n\
         \x20 --addr HOST:PORT       bind address (default {addr}; port 0 = ephemeral)\n\
         \x20 --workers N            HTTP worker threads (default {workers})\n\
         \x20 --batch-threads N      batch-engine threads per request (default {batch})\n\
         \x20 --cache-capacity N     site-state cache entries (default {cap})\n\
         \x20 --cache-shards N       cache shards (default {shards})\n\
         \x20 --queue-depth N        admission queue depth (default {queue})\n\
         \x20 --max-body BYTES       request body cap (default {body})\n\
         \x20 --read-timeout-ms MS   per-connection read timeout (default {to})\n\
         \n\
         ENDPOINTS: POST /segment, POST /invalidate, GET /metrics, GET /healthz\n\
         Drive it with tablesegctl.",
        addr = d.addr,
        workers = d.workers,
        batch = d.batch_threads,
        cap = d.cache_capacity,
        shards = d.cache_shards,
        queue = d.queue_depth,
        body = d.max_body,
        to = d.read_timeout.as_millis(),
    );
    std::process::exit(2);
}

fn main() {
    let mut config = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |what: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr"),
            "--workers" => config.workers = parse(&value("--workers")),
            "--batch-threads" => config.batch_threads = parse(&value("--batch-threads")),
            "--cache-capacity" => config.cache_capacity = parse(&value("--cache-capacity")),
            "--cache-shards" => config.cache_shards = parse(&value("--cache-shards")),
            "--queue-depth" => config.queue_depth = parse(&value("--queue-depth")),
            "--max-body" => config.max_body = parse(&value("--max-body")),
            "--read-timeout-ms" => {
                config.read_timeout =
                    Duration::from_millis(parse::<u64>(&value("--read-timeout-ms")))
            }
            _ => usage(),
        }
    }
    let server = match Server::start(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("tablesegd: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("tablesegd listening on {}", server.addr());
    // Run until killed: the daemon has no in-band shutdown endpoint.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("bad numeric flag value: {s}");
        std::process::exit(2);
    })
}
