//! A sharded LRU cache of per-site state, with generation counters.
//!
//! The daemon keys learned site state (interner + template + page
//! indexes) by site name. The cache is sharded to keep lock hold times
//! short under concurrent requests; within a shard, eviction is strict
//! LRU driven by a monotonic use tick (every access gets a unique tick,
//! so eviction order is fully deterministic — the property test checks
//! it against a naive map-plus-timestamps oracle).
//!
//! **Generations.** Every site name has a monotonic generation counter
//! that survives eviction: it is bumped by every [`SiteCache::insert`]
//! (the state was (re)built) and every successful
//! [`SiteCache::invalidate`] (the state was explicitly discarded).
//! Capacity eviction does *not* bump it — nothing about the site
//! changed, the cache just forgot it. Responses echo the generation so
//! clients can tell a warm hit on fresh state from one on stale state.

use std::collections::HashMap;
use std::sync::Mutex;

/// FNV-1a 64-bit hash — the fingerprint for page bytes and the shard
/// selector for site names. Stable across runs and platforms (unlike
/// `std`'s `RandomState`), which keeps cache behaviour reproducible.
pub fn fingerprint(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Entry<V> {
    value: V,
    last_used: u64,
}

struct Shard<V> {
    entries: HashMap<String, Entry<V>>,
    /// Generation per site name; persists across eviction.
    generations: HashMap<String, u64>,
    /// Monotonic use counter: every get/insert draws a unique tick.
    tick: u64,
    capacity: usize,
}

impl<V> Shard<V> {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    fn evict_over_capacity(&mut self) {
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty over-capacity shard");
            self.entries.remove(&victim);
        }
    }
}

/// Point-in-time cache occupancy, summed over shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Entries currently resident.
    pub entries: usize,
    /// Total capacity across shards.
    pub capacity: usize,
}

/// The sharded LRU cache. `V` is cheap to clone (the daemon stores
/// `Arc`ed site state).
pub struct SiteCache<V> {
    shards: Vec<Mutex<Shard<V>>>,
}

impl<V: Clone> SiteCache<V> {
    /// Creates a cache holding at most `capacity` entries spread over
    /// `shards` shards (each shard gets an equal split, minimum one).
    pub fn new(capacity: usize, shards: usize) -> SiteCache<V> {
        let shards = shards.max(1);
        let per_shard = (capacity / shards).max(1);
        SiteCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        generations: HashMap::new(),
                        tick: 0,
                        capacity: per_shard,
                    })
                })
                .collect(),
        }
    }

    /// The shard a key maps to. Exposed so tests can model per-shard
    /// LRU behaviour exactly.
    pub fn shard_of(&self, key: &str) -> usize {
        (fingerprint(key.as_bytes()) % self.shards.len() as u64) as usize
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up `key`, marking it most-recently-used on a hit. Returns
    /// the value and the key's current generation.
    pub fn get(&self, key: &str) -> Option<(V, u64)> {
        let mut shard = self.shards[self.shard_of(key)].lock().unwrap();
        let tick = shard.next_tick();
        let generation = shard.generations.get(key).copied().unwrap_or(0);
        let entry = shard.entries.get_mut(key)?;
        entry.last_used = tick;
        Some((entry.value.clone(), generation))
    }

    /// Inserts (or replaces) `key`, bumping its generation and evicting
    /// the shard's least-recently-used entries if over capacity.
    /// Returns the new generation.
    pub fn insert(&self, key: &str, value: V) -> u64 {
        let mut shard = self.shards[self.shard_of(key)].lock().unwrap();
        let tick = shard.next_tick();
        let generation = shard.generations.entry(key.to_string()).or_insert(0);
        *generation += 1;
        let generation = *generation;
        shard.entries.insert(
            key.to_string(),
            Entry {
                value,
                last_used: tick,
            },
        );
        shard.evict_over_capacity();
        generation
    }

    /// Drops `key` and bumps its generation. Returns the new generation
    /// when the key was resident, `None` when there was nothing to
    /// invalidate (the generation is *not* bumped then — invalidating
    /// an absent site is a no-op, not an event).
    pub fn invalidate(&self, key: &str) -> Option<u64> {
        let mut shard = self.shards[self.shard_of(key)].lock().unwrap();
        shard.entries.remove(key)?;
        let generation = shard
            .generations
            .get_mut(key)
            .expect("resident entry always has a generation");
        *generation += 1;
        Some(*generation)
    }

    /// The key's current generation (0 if never inserted).
    pub fn generation(&self, key: &str) -> u64 {
        let shard = self.shards[self.shard_of(key)].lock().unwrap();
        shard.generations.get(key).copied().unwrap_or(0)
    }

    /// Occupancy across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut capacity = 0;
        for shard in &self.shards {
            let shard = shard.lock().unwrap();
            entries += shard.entries.len();
            capacity += shard.capacity;
        }
        CacheStats { entries, capacity }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache: SiteCache<u32> = SiteCache::new(2, 1);
        cache.insert("a", 1);
        cache.insert("b", 2);
        // Touch "a" so "b" becomes the LRU victim.
        assert_eq!(cache.get("a"), Some((1, 1)));
        cache.insert("c", 3);
        assert!(cache.get("b").is_none(), "b should have been evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().entries, 2);
    }

    #[test]
    fn generations_bump_on_insert_and_invalidate_only() {
        let cache: SiteCache<u32> = SiteCache::new(1, 1);
        assert_eq!(cache.generation("a"), 0);
        assert_eq!(cache.insert("a", 1), 1);
        assert_eq!(cache.insert("a", 2), 2);
        assert_eq!(cache.invalidate("a"), Some(3));
        assert_eq!(cache.invalidate("a"), None, "already gone");
        assert_eq!(cache.generation("a"), 3);
        // Capacity eviction does not bump the victim's generation.
        cache.insert("a", 1);
        cache.insert("b", 2); // evicts "a" (capacity 1)
        assert!(cache.get("a").is_none());
        assert_eq!(cache.generation("a"), 4);
    }

    #[test]
    fn generation_survives_eviction() {
        let cache: SiteCache<u32> = SiteCache::new(1, 1);
        cache.insert("a", 1);
        cache.insert("b", 2); // evicts "a"
        assert_eq!(
            cache.insert("a", 3),
            2,
            "generation continues after eviction"
        );
    }

    #[test]
    fn sharding_is_stable_and_in_range() {
        let cache: SiteCache<u32> = SiteCache::new(16, 4);
        for key in ["alpha", "beta", "gamma", "delta"] {
            let s = cache.shard_of(key);
            assert!(s < cache.shard_count());
            assert_eq!(s, cache.shard_of(key), "shard choice must be stable");
        }
    }
}
