//! The `tablesegd` daemon: admission, dispatch, caching, rendering.
//!
//! One acceptor thread admits connections into a bounded queue (overflow
//! is answered `429` + `Retry-After` from the acceptor itself, so
//! backpressure costs no worker time); a fixed pool of workers drains
//! the queue, each handling one request per connection. Segmentation
//! requests fan their targets out over [`tableseg::batch::execute`].
//!
//! **Site-state lifecycle.** The list pages of a request are
//! fingerprinted and compared against the cached state:
//!
//! * all fingerprints equal → **warm**: the template and any per-target
//!   results are reused; no pipeline stage re-runs for cached targets
//!   and no induction runs ([`tableseg::template::induction_count`]
//!   stays flat).
//! * same page count, some bytes changed → **refresh**:
//!   [`SiteTemplate::try_refresh`] re-anchors the cached template onto
//!   the changed pages (no induction); if slot stability degraded it
//!   returns `None` and the state is **rebuilt** by full induction.
//! * anything else → **cold**: full build.
//!
//! Endpoints: `POST /segment`, `POST /invalidate`, `GET /metrics`
//! (Prometheus), `GET /healthz`.

use std::collections::HashMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use tableseg::obs::{
    self, git_describe, Counter, Hist, Manifest, Recorder, SpanKind, SpanNode, Volatile,
};
use tableseg::robustness::RobustnessReport;
use tableseg::{
    batch, caught, prepare_outcome, CspSegmenter, PageOutcome, ProbSegmenter, Segmenter,
    SiteTemplate,
};
use tableseg_html::SegError;

use crate::cache::{fingerprint, SiteCache};
use crate::http::{read_request, write_response, HttpRequest};
use crate::proto::{
    encode_response, parse_request, PageResultMsg, SegmentRequest, SegmentResponse, SegmenterMsg,
};

/// Daemon configuration. [`ServerConfig::default`] is sized for tests
/// and local runs; the `tablesegd` binary maps flags onto it.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address. Port 0 selects an ephemeral port; the bound
    /// address is reported by [`Server::addr`].
    pub addr: String,
    /// HTTP worker threads draining the admission queue.
    pub workers: usize,
    /// Batch-engine threads per segmentation request.
    pub batch_threads: usize,
    /// Total site-state cache capacity (entries).
    pub cache_capacity: usize,
    /// Cache shards.
    pub cache_shards: usize,
    /// Admission-queue depth. Connections beyond it get `429`.
    pub queue_depth: usize,
    /// Maximum request-body size in bytes.
    pub max_body: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            batch_threads: 2,
            cache_capacity: 64,
            cache_shards: 8,
            queue_depth: 64,
            max_body: 16 * 1024 * 1024,
            read_timeout: Duration::from_secs(10),
        }
    }
}

/// Cached per-site state: the page fingerprints it was built from, the
/// learned template, and per-target result blocks.
struct SiteState {
    fingerprints: Vec<u64>,
    template: Arc<SiteTemplate>,
    /// Finished per-target results, keyed by `(target, details
    /// fingerprint)`. A warm request whose targets are all resident
    /// re-runs nothing.
    results: Mutex<HashMap<(usize, u64), Arc<PageBlock>>>,
}

/// The per-target result in wire-independent form; rendered into the
/// response by [`PageBlock::to_msg`].
struct PageBlock {
    status: &'static str,
    whole_page: bool,
    warnings: Vec<String>,
    offsets: Vec<usize>,
    prob: Option<SegmenterMsg>,
    csp: Option<SegmenterMsg>,
    error: Option<(String, String)>,
    /// Deterministic pipeline metrics recorded while computing this
    /// block (merged into manifests of requests that *computed* it).
    metrics: Recorder,
}

impl PageBlock {
    fn to_msg(&self, target: usize, cached: bool) -> PageResultMsg {
        PageResultMsg {
            target,
            status: self.status.to_string(),
            cached,
            whole_page: self.whole_page,
            warnings: self.warnings.clone(),
            offsets: self.offsets.clone(),
            prob: self.prob.clone(),
            csp: self.csp.clone(),
            error: self.error.clone(),
        }
    }

    /// True when this block records a request-local deadline expiry
    /// rather than a property of the target itself.
    fn deadline_exceeded(&self) -> bool {
        matches!(&self.error, Some((stage, _)) if stage == "serve")
    }

    fn from_error(error: &SegError) -> PageBlock {
        PageBlock {
            status: "failed",
            whole_page: false,
            warnings: Vec::new(),
            offsets: Vec::new(),
            prob: None,
            csp: None,
            error: Some((error.stage().to_string(), error.to_string())),
            metrics: Recorder::new(),
        }
    }
}

struct Inner {
    config: ServerConfig,
    cache: SiteCache<Arc<SiteState>>,
    /// The `/metrics` sink: every request's counters plus the volatile
    /// latency histograms land here.
    global: Mutex<Recorder>,
    /// `git describe`, resolved once at startup (running it per request
    /// would fork a subprocess on the hot path).
    git: String,
    shutdown: AtomicBool,
    queue: Mutex<Vec<TcpStream>>,
    queue_ready: Condvar,
}

/// A running daemon. Dropping the handle does not stop it; call
/// [`Server::shutdown`].
pub struct Server {
    inner: Arc<Inner>,
    addr: SocketAddr,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds and starts the daemon. Worker and acceptor threads are
    /// running when this returns.
    pub fn start(config: ServerConfig) -> std::io::Result<Server> {
        // Pipeline recorders snapshot the global obs flag at creation:
        // turn it on so served requests carry real metrics.
        obs::set_enabled(true);
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;
        let inner = Arc::new(Inner {
            cache: SiteCache::new(config.cache_capacity, config.cache_shards),
            global: Mutex::new(Recorder::always_on()),
            git: git_describe(),
            shutdown: AtomicBool::new(false),
            queue: Mutex::new(Vec::new()),
            queue_ready: Condvar::new(),
            config,
        });
        let mut threads = Vec::new();
        for _ in 0..inner.config.workers.max(1) {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || worker_loop(&inner)));
        }
        {
            let inner = Arc::clone(&inner);
            threads.push(std::thread::spawn(move || acceptor_loop(&inner, listener)));
        }
        Ok(Server {
            inner,
            addr,
            threads,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, drains the workers and joins all threads.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        // Wake the acceptor out of accept() with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        self.inner.queue_ready.notify_all();
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn acceptor_loop(inner: &Inner, listener: TcpListener) {
    loop {
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        if inner.shutdown.load(Ordering::SeqCst) {
            inner.queue_ready.notify_all();
            return;
        }
        let mut queue = inner.queue.lock().unwrap();
        if queue.len() >= inner.config.queue_depth {
            drop(queue);
            // Backpressure: answer off the acceptor thread so a full
            // queue costs no worker time and no acceptor stalls. The
            // request must be drained before the socket closes —
            // closing with unread bytes sends a TCP reset that clobbers
            // the in-flight 429, and the client sees a connection error
            // instead of the retryable status.
            inner.global.lock().unwrap().incr(Counter::ServeRejected);
            let max_body = inner.config.max_body;
            let timeout = inner.config.read_timeout;
            std::thread::spawn(move || {
                let mut stream = stream;
                let _ = stream.set_read_timeout(Some(timeout));
                let _ = read_request(&mut stream, max_body);
                let _ = write_response(
                    &mut stream,
                    429,
                    "Too Many Requests",
                    &[("retry-after", "1")],
                    b"queue full\n",
                );
            });
            continue;
        }
        queue.insert(0, stream);
        inner.queue_ready.notify_one();
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let stream = {
            let mut queue = inner.queue.lock().unwrap();
            loop {
                if let Some(stream) = queue.pop() {
                    break stream;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                queue = inner.queue_ready.wait(queue).unwrap();
            }
        };
        handle_connection(inner, stream);
    }
}

fn handle_connection(inner: &Inner, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(inner.config.read_timeout));
    let request = match read_request(&mut stream, inner.config.max_body) {
        Ok(request) => request,
        Err(e) => {
            let (code, reason) = e.status();
            let _ = write_response(
                &mut stream,
                code,
                reason,
                &[],
                format!("{}\n", e.detail()).as_bytes(),
            );
            return;
        }
    };
    let started = Instant::now();
    // The whole handler is panic-contained: one poisoned request costs
    // one 500, not the daemon.
    let reply = caught("serve", || dispatch(inner, &request));
    let (code, reason, body) = match reply {
        Ok(reply) => reply,
        Err(e) => (500, "Internal Server Error", format!("{e}\n")),
    };
    let micros = started.elapsed().as_micros() as u64;
    inner
        .global
        .lock()
        .unwrap()
        .observe(Hist::ServeRequestMicros, micros);
    let _ = write_response(&mut stream, code, reason, &[], body.as_bytes());
}

fn dispatch(inner: &Inner, request: &HttpRequest) -> (u16, &'static str, String) {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET", "/healthz") => (200, "OK", "ok\n".to_string()),
        ("GET", "/metrics") => {
            let metrics = inner.global.lock().unwrap().clone();
            let manifest = Manifest {
                tool: "tablesegd".to_string(),
                config: Vec::new(),
                seeds: Vec::new(),
                metrics,
                robustness: None,
                root: SpanNode::new(SpanKind::Run, "tablesegd", 0),
                volatile: Volatile {
                    git_describe: inner.git.clone(),
                    threads: inner.config.batch_threads,
                },
            };
            (200, "OK", manifest.render_prometheus(false))
        }
        ("POST", "/invalidate") => {
            let site = String::from_utf8_lossy(&request.body).trim().to_string();
            if site.is_empty() {
                return (400, "Bad Request", "missing site name\n".to_string());
            }
            let mut global = inner.global.lock().unwrap();
            match inner.cache.invalidate(&site) {
                Some(generation) => {
                    global.incr(Counter::ServeInvalidations);
                    (
                        200,
                        "OK",
                        format!("invalidated {site} generation {generation}\n"),
                    )
                }
                None => (200, "OK", format!("unknown {site}\n")),
            }
        }
        ("POST", "/segment") => {
            let body = match std::str::from_utf8(&request.body) {
                Ok(body) => body,
                Err(_) => return (400, "Bad Request", "body not utf-8\n".to_string()),
            };
            let job = match parse_request(body) {
                Ok(job) => job,
                Err(e) => return (400, "Bad Request", format!("{e}\n")),
            };
            let deadline = request
                .header("x-deadline-ms")
                .and_then(|v| v.parse::<u64>().ok())
                .map(|ms| Instant::now() + Duration::from_millis(ms));
            let redact = request.header("x-tableseg-redact") == Some("1");
            match segment(inner, &job, deadline, redact) {
                Ok(resp) => (200, "OK", encode_response(&resp)),
                Err(e) => (422, "Unprocessable Entity", format!("{e}\n")),
            }
        }
        (_, "/healthz" | "/metrics" | "/invalidate" | "/segment") => (
            405,
            "Method Not Allowed",
            "method not allowed\n".to_string(),
        ),
        _ => (404, "Not Found", "no such endpoint\n".to_string()),
    }
}

/// How the per-site state was obtained for a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CacheKind {
    Cold,
    Warm,
    Refresh,
    Rebuild,
}

impl CacheKind {
    fn label(self) -> &'static str {
        match self {
            CacheKind::Cold => "cold",
            CacheKind::Warm => "warm",
            CacheKind::Refresh => "refresh",
            CacheKind::Rebuild => "rebuild",
        }
    }
}

fn segment(
    inner: &Inner,
    job: &SegmentRequest,
    deadline: Option<Instant>,
    redact: bool,
) -> Result<SegmentResponse, SegError> {
    let mut request_rec = Recorder::always_on();
    request_rec.incr(Counter::ServeRequests);
    request_rec.observe(Hist::ServePagesPerRequest, job.targets.len() as u64);

    let lists: Vec<&str> = job.list_pages.iter().map(String::as_str).collect();
    let fps: Vec<u64> = lists.iter().map(|p| fingerprint(p.as_bytes())).collect();

    // Resolve site state: warm hit, incremental refresh, or (re)build.
    let (kind, state, generation) = match inner.cache.get(&job.site) {
        Some((state, generation)) if state.fingerprints == fps => {
            request_rec.incr(Counter::ServeCacheHits);
            (CacheKind::Warm, state, generation)
        }
        Some((stale, _)) if stale.fingerprints.len() == fps.len() => {
            let changed: Vec<bool> = stale
                .fingerprints
                .iter()
                .zip(&fps)
                .map(|(old, new)| old != new)
                .collect();
            match stale.template.try_refresh(&lists, &changed) {
                Some(template) => {
                    request_rec.incr(Counter::ServeCacheRefreshes);
                    request_rec.merge(&template.metrics);
                    let state = Arc::new(SiteState {
                        fingerprints: fps.clone(),
                        template: Arc::new(template),
                        results: Mutex::new(HashMap::new()),
                    });
                    let generation = inner.cache.insert(&job.site, Arc::clone(&state));
                    (CacheKind::Refresh, state, generation)
                }
                None => {
                    request_rec.incr(Counter::ServeCacheMisses);
                    let (state, generation) = build_state(inner, &job.site, &lists, &fps)?;
                    (CacheKind::Rebuild, state, generation)
                }
            }
        }
        Some(_) | None => {
            request_rec.incr(Counter::ServeCacheMisses);
            let (state, generation) = build_state(inner, &job.site, &lists, &fps)?;
            (CacheKind::Cold, state, generation)
        }
    };
    if matches!(kind, CacheKind::Cold | CacheKind::Rebuild) {
        // Site-level build metrics (template.inductions among them) are
        // merged once per request, not once per target.
        request_rec.merge(&state.template.metrics);
    }

    // Per-target fan-out over the batch engine. Cached targets are
    // answered from the result cache without re-running any stage.
    let jobs: Vec<(usize, &crate::proto::TargetSpec)> = job.targets.iter().enumerate().collect();
    let blocks: Vec<(Arc<PageBlock>, bool)> =
        batch::execute(inner.config.batch_threads, jobs, |_, (_, spec)| {
            let key = (spec.target, details_fingerprint(&spec.details));
            if let Some(block) = state.results.lock().unwrap().get(&key) {
                return (Arc::clone(block), true);
            }
            let block = Arc::new(compute_block(&state.template, spec, deadline));
            // A deadline expiry is a property of *this* request, not of
            // the target: caching it would poison identical requests
            // that arrive with time to spare.
            if !block.deadline_exceeded() {
                state
                    .results
                    .lock()
                    .unwrap()
                    .insert(key, Arc::clone(&block));
            }
            (block, false)
        });

    // Roll the per-target outcomes into the response and manifest.
    let mut report = RobustnessReport::default();
    let mut page_results = Vec::with_capacity(blocks.len());
    let mut metrics = request_rec;
    for ((block, cached), spec) in blocks.iter().zip(&job.targets) {
        report.pages += 1;
        match block.status {
            "ok" => report.ok += 1,
            "degraded" => report.degraded += 1,
            _ => report.failed += 1,
        }
        for w in &block.warnings {
            bump_label(&mut report.warnings, w);
        }
        if let Some((stage, _)) = &block.error {
            bump_label(&mut report.failures_by_stage, stage);
            if stage == "serve" {
                metrics.incr(Counter::ServeDeadlineExceeded);
            }
        }
        if *cached {
            // Same meaning as the batch harness: the page was served by
            // cached per-site state instead of fresh work.
            metrics.incr(Counter::TemplateCacheHits);
        } else {
            metrics.merge(&block.metrics);
        }
        page_results.push(block.to_msg(spec.target, *cached));
    }

    let manifest = Manifest {
        tool: "tablesegd".to_string(),
        config: vec![
            ("site".to_string(), job.site.clone()),
            ("cache".to_string(), kind.label().to_string()),
            ("targets".to_string(), job.targets.len().to_string()),
        ],
        seeds: Vec::new(),
        metrics: metrics.clone(),
        robustness: Some(report.rollup()),
        root: SpanNode::new(SpanKind::Run, "tablesegd", 0),
        volatile: Volatile {
            git_describe: inner.git.clone(),
            threads: inner.config.batch_threads,
        },
    };

    inner.global.lock().unwrap().merge(&metrics);

    Ok(SegmentResponse {
        site: job.site.clone(),
        cache: kind.label().to_string(),
        generation,
        pages: report.pages,
        ok: report.ok,
        degraded: report.degraded,
        failed: report.failed,
        page_results,
        manifest: manifest.render_json(redact),
    })
}

/// The robustness report stores `&'static str` labels; serve-side
/// labels come from the fixed warning/stage vocabularies, so leak-free
/// interning is just a match over the known strings.
fn bump_label(rows: &mut Vec<(&'static str, usize)>, label: &str) {
    const KNOWN: &[&str] = &[
        "whole_page_fallback",
        "empty_list_page",
        "no_detail_pages",
        "empty_detail_page",
        "no_observations",
        "tokenize",
        "template",
        "extract",
        "match",
        "solve",
        "serve",
    ];
    let stable = KNOWN
        .iter()
        .find(|k| **k == label)
        .copied()
        .unwrap_or("other");
    match rows.iter_mut().find(|(l, _)| *l == stable) {
        Some(row) => row.1 += 1,
        None => rows.push((stable, 1)),
    }
}

fn details_fingerprint(details: &[String]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for d in details {
        h ^= fingerprint(d.as_bytes());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn build_state(
    inner: &Inner,
    site: &str,
    lists: &[&str],
    fps: &[u64],
) -> Result<(Arc<SiteState>, u64), SegError> {
    let template = SiteTemplate::try_build(lists)?;
    let state = Arc::new(SiteState {
        fingerprints: fps.to_vec(),
        template: Arc::new(template),
        results: Mutex::new(HashMap::new()),
    });
    let generation = inner.cache.insert(site, Arc::clone(&state));
    Ok((state, generation))
}

fn compute_block(
    template: &SiteTemplate,
    spec: &crate::proto::TargetSpec,
    deadline: Option<Instant>,
) -> PageBlock {
    // Graceful cancellation: a request past its deadline fails its
    // remaining targets through the fallible pipeline's error type
    // instead of computing them.
    if let Some(deadline) = deadline {
        if Instant::now() >= deadline {
            return PageBlock::from_error(&SegError::Internal {
                stage: "serve",
                detail: "deadline exceeded".to_string(),
            });
        }
    }
    let details: Vec<&str> = spec.details.iter().map(String::as_str).collect();
    let outcome = prepare_outcome(template, spec.target, &details);
    let (status, prepared, warnings): (&'static str, _, Vec<String>) = match &outcome {
        PageOutcome::Ok(page) => ("ok", page, Vec::new()),
        PageOutcome::Degraded { page, warnings } => (
            "degraded",
            page,
            warnings.iter().map(|w| w.label().to_string()).collect(),
        ),
        PageOutcome::Failed { error } => return PageBlock::from_error(error),
    };
    let mut metrics = prepared.metrics.clone();
    let mut run = |segmenter: &dyn Segmenter| {
        let outcome = segmenter.segment(&prepared.observations);
        metrics.merge(&outcome.metrics);
        SegmenterMsg {
            relaxed: outcome.relaxed,
            groups: outcome.segmentation.records(),
        }
    };
    let prob = run(&ProbSegmenter::default());
    let csp = run(&CspSegmenter::default());
    PageBlock {
        status,
        whole_page: prepared.used_whole_page,
        warnings,
        offsets: prepared.extract_offsets.clone(),
        prob: Some(prob),
        csp: Some(csp),
        error: None,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_kind_labels_are_distinct() {
        let labels: Vec<&str> = [
            CacheKind::Cold,
            CacheKind::Warm,
            CacheKind::Refresh,
            CacheKind::Rebuild,
        ]
        .iter()
        .map(|k| k.label())
        .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len());
    }

    #[test]
    fn bump_label_interns_known_labels() {
        let mut rows = Vec::new();
        bump_label(&mut rows, "serve");
        bump_label(&mut rows, "serve");
        bump_label(&mut rows, "solve");
        assert_eq!(rows, vec![("serve", 2), ("solve", 1)]);
    }
}
