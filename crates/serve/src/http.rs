//! A minimal HTTP/1.1 reader/writer over `std::net::TcpStream`.
//!
//! Hand-rolled because the workspace builds offline with no external
//! dependencies. The subset is deliberately small: one request per
//! connection (`Connection: close` semantics), a capped header block,
//! `Content-Length` bodies only (no chunked encoding), and every parse
//! failure mapped to a definite 4xx status so the daemon can answer
//! malformed traffic without panicking.

use std::io::{Read, Write};
use std::net::TcpStream;

/// Maximum size of the request line + headers, in bytes.
pub const MAX_HEAD: usize = 16 * 1024;

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpRequest {
    /// Request method (`GET`, `POST`, ...), as sent.
    pub method: String,
    /// Request path, query string included.
    pub path: String,
    /// Header name/value pairs in arrival order. Names are lowercased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl HttpRequest {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request could not be read. Each variant maps to one HTTP
/// status via [`HttpError::status`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// The bytes on the wire are not an HTTP/1.1 request (bad request
    /// line, bad header syntax, oversized head, non-numeric length).
    Malformed(&'static str),
    /// The declared `Content-Length` exceeds the server's body cap. The
    /// body is *not* read: the check runs on the header alone.
    TooLarge {
        /// The configured cap, in bytes.
        limit: usize,
    },
    /// The peer closed the connection before the request was complete
    /// (truncated head or body).
    Truncated,
    /// The read timed out before the request was complete.
    Timeout,
}

impl HttpError {
    /// The HTTP status code and reason phrase for this error.
    pub fn status(&self) -> (u16, &'static str) {
        match self {
            HttpError::Malformed(_) => (400, "Bad Request"),
            HttpError::TooLarge { .. } => (413, "Payload Too Large"),
            HttpError::Truncated => (400, "Bad Request"),
            HttpError::Timeout => (408, "Request Timeout"),
        }
    }

    /// A one-line human-readable description (the error response body).
    pub fn detail(&self) -> String {
        match self {
            HttpError::Malformed(what) => format!("malformed request: {what}"),
            HttpError::TooLarge { limit } => {
                format!("body exceeds the {limit}-byte limit")
            }
            HttpError::Truncated => "connection closed mid-request".to_string(),
            HttpError::Timeout => "timed out reading the request".to_string(),
        }
    }
}

fn io_error(e: &std::io::Error) -> HttpError {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => HttpError::Timeout,
        std::io::ErrorKind::UnexpectedEof
        | std::io::ErrorKind::ConnectionReset
        | std::io::ErrorKind::ConnectionAborted
        | std::io::ErrorKind::BrokenPipe => HttpError::Truncated,
        _ => HttpError::Malformed("io error"),
    }
}

/// Reads one HTTP/1.1 request from `stream`, rejecting bodies larger
/// than `max_body` *before* reading them.
pub fn read_request(stream: &mut TcpStream, max_body: usize) -> Result<HttpRequest, HttpError> {
    // Head: everything up to the blank line, capped at MAX_HEAD.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD {
            return Err(HttpError::Malformed("request head too large"));
        }
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = std::str::from_utf8(&buf[..head_end])
        .map_err(|_| HttpError::Malformed("head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let method = parts.next().unwrap_or("").to_string();
    let path = parts.next().unwrap_or("").to_string();
    let version = parts.next().unwrap_or("");
    if method.is_empty() || path.is_empty() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::Malformed("bad request line"));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or(HttpError::Malformed("bad header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    let content_length = match headers.iter().find(|(n, _)| n == "content-length") {
        None => 0,
        Some((_, v)) => v
            .parse::<usize>()
            .map_err(|_| HttpError::Malformed("bad content-length"))?,
    };
    if content_length > max_body {
        return Err(HttpError::TooLarge { limit: max_body });
    }
    // Body: whatever followed the head in the buffer, then the rest.
    let mut body: Vec<u8> = buf[head_end + 4..].to_vec();
    if body.len() > content_length {
        return Err(HttpError::Malformed("body longer than content-length"));
    }
    while body.len() < content_length {
        let n = stream.read(&mut chunk).map_err(|e| io_error(&e))?;
        if n == 0 {
            return Err(HttpError::Truncated);
        }
        body.extend_from_slice(&chunk[..n]);
        if body.len() > content_length {
            return Err(HttpError::Malformed("body longer than content-length"));
        }
    }
    Ok(HttpRequest {
        method,
        path,
        headers,
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Writes an HTTP/1.1 response with `Content-Length` and
/// `Connection: close`. Write errors are returned (the peer may have
/// disconnected mid-response); callers treat them as a closed client.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!("HTTP/1.1 {status} {reason}\r\n");
    head.push_str("connection: close\r\n");
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    fn roundtrip(raw: &[u8], max_body: usize) -> Result<HttpRequest, HttpError> {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw.to_vec();
        let writer = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(&raw).unwrap();
        });
        let (mut stream, _) = listener.accept().unwrap();
        let got = read_request(&mut stream, max_body);
        writer.join().unwrap();
        got
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /segment HTTP/1.1\r\nContent-Length: 5\r\nX-Deadline-Ms: 250\r\n\r\nhello";
        let req = roundtrip(raw, 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/segment");
        assert_eq!(req.header("x-deadline-ms"), Some("250"));
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn rejects_oversized_body_from_the_header_alone() {
        let raw = b"POST /segment HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert_eq!(
            roundtrip(raw, 1024),
            Err(HttpError::TooLarge { limit: 1024 })
        );
    }

    #[test]
    fn rejects_truncated_body() {
        let raw = b"POST /x HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort";
        assert_eq!(roundtrip(raw, 1024), Err(HttpError::Truncated));
    }

    #[test]
    fn rejects_garbage_request_line() {
        assert!(matches!(
            roundtrip(b"NONSENSE\r\n\r\n", 1024),
            Err(HttpError::Malformed(_))
        ));
    }

    #[test]
    fn error_statuses_are_4xx() {
        for e in [
            HttpError::Malformed("x"),
            HttpError::TooLarge { limit: 1 },
            HttpError::Truncated,
            HttpError::Timeout,
        ] {
            let (code, _) = e.status();
            assert!((400..500).contains(&code), "{e:?} -> {code}");
        }
    }
}
