//! Raw-TCP client helpers for `tablesegd`.
//!
//! Shared by `tablesegctl`, the black-box test suites and `servebench`
//! so all of them speak to the daemon exactly the way an external
//! client would: bytes over a socket, no in-process shortcuts.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::proto::{encode_request, parse_response, SegmentRequest, SegmentResponse};

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one HTTP/1.1 request and reads the full response.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: tablesegd\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_http_response(&mut stream)
}

fn read_http_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| std::io::Error::other("response head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// Submits a segmentation job. `deadline_ms` maps to `X-Deadline-Ms`,
/// `redact` to `X-Tableseg-Redact: 1` (deterministic manifests).
pub fn segment(
    addr: SocketAddr,
    job: &SegmentRequest,
    deadline_ms: Option<u64>,
    redact: bool,
) -> Result<SegmentResponse, String> {
    let mut headers: Vec<(&str, String)> = Vec::new();
    if let Some(ms) = deadline_ms {
        headers.push(("x-deadline-ms", ms.to_string()));
    }
    if redact {
        headers.push(("x-tableseg-redact", "1".to_string()));
    }
    let borrowed: Vec<(&str, &str)> = headers.iter().map(|(n, v)| (*n, v.as_str())).collect();
    let resp = http_request(
        addr,
        "POST",
        "/segment",
        &borrowed,
        encode_request(job).as_bytes(),
    )
    .map_err(|e| format!("transport: {e}"))?;
    if resp.status != 200 {
        return Err(format!("http {}: {}", resp.status, resp.text().trim()));
    }
    parse_response(&resp.text())
}

/// Invalidates a site's cached state. Returns the server's reply line.
pub fn invalidate(addr: SocketAddr, site: &str) -> std::io::Result<String> {
    let resp = http_request(addr, "POST", "/invalidate", &[], site.as_bytes())?;
    Ok(resp.text().trim().to_string())
}

/// Fetches the Prometheus metrics dump.
pub fn metrics(addr: SocketAddr) -> std::io::Result<String> {
    Ok(http_request(addr, "GET", "/metrics", &[], b"")?.text())
}

/// `true` when `/healthz` answers 200.
pub fn healthz(addr: SocketAddr) -> bool {
    http_request(addr, "GET", "/healthz", &[], b"")
        .map(|r| r.status == 200)
        .unwrap_or(false)
}
