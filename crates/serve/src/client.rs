//! Raw-TCP client helpers for `tablesegd`.
//!
//! Shared by `tablesegctl`, the black-box test suites and `servebench`
//! so all of them speak to the daemon exactly the way an external
//! client would: bytes over a socket, no in-process shortcuts.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use crate::proto::{encode_request, parse_response, SegmentRequest, SegmentResponse};

/// A parsed HTTP response.
#[derive(Debug, Clone)]
pub struct HttpResponse {
    /// Status code.
    pub status: u16,
    /// Header name/value pairs, names lowercased.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl HttpResponse {
    /// The first value of header `name` (lowercase), if present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Sends one HTTP/1.1 request and reads the full response.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    headers: &[(&str, &str)],
    body: &[u8],
) -> std::io::Result<HttpResponse> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(60)))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nhost: tablesegd\r\n");
    for (name, value) in headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str(&format!("content-length: {}\r\n\r\n", body.len()));
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()?;
    read_http_response(&mut stream)
}

fn read_http_response(stream: &mut TcpStream) -> std::io::Result<HttpResponse> {
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| std::io::Error::other("no header terminator in response"))?;
    let head = std::str::from_utf8(&raw[..head_end])
        .map_err(|_| std::io::Error::other("response head not utf-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or("");
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| std::io::Error::other("bad status line"))?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    Ok(HttpResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// Backoff behavior for requests the daemon sheds with `429 Too Many
/// Requests` (its admission queue is full).
///
/// The daemon's `Retry-After` header (whole seconds) is honored when
/// present, capped at [`RetryPolicy::max_wait`]; without the header the
/// wait doubles from [`RetryPolicy::initial_wait`] per attempt, under
/// the same cap. Any other status, and transport errors, fail
/// immediately — only explicit backpressure is worth waiting out.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` = fail on the first 429).
    pub retries: u32,
    /// Wait before the first retry when the server names no
    /// `Retry-After`.
    pub initial_wait: Duration,
    /// Upper bound on any single wait, including server-suggested ones.
    pub max_wait: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            retries: 3,
            initial_wait: Duration::from_millis(100),
            max_wait: Duration::from_secs(2),
        }
    }
}

impl RetryPolicy {
    /// No retries: every 429 is returned to the caller at once.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            retries: 0,
            initial_wait: Duration::ZERO,
            max_wait: Duration::ZERO,
        }
    }

    /// The wait before retry number `attempt` (0-based) given the
    /// response's `Retry-After` value, if any.
    fn wait(&self, attempt: u32, retry_after_secs: Option<u64>) -> Duration {
        let suggested = match retry_after_secs {
            Some(secs) => Duration::from_secs(secs),
            None => self.initial_wait.saturating_mul(1 << attempt.min(16)),
        };
        suggested.min(self.max_wait)
    }
}

/// Submits a segmentation job. `deadline_ms` maps to `X-Deadline-Ms`,
/// `redact` to `X-Tableseg-Redact: 1` (deterministic manifests).
/// Backpressure (`429`) is retried under the default [`RetryPolicy`];
/// use [`segment_with_retry`] to tune or disable that.
pub fn segment(
    addr: SocketAddr,
    job: &SegmentRequest,
    deadline_ms: Option<u64>,
    redact: bool,
) -> Result<SegmentResponse, String> {
    segment_with_retry(addr, job, deadline_ms, redact, &RetryPolicy::default())
}

/// [`segment`] with an explicit backpressure policy.
pub fn segment_with_retry(
    addr: SocketAddr,
    job: &SegmentRequest,
    deadline_ms: Option<u64>,
    redact: bool,
    policy: &RetryPolicy,
) -> Result<SegmentResponse, String> {
    let mut headers: Vec<(&str, String)> = Vec::new();
    if let Some(ms) = deadline_ms {
        headers.push(("x-deadline-ms", ms.to_string()));
    }
    if redact {
        headers.push(("x-tableseg-redact", "1".to_string()));
    }
    let borrowed: Vec<(&str, &str)> = headers.iter().map(|(n, v)| (*n, v.as_str())).collect();
    let body = encode_request(job);
    let mut attempt = 0u32;
    loop {
        let resp = http_request(addr, "POST", "/segment", &borrowed, body.as_bytes())
            .map_err(|e| format!("transport: {e}"))?;
        if resp.status == 200 {
            return parse_response(&resp.text());
        }
        if resp.status == 429 && attempt < policy.retries {
            let retry_after = resp.header("retry-after").and_then(|v| v.parse().ok());
            std::thread::sleep(policy.wait(attempt, retry_after));
            attempt += 1;
            continue;
        }
        let attempts = attempt + 1;
        return Err(format!(
            "http {} after {attempts} attempt(s): {}",
            resp.status,
            resp.text().trim()
        ));
    }
}

/// Invalidates a site's cached state. Returns the server's reply line.
pub fn invalidate(addr: SocketAddr, site: &str) -> std::io::Result<String> {
    let resp = http_request(addr, "POST", "/invalidate", &[], site.as_bytes())?;
    Ok(resp.text().trim().to_string())
}

/// Fetches the Prometheus metrics dump.
pub fn metrics(addr: SocketAddr) -> std::io::Result<String> {
    Ok(http_request(addr, "GET", "/metrics", &[], b"")?.text())
}

/// `true` when `/healthz` answers 200.
pub fn healthz(addr: SocketAddr) -> bool {
    http_request(addr, "GET", "/healthz", &[], b"")
        .map(|r| r.status == 200)
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::{Server, ServerConfig};
    use std::time::Instant;

    fn job() -> SegmentRequest {
        SegmentRequest {
            site: "retry-test".to_string(),
            list_pages: vec!["<html><table><tr><td>A</td></tr></table></html>".to_string()],
            targets: Vec::new(),
        }
    }

    /// A zero-depth admission queue sheds every connection with 429 +
    /// `Retry-After: 1`, so the client must exhaust its retries (capped
    /// waits — the suggested 1s must not be honored beyond `max_wait`)
    /// and surface the final 429.
    #[test]
    fn backpressure_is_retried_then_surfaced() {
        let server = Server::start(ServerConfig {
            queue_depth: 0,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        let policy = RetryPolicy {
            retries: 3,
            initial_wait: Duration::from_millis(1),
            max_wait: Duration::from_millis(5),
        };
        let t = Instant::now();
        let err = segment_with_retry(server.addr(), &job(), None, false, &policy)
            .expect_err("every attempt is shed");
        let elapsed = t.elapsed();
        assert!(err.contains("http 429"), "{err}");
        assert!(err.contains("after 4 attempt(s)"), "{err}");
        assert!(
            elapsed < Duration::from_secs(1),
            "waits must be capped at max_wait, not the server's 1s: {elapsed:?}"
        );
        server.shutdown();
    }

    #[test]
    fn no_retry_policy_fails_on_the_first_429() {
        let server = Server::start(ServerConfig {
            queue_depth: 0,
            ..ServerConfig::default()
        })
        .expect("bind ephemeral port");
        let err = segment_with_retry(server.addr(), &job(), None, false, &RetryPolicy::none())
            .expect_err("shed without retrying");
        assert!(err.contains("after 1 attempt(s)"), "{err}");
        server.shutdown();
    }

    #[test]
    fn waits_honor_retry_after_up_to_the_cap() {
        let policy = RetryPolicy {
            retries: 5,
            initial_wait: Duration::from_millis(100),
            max_wait: Duration::from_secs(2),
        };
        // Server-suggested waits win when under the cap.
        assert_eq!(policy.wait(0, Some(1)), Duration::from_secs(1));
        assert_eq!(policy.wait(0, Some(60)), Duration::from_secs(2));
        // Without a header the wait doubles per attempt, under the cap.
        assert_eq!(policy.wait(0, None), Duration::from_millis(100));
        assert_eq!(policy.wait(1, None), Duration::from_millis(200));
        assert_eq!(policy.wait(10, None), Duration::from_secs(2));
    }
}
