//! Property test: the sharded LRU site cache against a naive oracle.
//!
//! The oracle is a plain map with explicit use timestamps and a
//! generation map — the obviously-correct implementation. Random
//! insert/get/invalidate sequences must agree with it on hit/miss,
//! returned values, generation numbers, eviction order (which key is
//! the LRU victim) and capacity bounds, for single- and multi-shard
//! configurations.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use tableseg_serve::SiteCache;

/// The naive model: one `ShardModel` per shard (mirroring
/// `SiteCache::shard_of`), each a map plus timestamps.
struct ShardModel {
    entries: HashMap<String, (u32, u64)>,
    generations: HashMap<String, u64>,
    tick: u64,
    capacity: usize,
}

impl ShardModel {
    fn new(capacity: usize) -> ShardModel {
        ShardModel {
            entries: HashMap::new(),
            generations: HashMap::new(),
            tick: 0,
            capacity,
        }
    }

    fn get(&mut self, key: &str) -> Option<(u32, u64)> {
        self.tick += 1;
        let tick = self.tick;
        let generation = self.generations.get(key).copied().unwrap_or(0);
        let entry = self.entries.get_mut(key)?;
        entry.1 = tick;
        Some((entry.0, generation))
    }

    fn insert(&mut self, key: &str, value: u32) -> u64 {
        self.tick += 1;
        let tick = self.tick;
        let generation = self.generations.entry(key.to_string()).or_insert(0);
        *generation += 1;
        let generation = *generation;
        self.entries.insert(key.to_string(), (value, tick));
        while self.entries.len() > self.capacity {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(_, (_, used))| *used)
                .map(|(k, _)| k.clone())
                .unwrap();
            self.entries.remove(&victim);
        }
        generation
    }

    fn invalidate(&mut self, key: &str) -> Option<u64> {
        self.entries.remove(key)?;
        let generation = self.generations.get_mut(key).unwrap();
        *generation += 1;
        Some(*generation)
    }
}

fn run_against_oracle(seed: u64, capacity: usize, shards: usize, ops: usize) {
    let cache: SiteCache<u32> = SiteCache::new(capacity, shards);
    let per_shard = (capacity / shards.max(1)).max(1);
    let mut models: Vec<ShardModel> = (0..cache.shard_count())
        .map(|_| ShardModel::new(per_shard))
        .collect();
    let keys: Vec<String> = (0..12).map(|i| format!("site-{i}")).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_value: u32 = 0;
    for step in 0..ops {
        let key = &keys[rng.random_range(0..keys.len())];
        let model = &mut models[cache.shard_of(key)];
        let ctx = format!("seed {seed} capacity {capacity} shards {shards} step {step} key {key}");
        match rng.random_range(0u32..10) {
            // get: hit/miss, value and generation must agree.
            0..=4 => {
                assert_eq!(cache.get(key), model.get(key), "get disagrees ({ctx})");
            }
            // insert: generations must agree.
            5..=7 => {
                next_value += 1;
                assert_eq!(
                    cache.insert(key, next_value),
                    model.insert(key, next_value),
                    "insert generation disagrees ({ctx})"
                );
            }
            // invalidate: presence and generation must agree.
            _ => {
                assert_eq!(
                    cache.invalidate(key),
                    model.invalidate(key),
                    "invalidate disagrees ({ctx})"
                );
            }
        }
        // Capacity bound holds at every step.
        let stats = cache.stats();
        assert!(
            stats.entries <= stats.capacity,
            "cache over capacity ({ctx}): {stats:?}"
        );
        let model_entries: usize = models.iter().map(|m| m.entries.len()).sum();
        assert_eq!(stats.entries, model_entries, "occupancy disagrees ({ctx})");
    }
    // Final sweep: exact same resident set and generations everywhere.
    for key in &keys {
        let model = &mut models[cache.shard_of(key)];
        assert_eq!(
            cache.generation(key),
            model.generations.get(key.as_str()).copied().unwrap_or(0)
        );
        assert_eq!(
            cache.get(key),
            model.get(key),
            "final state disagrees on {key}"
        );
    }
}

#[test]
fn single_shard_cache_matches_oracle() {
    // One shard: the model is exactly global strict LRU.
    for seed in 0..8 {
        run_against_oracle(seed, 4, 1, 600);
    }
}

#[test]
fn multi_shard_cache_matches_oracle() {
    for seed in 0..8 {
        run_against_oracle(100 + seed, 8, 4, 600);
    }
}

#[test]
fn tiny_cache_thrashes_correctly() {
    // Capacity 1 forces an eviction on almost every insert.
    for seed in 0..8 {
        run_against_oracle(200 + seed, 1, 1, 400);
    }
}
