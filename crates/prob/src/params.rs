//! Model parameters and their M-step updates.

use tableseg_html::TokenType;

/// Laplace smoothing added to every count before normalization.
const SMOOTH: f64 = 0.05;

/// The learnable parameters of the factored model.
#[derive(Debug, Clone, PartialEq)]
pub struct Params {
    /// `theta[c][t] = P(T_t = 1 | C = c)` — per-column Bernoulli emission
    /// probabilities for the eight token types.
    pub theta: Vec<[f64; TokenType::COUNT]>,
    /// `trans[c][c']` — within-record column transition `P(C' = c' | C = c)`
    /// for `c' > c`; rows are normalized over their feasible targets.
    pub trans: Vec<Vec<f64>>,
    /// First-column distribution is deterministic (records start at L1),
    /// so it is not stored.
    ///
    /// `pi[l]` — the record-period distribution: probability that a record
    /// ends at column label `l` (0-based; `pi[0]` = records spanning only
    /// L1).
    pub pi: Vec<f64>,
    /// `end_prob[c]` — independently learned per-column record-end
    /// probability, used *instead of* the π-derived hazard when the period
    /// model is disabled (the Figure 2 ablation).
    pub end_prob: Vec<f64>,
}

impl Params {
    /// Uniform initial parameters for `k` columns, with the period prior
    /// `pi` (normalized by the constructor).
    pub fn uniform(num_columns: usize, pi: Vec<f64>) -> Params {
        let theta = vec![[0.5; TokenType::COUNT]; num_columns];
        let mut trans = Vec::with_capacity(num_columns);
        for c in 0..num_columns {
            // Prefer the immediately following column; allow skips with
            // geometric decay.
            let mut row = vec![0.0; num_columns];
            let mut w = 1.0;
            for slot in row.iter_mut().skip(c + 1) {
                *slot = w;
                w *= 0.5;
            }
            normalize(&mut row);
            trans.push(row);
        }
        let mut pi = pi;
        if pi.len() != num_columns {
            pi.resize(num_columns, 0.0);
        }
        normalize_or_uniform(&mut pi);
        let end_prob = vec![0.3; num_columns];
        Params {
            theta,
            trans,
            pi,
            end_prob,
        }
    }

    /// Number of column labels.
    pub fn num_columns(&self) -> usize {
        self.theta.len()
    }

    /// The emission probability `P(T_i | C = c)` for a feature vector.
    pub fn emission(&self, c: usize, features: &[bool; TokenType::COUNT]) -> f64 {
        let th = &self.theta[c];
        let mut p = 1.0;
        for (t, &on) in features.iter().enumerate() {
            p *= if on { th[t] } else { 1.0 - th[t] };
        }
        p
    }

    /// The duration hazard: probability that a record ends at column `c`
    /// given it has reached column `c` — `π(c) / Σ_{l ≥ c} π(l)`.
    ///
    /// Clamped away from 0 and 1 so transitions stay strictly positive.
    pub fn hazard(&self, c: usize) -> f64 {
        let tail: f64 = self.pi[c..].iter().sum();
        let h = if tail <= f64::EPSILON {
            1.0
        } else {
            self.pi[c] / tail
        };
        h.clamp(0.01, 0.99)
    }

    /// M-step: rebuilds parameters from expected counts (with smoothing).
    ///
    /// * `type_counts[c][t]` — expected number of extracts in column `c`
    ///   with feature `t` set; `col_counts[c]` — expected extracts in `c`;
    /// * `trans_counts[c][c']` — expected within-record transitions;
    /// * `end_counts[c]` / `cont_counts[c]` — expected record ends /
    ///   continues out of column `c`.
    pub fn update(
        &mut self,
        type_counts: &[Vec<f64>],
        col_counts: &[f64],
        trans_counts: &[Vec<f64>],
        end_counts: &[f64],
        cont_counts: &[f64],
    ) {
        let k = self.num_columns();
        for c in 0..k {
            for (t, &tc) in type_counts[c].iter().enumerate().take(TokenType::COUNT) {
                self.theta[c][t] = (tc + SMOOTH) / (col_counts[c] + 2.0 * SMOOTH);
            }
        }
        for (c, tcounts) in trans_counts.iter().enumerate().take(k) {
            let mut row: Vec<f64> = (0..k)
                .map(|cp| if cp > c { tcounts[cp] + SMOOTH } else { 0.0 })
                .collect();
            normalize_or_uniform_tail(&mut row, c + 1);
            self.trans[c] = row;
        }
        let mut pi: Vec<f64> = end_counts.iter().map(|&e| e + SMOOTH).collect();
        normalize_or_uniform(&mut pi);
        self.pi = pi;
        for c in 0..k {
            self.end_prob[c] = ((end_counts[c] + SMOOTH)
                / (end_counts[c] + cont_counts[c] + 2.0 * SMOOTH))
                .clamp(0.01, 0.99);
        }
    }
}

/// Normalizes a vector to sum 1; leaves it untouched if the sum is 0.
pub fn normalize(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    }
}

/// Normalizes, falling back to the uniform distribution when the sum is 0.
pub fn normalize_or_uniform(v: &mut [f64]) {
    let sum: f64 = v.iter().sum();
    if sum > 0.0 {
        for x in v.iter_mut() {
            *x /= sum;
        }
    } else if !v.is_empty() {
        let u = 1.0 / v.len() as f64;
        v.fill(u);
    }
}

/// Normalizes `v[from..]`, falling back to uniform over that tail. Entries
/// before `from` are zeroed.
fn normalize_or_uniform_tail(v: &mut [f64], from: usize) {
    let cut = from.min(v.len());
    for x in v[..cut].iter_mut() {
        *x = 0.0;
    }
    if from >= v.len() {
        return;
    }
    let sum: f64 = v[from..].iter().sum();
    if sum > 0.0 {
        for x in v[from..].iter_mut() {
            *x /= sum;
        }
    } else {
        let u = 1.0 / (v.len() - from) as f64;
        for x in v[from..].iter_mut() {
            *x = u;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_params_are_normalized() {
        let p = Params::uniform(4, vec![1.0, 1.0, 1.0, 1.0]);
        assert_eq!(p.num_columns(), 4);
        for c in 0..3 {
            let sum: f64 = p.trans[c].iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {c}: {sum}");
            // Only forward transitions.
            for cp in 0..=c {
                assert_eq!(p.trans[c][cp], 0.0);
            }
        }
        let pi_sum: f64 = p.pi.iter().sum();
        assert!((pi_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn last_column_row_is_all_zero() {
        let p = Params::uniform(3, vec![1.0; 3]);
        assert!(p.trans[2].iter().all(|&x| x == 0.0));
    }

    #[test]
    fn emission_uniform_is_constant() {
        let p = Params::uniform(2, vec![1.0, 1.0]);
        let a = p.emission(0, &[true; 8]);
        let b = p.emission(0, &[false; 8]);
        assert!((a - b).abs() < 1e-12);
        assert!((a - 0.5f64.powi(8)).abs() < 1e-15);
    }

    #[test]
    fn emission_prefers_matching_types() {
        let mut p = Params::uniform(1, vec![1.0]);
        p.theta[0] = [0.9, 0.1, 0.9, 0.1, 0.9, 0.9, 0.1, 0.1];
        let matching = [true, false, true, false, true, true, false, false];
        let opposite = [false, true, false, true, false, false, true, true];
        assert!(p.emission(0, &matching) > p.emission(0, &opposite));
    }

    #[test]
    fn hazard_of_peaked_period() {
        // All records have exactly 3 columns (index 2).
        let mut p = Params::uniform(4, vec![0.0, 0.0, 1.0, 0.0]);
        p.pi = vec![0.0, 0.0, 1.0, 0.0];
        assert!(p.hazard(0) <= 0.01 + 1e-12);
        assert!(p.hazard(1) <= 0.01 + 1e-12);
        assert!(p.hazard(2) >= 0.99 - 1e-12);
    }

    #[test]
    fn hazard_clamps_degenerate_tail() {
        let mut p = Params::uniform(2, vec![1.0, 0.0]);
        p.pi = vec![1.0, 0.0];
        // Past the mass: tail is 0 → hazard clamps to 0.99.
        assert!((p.hazard(1) - 0.99).abs() < 1e-12);
    }

    #[test]
    fn update_normalizes_everything() {
        let mut p = Params::uniform(3, vec![1.0; 3]);
        let type_counts = vec![vec![2.0; 8], vec![0.0; 8], vec![1.0; 8]];
        let col_counts = vec![4.0, 0.0, 2.0];
        let trans_counts = vec![vec![0.0, 3.0, 1.0], vec![0.0, 0.0, 2.0], vec![0.0; 3]];
        let end_counts = vec![0.0, 1.0, 3.0];
        let cont_counts = vec![4.0, 2.0, 0.0];
        p.update(
            &type_counts,
            &col_counts,
            &trans_counts,
            &end_counts,
            &cont_counts,
        );
        for c in 0..3 {
            for t in 0..8 {
                assert!(p.theta[c][t] > 0.0 && p.theta[c][t] < 1.0);
            }
        }
        let s: f64 = p.trans[0].iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p.trans[0][1] > p.trans[0][2]);
        let s: f64 = p.pi.iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert!(p.pi[2] > p.pi[1]);
    }

    #[test]
    fn normalize_helpers() {
        let mut v = vec![2.0, 2.0];
        normalize(&mut v);
        assert_eq!(v, vec![0.5, 0.5]);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
        normalize_or_uniform(&mut z);
        assert_eq!(z, vec![0.5, 0.5]);
    }
}
