//! The chain structure of the factored model: states, transitions, and the
//! observed feature vectors.
//!
//! The hidden state for extract `i` is the pair `(R_i, C_i)`; transitions
//! either continue the current record in a strictly later column
//! (`(r, c) → (r, c')`, `c' > c` — column *skips* model missing fields,
//! Section 5.2.2) or start a new record at the first column
//! (`(r, c) → (r', 0)`, `r' > r` — record skips model records without
//! list-page extracts). Record labels never decrease: the tables are laid
//! out horizontally (Section 3.2).

use tableseg_extract::Observations;
use tableseg_html::{TokenType, TypeSet};

/// Dimensions of the chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Dims {
    /// `K`: number of records (detail pages).
    pub num_records: usize,
    /// `k`: number of column labels `L1..Lk`.
    pub num_columns: usize,
}

impl Dims {
    /// Number of `(r, c)` states.
    pub fn num_states(&self) -> usize {
        self.num_records * self.num_columns
    }

    /// Packs `(r, c)` into a state index.
    #[inline]
    pub fn state(&self, r: usize, c: usize) -> usize {
        debug_assert!(r < self.num_records && c < self.num_columns);
        r * self.num_columns + c
    }

    /// Unpacks a state index into `(r, c)`.
    #[inline]
    pub fn unpack(&self, s: usize) -> (usize, usize) {
        (s / self.num_columns, s % self.num_columns)
    }
}

/// The observed evidence for one extract: its token-type vector and its
/// detail-page occurrence set.
#[derive(Debug, Clone)]
pub struct Evidence {
    /// `T_i`: one bit per [`TokenType`], the union of the types of the
    /// extract's tokens.
    pub types: TypeSet,
    /// `D_i` as a sorted list of record indices.
    pub pages: Vec<u32>,
}

impl Evidence {
    /// The binary feature vector `T_{i,1..8}`.
    pub fn features(&self) -> [bool; TokenType::COUNT] {
        let mut out = [false; TokenType::COUNT];
        for (t, slot) in TokenType::ALL.iter().zip(out.iter_mut()) {
            *slot = self.types.contains(*t);
        }
        out
    }

    /// `true` if record `r` is in `D_i`.
    pub fn on_page(&self, r: usize) -> bool {
        self.pages.binary_search(&(r as u32)).is_ok()
    }
}

/// Builds the evidence sequence from an observation table.
pub fn evidence(obs: &Observations) -> Vec<Evidence> {
    obs.items
        .iter()
        .map(|item| Evidence {
            // `T_i` was unioned once at match time; no token walk here.
            types: item.types,
            pages: item.pages.clone(),
        })
        .collect()
}

/// A human-readable description of the graphical model, used by the
/// experiment binary that regenerates Figures 2 and 3.
pub fn describe(period_model: bool) -> String {
    let mut s = String::new();
    s.push_str("Variables (per extract i):\n");
    s.push_str("  observed T_i  : token types of E_i (8 binary features)\n");
    s.push_str("  observed D_i  : detail pages on which E_i occurs\n");
    s.push_str("  hidden   R_i  : record number (1..K)\n");
    s.push_str("  hidden   C_i  : column label (L1..Lk)\n");
    s.push_str("  hidden   S_i  : record-start indicator\n");
    s.push_str("Dependencies:\n");
    s.push_str("  P(T_i | C_i)             token type depends on the column\n");
    s.push_str("  P(C_i | C_{i-1})         column transition\n");
    s.push_str("  P(S_i | C_i)             deterministic: S_i = (C_i = L1)\n");
    s.push_str("  P(R_i | R_{i-1}, D_i, S_i) record advance, constrained by D_i\n");
    if period_model {
        s.push_str("  pi, pi_j                 hierarchical record-period model\n");
        s.push_str("  P(C_i | ..., pi_j)       column conditioned on record length\n");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_extract::build_observations;
    use tableseg_html::lexer::tokenize;
    use tableseg_html::Token;

    #[test]
    fn dims_pack_unpack() {
        let d = Dims {
            num_records: 3,
            num_columns: 4,
        };
        assert_eq!(d.num_states(), 12);
        for r in 0..3 {
            for c in 0..4 {
                let s = d.state(r, c);
                assert_eq!(d.unpack(s), (r, c));
            }
        }
    }

    #[test]
    fn evidence_unions_token_types() {
        let list = tokenize("<td>John Smith</td><td>(740) 335-5555</td>");
        let d1 = tokenize("<p>John Smith</p>");
        let d2 = tokenize("<p>(740) 335-5555</p>");
        let d3 = tokenize("<p>other</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2, &d3];
        let obs = build_observations(&list, &[], &details);
        let ev = evidence(&obs);
        assert_eq!(ev.len(), 2);
        // "John Smith": capitalized alphabetic.
        assert!(ev[0].types.contains(TokenType::Capitalized));
        assert!(ev[0].types.contains(TokenType::Alphanumeric));
        assert!(!ev[0].types.contains(TokenType::Numeric));
        // Phone: punctuation + numeric.
        assert!(ev[1].types.contains(TokenType::Punctuation));
        assert!(ev[1].types.contains(TokenType::Numeric));
        assert!(!ev[1].types.contains(TokenType::Alphabetic));
        // Page lookups.
        assert!(ev[0].on_page(0));
        assert!(!ev[0].on_page(1));
    }

    #[test]
    fn features_vector_matches_typeset() {
        let ev = Evidence {
            types: TypeSet::single(TokenType::Numeric)
                .union(TypeSet::single(TokenType::Alphanumeric)),
            pages: vec![],
        };
        let f = ev.features();
        assert!(f[TokenType::Numeric.bit() as usize]);
        assert!(f[TokenType::Alphanumeric.bit() as usize]);
        assert_eq!(f.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn describe_mentions_period_only_when_enabled() {
        assert!(describe(true).contains("pi"));
        assert!(!describe(false).contains("pi_j"));
    }
}
