//! The probabilistic approach to record segmentation (Section 5 of the
//! paper).
//!
//! A factored hidden Markov model over the extracts of a list page. For
//! each extract `E_i` the *observed* variables are its token types `T_i`
//! (an 8-dimensional binary vector) and `D_i`, the set of detail pages on
//! which it occurs. The *hidden* variables are the record number `R_i`, the
//! column label `C_i` and the record-start indicator `S_i` (deterministic
//! given `C_i`: a record always starts at the first column, Section 5.1).
//!
//! The paper's three ingredients are all here:
//!
//! * **Factor** — the chain state is the pair `(R, C)`; emissions factor
//!   into per-type Bernoullis `P(T_t | C)` and the detail-page evidence
//!   `P(R | D)` ([`model`], [`params`]);
//! * **Bootstrap** — detail pages initialize the record beliefs
//!   (`P(R_i = r) = 1/|D_i|` for `r ∈ D_i`) and definite record starts
//!   (`D_{i-1} ∩ D_i = ∅ ⇒ S_i = true`) seed the period distribution
//!   ([`bootstrap`]);
//! * **Structure** — a hierarchical record-period model π turns record
//!   length into a duration distribution whose hazard drives the
//!   start-of-record transitions ([`params::Params::hazard`]).
//!
//! Learning is EM with a log-space forward–backward pass
//! ([`forward_backward`], [`em`]); the final segmentation is the Viterbi
//! MAP assignment of `(R, C)` ([`viterbi`]), which also yields the *column
//! extraction* of Section 3.4.
//!
//! Unlike the CSP, impossible record assignments (`r ∉ D_i`) get a small
//! probability ε rather than zero — this is exactly why "the probabilistic
//! approach ... tolerates such inconsistencies" (Section 6.3).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bootstrap;
pub mod em;
pub mod forward_backward;
pub mod model;
pub mod params;
pub mod viterbi;

use serde::{Deserialize, Serialize};
use tableseg_extract::{Observations, Segmentation};

/// Options for the probabilistic segmenter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbOptions {
    /// Maximum EM iterations.
    pub max_iterations: usize,
    /// Stop when the log-likelihood improves by less than this.
    pub tolerance: f64,
    /// Probability mass given to record assignments outside `D_i`
    /// (the dirty-data tolerance). Must be in `(0, 1)`.
    pub epsilon: f64,
    /// Geometric penalty for skipping a record with no extracts.
    pub skip_penalty: f64,
    /// Disable the hierarchical period model π (Figure 2 instead of
    /// Figure 3); used by the ablation experiments.
    pub period_model: bool,
    /// Run EM with the original per-cell log-space forward–backward pass
    /// instead of the scaled linear-space one. Slower; kept as the
    /// differential oracle for the scaled implementation and as the
    /// `solvebench` baseline.
    pub log_space: bool,
    /// Memoize per-type-vector emission rows and run the forward–backward
    /// inner loops over the flattened CSR chain. Bit-identical to the
    /// unmemoized scaled pass; `false` restores it (the `solvebench`
    /// prev leg). Ignored when `log_space` is set.
    #[serde(default = "default_memo_e_step")]
    pub memo_e_step: bool,
}

fn default_memo_e_step() -> bool {
    true
}

impl Default for ProbOptions {
    fn default() -> ProbOptions {
        ProbOptions {
            max_iterations: 20,
            tolerance: 1e-4,
            epsilon: 1e-6,
            skip_penalty: 0.1,
            period_model: true,
            log_space: false,
            memo_e_step: default_memo_e_step(),
        }
    }
}

/// Wall-clock nanoseconds spent in the EM sub-stages of one run, fed into
/// the timing registry as `solve.em.e_step`, `solve.em.m_step` and
/// `solve.viterbi`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmTiming {
    /// Emissions + forward–backward, summed over iterations.
    pub e_step_ns: u64,
    /// Parameter updates + chain refreshes, summed over iterations.
    pub m_step_ns: u64,
    /// Final MAP decode (including its emission refresh).
    pub viterbi_ns: u64,
}

/// The result of the probabilistic approach on one list page.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProbOutcome {
    /// The record segmentation (always total: the model tolerates
    /// inconsistencies instead of leaving extracts unassigned).
    pub segmentation: Segmentation,
    /// Column label `C_i` (0-based) for each extract — the column
    /// extraction of Section 3.4.
    pub columns: Vec<u32>,
    /// Final data log-likelihood.
    pub log_likelihood: f64,
    /// EM iterations actually run.
    pub iterations: usize,
    /// The learned record-period distribution π (index 0 = length 1).
    pub period: Vec<f64>,
    /// Wall-clock nanoseconds per EM sub-stage.
    pub timing: EmTiming,
}

/// Runs the probabilistic approach of Section 5 on an observation table.
pub fn segment_prob(obs: &Observations, opts: &ProbOptions) -> ProbOutcome {
    em::run(obs, opts)
}
