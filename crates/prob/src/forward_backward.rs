//! The chain over `(R, C)` states and the log-space forward–backward pass.
//!
//! This is the "variant of the forward-backward algorithm that exploits the
//! hierarchical nature of the record segmentation problem" (Section 5.2.3):
//! the period model enters as the duration *hazard* on the
//! record-boundary transitions, which constrains the structure of the chain
//! and keeps inference linear in the number of extracts.

use crate::model::{Dims, Evidence};
use crate::params::Params;
use crate::ProbOptions;

/// Log-probability floor used for fallback transitions (and impossible
/// record evidence). Keeps every observation sequence explainable, which is
/// precisely the dirty-data tolerance of the probabilistic approach.
pub(crate) const LOG_FALLBACK: f64 = -18.0; // ≈ ln(1.5e-8)

/// The kind of a chain edge, used to route expected counts in the M-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Within-record column advance `c → c'`.
    Continue {
        /// Source column.
        from_c: usize,
        /// Target column (`> from_c`).
        to_c: usize,
    },
    /// Record boundary out of column `c` (target column is 0).
    NewRecord {
        /// Column at which the previous record ended.
        from_c: usize,
    },
    /// Low-probability escape hatch (state self-loop) that keeps the chain
    /// live when no legal move exists.
    Fallback,
}

/// One outgoing edge: target state, transition probability (both linear
/// and log scale), kind.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Target state index.
    pub to: usize,
    /// Linear transition probability (used by the scaled pass).
    pub p: f64,
    /// Log transition probability (used by the log-space oracle).
    pub logp: f64,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// The transition structure for one parameter setting.
///
/// The edge *topology* depends only on the dimensions and options (the
/// M-step smoothing and hazard clamps keep every transition probability
/// strictly positive), so a chain is built once per instance and only its
/// probabilities are refreshed each EM iteration via [`refresh_chain`].
#[derive(Debug, Clone)]
pub struct Chain {
    /// State-space dimensions.
    pub dims: Dims,
    /// Initial log-distribution over states (record starts).
    pub init: Vec<f64>,
    /// Initial linear distribution (exp of `init`).
    pub init_linear: Vec<f64>,
    /// Outgoing edges per state.
    pub edges: Vec<Vec<Edge>>,
}

/// Builds the chain for the current parameters.
pub fn build_chain(dims: Dims, params: &Params, opts: &ProbOptions) -> Chain {
    let nk = dims.num_records;
    let k = dims.num_columns;
    let mut init = vec![f64::NEG_INFINITY; dims.num_states()];
    // The first extract starts a record: state (r, 0), geometric over
    // skipped leading records.
    let mut w = 1.0;
    let mut total = 0.0;
    for _ in 0..nk {
        total += w;
        w *= opts.skip_penalty;
    }
    let mut w = 1.0;
    for r in 0..nk {
        init[dims.state(r, 0)] = (w / total).ln();
        w *= opts.skip_penalty;
    }

    let mut edges: Vec<Vec<Edge>> = Vec::with_capacity(dims.num_states());
    for s in 0..dims.num_states() {
        let (r, c) = dims.unpack(s);
        let hz = params.hazard_for(c, opts.period_model);
        let mut out = Vec::new();
        // Continue within the record.
        for cp in c + 1..k {
            let p = (1.0 - hz) * params.trans[c][cp];
            if p > 0.0 {
                out.push(Edge {
                    to: dims.state(r, cp),
                    p,
                    logp: p.ln(),
                    kind: EdgeKind::Continue {
                        from_c: c,
                        to_c: cp,
                    },
                });
            }
        }
        // Start a new record.
        if r + 1 < nk {
            let mut g = 1.0;
            let mut total = 0.0;
            for _ in r + 1..nk {
                total += g;
                g *= opts.skip_penalty;
            }
            let mut g = 1.0;
            for rp in r + 1..nk {
                let p = hz * g / total;
                g *= opts.skip_penalty;
                if p > 0.0 {
                    out.push(Edge {
                        to: dims.state(rp, 0),
                        p,
                        logp: p.ln(),
                        kind: EdgeKind::NewRecord { from_c: c },
                    });
                }
            }
        }
        // Escape hatch.
        out.push(Edge {
            to: s,
            p: LOG_FALLBACK.exp(),
            logp: LOG_FALLBACK,
            kind: EdgeKind::Fallback,
        });
        edges.push(out);
    }

    let init_linear = init.iter().map(|&l| l.exp()).collect();
    Chain {
        dims,
        init,
        init_linear,
        edges,
    }
}

/// Recomputes edge probabilities in place for updated parameters, keeping
/// the topology built by [`build_chain`]. The initial distribution depends
/// only on the options, so it is untouched.
pub fn refresh_chain(chain: &mut Chain, params: &Params, opts: &ProbOptions) {
    let nk = chain.dims.num_records;
    // Geometric skip weights 1, q, q², … normalized over the remaining
    // records; precompute the normalizer for every source record.
    let mut skip_total = vec![0.0f64; nk];
    for (r, slot) in skip_total.iter_mut().enumerate() {
        let mut g = 1.0;
        for _ in r + 1..nk {
            *slot += g;
            g *= opts.skip_penalty;
        }
    }
    for s in 0..chain.edges.len() {
        let (r, c) = chain.dims.unpack(s);
        let hz = params.hazard_for(c, opts.period_model);
        for e in &mut chain.edges[s] {
            let p = match e.kind {
                EdgeKind::Continue { from_c, to_c } => (1.0 - hz) * params.trans[from_c][to_c],
                EdgeKind::NewRecord { .. } => {
                    let (rp, _) = chain.dims.unpack(e.to);
                    hz * opts.skip_penalty.powi((rp - r - 1) as i32) / skip_total[r]
                }
                EdgeKind::Fallback => continue,
            };
            e.p = p;
            e.logp = p.ln();
        }
    }
}

impl Params {
    /// The record-end probability at column `c`: the π-derived duration
    /// hazard under the period model, or the independently learned
    /// per-column end probability without it.
    pub fn hazard_for(&self, c: usize, period_model: bool) -> f64 {
        if period_model {
            self.hazard(c)
        } else {
            self.end_prob[c]
        }
    }
}

/// Log emission table: `emit[i][s] = ln P(T_i | c) + ln P(D_i | r)`.
pub fn log_emissions(
    evidence: &[Evidence],
    params: &Params,
    dims: Dims,
    opts: &ProbOptions,
) -> Vec<Vec<f64>> {
    let log_eps = opts.epsilon.ln();
    evidence
        .iter()
        .map(|ev| {
            let feats = ev.features();
            let per_col: Vec<f64> = (0..dims.num_columns)
                .map(|c| params.emission(c, &feats).max(1e-300).ln())
                .collect();
            (0..dims.num_states())
                .map(|s| {
                    let (r, c) = dims.unpack(s);
                    let d = if ev.on_page(r) {
                        -(ev.pages.len() as f64).ln()
                    } else {
                        log_eps
                    };
                    per_col[c] + d
                })
                .collect()
        })
        .collect()
}

/// Expected sufficient statistics from one E-step.
#[derive(Debug, Clone, Default)]
pub struct Counts {
    /// Expected extracts per column.
    pub col: Vec<f64>,
    /// Expected feature activations per column: `[c][t]`.
    pub types: Vec<Vec<f64>>,
    /// Expected within-record transitions `[c][c']`.
    pub trans: Vec<Vec<f64>>,
    /// Expected record ends at column `c` (boundary edges + final state).
    pub end: Vec<f64>,
    /// Expected continues out of column `c`.
    pub cont: Vec<f64>,
}

impl Counts {
    fn zeros(k: usize) -> Counts {
        Counts {
            col: vec![0.0; k],
            types: vec![vec![0.0; 8]; k],
            trans: vec![vec![0.0; k]; k],
            end: vec![0.0; k],
            cont: vec![0.0; k],
        }
    }

    /// Re-zeros (and, on a column-count change, re-shapes) the tables in
    /// place, reusing their allocations across EM iterations.
    fn reset(&mut self, k: usize) {
        if self.col.len() != k {
            *self = Counts::zeros(k);
            return;
        }
        self.col.fill(0.0);
        self.end.fill(0.0);
        self.cont.fill(0.0);
        for row in &mut self.types {
            row.fill(0.0);
        }
        for row in &mut self.trans {
            row.fill(0.0);
        }
    }
}

/// The result of a forward–backward pass.
#[derive(Debug, Clone)]
pub struct FbResult {
    /// Log-likelihood of the evidence.
    pub log_likelihood: f64,
    /// State posteriors `gamma[i][s]` (linear scale, each row sums to 1).
    pub gamma: Vec<Vec<f64>>,
    /// Expected counts for the M-step.
    pub counts: Counts,
}

/// Runs forward–backward, returning posteriors and expected counts.
pub fn forward_backward(chain: &Chain, emits: &[Vec<f64>], evidence: &[Evidence]) -> FbResult {
    let n = emits.len();
    let ns = chain.dims.num_states();
    let k = chain.dims.num_columns;
    assert_eq!(n, evidence.len());
    if n == 0 {
        return FbResult {
            log_likelihood: 0.0,
            gamma: Vec::new(),
            counts: Counts::zeros(k),
        };
    }

    // Forward.
    let mut alpha = vec![vec![f64::NEG_INFINITY; ns]; n];
    for s in 0..ns {
        alpha[0][s] = chain.init[s] + emits[0][s];
    }
    for i in 1..n {
        let (prev, cur) = {
            let (a, b) = alpha.split_at_mut(i);
            (&a[i - 1], &mut b[0])
        };
        for (s, out) in chain.edges.iter().enumerate() {
            let a = prev[s];
            if a == f64::NEG_INFINITY {
                continue;
            }
            for e in out {
                let v = a + e.logp + emits[i][e.to];
                cur[e.to] = log_add(cur[e.to], v);
            }
        }
    }
    let log_likelihood = log_sum(&alpha[n - 1]);

    // Backward.
    let mut beta = vec![vec![f64::NEG_INFINITY; ns]; n];
    beta[n - 1].fill(0.0);
    for i in (0..n - 1).rev() {
        let (cur, next) = {
            let (a, b) = beta.split_at_mut(i + 1);
            (&mut a[i], &b[0])
        };
        for (s, out) in chain.edges.iter().enumerate() {
            let mut acc = f64::NEG_INFINITY;
            for e in out {
                acc = log_add(acc, e.logp + emits[i + 1][e.to] + next[e.to]);
            }
            cur[s] = acc;
        }
    }

    // Posteriors and counts.
    let mut gamma = vec![vec![0.0; ns]; n];
    let mut counts = Counts::zeros(k);
    for i in 0..n {
        let feats = evidence[i].features();
        for s in 0..ns {
            let lg = alpha[i][s] + beta[i][s] - log_likelihood;
            let g = lg.exp();
            gamma[i][s] = g;
            if g > 0.0 {
                let (_, c) = chain.dims.unpack(s);
                counts.col[c] += g;
                for (t, &on) in feats.iter().enumerate() {
                    if on {
                        counts.types[c][t] += g;
                    }
                }
            }
        }
    }
    // Edge posteriors.
    for i in 0..n - 1 {
        for (s, out) in chain.edges.iter().enumerate() {
            let a = alpha[i][s];
            if a == f64::NEG_INFINITY {
                continue;
            }
            for e in out {
                let lxi = a + e.logp + emits[i + 1][e.to] + beta[i + 1][e.to] - log_likelihood;
                let xi = lxi.exp();
                if xi <= 0.0 {
                    continue;
                }
                match e.kind {
                    EdgeKind::Continue { from_c, to_c } => {
                        counts.trans[from_c][to_c] += xi;
                        counts.cont[from_c] += xi;
                    }
                    EdgeKind::NewRecord { from_c } => {
                        counts.end[from_c] += xi;
                    }
                    EdgeKind::Fallback => {}
                }
            }
        }
    }
    // The last extract ends its record at its column.
    for (s, &g) in gamma[n - 1].iter().enumerate() {
        let (_, c) = chain.dims.unpack(s);
        counts.end[c] += g;
    }

    FbResult {
        log_likelihood,
        gamma,
        counts,
    }
}

/// Reusable flat arenas for the scaled forward–backward pass.
///
/// Every table is a contiguous row-major `Vec<f64>` with stride
/// `num_states` (`table[i * ns + s]`), sized once per instance and reused
/// across EM iterations — after the first iteration no table grows (see
/// the arena regression test in `tests/fb_props.rs`).
#[derive(Debug, Clone, Default)]
pub struct FbWorkspace {
    /// Linear emissions, each row scaled so its maximum is 1.
    pub emits: Vec<f64>,
    /// `ln` of each row's scale factor (the pre-scaling row maximum).
    pub emit_scale: Vec<f64>,
    /// Scaled forward variables α̂.
    pub alpha: Vec<f64>,
    /// Scaled backward variables β̂.
    pub beta: Vec<f64>,
    /// State posteriors γ (linear, each row sums to 1).
    pub gamma: Vec<f64>,
    /// Per-step normalizers `c_i` (the forward row sums before scaling).
    pub scale: Vec<f64>,
    /// Expected counts for the M-step.
    pub counts: Counts,
    /// Scratch: per-column emission probabilities for one extract.
    per_col: Vec<f64>,
    /// Scratch: `b_{i+1}(s) · β̂_{i+1}(s) / c_{i+1}` during the backward
    /// sweep.
    tmp: Vec<f64>,
}

impl FbWorkspace {
    /// An empty workspace; tables are sized on first use.
    pub fn new() -> FbWorkspace {
        FbWorkspace::default()
    }

    /// Sizes every table for `n` extracts, `ns` states and `k` columns,
    /// reusing existing capacity.
    pub fn prepare(&mut self, n: usize, ns: usize, k: usize) {
        let cells = n * ns;
        self.emits.clear();
        self.emits.resize(cells, 0.0);
        self.alpha.clear();
        self.alpha.resize(cells, 0.0);
        self.beta.clear();
        self.beta.resize(cells, 0.0);
        self.gamma.clear();
        self.gamma.resize(cells, 0.0);
        self.emit_scale.clear();
        self.emit_scale.resize(n, 0.0);
        self.scale.clear();
        self.scale.resize(n, 1.0);
        self.per_col.clear();
        self.per_col.resize(k, 0.0);
        self.tmp.clear();
        self.tmp.resize(ns, 0.0);
        self.counts.reset(k);
    }

    /// Total reserved capacity of the per-extract tables, in `f64` cells —
    /// the regression-test observable for "the arena stops growing".
    pub fn table_capacity(&self) -> usize {
        self.emits.capacity()
            + self.alpha.capacity()
            + self.beta.capacity()
            + self.gamma.capacity()
            + self.emit_scale.capacity()
            + self.scale.capacity()
    }
}

/// Fills the workspace's emission arena with *linear* emissions
/// `P(T_i | c) · P(D_i | r)`, each row scaled by its maximum (recorded as
/// `emit_scale[i] = ln max`) so the scaled pass works near 1.0.
pub fn emissions_into(
    evidence: &[Evidence],
    params: &Params,
    dims: Dims,
    opts: &ProbOptions,
    ws: &mut FbWorkspace,
) {
    let ns = dims.num_states();
    let k = dims.num_columns;
    ws.prepare(evidence.len(), ns, k);
    for (i, ev) in evidence.iter().enumerate() {
        let feats = ev.features();
        for c in 0..k {
            ws.per_col[c] = params.emission(c, &feats);
        }
        let inv_pages = 1.0 / ev.pages.len().max(1) as f64;
        let row = &mut ws.emits[i * ns..(i + 1) * ns];
        let mut max = 0.0f64;
        for (s, slot) in row.iter_mut().enumerate() {
            let (r, c) = dims.unpack(s);
            let d = if ev.on_page(r) {
                inv_pages
            } else {
                opts.epsilon
            };
            let v = ws.per_col[c] * d;
            *slot = v;
            if v > max {
                max = v;
            }
        }
        if max > 0.0 {
            for slot in row.iter_mut() {
                *slot /= max;
            }
            ws.emit_scale[i] = max.ln();
        } else {
            ws.emit_scale[i] = 0.0;
        }
    }
}

/// The scaled linear-space forward–backward pass (Rabiner scaling): the
/// same posteriors and expected counts as [`forward_backward`] without a
/// single `ln`/`exp` per cell; the log-likelihood is recovered from the
/// per-step normalizers and the emission row scales,
/// `ll = Σᵢ ln cᵢ + Σᵢ emit_scale[i]`.
///
/// Expects [`emissions_into`] to have filled `ws` for this evidence.
/// Posteriors land in `ws.gamma`, expected counts in `ws.counts`; returns
/// the log-likelihood.
pub fn forward_backward_scaled(chain: &Chain, ws: &mut FbWorkspace, evidence: &[Evidence]) -> f64 {
    let n = evidence.len();
    let ns = chain.dims.num_states();
    let k = chain.dims.num_columns;
    debug_assert_eq!(ws.emits.len(), n * ns, "emissions_into must run first");
    if n == 0 {
        ws.counts.reset(k);
        return 0.0;
    }

    // Forward.
    for s in 0..ns {
        ws.alpha[s] = chain.init_linear[s] * ws.emits[s];
    }
    normalize_step(&mut ws.alpha[..ns], &mut ws.scale[0]);
    for i in 1..n {
        let (prev_rows, cur_rows) = ws.alpha.split_at_mut(i * ns);
        let prev = &prev_rows[(i - 1) * ns..];
        let cur = &mut cur_rows[..ns];
        cur.fill(0.0);
        for (s, out) in chain.edges.iter().enumerate() {
            let a = prev[s];
            if a == 0.0 {
                continue;
            }
            for e in out {
                cur[e.to] += a * e.p;
            }
        }
        let emit_row = &ws.emits[i * ns..(i + 1) * ns];
        for (slot, &em) in cur.iter_mut().zip(emit_row) {
            *slot *= em;
        }
        normalize_step(cur, &mut ws.scale[i]);
    }
    let log_likelihood: f64 =
        ws.scale.iter().map(|c| c.ln()).sum::<f64>() + ws.emit_scale.iter().sum::<f64>();

    // Backward sweep with edge-posterior accumulation: at step i we have
    // tmp[t] = b_{i+1}(t) · β̂_{i+1}(t) / c_{i+1}, giving both
    // β̂_i(s) = Σ_e p_e · tmp[e.to] and ξ_i(s, e.to) = α̂_i(s) · p_e · tmp[e.to].
    ws.counts.reset(k);
    ws.beta[(n - 1) * ns..].fill(1.0);
    for i in (0..n - 1).rev() {
        let inv_c = 1.0 / ws.scale[i + 1];
        for t in 0..ns {
            ws.tmp[t] = ws.emits[(i + 1) * ns + t] * ws.beta[(i + 1) * ns + t] * inv_c;
        }
        for (s, out) in chain.edges.iter().enumerate() {
            let mut b = 0.0;
            for e in out {
                b += e.p * ws.tmp[e.to];
            }
            ws.beta[i * ns + s] = b;
            let a = ws.alpha[i * ns + s];
            if a == 0.0 {
                continue;
            }
            for e in out {
                let xi = a * e.p * ws.tmp[e.to];
                if xi <= 0.0 {
                    continue;
                }
                match e.kind {
                    EdgeKind::Continue { from_c, to_c } => {
                        ws.counts.trans[from_c][to_c] += xi;
                        ws.counts.cont[from_c] += xi;
                    }
                    EdgeKind::NewRecord { from_c } => {
                        ws.counts.end[from_c] += xi;
                    }
                    EdgeKind::Fallback => {}
                }
            }
        }
    }

    // Posteriors and node counts: γ_i(s) = α̂_i(s) · β̂_i(s) already sums
    // to 1 per row under this scaling.
    for (i, ev) in evidence.iter().enumerate() {
        let feats = ev.features();
        for s in 0..ns {
            let g = ws.alpha[i * ns + s] * ws.beta[i * ns + s];
            ws.gamma[i * ns + s] = g;
            if g > 0.0 {
                let (_, c) = chain.dims.unpack(s);
                ws.counts.col[c] += g;
                for (t, &on) in feats.iter().enumerate() {
                    if on {
                        ws.counts.types[c][t] += g;
                    }
                }
            }
        }
    }
    // The last extract ends its record at its column.
    for s in 0..ns {
        let (_, c) = chain.dims.unpack(s);
        ws.counts.end[c] += ws.gamma[(n - 1) * ns + s];
    }

    log_likelihood
}

/// Divides one α row by its sum, recording the sum as that step's
/// normalizer. A zero row (impossible while the fallback edge exists)
/// normalizes by 1 to keep the pass finite.
#[inline]
fn normalize_step(row: &mut [f64], scale: &mut f64) {
    let c: f64 = row.iter().sum();
    let c = if c > 0.0 { c } else { 1.0 };
    for x in row.iter_mut() {
        *x /= c;
    }
    *scale = c;
}

/// `ln(e^a + e^b)` with care for negative infinity.
#[inline]
pub fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// `ln Σ e^xᵢ`.
pub fn log_sum(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, log_add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evidence;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn small_setup() -> (Vec<Evidence>, Dims, Params, ProbOptions) {
        let list = tokenize("<td>Alpha One</td><td>100</td><td>Beta Two</td><td>200</td>");
        let d1 = tokenize("<p>Alpha One</p><p>100</p>");
        let d2 = tokenize("<p>Beta Two</p><p>200</p>");
        let d3 = tokenize("<p>x</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2, &d3];
        let obs = build_observations(&list, &[], &details);
        let ev = evidence(&obs);
        let dims = Dims {
            num_records: 3,
            num_columns: 2,
        };
        let params = Params::uniform(2, vec![1.0, 1.0]);
        (ev, dims, params, ProbOptions::default())
    }

    #[test]
    fn chain_init_prefers_first_record() {
        let (_, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let s00 = dims.state(0, 0);
        let s10 = dims.state(1, 0);
        assert!(chain.init[s00] > chain.init[s10]);
        // Non-first-column states are unreachable initially.
        assert_eq!(chain.init[dims.state(0, 1)], f64::NEG_INFINITY);
    }

    #[test]
    fn edges_are_forward_only() {
        let (_, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        for (s, out) in chain.edges.iter().enumerate() {
            let (r, c) = dims.unpack(s);
            for e in out {
                let (rp, cp) = dims.unpack(e.to);
                match e.kind {
                    EdgeKind::Continue { .. } => {
                        assert_eq!(rp, r);
                        assert!(cp > c);
                    }
                    EdgeKind::NewRecord { .. } => {
                        assert!(rp > r);
                        assert_eq!(cp, 0);
                    }
                    EdgeKind::Fallback => {
                        assert_eq!(e.to, s);
                        assert_eq!(e.logp, LOG_FALLBACK);
                    }
                }
            }
        }
    }

    #[test]
    fn gamma_rows_sum_to_one() {
        let (ev, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let fb = forward_backward(&chain, &emits, &ev);
        assert!(fb.log_likelihood.is_finite());
        for row in &fb.gamma {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn detail_evidence_dominates_record_posterior() {
        let (ev, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let fb = forward_backward(&chain, &emits, &ev);
        // Extract 0 ("Alpha One") is on detail page 0 only.
        let mut p_r0 = 0.0;
        for c in 0..dims.num_columns {
            p_r0 += fb.gamma[0][dims.state(0, c)];
        }
        assert!(p_r0 > 0.99, "{p_r0}");
        // Extract 2 ("Beta Two") is on detail page 1 only.
        let mut p_r1 = 0.0;
        for c in 0..dims.num_columns {
            p_r1 += fb.gamma[2][dims.state(1, c)];
        }
        assert!(p_r1 > 0.99, "{p_r1}");
    }

    #[test]
    fn counts_are_consistent() {
        let (ev, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let fb = forward_backward(&chain, &emits, &ev);
        // Total column mass equals the number of extracts.
        let total: f64 = fb.counts.col.iter().sum();
        assert!((total - ev.len() as f64).abs() < 1e-6, "{total}");
        // Ends + continues ≈ n (every extract either continues or ends,
        // modulo fallback edges).
        let flow: f64 = fb.counts.end.iter().sum::<f64>() + fb.counts.cont.iter().sum::<f64>();
        assert!((flow - ev.len() as f64).abs() < 0.05, "{flow}");
    }

    #[test]
    fn empty_sequence() {
        let (_, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let fb = forward_backward(&chain, &[], &[]);
        assert_eq!(fb.log_likelihood, 0.0);
        assert!(fb.gamma.is_empty());
    }

    #[test]
    fn log_helpers() {
        assert!((log_add(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_add(f64::NEG_INFINITY, -1.0), -1.0);
        assert_eq!(log_add(-1.0, f64::NEG_INFINITY), -1.0);
        let v = [0.0, 0.0, 0.0, 0.0];
        assert!((log_sum(&v) - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(log_sum(&[]), f64::NEG_INFINITY);
    }
}
