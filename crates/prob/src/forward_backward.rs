//! The chain over `(R, C)` states and the log-space forward–backward pass.
//!
//! This is the "variant of the forward-backward algorithm that exploits the
//! hierarchical nature of the record segmentation problem" (Section 5.2.3):
//! the period model enters as the duration *hazard* on the
//! record-boundary transitions, which constrains the structure of the chain
//! and keeps inference linear in the number of extracts.

use crate::model::{Dims, Evidence};
use crate::params::Params;
use crate::ProbOptions;

/// Log-probability floor used for fallback transitions (and impossible
/// record evidence). Keeps every observation sequence explainable, which is
/// precisely the dirty-data tolerance of the probabilistic approach.
pub(crate) const LOG_FALLBACK: f64 = -18.0; // ≈ ln(1.5e-8)

/// The kind of a chain edge, used to route expected counts in the M-step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    /// Within-record column advance `c → c'`.
    Continue {
        /// Source column.
        from_c: usize,
        /// Target column (`> from_c`).
        to_c: usize,
    },
    /// Record boundary out of column `c` (target column is 0).
    NewRecord {
        /// Column at which the previous record ended.
        from_c: usize,
    },
    /// Low-probability escape hatch (state self-loop) that keeps the chain
    /// live when no legal move exists.
    Fallback,
}

/// One outgoing edge: target state, transition probability (both linear
/// and log scale), kind.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// Target state index.
    pub to: usize,
    /// Linear transition probability (used by the scaled pass).
    pub p: f64,
    /// Log transition probability (used by the log-space oracle).
    pub logp: f64,
    /// Edge kind.
    pub kind: EdgeKind,
}

/// The transition structure for one parameter setting.
///
/// The edge *topology* depends only on the dimensions and options (the
/// M-step smoothing and hazard clamps keep every transition probability
/// strictly positive), so a chain is built once per instance and only its
/// probabilities are refreshed each EM iteration via [`refresh_chain`].
#[derive(Debug, Clone)]
pub struct Chain {
    /// State-space dimensions.
    pub dims: Dims,
    /// Initial log-distribution over states (record starts).
    pub init: Vec<f64>,
    /// Initial linear distribution (exp of `init`).
    pub init_linear: Vec<f64>,
    /// Outgoing edges per state.
    pub edges: Vec<Vec<Edge>>,
}

/// Builds the chain for the current parameters.
pub fn build_chain(dims: Dims, params: &Params, opts: &ProbOptions) -> Chain {
    let nk = dims.num_records;
    let k = dims.num_columns;
    let mut init = vec![f64::NEG_INFINITY; dims.num_states()];
    // The first extract starts a record: state (r, 0), geometric over
    // skipped leading records.
    let mut w = 1.0;
    let mut total = 0.0;
    for _ in 0..nk {
        total += w;
        w *= opts.skip_penalty;
    }
    let mut w = 1.0;
    for r in 0..nk {
        init[dims.state(r, 0)] = (w / total).ln();
        w *= opts.skip_penalty;
    }

    let mut edges: Vec<Vec<Edge>> = Vec::with_capacity(dims.num_states());
    for s in 0..dims.num_states() {
        let (r, c) = dims.unpack(s);
        let hz = params.hazard_for(c, opts.period_model);
        let mut out = Vec::new();
        // Continue within the record.
        for cp in c + 1..k {
            let p = (1.0 - hz) * params.trans[c][cp];
            if p > 0.0 {
                out.push(Edge {
                    to: dims.state(r, cp),
                    p,
                    logp: p.ln(),
                    kind: EdgeKind::Continue {
                        from_c: c,
                        to_c: cp,
                    },
                });
            }
        }
        // Start a new record.
        if r + 1 < nk {
            let mut g = 1.0;
            let mut total = 0.0;
            for _ in r + 1..nk {
                total += g;
                g *= opts.skip_penalty;
            }
            let mut g = 1.0;
            for rp in r + 1..nk {
                let p = hz * g / total;
                g *= opts.skip_penalty;
                if p > 0.0 {
                    out.push(Edge {
                        to: dims.state(rp, 0),
                        p,
                        logp: p.ln(),
                        kind: EdgeKind::NewRecord { from_c: c },
                    });
                }
            }
        }
        // Escape hatch.
        out.push(Edge {
            to: s,
            p: LOG_FALLBACK.exp(),
            logp: LOG_FALLBACK,
            kind: EdgeKind::Fallback,
        });
        edges.push(out);
    }

    let init_linear = init.iter().map(|&l| l.exp()).collect();
    Chain {
        dims,
        init,
        init_linear,
        edges,
    }
}

/// Recomputes edge probabilities in place for updated parameters, keeping
/// the topology built by [`build_chain`]. The initial distribution depends
/// only on the options, so it is untouched.
pub fn refresh_chain(chain: &mut Chain, params: &Params, opts: &ProbOptions) {
    let nk = chain.dims.num_records;
    // Geometric skip weights 1, q, q², … normalized over the remaining
    // records; precompute the normalizer for every source record.
    let mut skip_total = vec![0.0f64; nk];
    for (r, slot) in skip_total.iter_mut().enumerate() {
        let mut g = 1.0;
        for _ in r + 1..nk {
            *slot += g;
            g *= opts.skip_penalty;
        }
    }
    for s in 0..chain.edges.len() {
        let (r, c) = chain.dims.unpack(s);
        let hz = params.hazard_for(c, opts.period_model);
        for e in &mut chain.edges[s] {
            let p = match e.kind {
                EdgeKind::Continue { from_c, to_c } => (1.0 - hz) * params.trans[from_c][to_c],
                EdgeKind::NewRecord { .. } => {
                    let (rp, _) = chain.dims.unpack(e.to);
                    hz * opts.skip_penalty.powi((rp - r - 1) as i32) / skip_total[r]
                }
                EdgeKind::Fallback => continue,
            };
            e.p = p;
            e.logp = p.ln();
        }
    }
}

impl Params {
    /// The record-end probability at column `c`: the π-derived duration
    /// hazard under the period model, or the independently learned
    /// per-column end probability without it.
    pub fn hazard_for(&self, c: usize, period_model: bool) -> f64 {
        if period_model {
            self.hazard(c)
        } else {
            self.end_prob[c]
        }
    }
}

/// Log emission table: `emit[i][s] = ln P(T_i | c) + ln P(D_i | r)`.
pub fn log_emissions(
    evidence: &[Evidence],
    params: &Params,
    dims: Dims,
    opts: &ProbOptions,
) -> Vec<Vec<f64>> {
    let log_eps = opts.epsilon.ln();
    evidence
        .iter()
        .map(|ev| {
            let feats = ev.features();
            let per_col: Vec<f64> = (0..dims.num_columns)
                .map(|c| params.emission(c, &feats).max(1e-300).ln())
                .collect();
            (0..dims.num_states())
                .map(|s| {
                    let (r, c) = dims.unpack(s);
                    let d = if ev.on_page(r) {
                        -(ev.pages.len() as f64).ln()
                    } else {
                        log_eps
                    };
                    per_col[c] + d
                })
                .collect()
        })
        .collect()
}

/// Expected sufficient statistics from one E-step.
#[derive(Debug, Clone, Default)]
pub struct Counts {
    /// Expected extracts per column.
    pub col: Vec<f64>,
    /// Expected feature activations per column: `[c][t]`.
    pub types: Vec<Vec<f64>>,
    /// Expected within-record transitions `[c][c']`.
    pub trans: Vec<Vec<f64>>,
    /// Expected record ends at column `c` (boundary edges + final state).
    pub end: Vec<f64>,
    /// Expected continues out of column `c`.
    pub cont: Vec<f64>,
}

impl Counts {
    fn zeros(k: usize) -> Counts {
        Counts {
            col: vec![0.0; k],
            types: vec![vec![0.0; 8]; k],
            trans: vec![vec![0.0; k]; k],
            end: vec![0.0; k],
            cont: vec![0.0; k],
        }
    }

    /// Re-zeros (and, on a column-count change, re-shapes) the tables in
    /// place, reusing their allocations across EM iterations.
    fn reset(&mut self, k: usize) {
        if self.col.len() != k {
            *self = Counts::zeros(k);
            return;
        }
        self.col.fill(0.0);
        self.end.fill(0.0);
        self.cont.fill(0.0);
        for row in &mut self.types {
            row.fill(0.0);
        }
        for row in &mut self.trans {
            row.fill(0.0);
        }
    }
}

/// The result of a forward–backward pass.
#[derive(Debug, Clone)]
pub struct FbResult {
    /// Log-likelihood of the evidence.
    pub log_likelihood: f64,
    /// State posteriors `gamma[i][s]` (linear scale, each row sums to 1).
    pub gamma: Vec<Vec<f64>>,
    /// Expected counts for the M-step.
    pub counts: Counts,
}

/// Runs forward–backward, returning posteriors and expected counts.
pub fn forward_backward(chain: &Chain, emits: &[Vec<f64>], evidence: &[Evidence]) -> FbResult {
    let n = emits.len();
    let ns = chain.dims.num_states();
    let k = chain.dims.num_columns;
    assert_eq!(n, evidence.len());
    if n == 0 {
        return FbResult {
            log_likelihood: 0.0,
            gamma: Vec::new(),
            counts: Counts::zeros(k),
        };
    }

    // Forward.
    let mut alpha = vec![vec![f64::NEG_INFINITY; ns]; n];
    for s in 0..ns {
        alpha[0][s] = chain.init[s] + emits[0][s];
    }
    for i in 1..n {
        let (prev, cur) = {
            let (a, b) = alpha.split_at_mut(i);
            (&a[i - 1], &mut b[0])
        };
        for (s, out) in chain.edges.iter().enumerate() {
            let a = prev[s];
            if a == f64::NEG_INFINITY {
                continue;
            }
            for e in out {
                let v = a + e.logp + emits[i][e.to];
                cur[e.to] = log_add(cur[e.to], v);
            }
        }
    }
    let log_likelihood = log_sum(&alpha[n - 1]);

    // Backward.
    let mut beta = vec![vec![f64::NEG_INFINITY; ns]; n];
    beta[n - 1].fill(0.0);
    for i in (0..n - 1).rev() {
        let (cur, next) = {
            let (a, b) = beta.split_at_mut(i + 1);
            (&mut a[i], &b[0])
        };
        for (s, out) in chain.edges.iter().enumerate() {
            let mut acc = f64::NEG_INFINITY;
            for e in out {
                acc = log_add(acc, e.logp + emits[i + 1][e.to] + next[e.to]);
            }
            cur[s] = acc;
        }
    }

    // Posteriors and counts.
    let mut gamma = vec![vec![0.0; ns]; n];
    let mut counts = Counts::zeros(k);
    for i in 0..n {
        let feats = evidence[i].features();
        for s in 0..ns {
            let lg = alpha[i][s] + beta[i][s] - log_likelihood;
            let g = lg.exp();
            gamma[i][s] = g;
            if g > 0.0 {
                let (_, c) = chain.dims.unpack(s);
                counts.col[c] += g;
                for (t, &on) in feats.iter().enumerate() {
                    if on {
                        counts.types[c][t] += g;
                    }
                }
            }
        }
    }
    // Edge posteriors.
    for i in 0..n - 1 {
        for (s, out) in chain.edges.iter().enumerate() {
            let a = alpha[i][s];
            if a == f64::NEG_INFINITY {
                continue;
            }
            for e in out {
                let lxi = a + e.logp + emits[i + 1][e.to] + beta[i + 1][e.to] - log_likelihood;
                let xi = lxi.exp();
                if xi <= 0.0 {
                    continue;
                }
                match e.kind {
                    EdgeKind::Continue { from_c, to_c } => {
                        counts.trans[from_c][to_c] += xi;
                        counts.cont[from_c] += xi;
                    }
                    EdgeKind::NewRecord { from_c } => {
                        counts.end[from_c] += xi;
                    }
                    EdgeKind::Fallback => {}
                }
            }
        }
    }
    // The last extract ends its record at its column.
    for (s, &g) in gamma[n - 1].iter().enumerate() {
        let (_, c) = chain.dims.unpack(s);
        counts.end[c] += g;
    }

    FbResult {
        log_likelihood,
        gamma,
        counts,
    }
}

/// Reusable flat arenas for the scaled forward–backward pass.
///
/// Every table is a contiguous row-major `Vec<f64>` with stride
/// `num_states` (`table[i * ns + s]`), sized once per instance and reused
/// across EM iterations — after the first iteration no table grows (see
/// the arena regression test in `tests/fb_props.rs`).
#[derive(Debug, Clone, Default)]
pub struct FbWorkspace {
    /// Linear emissions, each row scaled so its maximum is 1.
    pub emits: Vec<f64>,
    /// `ln` of each row's scale factor (the pre-scaling row maximum).
    pub emit_scale: Vec<f64>,
    /// Scaled forward variables α̂.
    pub alpha: Vec<f64>,
    /// Scaled backward variables β̂.
    pub beta: Vec<f64>,
    /// State posteriors γ (linear, each row sums to 1).
    pub gamma: Vec<f64>,
    /// Per-step normalizers `c_i` (the forward row sums before scaling).
    pub scale: Vec<f64>,
    /// Expected counts for the M-step.
    pub counts: Counts,
    /// Scratch: per-column emission probabilities for one extract.
    per_col: Vec<f64>,
    /// Scratch: `b_{i+1}(s) · β̂_{i+1}(s) / c_{i+1}` during the backward
    /// sweep.
    tmp: Vec<f64>,
    /// Memo: per-[`TypeSet`](tableseg_html::TypeSet) bit pattern, the `k`
    /// per-column emission probabilities (`memo_col[key * k + c]`). Many
    /// extracts share a type vector, so `params.emission` runs once per
    /// distinct pattern per iteration instead of once per extract.
    memo_col: Vec<f64>,
    /// Memo occupancy: `memo_seen[key]` is `true` once `memo_col`'s row for
    /// `key` holds the current iteration's parameters.
    memo_seen: Vec<bool>,
    /// CSR row offsets into the flattened edge arrays (`num_states + 1`).
    edge_start: Vec<u32>,
    /// CSR: target state per edge.
    edge_to: Vec<u32>,
    /// CSR: linear transition probability per edge.
    edge_p: Vec<f64>,
    /// CSR: packed [`EdgeKind`] — `from_c · k + to_c` for `Continue`,
    /// `k² + from_c` for `NewRecord`, `u32::MAX` for `Fallback`.
    edge_kind: Vec<u32>,
    /// Scratch for the structured pass: per-column hazard `hz(c)`.
    hz: Vec<f64>,
    /// Scratch: continue weights `(1 − hz(c)) · trans[c][c']`, row-major
    /// `k × k`.
    cont: Vec<f64>,
    /// Scratch: `1 / Σ_{j<nk−r−1} q^j` per source record (0 for the last
    /// record, which has no record-boundary edges).
    skip_inv: Vec<f64>,
    /// Scratch: the geometric record-boundary recurrence (`S` forward,
    /// `T` backward), one slot per record.
    rec_flow: Vec<f64>,
    /// Scratch: per-record boundary mass `m(r)` feeding the recurrence.
    rec_mass: Vec<f64>,
    /// Scratch: per-column posterior sums for one extract.
    col_gamma: Vec<f64>,
}

/// Number of distinct [`TypeSet`](tableseg_html::TypeSet) bit patterns
/// (8 type bits).
const MEMO_KEYS: usize = 256;

impl FbWorkspace {
    /// An empty workspace; tables are sized on first use.
    pub fn new() -> FbWorkspace {
        FbWorkspace::default()
    }

    /// Sizes every table for `n` extracts, `ns` states and `k` columns,
    /// reusing existing capacity.
    pub fn prepare(&mut self, n: usize, ns: usize, k: usize) {
        let cells = n * ns;
        self.emits.clear();
        self.emits.resize(cells, 0.0);
        self.alpha.clear();
        self.alpha.resize(cells, 0.0);
        self.beta.clear();
        self.beta.resize(cells, 0.0);
        self.gamma.clear();
        self.gamma.resize(cells, 0.0);
        self.emit_scale.clear();
        self.emit_scale.resize(n, 0.0);
        self.scale.clear();
        self.scale.resize(n, 1.0);
        self.per_col.clear();
        self.per_col.resize(k, 0.0);
        self.tmp.clear();
        self.tmp.resize(ns, 0.0);
        self.memo_col.clear();
        self.memo_col.resize(MEMO_KEYS * k, 0.0);
        self.memo_seen.clear();
        self.memo_seen.resize(MEMO_KEYS, false);
        self.counts.reset(k);
    }

    /// Flattens the chain's per-state edge lists into the CSR arrays,
    /// preserving edge order exactly (the flat pass must accumulate in the
    /// same order as the nested one to stay bit-identical).
    fn build_csr(&mut self, chain: &Chain) {
        let k = chain.dims.num_columns;
        self.edge_start.clear();
        self.edge_to.clear();
        self.edge_p.clear();
        self.edge_kind.clear();
        self.edge_start.push(0);
        for out in &chain.edges {
            for e in out {
                self.edge_to.push(e.to as u32);
                self.edge_p.push(e.p);
                self.edge_kind.push(match e.kind {
                    EdgeKind::Continue { from_c, to_c } => (from_c * k + to_c) as u32,
                    EdgeKind::NewRecord { from_c } => (k * k + from_c) as u32,
                    EdgeKind::Fallback => u32::MAX,
                });
            }
            self.edge_start.push(self.edge_to.len() as u32);
        }
    }

    /// Total reserved capacity of the per-extract tables, in `f64` cells —
    /// the regression-test observable for "the arena stops growing".
    pub fn table_capacity(&self) -> usize {
        self.emits.capacity()
            + self.alpha.capacity()
            + self.beta.capacity()
            + self.gamma.capacity()
            + self.emit_scale.capacity()
            + self.scale.capacity()
    }
}

/// Fills the workspace's emission arena with *linear* emissions
/// `P(T_i | c) · P(D_i | r)`, each row scaled by its maximum (recorded as
/// `emit_scale[i] = ln max`) so the scaled pass works near 1.0.
pub fn emissions_into(
    evidence: &[Evidence],
    params: &Params,
    dims: Dims,
    opts: &ProbOptions,
    ws: &mut FbWorkspace,
) {
    let ns = dims.num_states();
    let k = dims.num_columns;
    ws.prepare(evidence.len(), ns, k);
    for (i, ev) in evidence.iter().enumerate() {
        let feats = ev.features();
        for c in 0..k {
            ws.per_col[c] = params.emission(c, &feats);
        }
        let inv_pages = 1.0 / ev.pages.len().max(1) as f64;
        let row = &mut ws.emits[i * ns..(i + 1) * ns];
        let mut max = 0.0f64;
        for (s, slot) in row.iter_mut().enumerate() {
            let (r, c) = dims.unpack(s);
            let d = if ev.on_page(r) {
                inv_pages
            } else {
                opts.epsilon
            };
            let v = ws.per_col[c] * d;
            *slot = v;
            if v > max {
                max = v;
            }
        }
        if max > 0.0 {
            for slot in row.iter_mut() {
                *slot /= max;
            }
            ws.emit_scale[i] = max.ln();
        } else {
            ws.emit_scale[i] = 0.0;
        }
    }
}

/// [`emissions_into`] with the per-column emission products memoized by
/// [`TypeSet`](tableseg_html::TypeSet) bit pattern: extracts sharing a type
/// vector (the common case — sites reuse a handful of token shapes) pay for
/// `params.emission` once per iteration. Bit-identical to
/// [`emissions_into`]: the row fill walks states in the same `(r, c)` order
/// with the same per-cell products and running maximum.
pub fn emissions_into_memoized(
    evidence: &[Evidence],
    params: &Params,
    dims: Dims,
    opts: &ProbOptions,
    ws: &mut FbWorkspace,
) {
    let ns = dims.num_states();
    let k = dims.num_columns;
    ws.prepare(evidence.len(), ns, k);
    for (i, ev) in evidence.iter().enumerate() {
        let key = ev.types.bits() as usize;
        if !ws.memo_seen[key] {
            let feats = ev.features();
            for c in 0..k {
                ws.memo_col[key * k + c] = params.emission(c, &feats);
            }
            ws.memo_seen[key] = true;
        }
        let per_col = &ws.memo_col[key * k..(key + 1) * k];
        let inv_pages = 1.0 / ev.pages.len().max(1) as f64;
        let row = &mut ws.emits[i * ns..(i + 1) * ns];
        let mut max = 0.0f64;
        for r in 0..dims.num_records {
            let w = if ev.on_page(r) {
                inv_pages
            } else {
                opts.epsilon
            };
            for (slot, &pc) in row[r * k..(r + 1) * k].iter_mut().zip(per_col) {
                let v = pc * w;
                *slot = v;
                if v > max {
                    max = v;
                }
            }
        }
        if max > 0.0 {
            for slot in row.iter_mut() {
                *slot /= max;
            }
            ws.emit_scale[i] = max.ln();
        } else {
            ws.emit_scale[i] = 0.0;
        }
    }
}

/// The scaled linear-space forward–backward pass (Rabiner scaling): the
/// same posteriors and expected counts as [`forward_backward`] without a
/// single `ln`/`exp` per cell; the log-likelihood is recovered from the
/// per-step normalizers and the emission row scales,
/// `ll = Σᵢ ln cᵢ + Σᵢ emit_scale[i]`.
///
/// Expects [`emissions_into`] to have filled `ws` for this evidence.
/// Posteriors land in `ws.gamma`, expected counts in `ws.counts`; returns
/// the log-likelihood.
pub fn forward_backward_scaled(chain: &Chain, ws: &mut FbWorkspace, evidence: &[Evidence]) -> f64 {
    let n = evidence.len();
    let ns = chain.dims.num_states();
    let k = chain.dims.num_columns;
    debug_assert_eq!(ws.emits.len(), n * ns, "emissions_into must run first");
    if n == 0 {
        ws.counts.reset(k);
        return 0.0;
    }

    // Forward.
    for s in 0..ns {
        ws.alpha[s] = chain.init_linear[s] * ws.emits[s];
    }
    normalize_step(&mut ws.alpha[..ns], &mut ws.scale[0]);
    for i in 1..n {
        let (prev_rows, cur_rows) = ws.alpha.split_at_mut(i * ns);
        let prev = &prev_rows[(i - 1) * ns..];
        let cur = &mut cur_rows[..ns];
        cur.fill(0.0);
        for (s, out) in chain.edges.iter().enumerate() {
            let a = prev[s];
            if a == 0.0 {
                continue;
            }
            for e in out {
                cur[e.to] += a * e.p;
            }
        }
        let emit_row = &ws.emits[i * ns..(i + 1) * ns];
        for (slot, &em) in cur.iter_mut().zip(emit_row) {
            *slot *= em;
        }
        normalize_step(cur, &mut ws.scale[i]);
    }
    let log_likelihood: f64 =
        ws.scale.iter().map(|c| c.ln()).sum::<f64>() + ws.emit_scale.iter().sum::<f64>();

    // Backward sweep with edge-posterior accumulation: at step i we have
    // tmp[t] = b_{i+1}(t) · β̂_{i+1}(t) / c_{i+1}, giving both
    // β̂_i(s) = Σ_e p_e · tmp[e.to] and ξ_i(s, e.to) = α̂_i(s) · p_e · tmp[e.to].
    ws.counts.reset(k);
    ws.beta[(n - 1) * ns..].fill(1.0);
    for i in (0..n - 1).rev() {
        let inv_c = 1.0 / ws.scale[i + 1];
        for t in 0..ns {
            ws.tmp[t] = ws.emits[(i + 1) * ns + t] * ws.beta[(i + 1) * ns + t] * inv_c;
        }
        for (s, out) in chain.edges.iter().enumerate() {
            let mut b = 0.0;
            for e in out {
                b += e.p * ws.tmp[e.to];
            }
            ws.beta[i * ns + s] = b;
            let a = ws.alpha[i * ns + s];
            if a == 0.0 {
                continue;
            }
            for e in out {
                let xi = a * e.p * ws.tmp[e.to];
                if xi <= 0.0 {
                    continue;
                }
                match e.kind {
                    EdgeKind::Continue { from_c, to_c } => {
                        ws.counts.trans[from_c][to_c] += xi;
                        ws.counts.cont[from_c] += xi;
                    }
                    EdgeKind::NewRecord { from_c } => {
                        ws.counts.end[from_c] += xi;
                    }
                    EdgeKind::Fallback => {}
                }
            }
        }
    }

    // Posteriors and node counts: γ_i(s) = α̂_i(s) · β̂_i(s) already sums
    // to 1 per row under this scaling.
    for (i, ev) in evidence.iter().enumerate() {
        let feats = ev.features();
        for s in 0..ns {
            let g = ws.alpha[i * ns + s] * ws.beta[i * ns + s];
            ws.gamma[i * ns + s] = g;
            if g > 0.0 {
                let (_, c) = chain.dims.unpack(s);
                ws.counts.col[c] += g;
                for (t, &on) in feats.iter().enumerate() {
                    if on {
                        ws.counts.types[c][t] += g;
                    }
                }
            }
        }
    }
    // The last extract ends its record at its column.
    for s in 0..ns {
        let (_, c) = chain.dims.unpack(s);
        ws.counts.end[c] += ws.gamma[(n - 1) * ns + s];
    }

    log_likelihood
}

/// [`forward_backward_scaled`] over a flattened CSR copy of the chain:
/// the per-state `Vec<Edge>` lists become four contiguous arrays walked by
/// index, the γ rows are computed as a flat elementwise product, and the
/// count loops index `(r, c)` blocks directly instead of unpacking each
/// state. Every accumulation runs in the same order as the nested pass, so
/// the results are bit-identical — pinned by the differential test below.
pub fn forward_backward_flat(chain: &Chain, ws: &mut FbWorkspace, evidence: &[Evidence]) -> f64 {
    let n = evidence.len();
    let ns = chain.dims.num_states();
    let k = chain.dims.num_columns;
    let nr = chain.dims.num_records;
    debug_assert_eq!(ws.emits.len(), n * ns, "emissions must be filled first");
    if n == 0 {
        ws.counts.reset(k);
        return 0.0;
    }
    ws.build_csr(chain);

    // Forward.
    for s in 0..ns {
        ws.alpha[s] = chain.init_linear[s] * ws.emits[s];
    }
    normalize_step(&mut ws.alpha[..ns], &mut ws.scale[0]);
    for i in 1..n {
        let (prev_rows, cur_rows) = ws.alpha.split_at_mut(i * ns);
        let prev = &prev_rows[(i - 1) * ns..];
        let cur = &mut cur_rows[..ns];
        cur.fill(0.0);
        for (s, &a) in prev.iter().enumerate() {
            if a == 0.0 {
                continue;
            }
            let (lo, hi) = (ws.edge_start[s] as usize, ws.edge_start[s + 1] as usize);
            for (&to, &p) in ws.edge_to[lo..hi].iter().zip(&ws.edge_p[lo..hi]) {
                cur[to as usize] += a * p;
            }
        }
        let emit_row = &ws.emits[i * ns..(i + 1) * ns];
        for (slot, &em) in cur.iter_mut().zip(emit_row) {
            *slot *= em;
        }
        normalize_step(cur, &mut ws.scale[i]);
    }
    let log_likelihood: f64 =
        ws.scale.iter().map(|c| c.ln()).sum::<f64>() + ws.emit_scale.iter().sum::<f64>();

    // Backward sweep with edge-posterior accumulation (see
    // [`forward_backward_scaled`] for the recurrences).
    ws.counts.reset(k);
    ws.beta[(n - 1) * ns..].fill(1.0);
    let kk = (k * k) as u32;
    for i in (0..n - 1).rev() {
        let inv_c = 1.0 / ws.scale[i + 1];
        for t in 0..ns {
            ws.tmp[t] = ws.emits[(i + 1) * ns + t] * ws.beta[(i + 1) * ns + t] * inv_c;
        }
        for s in 0..ns {
            let (lo, hi) = (ws.edge_start[s] as usize, ws.edge_start[s + 1] as usize);
            let mut b = 0.0;
            for (&to, &p) in ws.edge_to[lo..hi].iter().zip(&ws.edge_p[lo..hi]) {
                b += p * ws.tmp[to as usize];
            }
            ws.beta[i * ns + s] = b;
            let a = ws.alpha[i * ns + s];
            if a == 0.0 {
                continue;
            }
            for j in lo..hi {
                let xi = a * ws.edge_p[j] * ws.tmp[ws.edge_to[j] as usize];
                if xi <= 0.0 {
                    continue;
                }
                let code = ws.edge_kind[j];
                if code < kk {
                    let (fc, tc) = ((code / k as u32) as usize, (code % k as u32) as usize);
                    ws.counts.trans[fc][tc] += xi;
                    ws.counts.cont[fc] += xi;
                } else if code != u32::MAX {
                    ws.counts.end[(code - kk) as usize] += xi;
                }
            }
        }
    }

    // Posteriors as one flat elementwise product per extract, then node
    // counts walked in `(r, c)` block order (the same state order as the
    // nested pass).
    for (i, ev) in evidence.iter().enumerate() {
        let feats = ev.features();
        let row = i * ns;
        for s in 0..ns {
            ws.gamma[row + s] = ws.alpha[row + s] * ws.beta[row + s];
        }
        let mut s = row;
        for _r in 0..nr {
            for c in 0..k {
                let g = ws.gamma[s];
                s += 1;
                if g > 0.0 {
                    ws.counts.col[c] += g;
                    for (t, &on) in feats.iter().enumerate() {
                        if on {
                            ws.counts.types[c][t] += g;
                        }
                    }
                }
            }
        }
    }
    // The last extract ends its record at its column.
    let last = (n - 1) * ns;
    for r in 0..nr {
        for c in 0..k {
            ws.counts.end[c] += ws.gamma[last + r * k + c];
        }
    }

    log_likelihood
}

/// The scaled forward–backward pass computed from the transition
/// *structure* instead of materialized edges.
///
/// The chain's record-boundary edges are a geometric fan-out: state
/// `(r, c)` reaches every `(r', 0)` with `r' > r` at probability
/// `hz(c) · q^{r'−r−1} / Σ_j q^j`. Materialized, that is `O(k · nk²)`
/// edges — 3/4 of the whole chain on real pages — but the mass entering
/// `(r', 0)` obeys a first-order recurrence in `r'`:
///
/// ```text
/// m(r)  = Σ_c α(r, c) · hz(c) / skip_total(r)
/// S(0)  = 0,   S(r') = q · S(r'−1) + m(r'−1)
/// ```
///
/// so the forward step costs `O(ns + nk)` for all boundary edges
/// together, plus the `O(nk · k²)` within-record continue edges and the
/// `O(ns)` fallback self-loops. The backward sweep uses the mirrored
/// suffix recurrence `T(r) = tmp(r+1, 0) + q · T(r+1)`, which also
/// collapses the per-state boundary ξ sum (all targets share `from_c`,
/// so only the total ever reaches the M-step counts). Node counts
/// accumulate per-extract column sums first and fan out to the type
/// counts once per column.
///
/// Algebraically identical to [`forward_backward_scaled`] on the chain
/// built from the same `(dims, params, opts)`; floating-point results
/// differ only by summation order (the differential tests below pin the
/// agreement). Expects the emission arena to be filled first.
pub fn forward_backward_struct(
    dims: Dims,
    params: &Params,
    opts: &ProbOptions,
    ws: &mut FbWorkspace,
    evidence: &[Evidence],
) -> f64 {
    let n = evidence.len();
    let ns = dims.num_states();
    let k = dims.num_columns;
    let nk = dims.num_records;
    let q = opts.skip_penalty;
    let fb = LOG_FALLBACK.exp();
    debug_assert_eq!(ws.emits.len(), n * ns, "emissions must be filled first");
    if n == 0 {
        ws.counts.reset(k);
        return 0.0;
    }

    // Per-iteration structure tables: hazards, continue weights, inverse
    // skip normalizers.
    ws.hz.clear();
    ws.hz
        .extend((0..k).map(|c| params.hazard_for(c, opts.period_model)));
    ws.cont.clear();
    ws.cont.resize(k * k, 0.0);
    for c in 0..k {
        for cp in c + 1..k {
            ws.cont[c * k + cp] = (1.0 - ws.hz[c]) * params.trans[c][cp];
        }
    }
    ws.skip_inv.clear();
    ws.skip_inv.resize(nk, 0.0);
    // skip_total(r) = Σ_{j=0}^{nk−r−2} q^j by suffix recurrence.
    let mut total = 0.0f64;
    for r in (0..nk.saturating_sub(1)).rev() {
        total = 1.0 + q * total;
        ws.skip_inv[r] = 1.0 / total;
    }
    ws.rec_flow.clear();
    ws.rec_flow.resize(nk, 0.0);
    ws.rec_mass.clear();
    ws.rec_mass.resize(nk, 0.0);
    ws.col_gamma.clear();
    ws.col_gamma.resize(k, 0.0);

    // Forward. The initial distribution is the geometric over skipped
    // leading records, mass only at the `(r, 0)` states.
    let mut init_total = 0.0;
    let mut w = 1.0;
    for _ in 0..nk {
        init_total += w;
        w *= q;
    }
    ws.alpha[..ns].fill(0.0);
    let mut w = 1.0;
    for r in 0..nk {
        ws.alpha[r * k] = w / init_total * ws.emits[r * k];
        w *= q;
    }
    normalize_step(&mut ws.alpha[..ns], &mut ws.scale[0]);
    for i in 1..n {
        let (prev_rows, cur_rows) = ws.alpha.split_at_mut(i * ns);
        let prev = &prev_rows[(i - 1) * ns..];
        let cur = &mut cur_rows[..ns];
        // Fallback self-loops seed the row; everything else accumulates.
        for (slot, &a) in cur.iter_mut().zip(prev.iter()) {
            *slot = a * fb;
        }
        for r in 0..nk {
            let row = &prev[r * k..(r + 1) * k];
            let mut boundary = 0.0;
            for (c, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                boundary += a * ws.hz[c];
                let cont = &ws.cont[c * k..(c + 1) * k];
                for cp in c + 1..k {
                    cur[r * k + cp] += a * cont[cp];
                }
            }
            ws.rec_mass[r] = boundary * ws.skip_inv[r];
        }
        let mut s = 0.0;
        for rp in 1..nk {
            s = q * s + ws.rec_mass[rp - 1];
            cur[rp * k] += s;
        }
        let emit_row = &ws.emits[i * ns..(i + 1) * ns];
        for (slot, &em) in cur.iter_mut().zip(emit_row) {
            *slot *= em;
        }
        normalize_step(cur, &mut ws.scale[i]);
    }
    let log_likelihood: f64 =
        ws.scale.iter().map(|c| c.ln()).sum::<f64>() + ws.emit_scale.iter().sum::<f64>();

    // Backward sweep with edge-posterior accumulation (recurrences as in
    // [`forward_backward_scaled`]; boundary edges via the suffix flow).
    ws.counts.reset(k);
    ws.beta[(n - 1) * ns..].fill(1.0);
    for i in (0..n - 1).rev() {
        let inv_c = 1.0 / ws.scale[i + 1];
        for t in 0..ns {
            ws.tmp[t] = ws.emits[(i + 1) * ns + t] * ws.beta[(i + 1) * ns + t] * inv_c;
        }
        // T(r) = Σ_{r' > r} q^{r'−r−1} · tmp(r', 0).
        let mut t_flow = 0.0;
        for r in (0..nk).rev() {
            ws.rec_flow[r] = t_flow;
            t_flow = ws.tmp[r * k] + q * t_flow;
        }
        for r in 0..nk {
            let boundary = ws.skip_inv[r] * ws.rec_flow[r];
            for c in 0..k {
                let s = r * k + c;
                let cont = &ws.cont[c * k..(c + 1) * k];
                let tmp_row = &ws.tmp[r * k..(r + 1) * k];
                let mut b = 0.0;
                for cp in c + 1..k {
                    b += cont[cp] * tmp_row[cp];
                }
                b += ws.hz[c] * boundary;
                b += fb * tmp_row[c];
                ws.beta[i * ns + s] = b;
                let a = ws.alpha[i * ns + s];
                if a == 0.0 {
                    continue;
                }
                for cp in c + 1..k {
                    let xi = a * cont[cp] * tmp_row[cp];
                    if xi > 0.0 {
                        ws.counts.trans[c][cp] += xi;
                        ws.counts.cont[c] += xi;
                    }
                }
                let xi_boundary = a * ws.hz[c] * boundary;
                if xi_boundary > 0.0 {
                    ws.counts.end[c] += xi_boundary;
                }
            }
        }
    }

    // Posteriors, then node counts via per-extract column sums: the type
    // fan-out runs once per column instead of once per state.
    for (i, ev) in evidence.iter().enumerate() {
        let feats = ev.features();
        let row = i * ns;
        for s in 0..ns {
            ws.gamma[row + s] = ws.alpha[row + s] * ws.beta[row + s];
        }
        ws.col_gamma.fill(0.0);
        for r in 0..nk {
            for c in 0..k {
                ws.col_gamma[c] += ws.gamma[row + r * k + c];
            }
        }
        for (c, &g) in ws.col_gamma.iter().enumerate() {
            if g > 0.0 {
                ws.counts.col[c] += g;
                for (t, &on) in feats.iter().enumerate() {
                    if on {
                        ws.counts.types[c][t] += g;
                    }
                }
            }
        }
    }
    // The last extract ends its record at its column.
    let last = (n - 1) * ns;
    for r in 0..nk {
        for c in 0..k {
            ws.counts.end[c] += ws.gamma[last + r * k + c];
        }
    }

    log_likelihood
}

/// Divides one α row by its sum, recording the sum as that step's
/// normalizer. A zero row (impossible while the fallback edge exists)
/// normalizes by 1 to keep the pass finite.
#[inline]
fn normalize_step(row: &mut [f64], scale: &mut f64) {
    let c: f64 = row.iter().sum();
    let c = if c > 0.0 { c } else { 1.0 };
    for x in row.iter_mut() {
        *x /= c;
    }
    *scale = c;
}

/// `ln(e^a + e^b)` with care for negative infinity.
#[inline]
pub fn log_add(a: f64, b: f64) -> f64 {
    if a == f64::NEG_INFINITY {
        return b;
    }
    if b == f64::NEG_INFINITY {
        return a;
    }
    let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
    hi + (lo - hi).exp().ln_1p()
}

/// `ln Σ e^xᵢ`.
pub fn log_sum(xs: &[f64]) -> f64 {
    xs.iter().copied().fold(f64::NEG_INFINITY, log_add)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::evidence;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn small_setup() -> (Vec<Evidence>, Dims, Params, ProbOptions) {
        let list = tokenize("<td>Alpha One</td><td>100</td><td>Beta Two</td><td>200</td>");
        let d1 = tokenize("<p>Alpha One</p><p>100</p>");
        let d2 = tokenize("<p>Beta Two</p><p>200</p>");
        let d3 = tokenize("<p>x</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2, &d3];
        let obs = build_observations(&list, &[], &details);
        let ev = evidence(&obs);
        let dims = Dims {
            num_records: 3,
            num_columns: 2,
        };
        let params = Params::uniform(2, vec![1.0, 1.0]);
        (ev, dims, params, ProbOptions::default())
    }

    #[test]
    fn chain_init_prefers_first_record() {
        let (_, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let s00 = dims.state(0, 0);
        let s10 = dims.state(1, 0);
        assert!(chain.init[s00] > chain.init[s10]);
        // Non-first-column states are unreachable initially.
        assert_eq!(chain.init[dims.state(0, 1)], f64::NEG_INFINITY);
    }

    #[test]
    fn edges_are_forward_only() {
        let (_, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        for (s, out) in chain.edges.iter().enumerate() {
            let (r, c) = dims.unpack(s);
            for e in out {
                let (rp, cp) = dims.unpack(e.to);
                match e.kind {
                    EdgeKind::Continue { .. } => {
                        assert_eq!(rp, r);
                        assert!(cp > c);
                    }
                    EdgeKind::NewRecord { .. } => {
                        assert!(rp > r);
                        assert_eq!(cp, 0);
                    }
                    EdgeKind::Fallback => {
                        assert_eq!(e.to, s);
                        assert_eq!(e.logp, LOG_FALLBACK);
                    }
                }
            }
        }
    }

    #[test]
    fn gamma_rows_sum_to_one() {
        let (ev, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let fb = forward_backward(&chain, &emits, &ev);
        assert!(fb.log_likelihood.is_finite());
        for row in &fb.gamma {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn detail_evidence_dominates_record_posterior() {
        let (ev, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let fb = forward_backward(&chain, &emits, &ev);
        // Extract 0 ("Alpha One") is on detail page 0 only.
        let mut p_r0 = 0.0;
        for c in 0..dims.num_columns {
            p_r0 += fb.gamma[0][dims.state(0, c)];
        }
        assert!(p_r0 > 0.99, "{p_r0}");
        // Extract 2 ("Beta Two") is on detail page 1 only.
        let mut p_r1 = 0.0;
        for c in 0..dims.num_columns {
            p_r1 += fb.gamma[2][dims.state(1, c)];
        }
        assert!(p_r1 > 0.99, "{p_r1}");
    }

    #[test]
    fn counts_are_consistent() {
        let (ev, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let fb = forward_backward(&chain, &emits, &ev);
        // Total column mass equals the number of extracts.
        let total: f64 = fb.counts.col.iter().sum();
        assert!((total - ev.len() as f64).abs() < 1e-6, "{total}");
        // Ends + continues ≈ n (every extract either continues or ends,
        // modulo fallback edges).
        let flow: f64 = fb.counts.end.iter().sum::<f64>() + fb.counts.cont.iter().sum::<f64>();
        assert!((flow - ev.len() as f64).abs() < 0.05, "{flow}");
    }

    #[test]
    fn empty_sequence() {
        let (_, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let fb = forward_backward(&chain, &[], &[]);
        assert_eq!(fb.log_likelihood, 0.0);
        assert!(fb.gamma.is_empty());
    }

    #[test]
    fn memoized_emissions_are_bit_identical() {
        let (ev, dims, params, opts) = small_setup();
        let mut plain = FbWorkspace::new();
        emissions_into(&ev, &params, dims, &opts, &mut plain);
        let mut memo = FbWorkspace::new();
        emissions_into_memoized(&ev, &params, dims, &opts, &mut memo);
        assert_eq!(plain.emits.len(), memo.emits.len());
        for (a, b) in plain.emits.iter().zip(&memo.emits) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        for (a, b) in plain.emit_scale.iter().zip(&memo.emit_scale) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn flat_pass_is_bit_identical_to_scaled() {
        let (ev, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);

        let mut scaled = FbWorkspace::new();
        emissions_into(&ev, &params, dims, &opts, &mut scaled);
        let ll_scaled = forward_backward_scaled(&chain, &mut scaled, &ev);

        let mut flat = FbWorkspace::new();
        emissions_into_memoized(&ev, &params, dims, &opts, &mut flat);
        let ll_flat = forward_backward_flat(&chain, &mut flat, &ev);

        assert_eq!(ll_scaled.to_bits(), ll_flat.to_bits());
        for (a, b) in scaled.gamma.iter().zip(&flat.gamma) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let pairs = [
            (&scaled.counts.col, &flat.counts.col),
            (&scaled.counts.end, &flat.counts.end),
            (&scaled.counts.cont, &flat.counts.cont),
        ];
        for (a, b) in pairs {
            for (x, y) in a.iter().zip(b.iter()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (ra, rb) in scaled.counts.trans.iter().zip(&flat.counts.trans) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
        for (ra, rb) in scaled.counts.types.iter().zip(&flat.counts.types) {
            for (x, y) in ra.iter().zip(rb) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn struct_pass_matches_scaled_within_rounding() {
        let (ev, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);

        let mut scaled = FbWorkspace::new();
        emissions_into(&ev, &params, dims, &opts, &mut scaled);
        let ll_scaled = forward_backward_scaled(&chain, &mut scaled, &ev);

        let mut st = FbWorkspace::new();
        emissions_into_memoized(&ev, &params, dims, &opts, &mut st);
        let ll_struct = forward_backward_struct(dims, &params, &opts, &mut st, &ev);

        // The structured pass reassociates the geometric boundary sums,
        // so agreement is to rounding, not to the bit.
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0);
        assert!(close(ll_scaled, ll_struct), "{ll_scaled} vs {ll_struct}");
        for (a, b) in scaled.gamma.iter().zip(&st.gamma) {
            assert!(close(*a, *b), "{a} vs {b}");
        }
        let pairs = [
            (&scaled.counts.col, &st.counts.col),
            (&scaled.counts.end, &st.counts.end),
            (&scaled.counts.cont, &st.counts.cont),
        ];
        for (a, b) in pairs {
            for (x, y) in a.iter().zip(b.iter()) {
                assert!(close(*x, *y), "{x} vs {y}");
            }
        }
        for (ra, rb) in scaled.counts.trans.iter().zip(&st.counts.trans) {
            for (x, y) in ra.iter().zip(rb) {
                assert!(close(*x, *y), "{x} vs {y}");
            }
        }
        for (ra, rb) in scaled.counts.types.iter().zip(&st.counts.types) {
            for (x, y) in ra.iter().zip(rb) {
                assert!(close(*x, *y), "{x} vs {y}");
            }
        }
    }

    #[test]
    fn csr_packing_round_trips_edge_kinds() {
        let (_, dims, params, opts) = small_setup();
        let chain = build_chain(dims, &params, &opts);
        let mut ws = FbWorkspace::new();
        ws.prepare(1, dims.num_states(), dims.num_columns);
        ws.build_csr(&chain);
        let k = dims.num_columns as u32;
        let mut j = 0;
        for out in &chain.edges {
            for e in out {
                assert_eq!(ws.edge_to[j] as usize, e.to);
                assert_eq!(ws.edge_p[j].to_bits(), e.p.to_bits());
                let code = ws.edge_kind[j];
                match e.kind {
                    EdgeKind::Continue { from_c, to_c } => {
                        assert_eq!(code, from_c as u32 * k + to_c as u32);
                        assert!(code < k * k);
                    }
                    EdgeKind::NewRecord { from_c } => {
                        assert_eq!(code, k * k + from_c as u32);
                    }
                    EdgeKind::Fallback => assert_eq!(code, u32::MAX),
                }
                j += 1;
            }
        }
        assert_eq!(j, ws.edge_to.len());
        assert_eq!(*ws.edge_start.last().unwrap() as usize, j);
    }

    #[test]
    fn log_helpers() {
        assert!((log_add(0.0, 0.0) - std::f64::consts::LN_2).abs() < 1e-12);
        assert_eq!(log_add(f64::NEG_INFINITY, -1.0), -1.0);
        assert_eq!(log_add(-1.0, f64::NEG_INFINITY), -1.0);
        let v = [0.0, 0.0, 0.0, 0.0];
        assert!((log_sum(&v) - (4.0f64).ln()).abs() < 1e-12);
        assert_eq!(log_sum(&[]), f64::NEG_INFINITY);
    }
}
