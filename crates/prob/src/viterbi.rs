//! MAP decoding: "In the end we output the most likely assignment to R
//! and C" (Section 5.2.3).

use crate::forward_backward::{Chain, FbWorkspace};

/// The most likely state path through the chain given log emissions.
/// Returns one state index per extract. Empty input yields an empty path.
pub fn viterbi(chain: &Chain, emits: &[Vec<f64>]) -> Vec<usize> {
    let n = emits.len();
    if n == 0 {
        return Vec::new();
    }
    let ns = chain.dims.num_states();

    let mut delta = vec![f64::NEG_INFINITY; ns];
    for s in 0..ns {
        delta[s] = chain.init[s] + emits[0][s];
    }
    // back[i][s] = predecessor state of s at step i.
    let mut back = vec![vec![usize::MAX; ns]; n];

    for i in 1..n {
        let mut next = vec![f64::NEG_INFINITY; ns];
        for (s, out) in chain.edges.iter().enumerate() {
            let d = delta[s];
            if d == f64::NEG_INFINITY {
                continue;
            }
            for e in out {
                let v = d + e.logp + emits[i][e.to];
                if v > next[e.to] {
                    next[e.to] = v;
                    back[i][e.to] = s;
                }
            }
        }
        delta = next;
    }

    // Best final state (ties broken toward the lowest state index, which is
    // the earliest record/column — deterministic).
    let mut best_s = 0;
    let mut best = f64::NEG_INFINITY;
    for (s, &d) in delta.iter().enumerate() {
        if d > best {
            best = d;
            best_s = s;
        }
    }

    let mut path = vec![0usize; n];
    path[n - 1] = best_s;
    for i in (1..n).rev() {
        let prev = back[i][path[i]];
        debug_assert_ne!(prev, usize::MAX, "broken backpointer at {i}");
        path[i - 1] = prev;
    }
    path
}

/// [`viterbi`] over the scaled linear emission arena of an
/// [`FbWorkspace`]. The per-row scaling shifts every path's score by the
/// same `Σᵢ ln maxᵢ`, so the argmax path is unchanged.
pub fn viterbi_scaled(chain: &Chain, ws: &FbWorkspace) -> Vec<usize> {
    let ns = chain.dims.num_states();
    if ns == 0 || ws.emits.is_empty() {
        return Vec::new();
    }
    let n = ws.emits.len() / ns;

    let mut row_log = vec![0.0f64; ns];
    for (t, slot) in row_log.iter_mut().enumerate() {
        *slot = ws.emits[t].ln();
    }
    let mut delta: Vec<f64> = (0..ns).map(|s| chain.init[s] + row_log[s]).collect();
    // back[i * ns + s] = predecessor state of s at step i.
    let mut back = vec![usize::MAX; n * ns];
    let mut next = vec![f64::NEG_INFINITY; ns];

    for i in 1..n {
        for (t, slot) in row_log.iter_mut().enumerate() {
            *slot = ws.emits[i * ns + t].ln();
        }
        next.fill(f64::NEG_INFINITY);
        for (s, out) in chain.edges.iter().enumerate() {
            let d = delta[s];
            if d == f64::NEG_INFINITY {
                continue;
            }
            for e in out {
                let v = d + e.logp + row_log[e.to];
                if v > next[e.to] {
                    next[e.to] = v;
                    back[i * ns + e.to] = s;
                }
            }
        }
        std::mem::swap(&mut delta, &mut next);
    }

    let mut best_s = 0;
    let mut best = f64::NEG_INFINITY;
    for (s, &d) in delta.iter().enumerate() {
        if d > best {
            best = d;
            best_s = s;
        }
    }

    let mut path = vec![0usize; n];
    path[n - 1] = best_s;
    for i in (1..n).rev() {
        let prev = back[i * ns + path[i]];
        debug_assert_ne!(prev, usize::MAX, "broken backpointer at {i}");
        path[i - 1] = prev;
    }
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forward_backward::build_chain;
    use crate::model::Dims;
    use crate::params::Params;
    use crate::ProbOptions;

    fn chain2x2() -> Chain {
        let dims = Dims {
            num_records: 2,
            num_columns: 2,
        };
        let params = Params::uniform(2, vec![1.0, 1.0]);
        build_chain(dims, &params, &ProbOptions::default())
    }

    #[test]
    fn empty_input() {
        let chain = chain2x2();
        assert!(viterbi(&chain, &[]).is_empty());
    }

    #[test]
    fn single_extract_takes_best_initial_state() {
        let chain = chain2x2();
        let dims = chain.dims;
        // Strong emission for record 1, column 0.
        let mut e = vec![-10.0; dims.num_states()];
        e[dims.state(1, 0)] = 0.0;
        let path = viterbi(&chain, &[e]);
        assert_eq!(path, vec![dims.state(1, 0)]);
    }

    #[test]
    fn prefers_structural_path() {
        let chain = chain2x2();
        let dims = chain.dims;
        // Two extracts, both record-ambiguous: the path should continue
        // the same record (0,0) → (0,1) rather than jump records, because
        // initial mass prefers record 0 and continuing beats the fallback.
        let flat = vec![0.0; dims.num_states()];
        let path = viterbi(&chain, &[flat.clone(), flat]);
        assert_eq!(path[0], dims.state(0, 0));
        let (r1, c1) = dims.unpack(path[1]);
        assert!((r1 == 0 && c1 == 1) || (r1 == 1 && c1 == 0), "{path:?}");
    }

    #[test]
    fn follows_emissions_across_records() {
        let chain = chain2x2();
        let dims = chain.dims;
        let mut e0 = vec![-20.0; dims.num_states()];
        e0[dims.state(0, 0)] = 0.0;
        let mut e1 = vec![-20.0; dims.num_states()];
        e1[dims.state(1, 0)] = 0.0;
        let path = viterbi(&chain, &[e0, e1]);
        assert_eq!(path, vec![dims.state(0, 0), dims.state(1, 0)]);
    }

    #[test]
    fn fallback_keeps_path_alive() {
        // Emissions force an "illegal" repeat of the same state; only the
        // fallback self-loop allows it.
        let chain = chain2x2();
        let dims = chain.dims;
        let mut e = vec![-40.0; dims.num_states()];
        e[dims.state(1, 1)] = 0.0;
        let path = viterbi(&chain, &[e.clone(), e]);
        // First step cannot be (1,1) (not an initial state) but the second
        // should reach it; path must exist regardless.
        assert_eq!(path.len(), 2);
        assert_eq!(path[1], dims.state(1, 1));
    }
}
