//! The EM loop (Section 5.2.3).
//!
//! "The basic components of the algorithm are: 1. Compute initial
//! distribution for the global period π using the current values for the
//! `S_i`. ... 3. For each potential starting point and record length, we
//! update the column start probabilities ... 4. Next we update `P(S_i|C_i)`
//! 5. And finally we update `P(R_i|R_{i-1},D_i,S_i)`. In the end we output
//! the most likely assignment to R and C."

use std::time::Instant;

use tableseg_extract::{Observations, Segmentation};

use crate::bootstrap;
use crate::forward_backward::{
    build_chain, emissions_into, emissions_into_memoized, forward_backward,
    forward_backward_scaled, forward_backward_struct, log_emissions, refresh_chain, FbWorkspace,
};
use crate::model::{evidence, Dims, Evidence};
use crate::params::Params;
use crate::viterbi::{viterbi, viterbi_scaled};
use crate::{EmTiming, ProbOptions, ProbOutcome};

/// Runs bootstrapped EM and decodes the MAP segmentation.
pub fn run(obs: &Observations, opts: &ProbOptions) -> ProbOutcome {
    let ev = evidence(obs);
    if ev.is_empty() {
        return ProbOutcome {
            segmentation: Segmentation::unassigned(obs.num_records, 0),
            columns: Vec::new(),
            log_likelihood: 0.0,
            iterations: 0,
            period: Vec::new(),
            timing: EmTiming::default(),
        };
    }

    // Bootstrap (Section 5.2.1): k from the definite segments, π from
    // their lengths.
    let k = bootstrap::num_columns(&ev);
    let dims = Dims {
        num_records: obs.num_records.max(1),
        num_columns: k,
    };
    let pi0 = bootstrap::initial_period(&ev, k);
    let mut params = Params::uniform(k, pi0);

    let mut timing = EmTiming::default();
    let (log_likelihood, iterations, path) = if opts.log_space {
        run_log_space(&ev, dims, &mut params, opts, &mut timing)
    } else {
        run_scaled(&ev, dims, &mut params, opts, &mut timing)
    };

    let mut assignments = Vec::with_capacity(ev.len());
    let mut columns = Vec::with_capacity(ev.len());
    for &s in &path {
        let (r, c) = dims.unpack(s);
        assignments.push(Some(r as u32));
        columns.push(c as u32);
    }

    ProbOutcome {
        segmentation: Segmentation {
            num_records: obs.num_records,
            assignments,
        },
        columns,
        log_likelihood,
        iterations,
        period: params.pi.clone(),
        timing,
    }
}

/// The production EM loop: the chain is built once and only its edge
/// probabilities refresh each iteration, emissions/posteriors live in
/// flat arenas reused across iterations, and inference runs in scaled
/// linear space.
fn run_scaled(
    ev: &[Evidence],
    dims: Dims,
    params: &mut Params,
    opts: &ProbOptions,
    timing: &mut EmTiming,
) -> (f64, usize, Vec<usize>) {
    let memo = opts.memo_e_step;
    let mut ws = FbWorkspace::new();
    // The structured pass reads the transition structure straight from the
    // parameters, so the memoized path defers chain construction to the
    // final Viterbi decode; the unmemoized leg still refreshes a chain
    // every iteration.
    let mut chain = (!memo).then(|| build_chain(dims, params, opts));
    let mut prev_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    // `true` while `ws.emits` matches the current `params`, so a converged
    // loop can feed Viterbi without another emission pass.
    let mut emits_fresh = false;
    for it in 0..opts.max_iterations {
        iterations = it + 1;
        let t = Instant::now();
        let ll = if memo {
            emissions_into_memoized(ev, params, dims, opts, &mut ws);
            forward_backward_struct(dims, params, opts, &mut ws, ev)
        } else {
            emissions_into(ev, params, dims, opts, &mut ws);
            forward_backward_scaled(chain.as_ref().expect("unmemoized leg"), &mut ws, ev)
        };
        emits_fresh = true;
        timing.e_step_ns += t.elapsed().as_nanos() as u64;

        // Log-likelihood-delta early exit *before* the M-step: once the
        // likelihood has stopped moving, the extra parameter update buys
        // nothing and would force an emission refresh for the decode.
        if (ll - prev_ll).abs() < opts.tolerance {
            prev_ll = ll;
            break;
        }
        prev_ll = ll;

        let t = Instant::now();
        params.update(
            &ws.counts.types,
            &ws.counts.col,
            &ws.counts.trans,
            &ws.counts.end,
            &ws.counts.cont,
        );
        if let Some(chain) = chain.as_mut() {
            refresh_chain(chain, params, opts);
        }
        emits_fresh = false;
        timing.m_step_ns += t.elapsed().as_nanos() as u64;
    }

    // MAP decode with the final parameters (the memoized path builds its
    // chain only now; the emission arena is refreshed only when the loop
    // exhausted its iteration budget with the M-step as the last word).
    let t = Instant::now();
    if !emits_fresh {
        if memo {
            emissions_into_memoized(ev, params, dims, opts, &mut ws);
        } else {
            emissions_into(ev, params, dims, opts, &mut ws);
        }
    }
    let chain = match chain {
        Some(chain) => chain,
        None => build_chain(dims, params, opts),
    };
    let path = viterbi_scaled(&chain, &ws);
    timing.viterbi_ns += t.elapsed().as_nanos() as u64;
    (prev_ll, iterations, path)
}

/// The pre-overhaul log-space EM loop, kept verbatim (fresh chain and
/// emission tables every iteration, per-cell `ln`/`exp` inference) as the
/// differential oracle and `solvebench` baseline.
fn run_log_space(
    ev: &[Evidence],
    dims: Dims,
    params: &mut Params,
    opts: &ProbOptions,
    timing: &mut EmTiming,
) -> (f64, usize, Vec<usize>) {
    let mut prev_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    // Chain and emission tables from a converged iteration, still valid
    // for decoding because the early exit skipped the M-step.
    let mut converged = None;
    for it in 0..opts.max_iterations {
        iterations = it + 1;
        let t = Instant::now();
        let chain = build_chain(dims, params, opts);
        let emits = log_emissions(ev, params, dims, opts);
        let fb = forward_backward(&chain, &emits, ev);
        timing.e_step_ns += t.elapsed().as_nanos() as u64;

        // Early exit before the M-step, mirroring `run_scaled`.
        if (fb.log_likelihood - prev_ll).abs() < opts.tolerance {
            prev_ll = fb.log_likelihood;
            converged = Some((chain, emits));
            break;
        }
        prev_ll = fb.log_likelihood;

        let t = Instant::now();
        params.update(
            &fb.counts.types,
            &fb.counts.col,
            &fb.counts.trans,
            &fb.counts.end,
            &fb.counts.cont,
        );
        timing.m_step_ns += t.elapsed().as_nanos() as u64;
    }

    let t = Instant::now();
    let (chain, emits) = converged.unwrap_or_else(|| {
        let chain = build_chain(dims, params, opts);
        let emits = log_emissions(ev, params, dims, opts);
        (chain, emits)
    });
    let path = viterbi(&chain, &emits);
    timing.viterbi_ns += t.elapsed().as_nanos() as u64;
    (prev_ll, iterations, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn run_on(list: &str, details: &[&str]) -> (Observations, ProbOutcome) {
        let list_toks = tokenize(list);
        let detail_toks: Vec<Vec<tableseg_html::Token>> =
            details.iter().map(|d| tokenize(d)).collect();
        let refs: Vec<&[Token]> = detail_toks.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list_toks, &[], &refs);
        let out = run(&obs, &ProbOptions::default());
        (obs, out)
    }

    #[test]
    fn clean_three_records() {
        let (obs, out) = run_on(
            "<td>Alpha One</td><td>100 Main</td><td>Beta Two</td><td>200 Oak</td><td>Gamma Three</td><td>300 Pine</td>",
            &[
                "<p>Alpha One</p><p>100 Main</p>",
                "<p>Beta Two</p><p>200 Oak</p>",
                "<p>Gamma Three</p><p>300 Pine</p>",
            ],
        );
        assert_eq!(
            out.segmentation.assignments,
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)],
            "{out:?}"
        );
        assert!(out.segmentation.check(&obs).is_empty());
        // Column extraction: names in L1, addresses in a later column.
        assert_eq!(out.columns[0], 0);
        assert_eq!(out.columns[2], 0);
        assert_eq!(out.columns[4], 0);
        assert!(out.columns[1] > 0);
        // Period learned: records of length 2 dominate.
        assert!(out.period.len() >= 2);
        assert!(out.period[1] > out.period[0], "{:?}", out.period);
    }

    #[test]
    fn superpages_example_with_shared_values() {
        // The paper's running example: shared name/phone across r1/r2.
        let (obs, out) = run_on(
            "<td>John Smith</td><td>221 Washington</td><td>New Holland</td><td>(740) 335-5555</td>\
             <td>John Smith</td><td>221R Washington St</td><td>Wash CH</td><td>(740) 335-5555</td>\
             <td>George W. Smith</td><td>Findlay, OH</td><td>(419) 423-1212</td>",
            &[
                "<h1>John Smith</h1><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p>",
                "<h1>John Smith</h1><p>221R Washington St</p><p>Wash CH</p><p>(740) 335-5555</p>",
                "<h1>George W. Smith</h1><p>Findlay, OH</p><p>(419) 423-1212</p>",
            ],
        );
        let expected: Vec<Option<u32>> = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(out.segmentation.assignments, expected, "{out:?}");
        assert!(out.segmentation.check(&obs).is_empty());
    }

    #[test]
    fn tolerates_inconsistent_data() {
        // "Parole"/"Parolee": the record-2 status value only matches an
        // unrelated context on r1. The CSP fails here; the probabilistic
        // approach must still produce a *total* segmentation.
        let (_, out) = run_on(
            "<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>",
            &[
                "<p>Alpha One</p><p>Parole</p>",
                "<p>Beta Two</p><p>Parolee</p>",
            ],
        );
        assert!(out.segmentation.is_total());
        // The names anchor their records despite the dirty status fields.
        assert_eq!(out.segmentation.assignments[0], Some(0));
        assert_eq!(out.segmentation.assignments[2], Some(1));
    }

    #[test]
    fn empty_observations() {
        let obs = build_observations(&[], &[], &[]);
        let out = run(&obs, &ProbOptions::default());
        assert!(out.segmentation.assignments.is_empty());
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn memoized_e_step_matches_unmemoized_bit_for_bit() {
        let fixtures: [(&str, Vec<&str>); 2] = [
            (
                "<td>Alpha One</td><td>100 Main</td><td>Beta Two</td><td>200 Oak</td>",
                vec![
                    "<p>Alpha One</p><p>100 Main</p>",
                    "<p>Beta Two</p><p>200 Oak</p>",
                ],
            ),
            (
                "<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>",
                vec![
                    "<p>Alpha One</p><p>Parole</p>",
                    "<p>Beta Two</p><p>Parolee</p>",
                ],
            ),
        ];
        for (list, details) in fixtures {
            let list_toks = tokenize(list);
            let detail_toks: Vec<Vec<tableseg_html::Token>> =
                details.iter().map(|d| tokenize(d)).collect();
            let refs: Vec<&[Token]> = detail_toks.iter().map(Vec::as_slice).collect();
            let obs = build_observations(&list_toks, &[], &refs);
            let memo = run(&obs, &ProbOptions::default());
            let plain = run(
                &obs,
                &ProbOptions {
                    memo_e_step: false,
                    ..ProbOptions::default()
                },
            );
            assert_eq!(memo.segmentation, plain.segmentation);
            assert_eq!(memo.columns, plain.columns);
            assert_eq!(memo.iterations, plain.iterations);
            assert_eq!(
                memo.log_likelihood.to_bits(),
                plain.log_likelihood.to_bits()
            );
            for (a, b) in memo.period.iter().zip(&plain.period) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn converged_run_skips_the_last_m_step() {
        // With a huge tolerance, iteration 2 converges immediately (the
        // first delta is infinite): the decode must then use the
        // parameters of the single M-step that ran, matching the
        // log-space oracle's early exit.
        let list_toks =
            tokenize("<td>Alpha One</td><td>100 Main</td><td>Beta Two</td><td>200 Oak</td>");
        let d: Vec<Vec<tableseg_html::Token>> = [
            "<p>Alpha One</p><p>100 Main</p>",
            "<p>Beta Two</p><p>200 Oak</p>",
        ]
        .iter()
        .map(|s| tokenize(s))
        .collect();
        let refs: Vec<&[Token]> = d.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list_toks, &[], &refs);
        let opts = ProbOptions {
            tolerance: 1e300,
            ..ProbOptions::default()
        };
        let fast = run(&obs, &opts);
        assert_eq!(fast.iterations, 2);
        let oracle = run(
            &obs,
            &ProbOptions {
                log_space: true,
                ..opts
            },
        );
        assert_eq!(oracle.iterations, 2);
        assert_eq!(fast.segmentation, oracle.segmentation);
        assert_eq!(fast.columns, oracle.columns);
        for (a, b) in fast.period.iter().zip(&oracle.period) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn deterministic() {
        let args = (
            "<td>A B</td><td>1</td><td>C D</td><td>2</td>",
            ["<p>A B</p><p>1</p>", "<p>C D</p><p>2</p>", "<p>zz</p>"],
        );
        let (_, a) = run_on(args.0, &args.1);
        let (_, b) = run_on(args.0, &args.1);
        assert_eq!(a.segmentation, b.segmentation);
        assert_eq!(a.columns, b.columns);
    }

    #[test]
    fn period_model_ablation_still_segments_clean_data() {
        let list = tokenize(
            "<td>Alpha One</td><td>100 Main</td><td>Beta Two</td><td>200 Oak</td><td>Gamma Three</td><td>300 Pine</td>",
        );
        let d: Vec<Vec<tableseg_html::Token>> = [
            "<p>Alpha One</p><p>100 Main</p>",
            "<p>Beta Two</p><p>200 Oak</p>",
            "<p>Gamma Three</p><p>300 Pine</p>",
        ]
        .iter()
        .map(|s| tokenize(s))
        .collect();
        let refs: Vec<&[Token]> = d.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list, &[], &refs);
        let out = run(
            &obs,
            &ProbOptions {
                period_model: false,
                ..ProbOptions::default()
            },
        );
        assert_eq!(
            out.segmentation.assignments,
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]
        );
    }
}
