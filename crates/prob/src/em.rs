//! The EM loop (Section 5.2.3).
//!
//! "The basic components of the algorithm are: 1. Compute initial
//! distribution for the global period π using the current values for the
//! `S_i`. ... 3. For each potential starting point and record length, we
//! update the column start probabilities ... 4. Next we update `P(S_i|C_i)`
//! 5. And finally we update `P(R_i|R_{i-1},D_i,S_i)`. In the end we output
//! the most likely assignment to R and C."

use std::time::Instant;

use tableseg_extract::{Observations, Segmentation};

use crate::bootstrap;
use crate::forward_backward::{
    build_chain, emissions_into, forward_backward, forward_backward_scaled, log_emissions,
    refresh_chain, FbWorkspace,
};
use crate::model::{evidence, Dims, Evidence};
use crate::params::Params;
use crate::viterbi::{viterbi, viterbi_scaled};
use crate::{EmTiming, ProbOptions, ProbOutcome};

/// Runs bootstrapped EM and decodes the MAP segmentation.
pub fn run(obs: &Observations, opts: &ProbOptions) -> ProbOutcome {
    let ev = evidence(obs);
    if ev.is_empty() {
        return ProbOutcome {
            segmentation: Segmentation::unassigned(obs.num_records, 0),
            columns: Vec::new(),
            log_likelihood: 0.0,
            iterations: 0,
            period: Vec::new(),
            timing: EmTiming::default(),
        };
    }

    // Bootstrap (Section 5.2.1): k from the definite segments, π from
    // their lengths.
    let k = bootstrap::num_columns(&ev);
    let dims = Dims {
        num_records: obs.num_records.max(1),
        num_columns: k,
    };
    let pi0 = bootstrap::initial_period(&ev, k);
    let mut params = Params::uniform(k, pi0);

    let mut timing = EmTiming::default();
    let (log_likelihood, iterations, path) = if opts.log_space {
        run_log_space(&ev, dims, &mut params, opts, &mut timing)
    } else {
        run_scaled(&ev, dims, &mut params, opts, &mut timing)
    };

    let mut assignments = Vec::with_capacity(ev.len());
    let mut columns = Vec::with_capacity(ev.len());
    for &s in &path {
        let (r, c) = dims.unpack(s);
        assignments.push(Some(r as u32));
        columns.push(c as u32);
    }

    ProbOutcome {
        segmentation: Segmentation {
            num_records: obs.num_records,
            assignments,
        },
        columns,
        log_likelihood,
        iterations,
        period: params.pi.clone(),
        timing,
    }
}

/// The production EM loop: the chain is built once and only its edge
/// probabilities refresh each iteration, emissions/posteriors live in
/// flat arenas reused across iterations, and inference runs in scaled
/// linear space.
fn run_scaled(
    ev: &[Evidence],
    dims: Dims,
    params: &mut Params,
    opts: &ProbOptions,
    timing: &mut EmTiming,
) -> (f64, usize, Vec<usize>) {
    let mut ws = FbWorkspace::new();
    let mut chain = build_chain(dims, params, opts);
    let mut prev_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    for it in 0..opts.max_iterations {
        iterations = it + 1;
        let t = Instant::now();
        emissions_into(ev, params, dims, opts, &mut ws);
        let ll = forward_backward_scaled(&chain, &mut ws, ev);
        timing.e_step_ns += t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        params.update(
            &ws.counts.types,
            &ws.counts.col,
            &ws.counts.trans,
            &ws.counts.end,
            &ws.counts.cont,
        );
        refresh_chain(&mut chain, params, opts);
        timing.m_step_ns += t.elapsed().as_nanos() as u64;

        if (ll - prev_ll).abs() < opts.tolerance {
            prev_ll = ll;
            break;
        }
        prev_ll = ll;
    }

    // MAP decode with the final parameters (the chain already carries
    // them; only the emissions need a refresh).
    let t = Instant::now();
    emissions_into(ev, params, dims, opts, &mut ws);
    let path = viterbi_scaled(&chain, &ws);
    timing.viterbi_ns += t.elapsed().as_nanos() as u64;
    (prev_ll, iterations, path)
}

/// The pre-overhaul log-space EM loop, kept verbatim (fresh chain and
/// emission tables every iteration, per-cell `ln`/`exp` inference) as the
/// differential oracle and `solvebench` baseline.
fn run_log_space(
    ev: &[Evidence],
    dims: Dims,
    params: &mut Params,
    opts: &ProbOptions,
    timing: &mut EmTiming,
) -> (f64, usize, Vec<usize>) {
    let mut prev_ll = f64::NEG_INFINITY;
    let mut iterations = 0;
    for it in 0..opts.max_iterations {
        iterations = it + 1;
        let t = Instant::now();
        let chain = build_chain(dims, params, opts);
        let emits = log_emissions(ev, params, dims, opts);
        let fb = forward_backward(&chain, &emits, ev);
        timing.e_step_ns += t.elapsed().as_nanos() as u64;

        let t = Instant::now();
        params.update(
            &fb.counts.types,
            &fb.counts.col,
            &fb.counts.trans,
            &fb.counts.end,
            &fb.counts.cont,
        );
        timing.m_step_ns += t.elapsed().as_nanos() as u64;

        if (fb.log_likelihood - prev_ll).abs() < opts.tolerance {
            prev_ll = fb.log_likelihood;
            break;
        }
        prev_ll = fb.log_likelihood;
    }

    let t = Instant::now();
    let chain = build_chain(dims, params, opts);
    let emits = log_emissions(ev, params, dims, opts);
    let path = viterbi(&chain, &emits);
    timing.viterbi_ns += t.elapsed().as_nanos() as u64;
    (prev_ll, iterations, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn run_on(list: &str, details: &[&str]) -> (Observations, ProbOutcome) {
        let list_toks = tokenize(list);
        let detail_toks: Vec<Vec<tableseg_html::Token>> =
            details.iter().map(|d| tokenize(d)).collect();
        let refs: Vec<&[Token]> = detail_toks.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list_toks, &[], &refs);
        let out = run(&obs, &ProbOptions::default());
        (obs, out)
    }

    #[test]
    fn clean_three_records() {
        let (obs, out) = run_on(
            "<td>Alpha One</td><td>100 Main</td><td>Beta Two</td><td>200 Oak</td><td>Gamma Three</td><td>300 Pine</td>",
            &[
                "<p>Alpha One</p><p>100 Main</p>",
                "<p>Beta Two</p><p>200 Oak</p>",
                "<p>Gamma Three</p><p>300 Pine</p>",
            ],
        );
        assert_eq!(
            out.segmentation.assignments,
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)],
            "{out:?}"
        );
        assert!(out.segmentation.check(&obs).is_empty());
        // Column extraction: names in L1, addresses in a later column.
        assert_eq!(out.columns[0], 0);
        assert_eq!(out.columns[2], 0);
        assert_eq!(out.columns[4], 0);
        assert!(out.columns[1] > 0);
        // Period learned: records of length 2 dominate.
        assert!(out.period.len() >= 2);
        assert!(out.period[1] > out.period[0], "{:?}", out.period);
    }

    #[test]
    fn superpages_example_with_shared_values() {
        // The paper's running example: shared name/phone across r1/r2.
        let (obs, out) = run_on(
            "<td>John Smith</td><td>221 Washington</td><td>New Holland</td><td>(740) 335-5555</td>\
             <td>John Smith</td><td>221R Washington St</td><td>Wash CH</td><td>(740) 335-5555</td>\
             <td>George W. Smith</td><td>Findlay, OH</td><td>(419) 423-1212</td>",
            &[
                "<h1>John Smith</h1><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p>",
                "<h1>John Smith</h1><p>221R Washington St</p><p>Wash CH</p><p>(740) 335-5555</p>",
                "<h1>George W. Smith</h1><p>Findlay, OH</p><p>(419) 423-1212</p>",
            ],
        );
        let expected: Vec<Option<u32>> = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(out.segmentation.assignments, expected, "{out:?}");
        assert!(out.segmentation.check(&obs).is_empty());
    }

    #[test]
    fn tolerates_inconsistent_data() {
        // "Parole"/"Parolee": the record-2 status value only matches an
        // unrelated context on r1. The CSP fails here; the probabilistic
        // approach must still produce a *total* segmentation.
        let (_, out) = run_on(
            "<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>",
            &[
                "<p>Alpha One</p><p>Parole</p>",
                "<p>Beta Two</p><p>Parolee</p>",
            ],
        );
        assert!(out.segmentation.is_total());
        // The names anchor their records despite the dirty status fields.
        assert_eq!(out.segmentation.assignments[0], Some(0));
        assert_eq!(out.segmentation.assignments[2], Some(1));
    }

    #[test]
    fn empty_observations() {
        let obs = build_observations(&[], &[], &[]);
        let out = run(&obs, &ProbOptions::default());
        assert!(out.segmentation.assignments.is_empty());
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn deterministic() {
        let args = (
            "<td>A B</td><td>1</td><td>C D</td><td>2</td>",
            ["<p>A B</p><p>1</p>", "<p>C D</p><p>2</p>", "<p>zz</p>"],
        );
        let (_, a) = run_on(args.0, &args.1);
        let (_, b) = run_on(args.0, &args.1);
        assert_eq!(a.segmentation, b.segmentation);
        assert_eq!(a.columns, b.columns);
    }

    #[test]
    fn period_model_ablation_still_segments_clean_data() {
        let list = tokenize(
            "<td>Alpha One</td><td>100 Main</td><td>Beta Two</td><td>200 Oak</td><td>Gamma Three</td><td>300 Pine</td>",
        );
        let d: Vec<Vec<tableseg_html::Token>> = [
            "<p>Alpha One</p><p>100 Main</p>",
            "<p>Beta Two</p><p>200 Oak</p>",
            "<p>Gamma Three</p><p>300 Pine</p>",
        ]
        .iter()
        .map(|s| tokenize(s))
        .collect();
        let refs: Vec<&[Token]> = d.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list, &[], &refs);
        let out = run(
            &obs,
            &ProbOptions {
                period_model: false,
                ..ProbOptions::default()
            },
        );
        assert_eq!(
            out.segmentation.assignments,
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]
        );
    }
}
