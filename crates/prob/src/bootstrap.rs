//! Bootstrapping the model from detail-page information (Section 5.2.1).
//!
//! "The key way in which information from detail pages helps us is it gives
//! us a guide to some of the initial `R_i` assignments. ... We also make
//! use of the `D_i` to infer values for `S_i`. If `D_{i-1} ∩ D_i = ∅`, then
//! `P(S_i = true) = 1`."

use crate::model::Evidence;

/// Indices `i` where a record start is *certain*: extract 0, and every `i`
/// with `D_{i-1} ∩ D_i = ∅`.
pub fn definite_starts(evidence: &[Evidence]) -> Vec<usize> {
    let mut starts = Vec::new();
    for i in 0..evidence.len() {
        if i == 0 {
            starts.push(0);
            continue;
        }
        let disjoint = evidence[i]
            .pages
            .iter()
            .all(|p| evidence[i - 1].pages.binary_search(p).is_err());
        if disjoint {
            starts.push(i);
        }
    }
    starts
}

/// Segment lengths implied by the definite starts. These *upper-bound* the
/// true record lengths (missed boundaries merge segments, so the bound is
/// from above only for the maximum; individual true records may be longer
/// than the minimum observed segment).
pub fn segment_lengths(evidence: &[Evidence], starts: &[usize]) -> Vec<usize> {
    if evidence.is_empty() {
        return Vec::new();
    }
    let mut lengths = Vec::with_capacity(starts.len());
    for (k, &s) in starts.iter().enumerate() {
        let end = starts.get(k + 1).copied().unwrap_or(evidence.len());
        lengths.push(end - s);
    }
    lengths
}

/// The number of column labels `k`: "a bound on this is the largest number
/// of extracts found on a detail page" — here, the longest definite
/// segment, which by construction contains extracts of at most a couple of
/// records.
pub fn num_columns(evidence: &[Evidence]) -> usize {
    let starts = definite_starts(evidence);
    segment_lengths(evidence, &starts)
        .into_iter()
        .max()
        .unwrap_or(1)
        .max(1)
}

/// The initial period distribution π computed from the definite segment
/// lengths (Step 1 of the algorithm in Section 5.2.3), Laplace-smoothed.
pub fn initial_period(evidence: &[Evidence], num_columns: usize) -> Vec<f64> {
    let starts = definite_starts(evidence);
    let lengths = segment_lengths(evidence, &starts);
    let mut pi = vec![0.5; num_columns];
    for len in lengths {
        let idx = len.clamp(1, num_columns) - 1;
        pi[idx] += 1.0;
    }
    crate::params::normalize(&mut pi);
    pi
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::TypeSet;

    fn ev(pages: &[u32]) -> Evidence {
        Evidence {
            types: TypeSet::EMPTY,
            pages: pages.to_vec(),
        }
    }

    #[test]
    fn disjoint_d_means_definite_start() {
        let e = vec![ev(&[0]), ev(&[0]), ev(&[1]), ev(&[1, 2]), ev(&[2])];
        // Start at 0; at 2 (D={1} vs {0}); index 3 shares 1 with index 2;
        // index 4 shares 2 with index 3.
        assert_eq!(definite_starts(&e), vec![0, 2]);
    }

    #[test]
    fn shared_values_hide_boundaries() {
        // The Superpages case: "John Smith" on r1 and r2 hides the r1/r2
        // boundary from the bootstrap.
        let e = vec![ev(&[0, 1]), ev(&[0]), ev(&[0, 1]), ev(&[1]), ev(&[2])];
        assert_eq!(definite_starts(&e), vec![0, 4]);
    }

    #[test]
    fn lengths_partition_the_sequence() {
        let e = vec![ev(&[0]), ev(&[0]), ev(&[1]), ev(&[2]), ev(&[2])];
        let starts = definite_starts(&e);
        let lengths = segment_lengths(&e, &starts);
        assert_eq!(lengths.iter().sum::<usize>(), e.len());
        assert_eq!(lengths, vec![2, 1, 2]);
    }

    #[test]
    fn num_columns_is_longest_segment() {
        let e = vec![ev(&[0]), ev(&[0]), ev(&[0]), ev(&[1]), ev(&[1])];
        assert_eq!(num_columns(&e), 3);
    }

    #[test]
    fn num_columns_of_empty_sequence() {
        assert_eq!(num_columns(&[]), 1);
    }

    #[test]
    fn initial_period_peaks_at_observed_lengths() {
        let e = vec![ev(&[0]), ev(&[0]), ev(&[1]), ev(&[1]), ev(&[2]), ev(&[2])];
        let k = num_columns(&e);
        assert_eq!(k, 2);
        let pi = initial_period(&e, k);
        assert_eq!(pi.len(), 2);
        assert!(pi[1] > pi[0], "{pi:?}");
        assert!((pi.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_pages_never_match_previous() {
        // An extract with empty D (possible in degenerate observation
        // tables) is vacuously disjoint from anything.
        let e = vec![ev(&[0]), ev(&[])];
        assert_eq!(definite_starts(&e), vec![0, 1]);
    }
}
