//! Property tests for the probabilistic model: posterior normalization,
//! Viterbi validity and EM numeric health on random evidence.

use proptest::prelude::*;

use tableseg_html::TypeSet;
use tableseg_prob::forward_backward::{build_chain, forward_backward, log_emissions};
use tableseg_prob::model::{Dims, Evidence};
use tableseg_prob::params::Params;
use tableseg_prob::viterbi::viterbi;
use tableseg_prob::ProbOptions;

fn arb_evidence(num_records: usize) -> impl Strategy<Value = Vec<Evidence>> {
    proptest::collection::vec(
        (
            0u8..=255,
            proptest::collection::btree_set(0..num_records as u32, 0..=num_records.min(3)),
        ),
        1..14,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(bits, pages)| Evidence {
                types: TypeSet::from_bits(bits),
                pages: pages.into_iter().collect(),
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Forward-backward posteriors are proper distributions, counts are
    /// conserved, and the log-likelihood is finite — even with impossible
    /// record evidence (the fallback keeps the chain alive).
    #[test]
    fn forward_backward_is_normalized(ev in arb_evidence(4)) {
        let dims = Dims { num_records: 4, num_columns: 3 };
        let params = Params::uniform(3, vec![1.0, 1.0, 1.0]);
        let opts = ProbOptions::default();
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let fb = forward_backward(&chain, &emits, &ev);
        prop_assert!(fb.log_likelihood.is_finite());
        for (i, row) in fb.gamma.iter().enumerate() {
            let s: f64 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-6, "gamma[{i}] sums to {s}");
            prop_assert!(row.iter().all(|&g| (-1e-9..=1.0 + 1e-9).contains(&g)));
        }
        let col_mass: f64 = fb.counts.col.iter().sum();
        prop_assert!((col_mass - ev.len() as f64).abs() < 1e-6);
    }

    /// Every Viterbi step follows an existing chain edge (or the initial
    /// distribution), and the path length matches the evidence.
    #[test]
    fn viterbi_path_is_structurally_valid(ev in arb_evidence(3)) {
        let dims = Dims { num_records: 3, num_columns: 3 };
        let params = Params::uniform(3, vec![1.0; 3]);
        let opts = ProbOptions::default();
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let path = viterbi(&chain, &emits);
        prop_assert_eq!(path.len(), ev.len());
        // First state is a legal start.
        prop_assert!(chain.init[path[0]].is_finite());
        // Every transition is an edge.
        for w in path.windows(2) {
            let has_edge = chain.edges[w[0]].iter().any(|e| e.to == w[1]);
            prop_assert!(has_edge, "no edge {} -> {}", w[0], w[1]);
        }
        // Record labels never decrease along the path.
        let records: Vec<usize> = path.iter().map(|&s| dims.unpack(s).0).collect();
        prop_assert!(records.windows(2).all(|w| w[0] <= w[1]));
    }

    /// The full segmenter is total, monotone, in-range and deterministic
    /// for arbitrary observation shapes.
    #[test]
    fn segment_prob_invariants(ev_spec in arb_evidence(4)) {
        use tableseg_extract::{ObsItem, Observations, Extract};
        use tableseg_html::Token;
        // Build a synthetic observation table carrying the evidence.
        let items: Vec<ObsItem> = ev_spec
            .iter()
            .enumerate()
            .map(|(i, ev)| ObsItem::new(
                Extract {
                    index: i,
                    tokens: vec![Token::text(format!("w{i}"), i)],
                    start: i,
                },
                ev.pages.clone(),
                vec![],
            ))
            .collect();
        let obs = Observations { num_records: 4, items, skipped: vec![] };
        let opts = ProbOptions::default();
        let a = tableseg_prob::segment_prob(&obs, &opts);
        prop_assert!(a.segmentation.is_total());
        prop_assert_eq!(a.columns.len(), obs.items.len());
        let b = tableseg_prob::segment_prob(&obs, &opts);
        prop_assert_eq!(a.segmentation, b.segmentation);
        prop_assert_eq!(a.columns, b.columns);
    }
}
