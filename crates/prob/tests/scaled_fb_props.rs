//! Differential property tests for the scaled linear-space inference
//! path: the production `emissions_into` + `forward_backward_scaled` +
//! `viterbi_scaled` pipeline against the log-space originals, plus the
//! arena-reuse regression of the workspace.

use proptest::prelude::*;

use tableseg_html::TypeSet;
use tableseg_prob::forward_backward::{
    build_chain, emissions_into, forward_backward, forward_backward_scaled, log_emissions,
    refresh_chain, FbWorkspace,
};
use tableseg_prob::model::{Dims, Evidence};
use tableseg_prob::params::Params;
use tableseg_prob::viterbi::{viterbi, viterbi_scaled};
use tableseg_prob::ProbOptions;

fn arb_evidence(num_records: usize) -> impl Strategy<Value = Vec<Evidence>> {
    proptest::collection::vec(
        (
            0u8..=255,
            proptest::collection::btree_set(0..num_records as u32, 0..=num_records.min(3)),
        ),
        1..14,
    )
    .prop_map(|items| {
        items
            .into_iter()
            .map(|(bits, pages)| Evidence {
                types: TypeSet::from_bits(bits),
                pages: pages.into_iter().collect(),
            })
            .collect()
    })
}

/// Relative 1e-9 closeness (absolute for values at most 1, like the
/// posteriors; relative for the log-likelihood).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0)
}

/// One EM iteration's worth of parameter drift, so differential checks
/// also run on non-uniform parameters.
fn drifted_params(ev: &[Evidence], dims: Dims, opts: &ProbOptions) -> Params {
    let mut params = Params::uniform(dims.num_columns, vec![1.0; dims.num_columns]);
    let chain = build_chain(dims, &params, opts);
    let emits = log_emissions(ev, &params, dims, opts);
    let fb = forward_backward(&chain, &emits, ev);
    params.update(
        &fb.counts.types,
        &fb.counts.col,
        &fb.counts.trans,
        &fb.counts.end,
        &fb.counts.cont,
    );
    params
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The scaled linear-space forward–backward reproduces the log-space
    /// oracle within 1e-9: log-likelihood, posteriors and every expected
    /// count, on uniform and on EM-drifted parameters.
    #[test]
    fn scaled_fb_matches_log_space(ev in arb_evidence(4), drift in proptest::bool::ANY) {
        let dims = Dims { num_records: 4, num_columns: 3 };
        let opts = ProbOptions::default();
        let params = if drift {
            drifted_params(&ev, dims, &opts)
        } else {
            Params::uniform(3, vec![1.0; 3])
        };

        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let fb = forward_backward(&chain, &emits, &ev);

        let mut ws = FbWorkspace::new();
        emissions_into(&ev, &params, dims, &opts, &mut ws);
        let ll = forward_backward_scaled(&chain, &mut ws, &ev);

        prop_assert!(close(ll, fb.log_likelihood), "ll {} vs {}", ll, fb.log_likelihood);
        let ns = dims.num_states();
        for (i, row) in fb.gamma.iter().enumerate() {
            for (s, &g) in row.iter().enumerate() {
                let sg = ws.gamma[i * ns + s];
                prop_assert!(close(sg, g), "gamma[{i}][{s}]: {sg} vs {g}");
            }
        }
        for (a, b) in ws.counts.col.iter().zip(&fb.counts.col) {
            prop_assert!(close(*a, *b), "col count {a} vs {b}");
        }
        for (ar, br) in ws.counts.types.iter().zip(&fb.counts.types) {
            for (a, b) in ar.iter().zip(br) {
                prop_assert!(close(*a, *b), "types count {a} vs {b}");
            }
        }
        for (ar, br) in ws.counts.trans.iter().zip(&fb.counts.trans) {
            for (a, b) in ar.iter().zip(br) {
                prop_assert!(close(*a, *b), "trans count {a} vs {b}");
            }
        }
        for (a, b) in ws.counts.end.iter().zip(&fb.counts.end) {
            prop_assert!(close(*a, *b), "end count {a} vs {b}");
        }
        for (a, b) in ws.counts.cont.iter().zip(&fb.counts.cont) {
            prop_assert!(close(*a, *b), "cont count {a} vs {b}");
        }
    }

    /// The scaled Viterbi decodes a MAP path of the same score as the
    /// log-space one. (Per-row emission scaling shifts every path's score
    /// equally, so the argmax set is unchanged — but distinct paths can
    /// tie exactly, and the ~1e-16 rounding difference between linear
    /// products and log sums may break such ties differently. Scores are
    /// compared, not indices.)
    #[test]
    fn scaled_viterbi_matches_log_space(ev in arb_evidence(3), drift in any::<bool>()) {
        let dims = Dims { num_records: 3, num_columns: 3 };
        let opts = ProbOptions::default();
        let params = if drift {
            drifted_params(&ev, dims, &opts)
        } else {
            Params::uniform(3, vec![1.0; 3])
        };
        let chain = build_chain(dims, &params, &opts);
        let emits = log_emissions(&ev, &params, dims, &opts);
        let log_path = viterbi(&chain, &emits);

        let mut ws = FbWorkspace::new();
        emissions_into(&ev, &params, dims, &opts, &mut ws);
        let scaled_path = viterbi_scaled(&chain, &ws);
        prop_assert_eq!(scaled_path.len(), log_path.len());
        let score = |path: &[usize]| -> f64 {
            let mut s = chain.init[path[0]] + emits[0][path[0]];
            for (i, w) in path.windows(2).enumerate() {
                let e = chain.edges[w[0]]
                    .iter()
                    .find(|e| e.to == w[1])
                    .expect("path follows chain edges");
                s += e.logp + emits[i + 1][w[1]];
            }
            s
        };
        let (a, b) = (score(&scaled_path), score(&log_path));
        prop_assert!(close(a, b), "scaled path scores {a}, log path {b}");
    }

    /// `refresh_chain` on a once-built chain reproduces `build_chain` on
    /// the same parameters: identical topology and edge probabilities.
    #[test]
    fn refresh_chain_matches_rebuild(ev in arb_evidence(4)) {
        let dims = Dims { num_records: 4, num_columns: 3 };
        let opts = ProbOptions::default();
        let uniform = Params::uniform(3, vec![1.0; 3]);
        let drifted = drifted_params(&ev, dims, &opts);

        let mut refreshed = build_chain(dims, &uniform, &opts);
        refresh_chain(&mut refreshed, &drifted, &opts);
        let rebuilt = build_chain(dims, &drifted, &opts);

        prop_assert_eq!(refreshed.init, rebuilt.init);
        for (a_out, b_out) in refreshed.edges.iter().zip(&rebuilt.edges) {
            prop_assert_eq!(a_out.len(), b_out.len());
            for (a, b) in a_out.iter().zip(b_out) {
                prop_assert_eq!(a.to, b.to);
                prop_assert!(close(a.p, b.p), "edge p {} vs {}", a.p, b.p);
                prop_assert!(
                    close(a.logp, b.logp) || (a.logp == f64::NEG_INFINITY && b.logp == f64::NEG_INFINITY),
                    "edge logp {} vs {}", a.logp, b.logp
                );
            }
        }
    }

    /// The workspace arenas stop growing after the first iteration: EM
    /// re-runs on the same instance never reallocate the tables
    /// (satellite regression for the per-iteration `Vec<Vec<f64>>` churn).
    #[test]
    fn workspace_arenas_do_not_grow_across_iterations(ev in arb_evidence(4)) {
        let dims = Dims { num_records: 4, num_columns: 3 };
        let opts = ProbOptions::default();
        let mut params = Params::uniform(3, vec![1.0; 3]);
        let mut chain = build_chain(dims, &params, &opts);
        let mut ws = FbWorkspace::new();

        emissions_into(&ev, &params, dims, &opts, &mut ws);
        forward_backward_scaled(&chain, &mut ws, &ev);
        let cap_after_first = ws.table_capacity();
        for _ in 0..5 {
            params.update(
                &ws.counts.types,
                &ws.counts.col,
                &ws.counts.trans,
                &ws.counts.end,
                &ws.counts.cont,
            );
            refresh_chain(&mut chain, &params, &opts);
            emissions_into(&ev, &params, dims, &opts, &mut ws);
            forward_backward_scaled(&chain, &mut ws, &ev);
            prop_assert_eq!(ws.table_capacity(), cap_after_first, "arena grew");
        }
    }
}

#[test]
fn empty_sequence_edge_case() {
    let dims = Dims {
        num_records: 2,
        num_columns: 2,
    };
    let opts = ProbOptions::default();
    let params = Params::uniform(2, vec![1.0, 1.0]);
    let chain = build_chain(dims, &params, &opts);
    let mut ws = FbWorkspace::new();
    emissions_into(&[], &params, dims, &opts, &mut ws);
    let ll = forward_backward_scaled(&chain, &mut ws, &[]);
    assert_eq!(ll, 0.0);
    assert!(viterbi_scaled(&chain, &ws).is_empty());
    let fb = forward_backward(&chain, &[], &[]);
    assert_eq!(fb.log_likelihood, 0.0);
}

#[test]
fn single_state_edge_case() {
    // One record, one column: a single chain state, held alive by the
    // fallback self-loop.
    let dims = Dims {
        num_records: 1,
        num_columns: 1,
    };
    let opts = ProbOptions::default();
    let params = Params::uniform(1, vec![1.0]);
    let ev = vec![
        Evidence {
            types: TypeSet::from_bits(0b1),
            pages: vec![0],
        },
        Evidence {
            types: TypeSet::from_bits(0b10),
            pages: vec![],
        },
    ];
    let chain = build_chain(dims, &params, &opts);
    let emits = log_emissions(&ev, &params, dims, &opts);
    let fb = forward_backward(&chain, &emits, &ev);

    let mut ws = FbWorkspace::new();
    emissions_into(&ev, &params, dims, &opts, &mut ws);
    let ll = forward_backward_scaled(&chain, &mut ws, &ev);
    assert!(
        close(ll, fb.log_likelihood),
        "{ll} vs {}",
        fb.log_likelihood
    );
    assert!(close(ws.gamma[0], 1.0));
    assert!(close(ws.gamma[1], 1.0));
    assert_eq!(viterbi_scaled(&chain, &ws), viterbi(&chain, &emits));
}
