//! A simplified RoadRunner (Crescenzi, Mecca & Merialdo, VLDB 2001):
//! union-free grammar induction by aligning two sample pages.
//!
//! RoadRunner infers a page grammar made of fixed tokens, data slots
//! (`#PCDATA`) and optional/iterated sub-expressions — but **no
//! disjunctions**. The induction here aligns two pages token by token:
//!
//! * equal tokens become fixed grammar tokens;
//! * mismatches between *text* tokens generalize to a `#PCDATA` slot;
//! * mismatches involving *tags* are resolved by searching for an iterator
//!   (a repeated row template) or an optional; if neither explains the
//!   mismatch the induction **fails** — the union-free limitation the
//!   paper exploits in its Section 6.3 comparison ("alternate
//!   \[formatting\] instructions are syntactically equivalent to
//!   disjunctions, which are disallowed by union-free grammars").

use tableseg_html::lexer::{is_closing, tag_name, tokenize};
use tableseg_html::Token;

/// The comparison key of a token during alignment. RoadRunner treats tags
/// with varying attributes (per-row `href`s, alternating `bgcolor`s) as
/// the same grammar symbol, so tags compare by (closing, name); text
/// compares exactly.
fn same_symbol(a: &Token, b: &Token) -> bool {
    match (a.is_html(), b.is_html()) {
        (true, true) => {
            is_closing(&a.text) == is_closing(&b.text) && tag_name(&a.text) == tag_name(&b.text)
        }
        (false, false) => a.text == b.text,
        _ => false,
    }
}

/// Canonical display form of a tag symbol (attributes stripped).
fn symbol_text(t: &Token) -> String {
    if t.is_html() {
        if is_closing(&t.text) {
            format!("</{}>", tag_name(&t.text))
        } else {
            format!("<{}>", tag_name(&t.text))
        }
    } else {
        t.text.clone()
    }
}

/// A union-free grammar element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarNode {
    /// A fixed token (tag or text) common to all pages.
    Fixed(String),
    /// A data slot (`#PCDATA`).
    Data,
    /// An iterated sub-template `( ... )+` — the table row.
    Iterator(Vec<GrammarNode>),
    /// An optional sub-template `( ... )?`.
    Optional(Vec<GrammarNode>),
}

/// Why induction failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InductionError {
    /// A tag mismatch that no iterator or optional explains — a
    /// disjunction would be required, and union-free grammars have none.
    DisjunctionRequired {
        /// Token on the first page at the point of failure.
        left: String,
        /// Token on the second page at the point of failure.
        right: String,
    },
    /// Fewer than two pages supplied.
    NeedTwoPages,
}

/// Result of a RoadRunner-style induction.
pub type InductionResult = Result<Vec<GrammarNode>, InductionError>;

/// Induces a union-free grammar from two sample pages.
pub fn induce(page_a: &str, page_b: &str) -> InductionResult {
    let a = tokenize(page_a);
    let b = tokenize(page_b);
    align(&a, &b, 0)
}

const MAX_SQUARE: usize = 40;

fn align(a: &[Token], b: &[Token], depth: usize) -> InductionResult {
    if depth > 24 {
        // Runaway recursion means the pages cannot be reconciled.
        return Err(InductionError::DisjunctionRequired {
            left: a.first().map(|t| t.text.clone()).unwrap_or_default(),
            right: b.first().map(|t| t.text.clone()).unwrap_or_default(),
        });
    }
    let mut out = Vec::new();
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        let (ta, tb) = (&a[i], &b[j]);
        if same_symbol(ta, tb) {
            out.push(GrammarNode::Fixed(symbol_text(ta)));
            i += 1;
            j += 1;
            continue;
        }
        // String mismatch → data slot.
        if ta.is_text() && tb.is_text() {
            out.push(GrammarNode::Data);
            i += 1;
            j += 1;
            continue;
        }
        // Tag mismatch → try an iterator ("square" discovery): one page
        // repeats a block the other has fewer copies of. The block is
        // delimited by the mismatch position and the previous occurrence
        // of the same terminator tag.
        if let Some((node, ni, nj)) = discover_iterator(a, b, i, j, depth)? {
            out.push(node);
            i = ni;
            j = nj;
            continue;
        }
        // Try an optional: skip ahead on one side to re-synchronize.
        if let Some((node, ni, nj)) = discover_optional(a, b, i, j) {
            out.push(node);
            i = ni;
            j = nj;
            continue;
        }
        return Err(InductionError::DisjunctionRequired {
            left: ta.text.clone(),
            right: tb.text.clone(),
        });
    }
    // Tails: whatever remains on either page is optional.
    if i < a.len() {
        out.push(GrammarNode::Optional(
            a[i..]
                .iter()
                .map(|t| GrammarNode::Fixed(symbol_text(t)))
                .collect(),
        ));
    } else if j < b.len() {
        out.push(GrammarNode::Optional(
            b[j..]
                .iter()
                .map(|t| GrammarNode::Fixed(symbol_text(t)))
                .collect(),
        ));
    }
    Ok(out)
}

type IteratorHit = Option<(GrammarNode, usize, usize)>;

/// Tries to explain a tag mismatch at `(i, j)` as an iterated row: the
/// classic RoadRunner "square" match. Looks backwards for the start of a
/// candidate block on the side whose current tag re-occurs earlier.
fn discover_iterator(
    a: &[Token],
    b: &[Token],
    i: usize,
    j: usize,
    depth: usize,
) -> Result<IteratorHit, InductionError> {
    // Case 1: page A repeats a block at i that B does not have.
    if let Some(block) = backward_block(a, i) {
        let len = block.len();
        if len > 0 && len <= MAX_SQUARE && matches_at(a, i, block) {
            // Consume repetitions on A.
            let mut ni = i;
            while matches_at(a, ni, block) {
                ni += len;
            }
            let template = align(&a[i - len..i], &a[i..i + len], depth + 1)?;
            return Ok(Some((GrammarNode::Iterator(template), ni, j)));
        }
    }
    // Case 2: symmetric, B repeats.
    if let Some(block) = backward_block(b, j) {
        let len = block.len();
        if len > 0 && len <= MAX_SQUARE && matches_at(b, j, block) {
            let mut nj = j;
            while matches_at(b, nj, block) {
                nj += len;
            }
            let template = align(&b[j - len..j], &b[j..j + len], depth + 1)?;
            return Ok(Some((GrammarNode::Iterator(template), i, nj)));
        }
    }
    Ok(None)
}

/// The candidate repeated block ending just before `pos`: the tokens since
/// the previous occurrence of the tag at `pos` (tag-delimited square).
fn backward_block(toks: &[Token], pos: usize) -> Option<&[Token]> {
    if !toks[pos].is_html() {
        return None;
    }
    let start = toks[..pos]
        .iter()
        .rposition(|t| same_symbol(t, &toks[pos]))?;
    Some(&toks[start..pos])
}

/// Does `block` structurally match `toks[pos..]`? Tags must agree by
/// (closing, name); text tokens match any text token (they are data).
fn matches_at(toks: &[Token], pos: usize, block: &[Token]) -> bool {
    if pos + block.len() > toks.len() {
        return false;
    }
    block.iter().zip(&toks[pos..]).all(|(b, t)| {
        if b.is_html() || t.is_html() {
            same_symbol(b, t)
        } else {
            true
        }
    })
}

/// Block-level tags: an optional may never span one. Skipping across a
/// block boundary would swallow whole record fields into the "template",
/// which union-free grammars cannot legitimately do.
const BLOCK_TAGS: &[&str] = &[
    "table", "tr", "td", "th", "p", "div", "li", "ul", "ol", "hr", "h1", "h2", "h3", "h4", "h5",
    "h6",
];

fn is_block_tag(tok: &Token) -> bool {
    tok.is_html() && BLOCK_TAGS.contains(&tableseg_html::lexer::tag_name(&tok.text))
}

/// Tries to explain a mismatch as an optional block: skip forward on one
/// side to the next position whose tag equals the other side's current
/// tag. The skipped region must stay inside one block-level element —
/// optional *inline* formatting is union-free, optional record structure
/// is not.
fn discover_optional(a: &[Token], b: &[Token], i: usize, j: usize) -> IteratorHit {
    const WINDOW: usize = 12;
    // Skip on A.
    if let Some(skip) = (i..a.len().min(i + WINDOW)).position(|k| same_symbol(&a[k], &b[j])) {
        if skip > 0 && !a[i..i + skip].iter().any(is_block_tag) {
            let nodes = a[i..i + skip]
                .iter()
                .map(|t| GrammarNode::Fixed(symbol_text(t)))
                .collect();
            return Some((GrammarNode::Optional(nodes), i + skip, j));
        }
    }
    // Skip on B.
    if let Some(skip) = (j..b.len().min(j + WINDOW)).position(|k| same_symbol(&b[k], &a[i])) {
        if skip > 0 && !b[j..j + skip].iter().any(is_block_tag) {
            let nodes = b[j..j + skip]
                .iter()
                .map(|t| GrammarNode::Fixed(symbol_text(t)))
                .collect();
            return Some((GrammarNode::Optional(nodes), i, j + skip));
        }
    }
    None
}

/// Counts the `Data` slots in a grammar (a proxy for extracted fields).
pub fn data_slots(grammar: &[GrammarNode]) -> usize {
    grammar
        .iter()
        .map(|n| match n {
            GrammarNode::Data => 1,
            GrammarNode::Iterator(inner) | GrammarNode::Optional(inner) => data_slots(inner),
            GrammarNode::Fixed(_) => 0,
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(rows: &[&str]) -> String {
        let body: String = rows
            .iter()
            .map(|r| format!("<tr><td>{r}</td></tr>"))
            .collect();
        format!("<html><h1>Results</h1><table>{body}</table><p>Footer</p></html>")
    }

    #[test]
    fn uniform_pages_induce_a_grammar() {
        let a = page(&["Ada Lovelace", "Alan Turing", "Grace Hopper"]);
        let b = page(&["Edsger Dijkstra", "Donald Knuth"]);
        let g = induce(&a, &b).expect("union-free grammar exists");
        assert!(data_slots(&g) > 0);
        assert!(
            g.iter().any(|n| matches!(n, GrammarNode::Iterator(_))),
            "{g:?}"
        );
    }

    #[test]
    fn identical_pages_are_all_fixed() {
        let a = page(&["Same"]);
        let g = induce(&a, &a).expect("trivial grammar");
        assert!(g.iter().all(|n| matches!(n, GrammarNode::Fixed(_))));
        assert_eq!(data_slots(&g), 0);
    }

    #[test]
    fn text_variation_becomes_data_slot() {
        let a = "<td>Ada</td>";
        let b = "<td>Alan</td>";
        let g = induce(a, b).expect("grammar");
        assert_eq!(data_slots(&g), 1);
    }

    #[test]
    fn disjunctive_formatting_defeats_union_free_grammars() {
        // The Superpages case: the address is either plain text or a
        // gray-font message — two alternative tag sequences for one field.
        let a = "<p><b>Ada</b><br>221 Oak St</p>\
                 <p><b>Alan</b><br><font color=gray>address not available</font></p>";
        let b = "<p><b>Grace</b><br><font color=gray>address not available</font></p>\
                 <p><b>Edsger</b><br>9 Pine Rd</p>";
        let result = induce(a, b);
        assert!(
            matches!(result, Err(InductionError::DisjunctionRequired { .. })),
            "{result:?}"
        );
    }

    #[test]
    fn optional_block_is_expressible() {
        let a = "<td>x</td><i>note</i><td>y</td>";
        let b = "<td>x</td><td>y</td>";
        let g = induce(a, b).expect("optional is union-free");
        assert!(g.iter().any(|n| matches!(n, GrammarNode::Optional(_))));
    }
}
