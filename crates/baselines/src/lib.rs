//! Baseline extraction algorithms the paper positions itself against
//! (Section 2 and the RoadRunner discussion in Section 6.3).
//!
//! * [`roadrunner`] — a simplified RoadRunner: union-free grammar
//!   induction by pairwise page alignment. The paper's argument is that
//!   such grammars "do not allow for disjunctions", so sites that format
//!   the same field in alternative ways (the Superpages missing-address
//!   case) defeat it; this implementation reports exactly that failure.
//! * [`iepad`] — an IEPAD-style segmenter: find the maximal repeated HTML
//!   tag sequence on the list page and cut records at its occurrences.
//! * [`domtable`] — the naive DOM heuristic: largest `<table>`, one record
//!   per `<tr>`. "A naive approach based on using HTML tags will not work"
//!   (Section 1) — this baseline quantifies that claim on the free-form
//!   and numbered sites.
//!
//! * [`textseg`] — plain-text table segmentation by whitespace alignment,
//!   the Section 2.2 contrast: "Record segmentation from plain text
//!   documents is ... a much easier task", including the wrapped-cell
//!   non-locality the paper describes.
//!
//! All of these are *single-page, layout-based* methods: they never look
//! at detail pages, which is precisely the information the paper's
//! methods exploit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod domtable;
pub mod iepad;
pub mod roadrunner;
pub mod textseg;

use std::ops::Range;

/// A baseline's segmentation of a list page: byte ranges of the record
/// rows it detected, in page order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineSegmentation {
    /// Detected record regions as byte ranges in the page source.
    pub records: Vec<Range<usize>>,
}

impl BaselineSegmentation {
    /// Number of detected records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if nothing was detected.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}
