//! The naive DOM heuristic: find the `<table>` with the most text, emit
//! one record per `<tr>` (skipping an apparent header row of `<th>`s).

use tableseg_html::dom::parse_tokens;
use tableseg_html::lexer::{is_closing, tag_name, tokenize};
use tableseg_html::Token;

use crate::BaselineSegmentation;

/// Segments a page with the `<table>`/`<tr>` heuristic. Pages without a
/// `<table>` element yield no records — the documented failure mode on
/// free-form sites.
pub fn segment(html: &str) -> BaselineSegmentation {
    let tokens = tokenize(html);
    let dom = parse_tokens(&tokens);

    // Pick the table with the most text tokens.
    let Some(best) = dom
        .find_all("table")
        .into_iter()
        .max_by_key(|t| t.text_token_count())
    else {
        return BaselineSegmentation {
            records: Vec::new(),
        };
    };
    if best.text_token_count() == 0 {
        return BaselineSegmentation {
            records: Vec::new(),
        };
    }

    // Re-scan the token stream for the <tr> spans of that table. The DOM
    // has no offsets, so find the best table's byte region first: use the
    // offsets of <table> tags in the token stream paired by depth.
    let table_ranges = table_ranges(&tokens, html.len());
    let best_range = table_ranges
        .into_iter()
        .max_by_key(|r| {
            tokens
                .iter()
                .filter(|t| t.is_text() && r.contains(&t.offset))
                .count()
        })
        .unwrap_or(0..html.len());

    let mut records = Vec::new();
    let mut row_start: Option<usize> = None;
    let mut row_has_header = false;
    let mut row_has_data = false;
    for tok in &tokens {
        if !best_range.contains(&tok.offset) {
            continue;
        }
        if tok.is_html() {
            let name = tag_name(&tok.text);
            if name == "tr" {
                if is_closing(&tok.text) {
                    if let Some(start) = row_start.take() {
                        let end = tok.offset + tok.text.len();
                        if row_has_data && !row_has_header {
                            records.push(start..end);
                        }
                    }
                } else {
                    row_start = Some(tok.offset);
                    row_has_header = false;
                    row_has_data = false;
                }
            } else if name == "th" && !is_closing(&tok.text) {
                row_has_header = true;
            }
        } else if row_start.is_some() {
            row_has_data = true;
        }
    }
    BaselineSegmentation { records }
}

/// Byte ranges of `<table>...</table>` regions (nesting handled by a
/// stack; unterminated tables run to the end of the page).
fn table_ranges(tokens: &[Token], page_len: usize) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::new();
    let mut stack = Vec::new();
    for tok in tokens {
        if !tok.is_html() {
            continue;
        }
        if tag_name(&tok.text) == "table" {
            if is_closing(&tok.text) {
                if let Some(start) = stack.pop() {
                    out.push(start..tok.offset + tok.text.len());
                }
            } else {
                stack.push(tok.offset);
            }
        }
    }
    for start in stack {
        out.push(start..page_len);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_record_per_data_row() {
        let html = "<table><tr><th>Name</th></tr>\
                    <tr><td>Ada</td></tr><tr><td>Alan</td></tr></table>";
        let seg = segment(html);
        assert_eq!(seg.len(), 2);
        assert!(html[seg.records[0].clone()].contains("Ada"));
        assert!(html[seg.records[1].clone()].contains("Alan"));
    }

    #[test]
    fn header_rows_skipped() {
        let html = "<table><tr><th>H1</th><th>H2</th></tr><tr><td>x</td><td>y</td></tr></table>";
        let seg = segment(html);
        assert_eq!(seg.len(), 1);
    }

    #[test]
    fn no_table_no_records() {
        let seg = segment("<p>Ada</p><hr><p>Alan</p>");
        assert!(seg.is_empty());
    }

    #[test]
    fn picks_largest_table() {
        let html = "<table><tr><td>nav</td></tr></table>\
                    <table><tr><td>one two three</td></tr><tr><td>four five six</td></tr></table>";
        let seg = segment(html);
        assert_eq!(seg.len(), 2);
        assert!(html[seg.records[0].clone()].contains("one"));
    }

    #[test]
    fn empty_rows_ignored() {
        let html = "<table><tr></tr><tr><td>x</td></tr></table>";
        let seg = segment(html);
        assert_eq!(seg.len(), 1);
    }
}
