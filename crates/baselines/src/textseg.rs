//! Plain-text table segmentation — the Section 2.2 comparison.
//!
//! "Plain text documents use white space and new line for the purpose of
//! formatting tables: new lines are used to separate records and white
//! spaces are used to separate columns ... Record segmentation from plain
//! text documents is, therefore, a much easier task. ... In plain text
//! tables, a long attribute value that may not fit in a table cell will be
//! broken between two lines, creating a non-locality in a text stream."
//!
//! This module implements the classical whitespace-alignment segmenter the
//! paper contrasts itself with (Pyreddy & Croft-style structural cues):
//!
//! 1. column boundaries are character positions that are whitespace on
//!    (nearly) every data line;
//! 2. each line is one record row, split at the boundaries;
//! 3. a *continuation line* — one whose first column is blank — wraps a
//!    long value and is merged into the previous record (the paper's
//!    non-locality).
//!
//! The experiment binary uses it to quantify the paper's remark that the
//! plain-text problem is "much easier": on whitespace-formatted renderings
//! of the same records, this simple method is essentially perfect, whereas
//! on HTML it has no signal at all.

/// A segmented plain-text table: one `Vec<String>` of cell values per
/// record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextTable {
    /// Records in row order, each a list of trimmed cell values.
    pub records: Vec<Vec<String>>,
    /// The inferred column start positions (byte offsets within a line).
    pub columns: Vec<usize>,
}

/// Minimum fraction of data lines that must be whitespace at a position
/// for it to act as a column separator.
const COLUMN_AGREEMENT: f64 = 0.9;

/// Segments a whitespace-aligned plain-text table.
///
/// Returns `None` if the text has fewer than two non-blank lines or no
/// consistent column structure (a prose paragraph, for instance).
pub fn segment(text: &str) -> Option<TextTable> {
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.len() < 2 {
        return None;
    }
    let width = lines.iter().map(|l| l.len()).max().unwrap_or(0);
    if width == 0 {
        return None;
    }

    // Whitespace histogram per character column.
    let mut blank = vec![0usize; width];
    for line in &lines {
        let bytes = line.as_bytes();
        for (c, slot) in blank.iter_mut().enumerate() {
            // Positions past the end of a short line count as blank.
            if c >= bytes.len() || bytes[c] == b' ' {
                *slot += 1;
            }
        }
    }
    let needed = (lines.len() as f64 * COLUMN_AGREEMENT).ceil() as usize;

    // Column boundaries: maximal runs of blank-agreeing positions at least
    // 2 wide (single spaces inside values must not split them).
    let mut gaps: Vec<(usize, usize)> = Vec::new();
    let mut run_start = None;
    for (c, &blanks) in blank.iter().enumerate() {
        let is_gap = blanks >= needed;
        match (is_gap, run_start) {
            (true, None) => run_start = Some(c),
            (false, Some(s)) => {
                if c - s >= 2 {
                    gaps.push((s, c));
                }
                run_start = None;
            }
            _ => {}
        }
    }
    // A trailing gap is padding, not a separator.

    // Column start positions: 0 plus the end of each gap.
    let mut columns = vec![0usize];
    columns.extend(gaps.iter().map(|&(_, end)| end));
    if columns.len() < 2 {
        return None; // no column structure
    }

    // Split lines at the boundaries; merge continuation lines.
    let mut records: Vec<Vec<String>> = Vec::new();
    for line in &lines {
        let cells = split_at(line, &columns);
        let is_continuation =
            cells.first().is_some_and(|c0| c0.is_empty()) && cells.iter().any(|c| !c.is_empty());
        if is_continuation {
            if let Some(prev) = records.last_mut() {
                // The paper's non-locality: re-attach wrapped fragments to
                // the cells of the previous record.
                for (cell, fragment) in prev.iter_mut().zip(&cells) {
                    if !fragment.is_empty() {
                        if !cell.is_empty() {
                            cell.push(' ');
                        }
                        cell.push_str(fragment);
                    }
                }
                continue;
            }
        }
        records.push(cells);
    }

    Some(TextTable { records, columns })
}

/// Splits a line at the given column start positions, trimming each cell.
fn split_at(line: &str, columns: &[usize]) -> Vec<String> {
    let mut out = Vec::with_capacity(columns.len());
    for (k, &start) in columns.iter().enumerate() {
        let end = columns.get(k + 1).copied().unwrap_or(usize::MAX);
        let cell: String = line
            .chars()
            .skip(start)
            .take(end.saturating_sub(start))
            .collect();
        out.push(cell.trim().to_owned());
    }
    out
}

/// Renders records as a whitespace-aligned plain-text table — the form
/// the Section 2.2 literature operates on. Values longer than
/// `max_cell_width` wrap onto a continuation line (the non-locality the
/// paper highlights).
pub fn render_text_table(rows: &[Vec<String>], max_cell_width: usize) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let cols = rows.iter().map(Vec::len).max().unwrap_or(0);
    // Column widths bounded by max_cell_width.
    let mut widths = vec![0usize; cols];
    for row in rows {
        for (c, v) in row.iter().enumerate() {
            widths[c] = widths[c].max(v.len().min(max_cell_width));
        }
    }
    let mut out = String::new();
    for row in rows {
        // First line plus any wrapped fragments.
        let mut fragments: Vec<Vec<&str>> = Vec::with_capacity(cols);
        for (c, v) in row.iter().enumerate() {
            let _ = c;
            let mut parts = Vec::new();
            let mut rest = v.as_str();
            while rest.len() > max_cell_width {
                // Wrap at the last space within the width, or hard-wrap.
                let cut = rest[..max_cell_width].rfind(' ').unwrap_or(max_cell_width);
                parts.push(rest[..cut].trim_end());
                rest = rest[cut..].trim_start();
            }
            parts.push(rest);
            fragments.push(parts);
        }
        let depth = fragments.iter().map(Vec::len).max().unwrap_or(1);
        for d in 0..depth {
            for (c, &colw) in widths.iter().enumerate() {
                let piece = fragments
                    .get(c)
                    .and_then(|p| p.get(d).copied())
                    .unwrap_or("");
                out.push_str(piece);
                for _ in piece.len()..colw + 2 {
                    out.push(' ');
                }
            }
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows(spec: &[&[&str]]) -> Vec<Vec<String>> {
        spec.iter()
            .map(|r| r.iter().map(|s| s.to_string()).collect())
            .collect()
    }

    #[test]
    fn roundtrip_simple_table() {
        let data = rows(&[
            &["Ada Lovelace", "Engines", "4411"],
            &["Alan Turing", "Machines", "4422"],
            &["Grace Hopper", "Compilers", "4433"],
        ]);
        let text = render_text_table(&data, 30);
        let table = segment(&text).expect("table");
        assert_eq!(table.records, data);
        assert_eq!(table.columns.len(), 3);
    }

    #[test]
    fn wrapped_cells_are_reattached() {
        // The paper's non-locality: a long value wraps to the next line.
        let data = rows(&[
            &[
                "Ada Lovelace",
                "Analytical Engines Research Division of Computing",
                "4411",
            ],
            &["Alan Turing", "Machines", "4422"],
        ]);
        let text = render_text_table(&data, 24);
        assert!(text.lines().count() > 2, "wrapping occurred:\n{text}");
        let table = segment(&text).expect("table");
        assert_eq!(table.records.len(), 2, "{table:?}");
        assert_eq!(
            table.records[0][1],
            "Analytical Engines Research Division of Computing"
        );
    }

    #[test]
    fn prose_is_not_a_table() {
        let prose = "This is an ordinary paragraph of text that flows on\n\
                     and on without any aligned column structure at all in\n\
                     it whatsoever, just words of varying lengths.";
        assert!(segment(prose).is_none());
    }

    #[test]
    fn too_few_lines() {
        assert!(segment("just one line").is_none());
        assert!(segment("").is_none());
    }

    #[test]
    fn short_lines_count_as_blank_padding() {
        let text = "alpha   one\nbeta    two\ngamma   three";
        let table = segment(text).expect("table");
        assert_eq!(table.records.len(), 3);
        assert_eq!(table.records[0], vec!["alpha", "one"]);
        assert_eq!(table.records[2], vec!["gamma", "three"]);
    }

    #[test]
    fn single_spaces_do_not_split_values() {
        let data = rows(&[
            &["John Smith", "New Holland"],
            &["Mary Major", "Springfield"],
        ]);
        let text = render_text_table(&data, 30);
        let table = segment(&text).expect("table");
        assert_eq!(table.records, data);
    }
}
