//! An IEPAD-style segmenter (Chang & Lui, WWW 2001): discover the maximal
//! repeated HTML tag sequence on the page and cut record boundaries at its
//! occurrences.
//!
//! The paper's assessment: "Although they show good performance in this
//! domain [search-engine pages], search engine pages are much simpler than
//! HTML pages containing tables that are typically found on the Web. We
//! have tried a similar approach and found that it had limited utility"
//! (Section 2.1).

use std::collections::HashMap;

use tableseg_html::lexer::{is_closing, tag_name, tokenize};
use tableseg_html::Token;

use crate::BaselineSegmentation;

/// Minimum number of repetitions for a tag pattern to count as a row
/// separator.
const MIN_REPEATS: usize = 3;

/// Maximum pattern length (in tags) considered.
const MAX_PATTERN: usize = 14;

/// Segments a page by its most frequent maximal repeated tag sequence.
pub fn segment(html: &str) -> BaselineSegmentation {
    let tokens = tokenize(html);
    // IEPAD's PAT-tree alphabet is bare tag symbols: attributes (per-row
    // hrefs and the like) are stripped before pattern discovery.
    let canonical: Vec<(usize, String)> = tokens
        .iter()
        .filter(|t| t.is_html())
        .map(|t| {
            let sym = if is_closing(&t.text) {
                format!("</{}>", tag_name(&t.text))
            } else {
                format!("<{}>", tag_name(&t.text))
            };
            (t.offset, sym)
        })
        .collect();
    let tags: Vec<(usize, &str)> = canonical
        .iter()
        .map(|(off, s)| (*off, s.as_str()))
        .collect();
    if tags.len() < MIN_REPEATS {
        return BaselineSegmentation {
            records: Vec::new(),
        };
    }

    // Count n-gram occurrences of tag sequences, longest first; prefer
    // longer patterns with at least MIN_REPEATS non-overlapping hits,
    // breaking ties by total coverage (count * length).
    let mut best: Option<(Vec<&str>, Vec<usize>)> = None;
    let mut best_score = 0usize;
    for len in (1..=MAX_PATTERN.min(tags.len())).rev() {
        let mut counts: HashMap<Vec<&str>, Vec<usize>> = HashMap::new();
        for w in tags.windows(len) {
            let key: Vec<&str> = w.iter().map(|&(_, t)| t).collect();
            counts.entry(key).or_default().push(w[0].0);
        }
        for (pat, starts) in counts {
            let non_overlapping = non_overlapping_count(&starts, len, &tags);
            if non_overlapping >= MIN_REPEATS {
                let score = non_overlapping * len;
                if score > best_score {
                    best_score = score;
                    best = Some((pat, starts));
                }
            }
        }
        if best.is_some() {
            break; // longest qualifying pattern wins
        }
    }

    let Some((_, starts)) = best else {
        return BaselineSegmentation {
            records: Vec::new(),
        };
    };

    // Records = regions between consecutive pattern occurrences that
    // contain visible text.
    let mut records = Vec::new();
    for w in starts.windows(2) {
        let range = w[0]..w[1];
        if has_text(&tokens, &range) {
            records.push(range);
        }
    }
    // The tail after the final occurrence.
    if let Some(&last) = starts.last() {
        let range = last..html.len();
        if has_text(&tokens, &range) {
            records.push(range);
        }
    }
    BaselineSegmentation { records }
}

fn has_text(tokens: &[Token], range: &std::ops::Range<usize>) -> bool {
    tokens
        .iter()
        .any(|t| t.is_text() && range.contains(&t.offset))
}

/// Number of non-overlapping occurrences of a pattern of `len` tags,
/// measured in tag positions.
fn non_overlapping_count(starts: &[usize], len: usize, tags: &[(usize, &str)]) -> usize {
    // Map byte offsets back to tag indices for overlap arithmetic.
    let index_of: HashMap<usize, usize> = tags
        .iter()
        .enumerate()
        .map(|(i, &(off, _))| (off, i))
        .collect();
    let mut count = 0;
    let mut next_free = 0;
    for &s in starts {
        let idx = index_of[&s];
        if idx >= next_free {
            count += 1;
            next_free = idx + len;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regular_rows_found() {
        let html = "<table>\
            <tr><td>Ada Lovelace</td><td>One</td></tr>\
            <tr><td>Alan Turing</td><td>Two</td></tr>\
            <tr><td>Grace Hopper</td><td>Three</td></tr>\
            <tr><td>Edsger Dijkstra</td><td>Four</td></tr>\
            </table>";
        let seg = segment(html);
        assert!(seg.len() >= 3, "{seg:?}");
        assert!(html[seg.records[0].clone()].contains("Ada"));
    }

    #[test]
    fn too_few_repeats_yield_nothing() {
        let seg = segment("<p>just one block of text</p>");
        assert!(seg.is_empty());
    }

    #[test]
    fn irregular_rows_confuse_the_pattern() {
        // Alternating formats (the disjunction case): the maximal repeated
        // sequence only matches one variant, so half the records are
        // merged or lost — the failure the paper predicts.
        let html = "<div>\
            <p><b>Ada</b><br>addr1</p><hr>\
            <p><b>Alan</b><br><font color=gray>no address</font></p><hr>\
            <p><b>Grace</b><br>addr3</p><hr>\
            <p><b>Edsger</b><br><font color=gray>no address</font></p><hr>\
            </div>";
        let seg = segment(html);
        // It finds *something*, but not the 4 true records.
        assert_ne!(seg.len(), 4, "{seg:?}");
    }

    #[test]
    fn empty_page() {
        assert!(segment("").is_empty());
    }
}
