//! Pseudo-boolean models: 0-1 variables, linear constraints, optional
//! linear objective.
//!
//! "In a pseudo-boolean representation, variables are 0-1, and the
//! constraints can be inequalities. ... When constraints are inequalities,
//! the resulting problem is an optimization problem." (Section 4)

use serde::{Deserialize, Serialize};

/// Index of a 0-1 variable.
pub type Var = usize;

/// The relation of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Relation {
    /// `Σ aᵢxᵢ ≤ b`
    Le,
    /// `Σ aᵢxᵢ ≥ b`
    Ge,
    /// `Σ aᵢxᵢ = b`
    Eq,
}

/// One term `a·x` of a linear expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Term {
    /// The variable.
    pub var: Var,
    /// Its coefficient.
    pub coef: i32,
}

/// A linear pseudo-boolean constraint `Σ aᵢxᵢ ⋈ b`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Constraint {
    /// The left-hand-side terms.
    pub terms: Vec<Term>,
    /// The relation.
    pub rel: Relation,
    /// The right-hand side.
    pub rhs: i32,
    /// A short label for diagnostics (e.g. `uniq(E3)`).
    pub label: String,
}

impl Constraint {
    /// Builds a constraint `Σ xᵢ ⋈ b` over unit-coefficient variables.
    pub fn sum(vars: impl IntoIterator<Item = Var>, rel: Relation, rhs: i32) -> Constraint {
        Constraint {
            terms: vars.into_iter().map(|var| Term { var, coef: 1 }).collect(),
            rel,
            rhs,
            label: String::new(),
        }
    }

    /// Attaches a diagnostic label.
    pub fn labeled(mut self, label: impl Into<String>) -> Constraint {
        self.label = label.into();
        self
    }

    /// The left-hand-side value under `assignment`.
    pub fn lhs(&self, assignment: &[bool]) -> i32 {
        self.terms
            .iter()
            .map(|t| if assignment[t.var] { t.coef } else { 0 })
            .sum()
    }

    /// The violation amount of the constraint under `assignment`:
    /// 0 when satisfied, otherwise the (positive) distance to feasibility.
    pub fn violation(&self, assignment: &[bool]) -> i32 {
        violation_of(self.rel, self.lhs(assignment), self.rhs)
    }

    /// Returns `true` if satisfied under `assignment`.
    pub fn satisfied(&self, assignment: &[bool]) -> bool {
        self.violation(assignment) == 0
    }
}

/// Violation of `lhs ⋈ rhs`.
#[inline]
pub fn violation_of(rel: Relation, lhs: i32, rhs: i32) -> i32 {
    match rel {
        Relation::Le => (lhs - rhs).max(0),
        Relation::Ge => (rhs - lhs).max(0),
        Relation::Eq => (lhs - rhs).abs(),
    }
}

/// A pseudo-boolean model: hard constraints plus an optional objective to
/// maximize.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Model {
    /// Number of 0-1 variables.
    pub num_vars: usize,
    /// The hard constraints.
    pub constraints: Vec<Constraint>,
    /// Objective terms, maximized subject to the constraints. Empty means
    /// pure satisfaction.
    pub objective: Vec<Term>,
}

impl Model {
    /// Creates a model with `num_vars` variables and no constraints.
    pub fn new(num_vars: usize) -> Model {
        Model {
            num_vars,
            constraints: Vec::new(),
            objective: Vec::new(),
        }
    }

    /// Adds a constraint.
    pub fn add(&mut self, c: Constraint) {
        debug_assert!(c.terms.iter().all(|t| t.var < self.num_vars));
        self.constraints.push(c);
    }

    /// Sets the objective to maximize the sum of the given variables.
    pub fn maximize_sum(&mut self, vars: impl IntoIterator<Item = Var>) {
        self.objective = vars.into_iter().map(|var| Term { var, coef: 1 }).collect();
    }

    /// Total violation of all constraints under `assignment`.
    pub fn total_violation(&self, assignment: &[bool]) -> i64 {
        self.constraints
            .iter()
            .map(|c| i64::from(c.violation(assignment)))
            .sum()
    }

    /// Number of violated constraints under `assignment`.
    pub fn violated_count(&self, assignment: &[bool]) -> usize {
        self.constraints
            .iter()
            .filter(|c| !c.satisfied(assignment))
            .count()
    }

    /// Objective value under `assignment`.
    pub fn objective_value(&self, assignment: &[bool]) -> i64 {
        self.objective
            .iter()
            .map(|t| {
                if assignment[t.var] {
                    i64::from(t.coef)
                } else {
                    0
                }
            })
            .sum()
    }

    /// Returns `true` if all constraints are satisfied.
    pub fn feasible(&self, assignment: &[bool]) -> bool {
        self.constraints.iter().all(|c| c.satisfied(assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(vars: &[Var], rel: Relation, rhs: i32) -> Constraint {
        Constraint::sum(vars.iter().copied(), rel, rhs)
    }

    #[test]
    fn lhs_and_violation() {
        let con = c(&[0, 1, 2], Relation::Eq, 1);
        assert_eq!(con.lhs(&[true, false, false]), 1);
        assert_eq!(con.violation(&[true, false, false]), 0);
        assert!(con.satisfied(&[true, false, false]));
        assert_eq!(con.violation(&[true, true, false]), 1);
        assert_eq!(con.violation(&[false, false, false]), 1);
        assert_eq!(con.violation(&[true, true, true]), 2);
    }

    #[test]
    fn relations() {
        let a = [true, true, false];
        assert_eq!(c(&[0, 1], Relation::Le, 1).violation(&a), 1);
        assert_eq!(c(&[0, 1], Relation::Le, 2).violation(&a), 0);
        assert_eq!(c(&[0, 1, 2], Relation::Ge, 3).violation(&a), 1);
        assert_eq!(c(&[0, 1], Relation::Ge, 1).violation(&a), 0);
    }

    #[test]
    fn negative_coefficients() {
        // x0 + x1 - x2 <= 1 (the consecutiveness triple constraint).
        let con = Constraint {
            terms: vec![
                Term { var: 0, coef: 1 },
                Term { var: 1, coef: 1 },
                Term { var: 2, coef: -1 },
            ],
            rel: Relation::Le,
            rhs: 1,
            label: String::new(),
        };
        assert!(con.satisfied(&[true, true, true]));
        assert!(!con.satisfied(&[true, true, false]));
        assert!(con.satisfied(&[true, false, false]));
    }

    #[test]
    fn model_accounting() {
        let mut m = Model::new(3);
        m.add(c(&[0, 1], Relation::Eq, 1));
        m.add(c(&[1, 2], Relation::Le, 1));
        m.maximize_sum([0, 1, 2]);

        let a = [true, false, true];
        assert!(m.feasible(&a));
        assert_eq!(m.total_violation(&a), 0);
        assert_eq!(m.violated_count(&a), 0);
        assert_eq!(m.objective_value(&a), 2);

        let b = [true, true, true];
        assert!(!m.feasible(&b));
        assert_eq!(m.violated_count(&b), 2);
        assert_eq!(m.total_violation(&b), 2);
    }

    #[test]
    fn labels() {
        let con = c(&[0], Relation::Eq, 1).labeled("uniq(E1)");
        assert_eq!(con.label, "uniq(E1)");
    }
}
