//! A WSAT(OIP)-style stochastic local-search solver for pseudo-boolean
//! models.
//!
//! The paper solves its constraint systems "using WSAT(OIP), an integer
//! optimization algorithm" (Walser). That solver is closed source; this is
//! a from-scratch implementation of the same strategy:
//!
//! 1. start from a random assignment;
//! 2. while hard constraints are violated, pick a random violated
//!    constraint and flip one of its variables — with probability `noise` a
//!    random one (the random-walk move), otherwise the variable whose flip
//!    most reduces total violation (breaking ties toward better objective),
//!    subject to a short tabu tenure with aspiration;
//! 3. once feasible, make objective-improving flips (which may re-violate
//!    constraints, continuing the search) while remembering the best
//!    feasible assignment seen;
//! 4. restart with a fresh random assignment every `max_flips` flips.
//!
//! All randomness is seeded: identical configs give identical results.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::model::{violation_of, Model, Term};

/// Configuration for the WSAT(OIP) solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsatConfig {
    /// Maximum flips per restart.
    pub max_flips: usize,
    /// Number of restarts.
    pub max_tries: usize,
    /// Probability of a random-walk move.
    pub noise: f64,
    /// Tabu tenure: a variable flipped within the last `tabu` flips is not
    /// flipped again unless doing so reaches a new best (aspiration).
    pub tabu: usize,
    /// Stagnation cutoff: restart when the best assignment has not
    /// improved within this many flips. Keeps converged searches from
    /// burning the whole flip budget.
    pub stall: usize,
    /// Random seed.
    pub seed: u64,
}

impl Default for WsatConfig {
    fn default() -> WsatConfig {
        WsatConfig {
            max_flips: 20_000,
            max_tries: 8,
            noise: 0.15,
            tabu: 2,
            stall: 3_000,
            seed: 0x5EED,
        }
    }
}

/// The outcome of a WSAT(OIP) run.
#[derive(Debug, Clone, PartialEq)]
pub struct WsatResult {
    /// The best assignment found.
    pub assignment: Vec<bool>,
    /// `true` if the best assignment satisfies every constraint.
    pub feasible: bool,
    /// Total constraint violation of the best assignment (0 iff feasible).
    pub violation: i64,
    /// Objective value of the best assignment.
    pub objective: i64,
    /// Total number of flips performed.
    pub flips: u64,
}

/// Incremental search state for one restart.
struct SearchState<'a> {
    model: &'a Model,
    /// Current assignment.
    assign: Vec<bool>,
    /// Current LHS value of each constraint.
    lhs: Vec<i32>,
    /// Indices of currently violated constraints.
    violated: Vec<usize>,
    /// Position of each constraint in `violated` (usize::MAX when absent).
    violated_pos: Vec<usize>,
    /// Occurrence lists: constraints (and coefficients) touching each var.
    occurs: &'a [Vec<(usize, i32)>],
    /// Objective coefficient of each variable.
    obj_coef: &'a [i64],
    /// Flip counter at the time each variable was last flipped.
    last_flip: Vec<u64>,
    /// Total violation.
    total_violation: i64,
    /// Current objective value.
    objective: i64,
}

impl<'a> SearchState<'a> {
    fn new(
        model: &'a Model,
        occurs: &'a [Vec<(usize, i32)>],
        obj_coef: &'a [i64],
        assign: Vec<bool>,
    ) -> SearchState<'a> {
        let mut state = SearchState {
            model,
            lhs: vec![0; model.constraints.len()],
            violated: Vec::new(),
            violated_pos: vec![usize::MAX; model.constraints.len()],
            occurs,
            obj_coef,
            last_flip: vec![0; model.num_vars],
            total_violation: 0,
            objective: 0,
            assign,
        };
        for (ci, c) in model.constraints.iter().enumerate() {
            let lhs = c.lhs(&state.assign);
            state.lhs[ci] = lhs;
            let v = violation_of(c.rel, lhs, c.rhs);
            state.total_violation += i64::from(v);
            if v > 0 {
                state.violated_pos[ci] = state.violated.len();
                state.violated.push(ci);
            }
        }
        state.objective = model.objective_value(&state.assign);
        state
    }

    /// Change in total violation if `var` were flipped.
    fn violation_delta(&self, var: usize) -> i64 {
        let dir: i32 = if self.assign[var] { -1 } else { 1 };
        let mut delta = 0i64;
        for &(ci, coef) in &self.occurs[var] {
            let c = &self.model.constraints[ci];
            let old = violation_of(c.rel, self.lhs[ci], c.rhs);
            let new = violation_of(c.rel, self.lhs[ci] + dir * coef, c.rhs);
            delta += i64::from(new - old);
        }
        delta
    }

    /// Change in objective if `var` were flipped.
    fn objective_delta(&self, var: usize) -> i64 {
        if self.assign[var] {
            -self.obj_coef[var]
        } else {
            self.obj_coef[var]
        }
    }

    fn flip(&mut self, var: usize, flip_no: u64) {
        let dir: i32 = if self.assign[var] { -1 } else { 1 };
        // The objective delta is defined relative to the pre-flip state.
        self.objective += self.objective_delta(var);
        self.assign[var] = !self.assign[var];
        for &(ci, coef) in &self.occurs[var] {
            let c = &self.model.constraints[ci];
            let old_v = violation_of(c.rel, self.lhs[ci], c.rhs);
            self.lhs[ci] += dir * coef;
            let new_v = violation_of(c.rel, self.lhs[ci], c.rhs);
            self.total_violation += i64::from(new_v - old_v);
            if old_v == 0 && new_v > 0 {
                self.violated_pos[ci] = self.violated.len();
                self.violated.push(ci);
            } else if old_v > 0 && new_v == 0 {
                let pos = self.violated_pos[ci];
                let last = *self.violated.last().expect("non-empty");
                self.violated.swap_remove(pos);
                if pos < self.violated.len() {
                    self.violated_pos[last] = pos;
                }
                self.violated_pos[ci] = usize::MAX;
            }
        }
        debug_assert_eq!(self.objective, self.model.objective_value(&self.assign));
        self.last_flip[var] = flip_no;
    }
}

/// Solves `model`, returning the best assignment found within the
/// configured search budget.
pub fn solve(model: &Model, cfg: &WsatConfig) -> WsatResult {
    let mut occurs: Vec<Vec<(usize, i32)>> = vec![Vec::new(); model.num_vars];
    for (ci, c) in model.constraints.iter().enumerate() {
        for t in &c.terms {
            occurs[t.var].push((ci, t.coef));
        }
    }
    let mut obj_coef = vec![0i64; model.num_vars];
    for &Term { var, coef } in &model.objective {
        obj_coef[var] += i64::from(coef);
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut best_assign = vec![false; model.num_vars];
    let mut best_violation = Model::total_violation(model, &best_assign);
    let mut best_objective = model.objective_value(&best_assign);
    let mut total_flips = 0u64;

    'tries: for try_no in 0..cfg.max_tries.max(1) {
        // First try starts all-false (often near-feasible for ≤
        // constraints); later tries are random.
        let init: Vec<bool> = if try_no == 0 {
            vec![false; model.num_vars]
        } else {
            (0..model.num_vars).map(|_| rng.random_bool(0.5)).collect()
        };
        let mut state = SearchState::new(model, &occurs, &obj_coef, init);
        consider_best(
            &state,
            &mut best_assign,
            &mut best_violation,
            &mut best_objective,
        );

        let mut last_best_flip = total_flips;
        for _ in 0..cfg.max_flips {
            total_flips += 1;
            if cfg.stall > 0 && total_flips - last_best_flip > cfg.stall as u64 {
                break; // stagnated: restart
            }
            let var = if state.violated.is_empty() {
                // Feasible: try to improve the objective. Stop if there is
                // no objective to improve.
                if model.objective.is_empty() {
                    break 'tries;
                }
                match pick_objective_move(&state, model, &mut rng) {
                    Some(v) => v,
                    None => break 'tries, // objective is at its maximum
                }
            } else {
                let ci = state.violated[rng.random_range(0..state.violated.len())];
                match pick_constraint_move(&state, ci, cfg, total_flips, best_violation, &mut rng) {
                    Some(v) => v,
                    None => continue,
                }
            };
            state.flip(var, total_flips);
            let improved = consider_best(
                &state,
                &mut best_assign,
                &mut best_violation,
                &mut best_objective,
            );
            if improved {
                last_best_flip = total_flips;
            }
        }
    }

    WsatResult {
        feasible: best_violation == 0,
        violation: best_violation,
        objective: best_objective,
        assignment: best_assign,
        flips: total_flips,
    }
}

fn consider_best(
    state: &SearchState<'_>,
    best_assign: &mut Vec<bool>,
    best_violation: &mut i64,
    best_objective: &mut i64,
) -> bool {
    let better = state.total_violation < *best_violation
        || (state.total_violation == *best_violation && state.objective > *best_objective);
    if better {
        *best_violation = state.total_violation;
        *best_objective = state.objective;
        best_assign.clone_from(&state.assign);
    }
    better
}

/// Chooses a variable from a violated constraint.
fn pick_constraint_move(
    state: &SearchState<'_>,
    ci: usize,
    cfg: &WsatConfig,
    flip_no: u64,
    best_violation: i64,
    rng: &mut StdRng,
) -> Option<usize> {
    let terms = &state.model.constraints[ci].terms;
    if terms.is_empty() {
        return None;
    }
    if rng.random_bool(cfg.noise) {
        return Some(terms[rng.random_range(0..terms.len())].var);
    }
    let mut best_var = None;
    let mut best_score = i64::MAX;
    for t in terms {
        let var = t.var;
        let dv = state.violation_delta(var);
        // Aspiration: a move reaching a new best ignores tabu.
        let reaches_new_best = state.total_violation + dv < best_violation;
        let tabu_active = cfg.tabu > 0
            && state.last_flip[var] != 0
            && flip_no.saturating_sub(state.last_flip[var]) <= cfg.tabu as u64;
        if tabu_active && !reaches_new_best {
            continue;
        }
        // Score: violation first, objective as a tie-breaker.
        let score = dv * 10_000 - state.objective_delta(var);
        if score < best_score {
            best_score = score;
            best_var = Some(var);
        }
    }
    // All candidates tabu: fall back to a random walk move.
    best_var.or_else(|| Some(terms[rng.random_range(0..terms.len())].var))
}

/// Chooses an objective-improving move when the state is feasible.
fn pick_objective_move(state: &SearchState<'_>, model: &Model, rng: &mut StdRng) -> Option<usize> {
    // Candidate moves: objective variables whose flip improves the
    // objective.
    let improving: Vec<usize> = model
        .objective
        .iter()
        .map(|t| t.var)
        .filter(|&v| state.objective_delta(v) > 0)
        .collect();
    if improving.is_empty() {
        return None;
    }
    // Prefer a move that keeps feasibility if one exists.
    let harmless: Vec<usize> = improving
        .iter()
        .copied()
        .filter(|&v| state.violation_delta(v) == 0)
        .collect();
    let pool = if harmless.is_empty() {
        &improving
    } else {
        &harmless
    };
    Some(pool[rng.random_range(0..pool.len())])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, Model, Relation};

    fn cfg() -> WsatConfig {
        WsatConfig::default()
    }

    #[test]
    fn satisfies_simple_equalities() {
        // x0 + x1 = 1; x1 + x2 = 1; x0 + x2 = 2 → x0 = x2 = 1, x1 = 0.
        let mut m = Model::new(3);
        m.add(Constraint::sum([0, 1], Relation::Eq, 1));
        m.add(Constraint::sum([1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([0, 2], Relation::Eq, 2));
        let r = solve(&m, &cfg());
        assert!(r.feasible);
        assert_eq!(r.assignment, vec![true, false, true]);
    }

    #[test]
    fn reports_infeasibility_via_violation() {
        // x0 = 1 and x0 = 0 cannot both hold.
        let mut m = Model::new(1);
        m.add(Constraint::sum([0], Relation::Eq, 1));
        m.add(Constraint::sum([0], Relation::Eq, 0));
        let r = solve(
            &m,
            &WsatConfig {
                max_flips: 200,
                max_tries: 2,
                ..cfg()
            },
        );
        assert!(!r.feasible);
        assert_eq!(r.violation, 1);
    }

    #[test]
    fn maximizes_objective_subject_to_constraints() {
        // At most 2 of 4 variables; maximize their sum → exactly 2 set.
        let mut m = Model::new(4);
        m.add(Constraint::sum([0, 1, 2, 3], Relation::Le, 2));
        m.maximize_sum([0, 1, 2, 3]);
        let r = solve(&m, &cfg());
        assert!(r.feasible);
        assert_eq!(r.objective, 2);
        assert_eq!(r.assignment.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn pure_satisfaction_stops_at_first_solution() {
        let mut m = Model::new(2);
        m.add(Constraint::sum([0, 1], Relation::Ge, 1));
        let r = solve(&m, &cfg());
        assert!(r.feasible);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut m = Model::new(6);
        m.add(Constraint::sum([0, 1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([3, 4, 5], Relation::Eq, 2));
        m.add(Constraint::sum([0, 3], Relation::Le, 1));
        m.maximize_sum([0, 1, 2, 3, 4, 5]);
        let r1 = solve(&m, &cfg());
        let r2 = solve(&m, &cfg());
        assert_eq!(r1, r2);
    }

    #[test]
    fn empty_model_is_feasible() {
        let m = Model::new(0);
        let r = solve(&m, &cfg());
        assert!(r.feasible);
        assert!(r.assignment.is_empty());
    }

    #[test]
    fn handles_negative_coefficients() {
        // x0 + x1 - x2 <= 1 with x0 = x1 = 1 forced → x2 must be 1.
        let mut m = Model::new(3);
        m.add(Constraint::sum([0], Relation::Eq, 1));
        m.add(Constraint::sum([1], Relation::Eq, 1));
        m.add(Constraint {
            terms: vec![
                crate::model::Term { var: 0, coef: 1 },
                crate::model::Term { var: 1, coef: 1 },
                crate::model::Term { var: 2, coef: -1 },
            ],
            rel: Relation::Le,
            rhs: 1,
            label: String::new(),
        });
        let r = solve(&m, &cfg());
        assert!(r.feasible, "{r:?}");
        assert_eq!(r.assignment, vec![true, true, true]);
    }
}
