//! A WSAT(OIP)-style stochastic local-search solver for pseudo-boolean
//! models.
//!
//! The paper solves its constraint systems "using WSAT(OIP), an integer
//! optimization algorithm" (Walser). That solver is closed source; this is
//! a from-scratch implementation of the same strategy:
//!
//! 1. start from a random assignment;
//! 2. while hard constraints are violated, pick a random violated
//!    constraint and flip one of its variables — with probability `noise` a
//!    random one (the random-walk move), otherwise the variable whose flip
//!    most reduces total violation (breaking ties toward better objective),
//!    subject to a short tabu tenure with aspiration;
//! 3. once feasible, make objective-improving flips (which may re-violate
//!    constraints, continuing the search) while remembering the best
//!    feasible assignment seen;
//! 4. restart with a fresh random assignment every `max_flips` flips.
//!
//! Two throughput mechanisms on top of the basic strategy:
//!
//! * **Cached flip deltas.** The change in total violation caused by
//!   flipping each variable is kept in a per-variable table (`vdelta`)
//!   that `flip` patches incrementally — only variables sharing a
//!   constraint with the flipped one are touched. Move selection then
//!   reads a single cell instead of re-scanning the occurrence lists of
//!   every candidate (the classic make/break cache of local-search SAT
//!   solvers).
//! * **Parallel restarts.** Each of the `max_tries` restarts runs an
//!   independent search seeded `seed ^ mix64(try_no)`, so a try's
//!   trajectory does not depend on which thread runs it or in what order.
//!   The results are reduced by `(violation asc, objective desc, try_no
//!   asc)`; 1, 2 and N worker threads therefore return byte-identical
//!   [`WsatResult`]s. The only cross-try dependency is a deterministic
//!   gate: when try 0 is already perfect (feasible, and the objective —
//!   if any — has reached [`WsatConfig::objective_target`]), the
//!   remaining tries are skipped.
//!
//! All randomness is seeded: identical configs give identical results,
//! regardless of `threads`.
//!
//! The pre-overhaul implementation (per-candidate occurrence-list scans,
//! one RNG threaded through sequential restarts) is preserved verbatim in
//! [`reference`](mod@reference) as the benchmark baseline for `solvebench`.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::model::{violation_of, Model, Term};

/// Configuration for the WSAT(OIP) solver.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WsatConfig {
    /// Maximum flips per restart.
    pub max_flips: usize,
    /// Number of restarts.
    pub max_tries: usize,
    /// Probability of a random-walk move.
    pub noise: f64,
    /// Tabu tenure: a variable flipped within the last `tabu` flips is not
    /// flipped again unless doing so reaches a new best (aspiration).
    pub tabu: usize,
    /// Stagnation cutoff: end a try when its best assignment has not
    /// improved within this many flips. Keeps converged searches from
    /// burning the whole flip budget.
    pub stall: usize,
    /// Random seed.
    pub seed: u64,
    /// Weight of a unit of constraint violation against a unit of
    /// objective when scoring greedy moves: `score = violation_delta *
    /// violation_weight - objective_delta`. Violation dominates as long as
    /// this exceeds the largest objective swing of a single flip.
    pub violation_weight: i64,
    /// Worker threads for parallel restarts. `1` runs tries sequentially;
    /// `0` uses the machine's available parallelism. The result is
    /// byte-identical for every value.
    pub threads: usize,
    /// Known upper bound on the objective. A try (and the whole solve)
    /// ends early once a feasible assignment reaches it. `None` disables
    /// the early exit.
    pub objective_target: Option<i64>,
}

impl Default for WsatConfig {
    fn default() -> WsatConfig {
        WsatConfig {
            max_flips: 20_000,
            max_tries: 8,
            noise: 0.15,
            tabu: 2,
            stall: 3_000,
            seed: 0x5EED,
            violation_weight: 10_000,
            threads: 1,
            objective_target: None,
        }
    }
}

/// The outcome of a WSAT(OIP) run.
#[derive(Debug, Clone, PartialEq)]
pub struct WsatResult {
    /// The best assignment found.
    pub assignment: Vec<bool>,
    /// `true` if the best assignment satisfies every constraint.
    pub feasible: bool,
    /// Total constraint violation of the best assignment (0 iff feasible).
    pub violation: i64,
    /// Objective value of the best assignment.
    pub objective: i64,
    /// Total number of flips performed, summed over all tries that ran.
    pub flips: u64,
    /// Number of restarts (tries) that actually ran. Deterministic: the
    /// early-exit gates depend only on per-try outcomes, never on
    /// scheduling, so the count is thread-count-invariant.
    pub tries: u64,
    /// `true` when the best assignment came out of a warm-started try of
    /// [`solve_warm`] (always `false` for [`solve`] and the reference
    /// solver) — the `solve.warm_start_hits` counter.
    pub warm_start_hit: bool,
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...): the universal
/// cutoff schedule of Luby, Sinclair & Zuckerman. [`solve_warm`] scales
/// each try's flip budget by `luby(try_no + 1)`, so cheap probes of the
/// warm seeds come first and budgets grow only when restarts keep failing.
pub fn luby(i: u64) -> u64 {
    debug_assert!(i >= 1);
    let mut k = 1u64;
    while (1u64 << k) - 1 < i {
        k += 1;
    }
    if (1u64 << k) - 1 == i {
        1u64 << (k - 1)
    } else {
        luby(i - (1u64 << (k - 1)) + 1)
    }
}

/// SplitMix64 finalizer: decorrelates per-try seeds derived from
/// consecutive try numbers.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Immutable per-solve tables shared by every try.
struct Problem {
    /// Occurrence lists: constraints (and coefficients) touching each var.
    occurs: Vec<Vec<(usize, i32)>>,
    /// Objective coefficient of each variable.
    obj_coef: Vec<i64>,
}

impl Problem {
    fn new(model: &Model) -> Problem {
        let mut occurs: Vec<Vec<(usize, i32)>> = vec![Vec::new(); model.num_vars];
        for (ci, c) in model.constraints.iter().enumerate() {
            for t in &c.terms {
                occurs[t.var].push((ci, t.coef));
            }
        }
        let mut obj_coef = vec![0i64; model.num_vars];
        for &Term { var, coef } in &model.objective {
            obj_coef[var] += i64::from(coef);
        }
        Problem { occurs, obj_coef }
    }
}

/// Incremental search state for one restart.
struct SearchState<'a> {
    model: &'a Model,
    /// Current assignment.
    assign: Vec<bool>,
    /// Current LHS value of each constraint.
    lhs: Vec<i32>,
    /// Indices of currently violated constraints.
    violated: Vec<usize>,
    /// Position of each constraint in `violated` (usize::MAX when absent).
    violated_pos: Vec<usize>,
    /// Cached change in total violation if each variable were flipped.
    /// Patched incrementally in [`SearchState::flip`].
    vdelta: Vec<i64>,
    /// Occurrence lists: constraints (and coefficients) touching each var.
    occurs: &'a [Vec<(usize, i32)>],
    /// Objective coefficient of each variable.
    obj_coef: &'a [i64],
    /// Flip counter at the time each variable was last flipped.
    last_flip: Vec<u64>,
    /// Total violation.
    total_violation: i64,
    /// Current objective value.
    objective: i64,
}

impl<'a> SearchState<'a> {
    fn new(model: &'a Model, problem: &'a Problem, assign: Vec<bool>) -> SearchState<'a> {
        let mut state = SearchState {
            model,
            lhs: vec![0; model.constraints.len()],
            violated: Vec::new(),
            violated_pos: vec![usize::MAX; model.constraints.len()],
            vdelta: vec![0; model.num_vars],
            occurs: &problem.occurs,
            obj_coef: &problem.obj_coef,
            last_flip: vec![0; model.num_vars],
            total_violation: 0,
            objective: 0,
            assign,
        };
        for (ci, c) in model.constraints.iter().enumerate() {
            let lhs = c.lhs(&state.assign);
            state.lhs[ci] = lhs;
            let v = violation_of(c.rel, lhs, c.rhs);
            state.total_violation += i64::from(v);
            if v > 0 {
                state.violated_pos[ci] = state.violated.len();
                state.violated.push(ci);
            }
            // Seed the delta cache: each variable's contribution from this
            // constraint is v(lhs with the var flipped) - v(lhs).
            for t in &c.terms {
                let dir: i32 = if state.assign[t.var] { -1 } else { 1 };
                state.vdelta[t.var] +=
                    i64::from(violation_of(c.rel, lhs + dir * t.coef, c.rhs) - v);
            }
        }
        state.objective = model.objective_value(&state.assign);
        state
    }

    /// Change in total violation if `var` were flipped (cached).
    fn violation_delta(&self, var: usize) -> i64 {
        self.vdelta[var]
    }

    /// Change in objective if `var` were flipped.
    fn objective_delta(&self, var: usize) -> i64 {
        if self.assign[var] {
            -self.obj_coef[var]
        } else {
            self.obj_coef[var]
        }
    }

    fn flip(&mut self, var: usize, flip_no: u64) {
        let dir: i32 = if self.assign[var] { -1 } else { 1 };
        // The objective delta is defined relative to the pre-flip state.
        self.objective += self.objective_delta(var);
        self.assign[var] = !self.assign[var];
        for &(ci, coef) in &self.occurs[var] {
            let c = &self.model.constraints[ci];
            let old_lhs = self.lhs[ci];
            let new_lhs = old_lhs + dir * coef;
            let old_v = violation_of(c.rel, old_lhs, c.rhs);
            let new_v = violation_of(c.rel, new_lhs, c.rhs);
            self.lhs[ci] = new_lhs;
            self.total_violation += i64::from(new_v - old_v);
            if old_v == 0 && new_v > 0 {
                self.violated_pos[ci] = self.violated.len();
                self.violated.push(ci);
            } else if old_v > 0 && new_v == 0 {
                let pos = self.violated_pos[ci];
                let last = *self.violated.last().expect("non-empty");
                self.violated.swap_remove(pos);
                if pos < self.violated.len() {
                    self.violated_pos[last] = pos;
                }
                self.violated_pos[ci] = usize::MAX;
            }
            // Patch the delta cache of every variable in this constraint:
            // its contribution from `ci` changed from one relative to
            // `old_lhs`/`old_v` to one relative to `new_lhs`/`new_v`. For
            // `var` itself the pre-flip direction was the opposite of its
            // current one.
            for t in &c.terms {
                let du: i32 = if self.assign[t.var] { -1 } else { 1 };
                let old_du = if t.var == var { -du } else { du };
                let old_contrib = violation_of(c.rel, old_lhs + old_du * t.coef, c.rhs) - old_v;
                let new_contrib = violation_of(c.rel, new_lhs + du * t.coef, c.rhs) - new_v;
                self.vdelta[t.var] += i64::from(new_contrib) - i64::from(old_contrib);
            }
        }
        self.last_flip[var] = flip_no;
        self.paranoid_audit();
    }

    /// Full recomputation of the incremental state, compiled in only under
    /// the `wsat-paranoid` feature (it makes every flip O(model size),
    /// turning debug test runs quadratic).
    #[cfg(feature = "wsat-paranoid")]
    fn paranoid_audit(&self) {
        assert_eq!(self.objective, self.model.objective_value(&self.assign));
        assert_eq!(
            self.total_violation,
            Model::total_violation(self.model, &self.assign)
        );
        for var in 0..self.model.num_vars {
            let dir: i32 = if self.assign[var] { -1 } else { 1 };
            let mut delta = 0i64;
            for &(ci, coef) in &self.occurs[var] {
                let c = &self.model.constraints[ci];
                let old = violation_of(c.rel, self.lhs[ci], c.rhs);
                let new = violation_of(c.rel, self.lhs[ci] + dir * coef, c.rhs);
                delta += i64::from(new - old);
            }
            assert_eq!(self.vdelta[var], delta, "stale vdelta for x{var}");
        }
    }

    #[cfg(not(feature = "wsat-paranoid"))]
    #[inline]
    fn paranoid_audit(&self) {}
}

/// The best assignment one try found, plus its flip count.
struct TryOutcome {
    try_no: usize,
    violation: i64,
    objective: i64,
    assignment: Vec<bool>,
    flips: u64,
}

/// `true` when an outcome cannot be improved upon: feasible, and the
/// objective (if any) has provably reached its upper bound.
fn is_perfect(outcome: &TryOutcome, model: &Model, cfg: &WsatConfig) -> bool {
    outcome.violation == 0
        && (model.objective.is_empty()
            || cfg.objective_target.is_some_and(|t| outcome.objective >= t))
}

/// How a try builds its starting assignment.
enum TryInit<'w> {
    /// All-false for try 0, seeded-random for later tries — the legacy
    /// [`solve`] behaviour.
    Default,
    /// Start from a caller-provided assignment (a warm seed).
    Seeded(&'w [bool]),
    /// Start all-false regardless of try number.
    AllFalse,
}

/// Runs one independent restart. The trajectory depends only on
/// `(model, cfg, try_no)` — never on other tries or the thread it runs on.
fn run_try(model: &Model, problem: &Problem, cfg: &WsatConfig, try_no: usize) -> TryOutcome {
    run_try_from(
        model,
        problem,
        cfg,
        try_no,
        TryInit::Default,
        cfg.max_flips as u64,
    )
}

/// [`run_try`] with an explicit starting assignment and flip budget — the
/// warm-started portfolio entry point.
fn run_try_from(
    model: &Model,
    problem: &Problem,
    cfg: &WsatConfig,
    try_no: usize,
    init: TryInit<'_>,
    max_flips: u64,
) -> TryOutcome {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ mix64(try_no as u64));
    // Default: first try starts all-false (often near-feasible for ≤
    // constraints); later tries are random.
    let init: Vec<bool> = match init {
        TryInit::Seeded(seed) => {
            debug_assert_eq!(seed.len(), model.num_vars);
            seed.to_vec()
        }
        TryInit::AllFalse => vec![false; model.num_vars],
        TryInit::Default if try_no == 0 => vec![false; model.num_vars],
        TryInit::Default => (0..model.num_vars).map(|_| rng.random_bool(0.5)).collect(),
    };
    let mut state = SearchState::new(model, problem, init);
    let mut best = TryOutcome {
        try_no,
        violation: state.total_violation,
        objective: state.objective,
        assignment: state.assign.clone(),
        flips: 0,
    };

    let mut last_best_flip = 0u64;
    let mut flips = 0u64;
    while flips < max_flips {
        // Early exit: nothing left to improve in this try.
        if is_perfect(&best, model, cfg) {
            break;
        }
        flips += 1;
        if cfg.stall > 0 && flips - last_best_flip > cfg.stall as u64 {
            break; // stagnated
        }
        let var = if state.violated.is_empty() {
            // Feasible: try to improve the objective. Stop if there is
            // no objective to improve.
            if model.objective.is_empty() {
                flips -= 1;
                break;
            }
            match pick_objective_move(&state, model, &mut rng) {
                Some(v) => v,
                None => {
                    flips -= 1;
                    break; // objective is at a local maximum
                }
            }
        } else {
            let ci = state.violated[rng.random_range(0..state.violated.len())];
            match pick_constraint_move(&state, ci, cfg, flips, best.violation, &mut rng) {
                Some(v) => v,
                None => continue,
            }
        };
        state.flip(var, flips);
        let better = state.total_violation < best.violation
            || (state.total_violation == best.violation && state.objective > best.objective);
        if better {
            best.violation = state.total_violation;
            best.objective = state.objective;
            best.assignment.clone_from(&state.assign);
            last_best_flip = flips;
        }
    }
    best.flips = flips;
    best
}

/// Runs tries `range` (sequentially or on a small worker pool) and returns
/// their outcomes in try order. `run` must be a pure function of the try
/// number — results are collected by index, so scheduling never shows.
fn run_tries(
    threads: usize,
    range: Range<usize>,
    run: impl Fn(usize) -> TryOutcome + Sync,
) -> Vec<TryOutcome> {
    let tries: Vec<usize> = range.collect();
    let threads = match threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(tries.len());
    if threads <= 1 {
        return tries.iter().map(|&t| run(t)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, TryOutcome)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let tries = &tries;
            let run = &run;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&t) = tries.get(i) else { break };
                if tx.send((i, run(t))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<TryOutcome>> = tries.iter().map(|_| None).collect();
    for (i, outcome) in rx {
        slots[i] = Some(outcome);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every try produced an outcome"))
        .collect()
}

/// Deterministic reduction: best `(violation asc, objective desc, try_no
/// asc)`; flips are summed over all tries that ran. Independent of the
/// order tries finished in. `warm_count` is the number of leading tries
/// that were warm-seeded (0 for the cold portfolio).
fn reduce(outcomes: Vec<TryOutcome>, warm_count: usize) -> WsatResult {
    let total_flips: u64 = outcomes.iter().map(|o| o.flips).sum();
    let tries = outcomes.len() as u64;
    let best = outcomes
        .into_iter()
        .reduce(|best, o| {
            if o.violation < best.violation
                || (o.violation == best.violation && o.objective > best.objective)
            {
                o
            } else {
                best
            }
        })
        .expect("at least one try ran");
    WsatResult {
        feasible: best.violation == 0,
        violation: best.violation,
        objective: best.objective,
        flips: total_flips,
        tries,
        warm_start_hit: best.try_no < warm_count,
        assignment: best.assignment,
    }
}

/// Solves `model`, returning the best assignment found within the
/// configured search budget. Results are identical for any
/// [`WsatConfig::threads`] value.
pub fn solve(model: &Model, cfg: &WsatConfig) -> WsatResult {
    let problem = Problem::new(model);
    let tries = cfg.max_tries.max(1);
    // Try 0 always runs first: when it is already perfect the remaining
    // tries are skipped — a deterministic gate (it depends only on try
    // 0's own outcome), so the result is still thread-count-invariant.
    let first = run_try(model, &problem, cfg, 0);
    let skip_rest = is_perfect(&first, model, cfg);
    let mut outcomes = vec![first];
    if !skip_rest && tries > 1 {
        outcomes.extend(run_tries(cfg.threads, 1..tries, |t| {
            run_try(model, &problem, cfg, t)
        }));
    }
    reduce(outcomes, 0)
}

/// Solves `model` with a warm-started restart portfolio under a Luby
/// cutoff schedule.
///
/// Try layout: tries `0..warm.len()` start from the given seeds (the
/// relaxation ladder passes the previous rung's best assignment and
/// sibling-component solutions here), the next try starts all-false, and
/// any remaining tries start seeded-random exactly like [`solve`]. Try
/// `t` gets a flip budget of `luby(t + 1) · max_flips / 8` (capped at
/// `max_flips`): the warm probes come cheap, and budgets only grow when
/// restarts keep failing.
///
/// The portfolio runs in two waves. Wave one is the probes: every warm
/// seed plus the all-false try. When any probe lands a *feasible*
/// assignment, the seeded-random tail is skipped entirely — random
/// restarts exist to escape infeasible basins, while objective polish
/// comes from the feasible probe's own hill-climbing, so the tail is
/// pure stall burn at that point. Only when every probe is infeasible
/// (and none is perfect) does wave two run the random restarts.
///
/// Determinism matches [`solve`]: each try depends only on `(model, cfg,
/// warm, try_no)`, the wave gates depend only on complete wave outcomes,
/// and results reduce by `(violation asc, objective desc, try_no asc)` —
/// byte-identical at 1, 2 and N threads.
pub fn solve_warm(model: &Model, cfg: &WsatConfig, warm: &[Vec<bool>]) -> WsatResult {
    let problem = Problem::new(model);
    let tries = cfg.max_tries.max(1).max(warm.len() + 1);
    let unit = (cfg.max_flips as u64 / 8).max(1);
    let budget = |t: usize| (luby(t as u64 + 1) * unit).min(cfg.max_flips as u64);
    let run = |t: usize| {
        let init = match warm.get(t) {
            Some(seed) => TryInit::Seeded(seed),
            None if t == warm.len() => TryInit::AllFalse,
            None => TryInit::Default,
        };
        run_try_from(model, &problem, cfg, t, init, budget(t))
    };
    let first = run(0);
    let skip_rest = is_perfect(&first, model, cfg);
    let mut outcomes = vec![first];
    if !skip_rest && tries > 1 {
        // Wave one: the remaining probes (warm seeds + all-false).
        let probe_end = (warm.len() + 1).min(tries);
        if probe_end > 1 {
            outcomes.extend(run_tries(cfg.threads, 1..probe_end, run));
        }
        let probe_feasible = outcomes.iter().any(|o| o.violation == 0);
        let probe_perfect = outcomes.iter().any(|o| is_perfect(o, model, cfg));
        // Wave two: the seeded-random tail, only when the probes left
        // the model unsatisfied.
        if !probe_perfect && !probe_feasible && probe_end < tries {
            outcomes.extend(run_tries(cfg.threads, probe_end..tries, run));
        }
    }
    reduce(outcomes, warm.len())
}

/// Chooses a variable from a violated constraint.
fn pick_constraint_move(
    state: &SearchState<'_>,
    ci: usize,
    cfg: &WsatConfig,
    flip_no: u64,
    best_violation: i64,
    rng: &mut StdRng,
) -> Option<usize> {
    let terms = &state.model.constraints[ci].terms;
    if terms.is_empty() {
        return None;
    }
    if rng.random_bool(cfg.noise) {
        return Some(terms[rng.random_range(0..terms.len())].var);
    }
    let mut best_var = None;
    let mut best_score = i64::MAX;
    for t in terms {
        let var = t.var;
        let dv = state.violation_delta(var);
        // Aspiration: a move reaching a new best ignores tabu.
        let reaches_new_best = state.total_violation + dv < best_violation;
        let tabu_active = cfg.tabu > 0
            && state.last_flip[var] != 0
            && flip_no.saturating_sub(state.last_flip[var]) <= cfg.tabu as u64;
        if tabu_active && !reaches_new_best {
            continue;
        }
        // Score: violation first, objective as a tie-breaker.
        let score = dv * cfg.violation_weight - state.objective_delta(var);
        if score < best_score {
            best_score = score;
            best_var = Some(var);
        }
    }
    // All candidates tabu: fall back to a random walk move.
    best_var.or_else(|| Some(terms[rng.random_range(0..terms.len())].var))
}

/// Chooses an objective-improving move when the state is feasible.
fn pick_objective_move(state: &SearchState<'_>, model: &Model, rng: &mut StdRng) -> Option<usize> {
    // Candidate moves: objective variables whose flip improves the
    // objective.
    let improving: Vec<usize> = model
        .objective
        .iter()
        .map(|t| t.var)
        .filter(|&v| state.objective_delta(v) > 0)
        .collect();
    if improving.is_empty() {
        return None;
    }
    // Prefer a move that keeps feasibility if one exists.
    let harmless: Vec<usize> = improving
        .iter()
        .copied()
        .filter(|&v| state.violation_delta(v) == 0)
        .collect();
    let pool = if harmless.is_empty() {
        &improving
    } else {
        &harmless
    };
    Some(pool[rng.random_range(0..pool.len())])
}

/// The pre-overhaul sequential solver, kept verbatim as the `solvebench`
/// baseline and as an independent implementation for differential tests.
///
/// Differences from [`solve`]: per-candidate `violation_delta` re-scans
/// the occurrence lists (no cache), one RNG is threaded through the
/// restarts sequentially, the aspiration/stall bookkeeping is global
/// across tries, and there is no objective-target early exit and no
/// parallelism. `violation_weight` is honoured so the scoring rule stays
/// comparable; `threads` and `objective_target` are ignored.
pub mod reference {
    use super::{mix64, Problem, WsatConfig, WsatResult};
    use crate::model::{violation_of, Model};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    struct RefState<'a> {
        model: &'a Model,
        assign: Vec<bool>,
        lhs: Vec<i32>,
        violated: Vec<usize>,
        violated_pos: Vec<usize>,
        occurs: &'a [Vec<(usize, i32)>],
        obj_coef: &'a [i64],
        last_flip: Vec<u64>,
        total_violation: i64,
        objective: i64,
    }

    impl<'a> RefState<'a> {
        fn new(model: &'a Model, problem: &'a Problem, assign: Vec<bool>) -> RefState<'a> {
            let mut state = RefState {
                model,
                lhs: vec![0; model.constraints.len()],
                violated: Vec::new(),
                violated_pos: vec![usize::MAX; model.constraints.len()],
                occurs: &problem.occurs,
                obj_coef: &problem.obj_coef,
                last_flip: vec![0; model.num_vars],
                total_violation: 0,
                objective: 0,
                assign,
            };
            for (ci, c) in model.constraints.iter().enumerate() {
                let lhs = c.lhs(&state.assign);
                state.lhs[ci] = lhs;
                let v = violation_of(c.rel, lhs, c.rhs);
                state.total_violation += i64::from(v);
                if v > 0 {
                    state.violated_pos[ci] = state.violated.len();
                    state.violated.push(ci);
                }
            }
            state.objective = model.objective_value(&state.assign);
            state
        }

        /// The uncached per-candidate scan [`super::solve`] replaced.
        fn violation_delta(&self, var: usize) -> i64 {
            let dir: i32 = if self.assign[var] { -1 } else { 1 };
            let mut delta = 0i64;
            for &(ci, coef) in &self.occurs[var] {
                let c = &self.model.constraints[ci];
                let old = violation_of(c.rel, self.lhs[ci], c.rhs);
                let new = violation_of(c.rel, self.lhs[ci] + dir * coef, c.rhs);
                delta += i64::from(new - old);
            }
            delta
        }

        fn objective_delta(&self, var: usize) -> i64 {
            if self.assign[var] {
                -self.obj_coef[var]
            } else {
                self.obj_coef[var]
            }
        }

        fn flip(&mut self, var: usize, flip_no: u64) {
            let dir: i32 = if self.assign[var] { -1 } else { 1 };
            self.objective += self.objective_delta(var);
            self.assign[var] = !self.assign[var];
            for &(ci, coef) in &self.occurs[var] {
                let c = &self.model.constraints[ci];
                let old_v = violation_of(c.rel, self.lhs[ci], c.rhs);
                self.lhs[ci] += dir * coef;
                let new_v = violation_of(c.rel, self.lhs[ci], c.rhs);
                self.total_violation += i64::from(new_v - old_v);
                if old_v == 0 && new_v > 0 {
                    self.violated_pos[ci] = self.violated.len();
                    self.violated.push(ci);
                } else if old_v > 0 && new_v == 0 {
                    let pos = self.violated_pos[ci];
                    let last = *self.violated.last().expect("non-empty");
                    self.violated.swap_remove(pos);
                    if pos < self.violated.len() {
                        self.violated_pos[last] = pos;
                    }
                    self.violated_pos[ci] = usize::MAX;
                }
            }
            self.last_flip[var] = flip_no;
        }
    }

    /// Sequential restarts, global best, uncached deltas — the pre-PR
    /// `solve`. (The only change: the first-try RNG seed matches the new
    /// per-try derivation so the two solvers explore comparable spaces.)
    pub fn solve_reference(model: &Model, cfg: &WsatConfig) -> WsatResult {
        let problem = Problem::new(model);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ mix64(0));
        let mut best_assign = vec![false; model.num_vars];
        let mut best_violation = Model::total_violation(model, &best_assign);
        let mut best_objective = model.objective_value(&best_assign);
        let mut total_flips = 0u64;
        let mut tries_ran = 0u64;

        'tries: for try_no in 0..cfg.max_tries.max(1) {
            tries_ran += 1;
            let init: Vec<bool> = if try_no == 0 {
                vec![false; model.num_vars]
            } else {
                (0..model.num_vars).map(|_| rng.random_bool(0.5)).collect()
            };
            let mut state = RefState::new(model, &problem, init);
            consider_best(
                &state,
                &mut best_assign,
                &mut best_violation,
                &mut best_objective,
            );

            let mut last_best_flip = total_flips;
            for _ in 0..cfg.max_flips {
                total_flips += 1;
                if cfg.stall > 0 && total_flips - last_best_flip > cfg.stall as u64 {
                    break; // stagnated: restart
                }
                let var = if state.violated.is_empty() {
                    if model.objective.is_empty() {
                        break 'tries;
                    }
                    match pick_objective_move(&state, model, &mut rng) {
                        Some(v) => v,
                        None => break 'tries,
                    }
                } else {
                    let ci = state.violated[rng.random_range(0..state.violated.len())];
                    match pick_constraint_move(
                        &state,
                        ci,
                        cfg,
                        total_flips,
                        best_violation,
                        &mut rng,
                    ) {
                        Some(v) => v,
                        None => continue,
                    }
                };
                state.flip(var, total_flips);
                let improved = consider_best(
                    &state,
                    &mut best_assign,
                    &mut best_violation,
                    &mut best_objective,
                );
                if improved {
                    last_best_flip = total_flips;
                }
            }
        }

        WsatResult {
            feasible: best_violation == 0,
            violation: best_violation,
            objective: best_objective,
            assignment: best_assign,
            flips: total_flips,
            tries: tries_ran,
            warm_start_hit: false,
        }
    }

    fn consider_best(
        state: &RefState<'_>,
        best_assign: &mut Vec<bool>,
        best_violation: &mut i64,
        best_objective: &mut i64,
    ) -> bool {
        let better = state.total_violation < *best_violation
            || (state.total_violation == *best_violation && state.objective > *best_objective);
        if better {
            *best_violation = state.total_violation;
            *best_objective = state.objective;
            best_assign.clone_from(&state.assign);
        }
        better
    }

    fn pick_constraint_move(
        state: &RefState<'_>,
        ci: usize,
        cfg: &WsatConfig,
        flip_no: u64,
        best_violation: i64,
        rng: &mut StdRng,
    ) -> Option<usize> {
        let terms = &state.model.constraints[ci].terms;
        if terms.is_empty() {
            return None;
        }
        if rng.random_bool(cfg.noise) {
            return Some(terms[rng.random_range(0..terms.len())].var);
        }
        let mut best_var = None;
        let mut best_score = i64::MAX;
        for t in terms {
            let var = t.var;
            let dv = state.violation_delta(var);
            let reaches_new_best = state.total_violation + dv < best_violation;
            let tabu_active = cfg.tabu > 0
                && state.last_flip[var] != 0
                && flip_no.saturating_sub(state.last_flip[var]) <= cfg.tabu as u64;
            if tabu_active && !reaches_new_best {
                continue;
            }
            let score = dv * cfg.violation_weight - state.objective_delta(var);
            if score < best_score {
                best_score = score;
                best_var = Some(var);
            }
        }
        best_var.or_else(|| Some(terms[rng.random_range(0..terms.len())].var))
    }

    fn pick_objective_move(state: &RefState<'_>, model: &Model, rng: &mut StdRng) -> Option<usize> {
        let improving: Vec<usize> = model
            .objective
            .iter()
            .map(|t| t.var)
            .filter(|&v| state.objective_delta(v) > 0)
            .collect();
        if improving.is_empty() {
            return None;
        }
        let harmless: Vec<usize> = improving
            .iter()
            .copied()
            .filter(|&v| state.violation_delta(v) == 0)
            .collect();
        let pool = if harmless.is_empty() {
            &improving
        } else {
            &harmless
        };
        Some(pool[rng.random_range(0..pool.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, Model, Relation};

    fn cfg() -> WsatConfig {
        WsatConfig::default()
    }

    #[test]
    fn satisfies_simple_equalities() {
        // x0 + x1 = 1; x1 + x2 = 1; x0 + x2 = 2 → x0 = x2 = 1, x1 = 0.
        let mut m = Model::new(3);
        m.add(Constraint::sum([0, 1], Relation::Eq, 1));
        m.add(Constraint::sum([1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([0, 2], Relation::Eq, 2));
        let r = solve(&m, &cfg());
        assert!(r.feasible);
        assert_eq!(r.assignment, vec![true, false, true]);
    }

    #[test]
    fn reports_infeasibility_via_violation() {
        // x0 = 1 and x0 = 0 cannot both hold.
        let mut m = Model::new(1);
        m.add(Constraint::sum([0], Relation::Eq, 1));
        m.add(Constraint::sum([0], Relation::Eq, 0));
        let r = solve(
            &m,
            &WsatConfig {
                max_flips: 200,
                max_tries: 2,
                ..cfg()
            },
        );
        assert!(!r.feasible);
        assert_eq!(r.violation, 1);
    }

    #[test]
    fn maximizes_objective_subject_to_constraints() {
        // At most 2 of 4 variables; maximize their sum → exactly 2 set.
        let mut m = Model::new(4);
        m.add(Constraint::sum([0, 1, 2, 3], Relation::Le, 2));
        m.maximize_sum([0, 1, 2, 3]);
        let r = solve(&m, &cfg());
        assert!(r.feasible);
        assert_eq!(r.objective, 2);
        assert_eq!(r.assignment.iter().filter(|&&b| b).count(), 2);
    }

    #[test]
    fn pure_satisfaction_stops_at_first_solution() {
        let mut m = Model::new(2);
        m.add(Constraint::sum([0, 1], Relation::Ge, 1));
        let r = solve(&m, &cfg());
        assert!(r.feasible);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut m = Model::new(6);
        m.add(Constraint::sum([0, 1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([3, 4, 5], Relation::Eq, 2));
        m.add(Constraint::sum([0, 3], Relation::Le, 1));
        m.maximize_sum([0, 1, 2, 3, 4, 5]);
        let r1 = solve(&m, &cfg());
        let r2 = solve(&m, &cfg());
        assert_eq!(r1, r2);
    }

    #[test]
    fn thread_count_does_not_change_the_result() {
        let mut m = Model::new(8);
        m.add(Constraint::sum([0, 1, 2, 3], Relation::Eq, 2));
        m.add(Constraint::sum([4, 5, 6, 7], Relation::Le, 1));
        m.add(Constraint::sum([0, 4], Relation::Ge, 1));
        m.maximize_sum([0, 1, 2, 3, 4, 5, 6, 7]);
        let base = solve(
            &m,
            &WsatConfig {
                threads: 1,
                ..cfg()
            },
        );
        for threads in [2, 3, 0] {
            let r = solve(&m, &WsatConfig { threads, ..cfg() });
            assert_eq!(r, base, "result changed at threads={threads}");
        }
    }

    #[test]
    fn objective_target_short_circuits() {
        // The bound (2) is reachable: the solver must stop there with far
        // fewer flips than the untargeted search.
        let mut m = Model::new(4);
        m.add(Constraint::sum([0, 1, 2, 3], Relation::Le, 2));
        m.maximize_sum([0, 1, 2, 3]);
        let capped = solve(
            &m,
            &WsatConfig {
                objective_target: Some(2),
                ..cfg()
            },
        );
        assert!(capped.feasible);
        assert_eq!(capped.objective, 2);
        let uncapped = solve(&m, &cfg());
        assert_eq!(uncapped.objective, 2);
        assert!(
            capped.flips < uncapped.flips,
            "target {} vs untargeted {}",
            capped.flips,
            uncapped.flips
        );
    }

    #[test]
    fn empty_model_is_feasible() {
        let m = Model::new(0);
        let r = solve(&m, &cfg());
        assert!(r.feasible);
        assert!(r.assignment.is_empty());
    }

    #[test]
    fn handles_negative_coefficients() {
        // x0 + x1 - x2 <= 1 with x0 = x1 = 1 forced → x2 must be 1.
        let mut m = Model::new(3);
        m.add(Constraint::sum([0], Relation::Eq, 1));
        m.add(Constraint::sum([1], Relation::Eq, 1));
        m.add(Constraint {
            terms: vec![
                crate::model::Term { var: 0, coef: 1 },
                crate::model::Term { var: 1, coef: 1 },
                crate::model::Term { var: 2, coef: -1 },
            ],
            rel: Relation::Le,
            rhs: 1,
            label: String::new(),
        });
        let r = solve(&m, &cfg());
        assert!(r.feasible, "{r:?}");
        assert_eq!(r.assignment, vec![true, true, true]);
    }

    #[test]
    fn luby_sequence() {
        let seq: Vec<u64> = (1..=15).map(luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn warm_seed_hits_on_a_solved_instance() {
        // Seeding with a known optimum: the first (warm) try is already
        // perfect, so the portfolio stops there and reports the hit.
        let mut m = Model::new(3);
        m.add(Constraint::sum([0, 1], Relation::Eq, 1));
        m.add(Constraint::sum([1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([0, 2], Relation::Eq, 2));
        let seed = vec![true, false, true];
        let r = solve_warm(&m, &cfg(), std::slice::from_ref(&seed));
        assert!(r.feasible);
        assert!(r.warm_start_hit);
        assert_eq!(r.assignment, seed);
        assert_eq!(r.tries, 1, "perfect warm try gates the rest");
        // A cold solve never reports a warm hit.
        assert!(!solve(&m, &cfg()).warm_start_hit);
    }

    #[test]
    fn warm_portfolio_recovers_from_a_bad_seed() {
        let mut m = Model::new(3);
        m.add(Constraint::sum([0, 1], Relation::Eq, 1));
        m.add(Constraint::sum([1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([0, 2], Relation::Eq, 2));
        // An infeasible seed: the later cold tries must still solve it.
        let r = solve_warm(&m, &cfg(), &[vec![false, true, false]]);
        assert!(r.feasible, "{r:?}");
        assert_eq!(r.assignment, vec![true, false, true]);
    }

    #[test]
    fn warm_solve_is_thread_count_invariant() {
        let mut m = Model::new(8);
        m.add(Constraint::sum([0, 1, 2, 3], Relation::Eq, 2));
        m.add(Constraint::sum([4, 5, 6, 7], Relation::Le, 1));
        m.add(Constraint::sum([0, 4], Relation::Ge, 1));
        m.maximize_sum([0, 1, 2, 3, 4, 5, 6, 7]);
        let warm = vec![vec![false; 8], vec![true; 8]];
        let base = solve_warm(
            &m,
            &WsatConfig {
                threads: 1,
                ..cfg()
            },
            &warm,
        );
        for threads in [2, 3, 0] {
            let r = solve_warm(&m, &WsatConfig { threads, ..cfg() }, &warm);
            assert_eq!(r, base, "warm result changed at threads={threads}");
        }
    }

    #[test]
    fn reference_solver_agrees_on_feasibility() {
        let mut m = Model::new(6);
        m.add(Constraint::sum([0, 1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([3, 4, 5], Relation::Eq, 2));
        m.add(Constraint::sum([0, 3], Relation::Le, 1));
        m.maximize_sum([0, 1, 2, 3, 4, 5]);
        let new = solve(&m, &cfg());
        let old = reference::solve_reference(&m, &cfg());
        assert_eq!(new.feasible, old.feasible);
        assert_eq!(new.violation, old.violation);
        assert_eq!(new.objective, old.objective);
    }
}
