//! Exact solvers.
//!
//! Two complementary tools:
//!
//! * [`solve_bnb`] — a depth-first branch-and-bound over any
//!   [`Model`], with constraint-bound pruning and an optimistic objective
//!   bound. It is used as an *oracle*: it can prove a hard encoding
//!   infeasible (which drives the relaxation ladder) and cross-checks the
//!   stochastic solver in tests. Worst-case exponential, so it takes a node
//!   budget; segmentation encodings are small enough (tens of variables)
//!   that the budget is rarely reached.
//!
//! * [`solve_ordered`] — a polynomial dynamic program specialized to the
//!   segmentation structure. It relies on the paper's horizontal-layout
//!   observation (Section 3.2: "the order in which records appear in the
//!   text stream of the page is the same as the order in which they appear
//!   in the table"), i.e. record labels are non-decreasing along the
//!   stream. It maximizes the number of assigned extracts subject to
//!   occurrence (`R_i ∈ D_i`), uniqueness and consecutiveness; a full
//!   assignment exists iff the maximum equals the number of extracts.

use crate::model::{Model, Relation};

/// Result of branch-and-bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BnbOutcome {
    /// An optimal feasible assignment (maximal objective).
    Optimal {
        /// The assignment.
        assignment: Vec<bool>,
        /// Its objective value.
        objective: i64,
    },
    /// The model was proven infeasible.
    Infeasible,
    /// The node budget was exhausted before a conclusion.
    Unknown,
}

/// Branch-and-bound over a pseudo-boolean model, exploring at most
/// `node_budget` nodes.
pub fn solve_bnb(model: &Model, node_budget: u64) -> BnbOutcome {
    let n = model.num_vars;
    // Per-constraint state: current lhs of assigned vars, and the min/max
    // contribution still possible from unassigned vars.
    let mut lhs = vec![0i32; model.constraints.len()];
    let mut min_rest = vec![0i32; model.constraints.len()];
    let mut max_rest = vec![0i32; model.constraints.len()];
    for (ci, c) in model.constraints.iter().enumerate() {
        for t in &c.terms {
            if t.coef > 0 {
                max_rest[ci] += t.coef;
            } else {
                min_rest[ci] += t.coef;
            }
        }
    }
    let mut obj_coef = vec![0i64; n];
    for t in &model.objective {
        obj_coef[t.var] += i64::from(t.coef);
    }
    // Occurrence lists.
    let mut occurs: Vec<Vec<(usize, i32)>> = vec![Vec::new(); n];
    for (ci, c) in model.constraints.iter().enumerate() {
        for t in &c.terms {
            occurs[t.var].push((ci, t.coef));
        }
    }

    struct Search<'a> {
        model: &'a Model,
        occurs: &'a [Vec<(usize, i32)>],
        obj_coef: &'a [i64],
        /// `pos_suffix[d]` = Σ over vars `v ≥ d` of `max(obj_coef[v], 0)`.
        pos_suffix: Vec<i64>,
        /// Objective contribution of the variables assigned so far.
        fixed_obj: i64,
        lhs: Vec<i32>,
        min_rest: Vec<i32>,
        max_rest: Vec<i32>,
        assign: Vec<bool>,
        best: Option<(Vec<bool>, i64)>,
        nodes: u64,
        budget: u64,
        exhausted: bool,
    }

    impl Search<'_> {
        /// Can constraint `ci` still be satisfied under the current bounds?
        #[inline]
        fn constraint_bad(&self, ci: usize) -> bool {
            let c = &self.model.constraints[ci];
            let lo = self.lhs[ci] + self.min_rest[ci];
            let hi = self.lhs[ci] + self.max_rest[ci];
            match c.rel {
                Relation::Le => lo > c.rhs,
                Relation::Ge => hi < c.rhs,
                Relation::Eq => lo > c.rhs || hi < c.rhs,
            }
        }

        /// Full bound check; used once at the root. Deeper nodes only check
        /// the constraints touched by the variable just assigned.
        fn pruned_full(&self) -> bool {
            (0..self.model.constraints.len()).any(|ci| self.constraint_bad(ci))
        }

        /// Incremental bound check: only the constraints of `var`.
        fn pruned_after(&self, var: usize) -> bool {
            self.occurs[var]
                .iter()
                .any(|&(ci, _)| self.constraint_bad(ci))
        }

        /// Upper bound on the objective: fixed part (maintained
        /// incrementally in `fixed_obj`) plus the positive mass of the
        /// unassigned suffix.
        fn optimistic_objective(&self, depth: usize) -> i64 {
            self.fixed_obj + self.pos_suffix[depth]
        }

        fn recurse(&mut self, depth: usize) {
            self.nodes += 1;
            if self.nodes > self.budget {
                self.exhausted = true;
                return;
            }
            if let Some((_, best_obj)) = &self.best {
                if self.optimistic_objective(depth) <= *best_obj {
                    return;
                }
            }
            if depth == self.assign.len() {
                debug_assert!(self.model.feasible(&self.assign));
                let obj = self.fixed_obj;
                let improves = self
                    .best
                    .as_ref()
                    .is_none_or(|(_, best_obj)| obj > *best_obj);
                if improves {
                    self.best = Some((self.assign.clone(), obj));
                }
                return;
            }
            // Branch: try value order that favors the objective.
            let first = self.obj_coef[depth] >= 0;
            for value in [first, !first] {
                self.set(depth, value);
                if !self.pruned_after(depth) {
                    self.recurse(depth + 1);
                }
                self.unset(depth, value);
                if self.exhausted {
                    return;
                }
            }
        }

        fn set(&mut self, var: usize, value: bool) {
            self.assign[var] = value;
            if value {
                self.fixed_obj += self.obj_coef[var];
            }
            for &(ci, coef) in &self.occurs[var] {
                if value {
                    self.lhs[ci] += coef;
                }
                if coef > 0 {
                    self.max_rest[ci] -= coef;
                } else {
                    self.min_rest[ci] -= coef;
                }
            }
        }

        fn unset(&mut self, var: usize, value: bool) {
            if value {
                self.fixed_obj -= self.obj_coef[var];
            }
            for &(ci, coef) in &self.occurs[var] {
                if value {
                    self.lhs[ci] -= coef;
                }
                if coef > 0 {
                    self.max_rest[ci] += coef;
                } else {
                    self.min_rest[ci] += coef;
                }
            }
            self.assign[var] = false;
        }
    }

    let mut pos_suffix = vec![0i64; n + 1];
    for v in (0..n).rev() {
        pos_suffix[v] = pos_suffix[v + 1] + obj_coef[v].max(0);
    }

    let mut search = Search {
        model,
        occurs: &occurs,
        obj_coef: &obj_coef,
        pos_suffix,
        fixed_obj: 0,
        lhs: std::mem::take(&mut lhs),
        min_rest: std::mem::take(&mut min_rest),
        max_rest: std::mem::take(&mut max_rest),
        assign: vec![false; n],
        best: None,
        nodes: 0,
        budget: node_budget,
        exhausted: false,
    };
    if !search.pruned_full() {
        search.recurse(0);
    }

    match (search.best, search.exhausted) {
        (Some((assignment, objective)), _) => BnbOutcome::Optimal {
            assignment,
            objective,
        },
        (None, false) => BnbOutcome::Infeasible,
        (None, true) => BnbOutcome::Unknown,
    }
}

/// An ordered-DP solution: per-extract record assignment and the number of
/// assigned extracts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderedSolution {
    /// Record assignment for each extract (`None` = unassigned).
    pub assignments: Vec<Option<u32>>,
    /// Number of assigned extracts (maximal).
    pub assigned: usize,
}

impl OrderedSolution {
    /// `true` if every extract is assigned — i.e. the strict (hard) problem
    /// is satisfiable under the horizontal-layout ordering.
    pub fn is_total(&self) -> bool {
        self.assigned == self.assignments.len()
    }
}

/// Maximizes the number of extracts assigned to records, subject to:
/// `R_i ∈ candidates[i]` (occurrence), each record's extracts contiguous
/// (consecutiveness), each extract in at most one record (uniqueness by
/// construction), and record labels non-decreasing in stream order
/// (horizontal layout).
///
/// `candidates[i]` lists, in ascending order, the records extract `i` may
/// belong to (the observation sets `D_i`).
pub fn solve_ordered(candidates: &[&[u32]], num_records: usize) -> OrderedSolution {
    let n = candidates.len();
    let k = num_records;
    if n == 0 {
        return OrderedSolution {
            assignments: Vec::new(),
            assigned: 0,
        };
    }

    // DP over states (j, open): j ∈ 0..=k where 0 = "no record started yet"
    // and j >= 1 means record j-1 is the most recent; `open` means the most
    // recent record can still be extended (no gap since its last extract).
    const NEG: i32 = i32::MIN / 2;
    let states = (k + 1) * 2;
    let idx = |j: usize, open: bool| j * 2 + usize::from(open);

    let mut dp = vec![NEG; states];
    dp[idx(0, false)] = 0;
    // parent[i][state] = (prev_state, action): action = record assigned + 1,
    // or 0 for unassigned.
    let mut parent = vec![vec![(usize::MAX, 0u32); states]; n];

    for i in 0..n {
        let mut next = vec![NEG; states];
        for j in 0..=k {
            for open in [false, true] {
                let cur = dp[idx(j, open)];
                if cur == NEG {
                    continue;
                }
                // Option 1: leave extract i unassigned → record closes.
                let st = idx(j, false);
                if cur > next[st] {
                    next[st] = cur;
                    parent[i][st] = (idx(j, open), 0);
                }
                // Option 2: extend the open record with extract i.
                if open && j >= 1 && candidates[i].binary_search(&((j - 1) as u32)).is_ok() {
                    let st = idx(j, true);
                    if cur + 1 > next[st] {
                        next[st] = cur + 1;
                        parent[i][st] = (idx(j, open), j as u32);
                    }
                }
                // Option 3: start a new record r strictly after the most
                // recent one (r > j-1, i.e. state index jp = r+1 > j).
                for &r in candidates[i] {
                    let jp = r as usize + 1;
                    if jp <= j {
                        continue;
                    }
                    let st = idx(jp, true);
                    if cur + 1 > next[st] {
                        next[st] = cur + 1;
                        parent[i][st] = (idx(j, open), jp as u32);
                    }
                }
            }
        }
        dp = next;
    }

    // Best final state; prefer larger count, then lower record index for
    // determinism.
    let mut best_state = 0;
    let mut best = NEG;
    for (st, &score) in dp.iter().enumerate() {
        if score > best {
            best = score;
            best_state = st;
        }
    }

    // Backtrack.
    let mut assignments = vec![None; n];
    let mut st = best_state;
    for i in (0..n).rev() {
        let (prev, action) = parent[i][st];
        debug_assert_ne!(prev, usize::MAX, "state must have a parent");
        if action > 0 {
            assignments[i] = Some(action - 1);
        }
        st = prev;
    }

    OrderedSolution {
        assignments,
        assigned: best.max(0) as usize,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Constraint, Model, Relation};

    // ---- branch and bound ----

    #[test]
    fn bnb_finds_unique_solution() {
        let mut m = Model::new(3);
        m.add(Constraint::sum([0, 1], Relation::Eq, 1));
        m.add(Constraint::sum([1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([0, 2], Relation::Eq, 2));
        match solve_bnb(&m, 10_000) {
            BnbOutcome::Optimal { assignment, .. } => {
                assert_eq!(assignment, vec![true, false, true]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bnb_proves_infeasible() {
        let mut m = Model::new(2);
        m.add(Constraint::sum([0, 1], Relation::Ge, 3));
        assert_eq!(solve_bnb(&m, 10_000), BnbOutcome::Infeasible);
    }

    #[test]
    fn bnb_maximizes_objective() {
        let mut m = Model::new(4);
        m.add(Constraint::sum([0, 1], Relation::Le, 1));
        m.add(Constraint::sum([2, 3], Relation::Le, 1));
        m.maximize_sum([0, 1, 2, 3]);
        match solve_bnb(&m, 100_000) {
            BnbOutcome::Optimal { objective, .. } => assert_eq!(objective, 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bnb_budget_exhaustion_reports_unknown() {
        // An odd cycle of exactly-one constraints is infeasible, but the
        // root bounds cannot see it — proving it needs search, which a
        // 2-node budget does not allow.
        let mut m = Model::new(3);
        m.add(Constraint::sum([0, 1], Relation::Eq, 1));
        m.add(Constraint::sum([1, 2], Relation::Eq, 1));
        m.add(Constraint::sum([2, 0], Relation::Eq, 1));
        assert_eq!(solve_bnb(&m, 2), BnbOutcome::Unknown);
        // With enough budget it is proven infeasible.
        assert_eq!(solve_bnb(&m, 1_000), BnbOutcome::Infeasible);
    }

    // ---- ordered DP ----

    fn cands<'a>(spec: &[&'a [u32]]) -> Vec<&'a [u32]> {
        spec.to_vec()
    }

    #[test]
    fn ordered_paper_example() {
        // The Superpages example, Table 1: D_i sets for E1..E11.
        let d: Vec<&[u32]> = cands(&[
            &[0, 1], // E1 John Smith
            &[0],    // E2
            &[0],    // E3
            &[0, 1], // E4 phone
            &[0, 1], // E5 John Smith
            &[1],    // E6
            &[1],    // E7
            &[0, 1], // E8 phone
            &[2],    // E9
            &[2],    // E10
            &[2],    // E11
        ]);
        let sol = solve_ordered(&d, 3);
        // The structural constraints alone admit a total assignment; the
        // exact split between r1 and r2 additionally needs the Section 4.2
        // position constraints (E1/E5 compete for one occurrence), which
        // the DP deliberately does not model — so assert validity, not the
        // specific tie-break.
        assert!(sol.is_total(), "{sol:?}");
        for (i, a) in sol.assignments.iter().enumerate() {
            let r = a.expect("total");
            assert!(d[i].contains(&r), "E{} assigned outside D_i", i + 1);
        }
        // Monotone record labels.
        let labels: Vec<u32> = sol.assignments.iter().map(|a| a.unwrap()).collect();
        assert!(labels.windows(2).all(|w| w[0] <= w[1]));
        // Record 3 is exactly E9..E11.
        assert_eq!(&labels[8..], &[2, 2, 2]);
    }

    #[test]
    fn ordered_detects_infeasibility() {
        // E2 can only be in r1 but E1 and E3 must both be r2: E1,E3 block
        // is non-contiguous around E2 → not totally assignable.
        let d: Vec<&[u32]> = cands(&[&[1], &[0], &[1]]);
        let sol = solve_ordered(&d, 2);
        assert!(!sol.is_total());
        assert_eq!(sol.assigned, 2);
    }

    #[test]
    fn ordered_respects_candidates() {
        let d: Vec<&[u32]> = cands(&[&[0], &[1], &[2]]);
        let sol = solve_ordered(&d, 3);
        assert!(sol.is_total());
        assert_eq!(sol.assignments, vec![Some(0), Some(1), Some(2)]);
    }

    #[test]
    fn ordered_empty_input() {
        let sol = solve_ordered(&[], 3);
        assert_eq!(sol.assigned, 0);
        assert!(sol.assignments.is_empty());
    }

    #[test]
    fn ordered_extract_with_empty_candidates_stays_unassigned() {
        let empty: &[u32] = &[];
        let d: Vec<&[u32]> = cands(&[&[0], empty, &[1]]);
        let sol = solve_ordered(&d, 2);
        assert_eq!(sol.assigned, 2);
        assert_eq!(sol.assignments, vec![Some(0), None, Some(1)]);
    }

    #[test]
    fn ordered_monotonicity_enforced() {
        // Record labels may not decrease: E1 only r2, E2 only r1.
        let d: Vec<&[u32]> = cands(&[&[1], &[0]]);
        let sol = solve_ordered(&d, 2);
        assert_eq!(sol.assigned, 1, "{sol:?}");
    }

    #[test]
    fn ordered_contiguity_enforced() {
        // E1 r1, E2 unassignable, E3 r1 again: r1 would be split.
        let empty: &[u32] = &[];
        let d: Vec<&[u32]> = cands(&[&[0], empty, &[0]]);
        let sol = solve_ordered(&d, 1);
        assert_eq!(sol.assigned, 1);
    }

    #[test]
    fn ordered_allows_skipped_records() {
        // Record r2 has no extract on the list page.
        let d: Vec<&[u32]> = cands(&[&[0], &[2]]);
        let sol = solve_ordered(&d, 3);
        assert!(sol.is_total());
        assert_eq!(sol.assignments, vec![Some(0), Some(2)]);
    }
}
