//! Instance reduction for pseudo-boolean models: bounds-consistency
//! propagation, entailed-constraint elimination, and connected-component
//! decomposition.
//!
//! The segmentation encodings of Section 4 are mostly *easy*: on clean
//! sites the uniqueness singletons (`x = 1`) cascade through the
//! consecutiveness and position constraints until every variable is
//! forced, and even on dirty sites the constraint graph falls apart into
//! small independent clusters (one per run of entangled extracts). This
//! pass exploits both structures before any stochastic search runs:
//!
//! 1. **Propagation.** For every constraint, the achievable range
//!    `[lo, hi]` of its left-hand side under the current partial
//!    assignment is maintained. A constraint whose range excludes the
//!    right-hand side proves the model infeasible; a variable whose value
//!    `v` would make a constraint unsatisfiable regardless of the other
//!    variables is forced to `!v`. Forcing re-enqueues the variable's
//!    other constraints (a worklist to fixpoint).
//! 2. **Entailment.** A constraint satisfied by *every* completion of the
//!    partial assignment (`hi ≤ rhs` for `≤`, `lo ≥ rhs` for `≥`,
//!    `lo = hi = rhs` for `=`) is dropped — it can never steer the search.
//! 3. **Free variables.** An unfixed variable in no remaining constraint
//!    is assigned greedily by its objective coefficient (`> 0` → true):
//!    optimal, since nothing else observes it.
//! 4. **Components.** The remaining variables are grouped by union-find
//!    over co-occurrence in active constraints; each group becomes an
//!    independent sub-[`Model`] with remapped variables and
//!    fixed-term-adjusted right-hand sides, solvable in isolation (and in
//!    parallel). [`Reduction::stitch`] reassembles a full assignment.
//!
//! The whole-instance solver stays available as a differential oracle:
//! stitching component solutions must reproduce exactly the feasibility
//! the unreduced model has (see `tests/solver_props.rs`).

use std::collections::VecDeque;

use crate::model::{Constraint, Model, Relation, Term, Var};

/// One independent sub-instance of a reduced model.
#[derive(Debug, Clone)]
pub struct Component {
    /// Global variable ids, ascending; sub-model variable `k` is
    /// `vars[k]`.
    pub vars: Vec<Var>,
    /// The remapped sub-model (constraints restricted to `vars`, right-
    /// hand sides adjusted for fixed terms, objective restricted).
    pub model: Model,
}

/// The result of [`reduce_model`].
#[derive(Debug, Clone)]
pub struct Reduction {
    /// Per-variable fixed value: `Some` for propagation-forced and free
    /// variables, `None` for variables owned by a component.
    pub fixed: Vec<Option<bool>>,
    /// Independent sub-instances, ordered by their smallest global
    /// variable.
    pub components: Vec<Component>,
    /// Propagation proved the model unsatisfiable.
    pub infeasible: bool,
    /// Variables fixed by propagation.
    pub forced: usize,
    /// Unconstrained variables assigned greedily by objective sign.
    pub free: usize,
    /// Constraints dropped as entailed.
    pub entailed: usize,
}

impl Reduction {
    /// Variables removed from the search space (forced + free) — the
    /// `solve.pruned_vars` counter.
    pub fn pruned_vars(&self) -> usize {
        self.forced + self.free
    }

    /// Stitches per-component assignments (in component order) and the
    /// fixed variables back into a full assignment of the original model.
    pub fn stitch(&self, parts: &[Vec<bool>]) -> Vec<bool> {
        debug_assert_eq!(parts.len(), self.components.len());
        let mut full: Vec<bool> = self.fixed.iter().map(|f| f.unwrap_or(false)).collect();
        for (comp, part) in self.components.iter().zip(parts) {
            for (k, &v) in comp.vars.iter().enumerate() {
                full[v] = part[k];
            }
        }
        full
    }

    /// The propagated partial assignment completed with `false` — the
    /// best-effort witness used for infeasibility diagnostics.
    pub fn completed(&self) -> Vec<bool> {
        self.fixed.iter().map(|f| f.unwrap_or(false)).collect()
    }
}

/// `[lo, hi]` of a constraint's LHS over all completions of `fixed`.
fn bounds(c: &Constraint, fixed: &[Option<bool>]) -> (i64, i64) {
    let mut lo = 0i64;
    let mut hi = 0i64;
    for t in &c.terms {
        match fixed[t.var] {
            Some(true) => {
                lo += i64::from(t.coef);
                hi += i64::from(t.coef);
            }
            Some(false) => {}
            None => {
                if t.coef > 0 {
                    hi += i64::from(t.coef);
                } else {
                    lo += i64::from(t.coef);
                }
            }
        }
    }
    (lo, hi)
}

/// `true` when no completion can satisfy `rel rhs` given LHS in `[lo, hi]`.
fn range_infeasible(rel: Relation, lo: i64, hi: i64, rhs: i64) -> bool {
    match rel {
        Relation::Le => lo > rhs,
        Relation::Ge => hi < rhs,
        Relation::Eq => lo > rhs || hi < rhs,
    }
}

/// `true` when every completion satisfies `rel rhs`.
fn range_entailed(rel: Relation, lo: i64, hi: i64, rhs: i64) -> bool {
    match rel {
        Relation::Le => hi <= rhs,
        Relation::Ge => lo >= rhs,
        Relation::Eq => lo == rhs && hi == rhs,
    }
}

fn find(uf: &mut [usize], mut v: usize) -> usize {
    while uf[v] != v {
        uf[v] = uf[uf[v]];
        v = uf[v];
    }
    v
}

/// Union by smallest root, so component order is the variable order.
fn union(uf: &mut [usize], a: usize, b: usize) {
    let ra = find(uf, a);
    let rb = find(uf, b);
    if ra != rb {
        let (lo, hi) = if ra < rb { (ra, rb) } else { (rb, ra) };
        uf[hi] = lo;
    }
}

/// Reduces `model`: propagates forced assignments to fixpoint, drops
/// entailed constraints, assigns free variables, and splits what is left
/// into independent components.
pub fn reduce_model(model: &Model) -> Reduction {
    let n = model.num_vars;
    let ncon = model.constraints.len();
    let mut fixed: Vec<Option<bool>> = vec![None; n];
    let mut forced = 0usize;

    let mut occurs: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (ci, c) in model.constraints.iter().enumerate() {
        for t in &c.terms {
            occurs[t.var].push(ci);
        }
    }

    // Propagation worklist over constraints.
    let mut queued = vec![true; ncon];
    let mut queue: VecDeque<usize> = (0..ncon).collect();
    let mut infeasible = false;
    'prop: while let Some(ci) = queue.pop_front() {
        queued[ci] = false;
        let c = &model.constraints[ci];
        let (lo, hi) = bounds(c, &fixed);
        let rhs = i64::from(c.rhs);
        if range_infeasible(c.rel, lo, hi, rhs) {
            infeasible = true;
            break 'prop;
        }
        for t in &c.terms {
            if fixed[t.var].is_some() {
                continue;
            }
            let (tlo, thi) = if t.coef > 0 {
                (0i64, i64::from(t.coef))
            } else {
                (i64::from(t.coef), 0i64)
            };
            // The rest of the constraint with this term's value pinned to
            // `cv`: if no completion of the rest can save it, the value is
            // impossible.
            let (rest_lo, rest_hi) = (lo - tlo, hi - thi);
            let impossible = |cv: i64| match c.rel {
                Relation::Le => rest_lo + cv > rhs,
                Relation::Ge => rest_hi + cv < rhs,
                Relation::Eq => rest_lo + cv > rhs || rest_hi + cv < rhs,
            };
            let true_imp = impossible(i64::from(t.coef));
            let false_imp = impossible(0);
            if true_imp && false_imp {
                infeasible = true;
                break 'prop;
            }
            if true_imp || false_imp {
                fixed[t.var] = Some(false_imp);
                forced += 1;
                for &cj in &occurs[t.var] {
                    if !queued[cj] {
                        queued[cj] = true;
                        queue.push_back(cj);
                    }
                }
                // This constraint's bounds just moved: rescan it fresh.
                if !queued[ci] {
                    queued[ci] = true;
                    queue.push_back(ci);
                }
                continue 'prop;
            }
        }
    }

    if infeasible {
        return Reduction {
            fixed,
            components: Vec::new(),
            infeasible: true,
            forced,
            free: 0,
            entailed: 0,
        };
    }

    // Entailment: keep only constraints that can still bite.
    let mut active: Vec<usize> = Vec::new();
    let mut entailed = 0usize;
    for (ci, c) in model.constraints.iter().enumerate() {
        let (lo, hi) = bounds(c, &fixed);
        if range_entailed(c.rel, lo, hi, i64::from(c.rhs)) {
            entailed += 1;
        } else {
            active.push(ci);
        }
    }

    // Union-find over unfixed variables co-occurring in active constraints.
    let mut uf: Vec<usize> = (0..n).collect();
    let mut in_active = vec![false; n];
    for &ci in &active {
        let mut first: Option<usize> = None;
        for t in &model.constraints[ci].terms {
            if fixed[t.var].is_some() {
                continue;
            }
            in_active[t.var] = true;
            match first {
                None => first = Some(t.var),
                Some(f) => union(&mut uf, f, t.var),
            }
        }
    }

    // Free variables: unfixed, observed by no active constraint. Greedy by
    // objective coefficient — optimal, nothing else sees them.
    let mut obj = vec![0i64; n];
    for t in &model.objective {
        obj[t.var] += i64::from(t.coef);
    }
    let mut free = 0usize;
    for v in 0..n {
        if fixed[v].is_none() && !in_active[v] {
            fixed[v] = Some(obj[v] > 0);
            free += 1;
        }
    }

    // Group the remaining variables into components (ascending var order
    // within and across components).
    let mut comp_of_root: Vec<usize> = vec![usize::MAX; n];
    let mut comp_vars: Vec<Vec<usize>> = Vec::new();
    let mut local = vec![usize::MAX; n];
    let mut comp_of_var = vec![usize::MAX; n];
    for v in 0..n {
        if fixed[v].is_none() {
            let r = find(&mut uf, v);
            if comp_of_root[r] == usize::MAX {
                comp_of_root[r] = comp_vars.len();
                comp_vars.push(Vec::new());
            }
            let idx = comp_of_root[r];
            local[v] = comp_vars[idx].len();
            comp_of_var[v] = idx;
            comp_vars[idx].push(v);
        }
    }

    let mut components: Vec<Component> = comp_vars
        .iter()
        .map(|vars| Component {
            vars: vars.clone(),
            model: Model::new(vars.len()),
        })
        .collect();
    for &ci in &active {
        let c = &model.constraints[ci];
        let mut rhs = c.rhs;
        let mut terms = Vec::new();
        let mut comp = usize::MAX;
        for t in &c.terms {
            match fixed[t.var] {
                Some(true) => rhs -= t.coef,
                Some(false) => {}
                None => {
                    comp = comp_of_var[t.var];
                    terms.push(Term {
                        var: local[t.var],
                        coef: t.coef,
                    });
                }
            }
        }
        debug_assert_ne!(comp, usize::MAX, "active constraint has unfixed vars");
        components[comp].model.add(Constraint {
            terms,
            rel: c.rel,
            rhs,
            label: c.label.clone(),
        });
    }
    for t in &model.objective {
        if fixed[t.var].is_none() {
            components[comp_of_var[t.var]].model.objective.push(Term {
                var: local[t.var],
                coef: t.coef,
            });
        }
    }

    Reduction {
        fixed,
        components,
        infeasible: false,
        forced,
        free,
        entailed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, EncodeOptions};
    use crate::model::{Constraint, Model, Relation};
    use crate::wsat::{solve, WsatConfig};

    #[test]
    fn superpages_strict_encoding_fully_forced_by_propagation() {
        // On the paper's clean running example the uniqueness singletons
        // cascade through consecutiveness and position constraints until
        // every variable is forced — zero search needed.
        let obs = crate::encoder::tests::superpages_obs();
        let enc = encode(&obs, &EncodeOptions::default());
        let red = reduce_model(&enc.model);
        assert!(!red.infeasible);
        assert!(red.components.is_empty(), "{:?}", red.components.len());
        assert_eq!(red.forced, enc.model.num_vars);
        let full = red.stitch(&[]);
        assert!(enc.model.feasible(&full));
        // The forced assignment is the paper's Table 2.
        let seg = crate::solution::decode(&enc, &full, &obs);
        let expected: Vec<Option<u32>> = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(seg.assignments, expected);
    }

    #[test]
    fn relaxed_encoding_decomposes_without_forcing() {
        let obs = crate::encoder::tests::superpages_obs();
        let enc = encode(
            &obs,
            &EncodeOptions {
                relaxed: true,
                position_constraints: true,
            },
        );
        let red = reduce_model(&enc.model);
        assert!(!red.infeasible);
        assert_eq!(red.forced, 0, "pure ≤ constraints cannot force");
        let in_comps: usize = red.components.iter().map(|c| c.vars.len()).sum();
        assert_eq!(red.forced + red.free + in_comps, enc.model.num_vars);
        // Singleton uniq/pos constraints are entailed and dropped.
        assert!(red.entailed > 0);
    }

    #[test]
    fn contradiction_is_infeasible() {
        let mut m = Model::new(1);
        m.add(Constraint::sum([0], Relation::Eq, 1));
        m.add(Constraint::sum([0], Relation::Eq, 0));
        let red = reduce_model(&m);
        assert!(red.infeasible);
    }

    #[test]
    fn unreachable_rhs_is_infeasible() {
        let mut m = Model::new(2);
        m.add(Constraint::sum([0, 1], Relation::Ge, 3));
        assert!(reduce_model(&m).infeasible);
    }

    #[test]
    fn free_vars_follow_objective_sign() {
        let mut m = Model::new(3);
        m.maximize_sum([0]);
        let red = reduce_model(&m);
        assert!(!red.infeasible);
        assert_eq!(red.free, 3);
        assert_eq!(red.fixed, vec![Some(true), Some(false), Some(false)]);
    }

    #[test]
    fn entailed_constraints_release_their_vars() {
        let mut m = Model::new(2);
        m.add(Constraint::sum([0, 1], Relation::Le, 2));
        m.maximize_sum([0, 1]);
        let red = reduce_model(&m);
        assert_eq!(red.entailed, 1);
        assert_eq!(red.free, 2);
        assert!(red.components.is_empty());
        assert_eq!(m.objective_value(&red.stitch(&[])), 2);
    }

    #[test]
    fn independent_constraints_split_into_components() {
        let mut m = Model::new(4);
        m.add(Constraint::sum([0, 1], Relation::Eq, 1));
        m.add(Constraint::sum([2, 3], Relation::Eq, 1));
        let red = reduce_model(&m);
        assert_eq!(red.components.len(), 2);
        assert_eq!(red.components[0].vars, vec![0, 1]);
        assert_eq!(red.components[1].vars, vec![2, 3]);
        let parts: Vec<Vec<bool>> = red
            .components
            .iter()
            .map(|c| {
                let r = solve(&c.model, &WsatConfig::default());
                assert!(r.feasible);
                r.assignment
            })
            .collect();
        assert!(m.feasible(&red.stitch(&parts)));
    }

    #[test]
    fn fixed_terms_adjust_component_rhs() {
        // x0 = 1 forced; x0 + x1 - x2 ≤ 1 becomes x1 - x2 ≤ 0 in the
        // component of {x1, x2}.
        let mut m = Model::new(3);
        m.add(Constraint::sum([0], Relation::Eq, 1));
        m.add(Constraint {
            terms: vec![
                Term { var: 0, coef: 1 },
                Term { var: 1, coef: 1 },
                Term { var: 2, coef: -1 },
            ],
            rel: Relation::Le,
            rhs: 1,
            label: "triple".into(),
        });
        let red = reduce_model(&m);
        assert!(!red.infeasible);
        assert_eq!(red.fixed[0], Some(true));
        assert_eq!(red.components.len(), 1);
        let comp = &red.components[0];
        assert_eq!(comp.vars, vec![1, 2]);
        assert_eq!(comp.model.constraints.len(), 1);
        assert_eq!(comp.model.constraints[0].rhs, 0);
        assert_eq!(comp.model.constraints[0].terms.len(), 2);
    }

    #[test]
    fn stitched_component_solutions_satisfy_the_original_model() {
        // A chain that partially propagates and leaves one cluster.
        let mut m = Model::new(6);
        m.add(Constraint::sum([0], Relation::Eq, 1));
        m.add(Constraint::sum([0, 1], Relation::Le, 1)); // forces x1 = 0
        m.add(Constraint::sum([2, 3, 4], Relation::Eq, 2));
        m.add(Constraint::sum([4, 5], Relation::Le, 1));
        let red = reduce_model(&m);
        assert!(!red.infeasible);
        assert_eq!(red.fixed[0], Some(true));
        assert_eq!(red.fixed[1], Some(false));
        let parts: Vec<Vec<bool>> = red
            .components
            .iter()
            .map(|c| solve(&c.model, &WsatConfig::default()).assignment)
            .collect();
        assert!(m.feasible(&red.stitch(&parts)));
    }
}
