//! The CSP approach to record segmentation (Section 4 of the paper).
//!
//! "We encode the record segmentation problem into pseudo-boolean
//! representation and solve it using integer variable constraint
//! optimization techniques."
//!
//! This crate contains both the general substrate and the paper-specific
//! encoding:
//!
//! * [`model`] — pseudo-boolean models: 0-1 variables, linear constraints
//!   (`≤ / ≥ / =`), hard/soft weights and an optional linear objective;
//! * [`wsat`] — a WSAT(OIP)-style stochastic local-search solver (Walser,
//!   *Integer Optimization by Local Search*, LNCS 1637): the solver the
//!   paper licensed is closed source, so this is a from-scratch
//!   implementation of the same strategy — violated-constraint selection,
//!   greedy score-driven flips with noise, tabu memory and restarts;
//! * [`exact`] — two exact solvers: a branch-and-bound over the general
//!   model (used as an oracle in tests) and an ordered dynamic program
//!   specialized to the segmentation structure;
//! * [`encoder`] — builds the uniqueness, consecutiveness and position
//!   constraints of Sections 4.1–4.2 from an observation table;
//! * [`reduce`] — instance reduction ahead of any search: bounds
//!   propagation of forced assignments, entailed-constraint elimination,
//!   and connected-component decomposition of the constraint graph;
//! * [`relax`] — the paper's relaxation ladder: when the hard problem is
//!   unsatisfiable (dirty data), equalities become inequalities and the
//!   solver maximizes the number of assigned extracts, yielding the partial
//!   solutions reported in Section 6.3;
//! * [`solution`] — decoding variable assignments into
//!   [`Segmentation`](tableseg_extract::Segmentation)s.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod encoder;
pub mod exact;
pub mod model;
pub mod reduce;
pub mod relax;
pub mod solution;
pub mod wsat;

pub use encoder::{encode, EncodeOptions, Encoding};
pub use reduce::{reduce_model, Component, Reduction};
pub use relax::{segment_csp, CspOptions, CspOutcome, CspStatus};
