//! The full CSP segmentation pipeline with the paper's relaxation ladder.
//!
//! "The CSP algorithm could not find an assignment of the variables that
//! satisfied all the constraints. ... In such cases we relaxed the
//! constraints, for example, by requiring that an extract appear on at most
//! one detail page. WSAT(OIP) was able to find solutions for the relaxed
//! constraint problem, but the solution corresponded to a partial
//! assignment." (Section 6.3)
//!
//! The ladder implemented here:
//!
//! 1. encode with hard equalities and solve with WSAT(OIP);
//! 2. if the stochastic search fails, ask the exact branch-and-bound: if it
//!    finds a solution, use it; if it *proves* infeasibility (or runs out
//!    of budget), fall through;
//! 3. re-encode with relaxed `≤` constraints, maximizing the number of
//!    assigned extracts, and return the best (partial) solution found.

use serde::{Deserialize, Serialize};
use tableseg_extract::{Observations, Segmentation};

use crate::encoder::{encode, EncodeOptions};
use crate::exact::{solve_bnb, BnbOutcome};
use crate::model::Model;
use crate::solution::decode;
use crate::wsat::{reference::solve_reference, solve, WsatConfig, WsatResult};

/// Options for [`segment_csp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CspOptions {
    /// Stochastic-solver configuration.
    pub wsat: WsatConfig,
    /// Include the Section 4.2 position constraints.
    pub position_constraints: bool,
    /// Node budget for the exact cross-check.
    pub bnb_budget: u64,
    /// Variable cap for the exact cross-check: encodings larger than this
    /// skip branch-and-bound entirely (treated as `Unknown`) and go
    /// straight to the stochastic relaxation path.
    pub bnb_var_cap: usize,
    /// Use the pre-overhaul sequential WSAT implementation instead of the
    /// cached-delta parallel one. The `solvebench` baseline; leave `false`
    /// everywhere else.
    pub reference_solver: bool,
}

impl Default for CspOptions {
    fn default() -> CspOptions {
        CspOptions {
            wsat: WsatConfig::default(),
            position_constraints: true,
            bnb_budget: 2_000_000,
            bnb_var_cap: 220,
            reference_solver: false,
        }
    }
}

/// How the segmentation was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CspStatus {
    /// All hard constraints satisfied (the paper's clean-data case).
    Solved,
    /// No solution to the hard problem existed (or was found); the relaxed
    /// problem produced a partial assignment — the paper's notes `c` and
    /// `d` in Table 4.
    SolvedRelaxed,
    /// Not even the relaxed problem yielded a usable assignment.
    Failed,
}

/// The result of the CSP approach on one list page.
#[derive(Debug, Clone)]
pub struct CspOutcome {
    /// The segmentation (possibly partial under [`CspStatus::SolvedRelaxed`]).
    pub segmentation: Segmentation,
    /// How it was obtained.
    pub status: CspStatus,
    /// Residual violation of the *strict* encoding by the best strict
    /// assignment found (0 when `status == Solved`). A diagnostic for how
    /// inconsistent the site data is.
    pub strict_violation: i64,
    /// Total WSAT flips spent across the strict and relaxed solves —
    /// the throughput denominator reported by `solvebench`.
    pub flips: u64,
    /// Total WSAT restarts (tries) across the strict and relaxed solves.
    pub tries: u64,
}

impl CspOutcome {
    /// Convenience: `true` when constraints had to be relaxed (or failed).
    pub fn relaxed(&self) -> bool {
        self.status != CspStatus::Solved
    }
}

/// Runs the CSP approach of Section 4 on an observation table.
pub fn segment_csp(obs: &Observations, opts: &CspOptions) -> CspOutcome {
    if obs.items.is_empty() {
        return CspOutcome {
            segmentation: Segmentation::unassigned(obs.num_records, 0),
            status: CspStatus::Solved,
            strict_violation: 0,
            flips: 0,
            tries: 0,
        };
    }
    let solver: fn(&Model, &WsatConfig) -> WsatResult = if opts.reference_solver {
        solve_reference
    } else {
        solve
    };

    // Step 1: strict problem via stochastic search.
    let strict_enc = encode(
        obs,
        &EncodeOptions {
            relaxed: false,
            position_constraints: opts.position_constraints,
        },
    );
    let strict = solver(&strict_enc.model, &opts.wsat);
    if strict.feasible {
        return CspOutcome {
            segmentation: decode(&strict_enc, &strict.assignment, obs),
            status: CspStatus::Solved,
            strict_violation: 0,
            flips: strict.flips,
            tries: strict.tries,
        };
    }

    // Step 2: exact cross-check (skipped for oversized encodings).
    let strict_bnb = if strict_enc.model.num_vars <= opts.bnb_var_cap {
        solve_bnb(&strict_enc.model, opts.bnb_budget)
    } else {
        BnbOutcome::Unknown
    };
    match strict_bnb {
        BnbOutcome::Optimal { assignment, .. } => {
            return CspOutcome {
                segmentation: decode(&strict_enc, &assignment, obs),
                status: CspStatus::Solved,
                strict_violation: 0,
                flips: strict.flips,
                tries: strict.tries,
            };
        }
        BnbOutcome::Infeasible | BnbOutcome::Unknown => {}
    }

    // Step 3: relaxed optimization.
    let relaxed_enc = encode(
        obs,
        &EncodeOptions {
            relaxed: true,
            position_constraints: opts.position_constraints,
        },
    );
    // The relaxed problem is solved by stochastic search alone, exactly as
    // the paper did with WSAT(OIP): the resulting partial assignment is a
    // good local optimum but not necessarily the global maximum — which is
    // precisely why the paper's relaxed solutions on dirty sites were
    // partial ("not every extract was assigned to a record", Section 6.3).
    // The relaxation itself yields an objective upper bound (one record
    // per extract), letting the search stop as soon as every extract is
    // assigned rather than burning the remaining restart budget.
    let relaxed_cfg = WsatConfig {
        objective_target: relaxed_enc.objective_upper_bound(),
        ..opts.wsat
    };
    let relaxed = solver(&relaxed_enc.model, &relaxed_cfg);
    let flips = strict.flips + relaxed.flips;
    let tries = strict.tries + relaxed.tries;
    if !relaxed.feasible {
        return CspOutcome {
            segmentation: Segmentation::unassigned(obs.num_records, obs.items.len()),
            status: CspStatus::Failed,
            strict_violation: strict.violation,
            flips,
            tries,
        };
    }
    let best_assignment = relaxed.assignment;

    CspOutcome {
        segmentation: decode(&relaxed_enc, &best_assignment, obs),
        status: CspStatus::SolvedRelaxed,
        strict_violation: strict.violation,
        flips,
        tries,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn segment(list: &str, details: &[&str]) -> (Observations, CspOutcome) {
        let list_toks = tokenize(list);
        let detail_toks: Vec<Vec<tableseg_html::Token>> =
            details.iter().map(|d| tokenize(d)).collect();
        let refs: Vec<&[Token]> = detail_toks.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list_toks, &[], &refs);
        let out = segment_csp(&obs, &CspOptions::default());
        (obs, out)
    }

    #[test]
    fn clean_data_solved_exactly() {
        let (obs, out) = segment(
            "<td>Alpha One</td><td>100 Main</td><td>Beta Two</td><td>200 Oak</td><td>Gamma Three</td><td>300 Pine</td>",
            &[
                "<p>Alpha One</p><p>100 Main</p>",
                "<p>Beta Two</p><p>200 Oak</p>",
                "<p>Gamma Three</p><p>300 Pine</p>",
            ],
        );
        assert_eq!(out.status, CspStatus::Solved);
        assert!(out.segmentation.is_total());
        assert!(out.segmentation.check(&obs).is_empty());
        assert_eq!(
            out.segmentation.assignments,
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]
        );
    }

    #[test]
    fn paper_superpages_example() {
        let obs = crate::encoder::tests::superpages_obs();
        let out = segment_csp(&obs, &CspOptions::default());
        assert_eq!(out.status, CspStatus::Solved, "{out:?}");
        let seg = &out.segmentation;
        assert!(seg.check(&obs).is_empty());
        // The paper's Table 2: E1-E4 → r1, E5-E8 → r2, E9-E11 → r3.
        let expected: Vec<Option<u32>> = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(seg.assignments, expected);
    }

    #[test]
    fn inconsistent_data_relaxes_to_partial() {
        // "Parole"/"Parolee" style inconsistency: the list value of record
        // 2 appears on an unrelated detail page (r1) but not on its own, so
        // the strict constraints are unsatisfiable for it.
        let (obs, out) = segment(
            "<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>",
            &[
                "<p>Alpha One</p><p>Parole</p>",
                "<p>Beta Two</p><p>Parolee</p>",
            ],
        );
        // Both "Parole" extracts can only be on r1 — but they flank "Beta
        // Two" (r2 only) so consecutiveness + uniqueness conflict with the
        // position constraint (both at the same r1 position).
        assert_eq!(out.status, CspStatus::SolvedRelaxed, "{out:?}");
        assert!(!out.segmentation.is_total());
        assert!(out.segmentation.assigned_count() >= 2, "{out:?}");
        assert!(out.strict_violation > 0);
        let _ = obs;
    }

    #[test]
    fn empty_observation_table() {
        let obs = build_observations(&[], &[], &[]);
        let out = segment_csp(&obs, &CspOptions::default());
        assert_eq!(out.status, CspStatus::Solved);
        assert!(out.segmentation.assignments.is_empty());
    }

    #[test]
    fn deterministic() {
        let obs = crate::encoder::tests::superpages_obs();
        let a = segment_csp(&obs, &CspOptions::default());
        let b = segment_csp(&obs, &CspOptions::default());
        assert_eq!(a.segmentation, b.segmentation);
        assert_eq!(a.status, b.status);
    }

    #[test]
    fn position_constraints_matter_for_shared_values() {
        // Without position constraints, both "John Smith" extracts could
        // legally go to the same record set {r1} ∪ {r2} in several ways;
        // with them, the paper's intended split is forced. Here we only
        // check both modes produce valid (occurrence-respecting) results.
        let obs = crate::encoder::tests::superpages_obs();
        for pc in [true, false] {
            let out = segment_csp(
                &obs,
                &CspOptions {
                    position_constraints: pc,
                    ..CspOptions::default()
                },
            );
            assert_ne!(out.status, CspStatus::Failed);
            for (i, &a) in out.segmentation.assignments.iter().enumerate() {
                if let Some(r) = a {
                    assert!(obs.items[i].on_page(r));
                }
            }
        }
    }
}
