//! The full CSP segmentation pipeline with the paper's relaxation ladder.
//!
//! "The CSP algorithm could not find an assignment of the variables that
//! satisfied all the constraints. ... In such cases we relaxed the
//! constraints, for example, by requiring that an extract appear on at most
//! one detail page. WSAT(OIP) was able to find solutions for the relaxed
//! constraint problem, but the solution corresponded to a partial
//! assignment." (Section 6.3)
//!
//! The ladder implemented here:
//!
//! 1. encode with hard equalities, [`reduce_model`] the encoding
//!    (propagation + decomposition — on clean sites this alone solves the
//!    instance), and solve each remaining component with WSAT(OIP), in
//!    parallel when [`WsatConfig::threads`] allows;
//! 2. a component the stochastic search fails is cross-checked by the
//!    exact branch-and-bound: if it finds a solution, use it; if it
//!    *proves* infeasibility (or runs out of budget), fall through;
//! 3. re-encode with relaxed `≤` constraints, reduce again, and solve each
//!    component with the warm-started portfolio ([`solve_warm`]), seeded
//!    from the strict rung's best assignment — the strict and relaxed
//!    encodings share their variable layout, so the previous rung's
//!    solution projects directly onto each component.
//!
//! Setting [`CspOptions::reduce`] to `false` restores the whole-instance
//! ladder (encode → solve → BnB → relax), which doubles as the
//! differential oracle for the reduced path in tests and `solvebench`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::time::Instant;

use serde::{Deserialize, Serialize};
use tableseg_extract::{Observations, Segmentation};

use crate::encoder::{encode, EncodeOptions};
use crate::exact::{solve_bnb, BnbOutcome};
use crate::model::Model;
use crate::reduce::{reduce_model, Component};
use crate::solution::decode;
use crate::wsat::{reference::solve_reference, solve, solve_warm, WsatConfig, WsatResult};

/// Node cap for the exact-first pass over relaxed components. Small
/// components finish in well under this; anything that does not is
/// cheaper to hand to the warm-started portfolio than to prove optimal.
const BNB_FIRST_BUDGET: u64 = 50_000;

/// Options for [`segment_csp`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CspOptions {
    /// Stochastic-solver configuration.
    pub wsat: WsatConfig,
    /// Include the Section 4.2 position constraints.
    pub position_constraints: bool,
    /// Node budget for the exact cross-check.
    pub bnb_budget: u64,
    /// Variable cap for the exact cross-check: encodings (or components)
    /// larger than this skip branch-and-bound entirely (treated as
    /// `Unknown`) and go straight to the stochastic relaxation path.
    pub bnb_var_cap: usize,
    /// Use the pre-overhaul sequential WSAT implementation instead of the
    /// cached-delta parallel one. The `solvebench` baseline; leave `false`
    /// everywhere else. Implies the whole-instance (unreduced) ladder.
    pub reference_solver: bool,
    /// Reduce each encoding (propagation + entailment + decomposition)
    /// and solve components independently with warm starts. `false`
    /// restores the whole-instance ladder — the differential oracle and
    /// the `solvebench` "prev" leg.
    pub reduce: bool,
}

impl Default for CspOptions {
    fn default() -> CspOptions {
        CspOptions {
            wsat: WsatConfig::default(),
            position_constraints: true,
            bnb_budget: 2_000_000,
            bnb_var_cap: 220,
            reference_solver: false,
            reduce: true,
        }
    }
}

/// How the segmentation was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CspStatus {
    /// All hard constraints satisfied (the paper's clean-data case).
    Solved,
    /// No solution to the hard problem existed (or was found); the relaxed
    /// problem produced a partial assignment — the paper's notes `c` and
    /// `d` in Table 4.
    SolvedRelaxed,
    /// Not even the relaxed problem yielded a usable assignment.
    Failed,
}

/// The result of the CSP approach on one list page.
#[derive(Debug, Clone)]
pub struct CspOutcome {
    /// The segmentation (possibly partial under [`CspStatus::SolvedRelaxed`]).
    pub segmentation: Segmentation,
    /// How it was obtained.
    pub status: CspStatus,
    /// Residual violation of the *strict* encoding by the best strict
    /// assignment found (0 when `status == Solved`). A diagnostic for how
    /// inconsistent the site data is.
    pub strict_violation: i64,
    /// Total WSAT flips spent across the strict and relaxed solves —
    /// the throughput denominator reported by `solvebench`.
    pub flips: u64,
    /// Total WSAT restarts (tries) across the strict and relaxed solves.
    pub tries: u64,
    /// Constraint-graph components solved independently, summed over the
    /// strict and relaxed phases (0 when reduction is off or propagation
    /// solved everything).
    pub components: usize,
    /// Variables removed from the search space by reduction (forced by
    /// propagation + assigned free), summed over phases.
    pub pruned_vars: usize,
    /// Warm-started component solves whose best assignment came from a
    /// warm seed.
    pub warm_start_hits: u64,
    /// Wall-clock nanoseconds spent in [`reduce_model`] — the
    /// `solve.reduce` timing sub-stage.
    pub reduce_ns: u64,
}

impl CspOutcome {
    /// Convenience: `true` when constraints had to be relaxed (or failed).
    pub fn relaxed(&self) -> bool {
        self.status != CspStatus::Solved
    }
}

/// Running totals across the two rungs of the reduced ladder.
#[derive(Default)]
struct SolveStats {
    flips: u64,
    tries: u64,
    components: usize,
    pruned_vars: usize,
    warm_start_hits: u64,
    reduce_ns: u64,
}

/// Runs the CSP approach of Section 4 on an observation table.
pub fn segment_csp(obs: &Observations, opts: &CspOptions) -> CspOutcome {
    if obs.items.is_empty() {
        return CspOutcome {
            segmentation: Segmentation::unassigned(obs.num_records, 0),
            status: CspStatus::Solved,
            strict_violation: 0,
            flips: 0,
            tries: 0,
            components: 0,
            pruned_vars: 0,
            warm_start_hits: 0,
            reduce_ns: 0,
        };
    }
    if opts.reduce && !opts.reference_solver {
        segment_reduced(obs, opts)
    } else {
        segment_whole(obs, opts)
    }
}

/// Solves every component (work-stealing over scoped threads when
/// `threads != 1`), returning results in component order. `solve_one`
/// must be a pure function of `(index, component)`, so scheduling never
/// shows in the output.
fn solve_components(
    components: &[Component],
    threads: usize,
    solve_one: impl Fn(usize, &Component) -> WsatResult + Sync,
) -> Vec<WsatResult> {
    let workers = match threads {
        0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
        n => n,
    }
    .min(components.len());
    if workers <= 1 {
        return components
            .iter()
            .enumerate()
            .map(|(i, c)| solve_one(i, c))
            .collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, WsatResult)>();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let solve_one = &solve_one;
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(c) = components.get(i) else { break };
                if tx.send((i, solve_one(i, c))).is_err() {
                    break;
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<WsatResult>> = components.iter().map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|o| o.expect("every component produced a result"))
        .collect()
}

/// The reduced ladder: reduce → solve components → (BnB per failed
/// component) → relax → reduce → warm-started components.
fn segment_reduced(obs: &Observations, opts: &CspOptions) -> CspOutcome {
    let mut stats = SolveStats::default();

    // Rung 1: strict problem, reduced.
    let strict_enc = encode(
        obs,
        &EncodeOptions {
            relaxed: false,
            position_constraints: opts.position_constraints,
        },
    );
    let t = Instant::now();
    let red = reduce_model(&strict_enc.model);
    stats.reduce_ns += t.elapsed().as_nanos() as u64;
    stats.components += red.components.len();
    stats.pruned_vars += red.pruned_vars();

    let (strict_best, strict_solved) = if red.infeasible {
        // Propagation *proved* the strict problem unsatisfiable; the
        // completed partial assignment is the violation witness.
        (red.completed(), false)
    } else {
        let results = solve_components(&red.components, opts.wsat.threads, |_, comp| {
            // Components run on the outer pool; inner restarts stay
            // sequential (WSAT results are thread-invariant anyway).
            let cfg = WsatConfig {
                threads: 1,
                ..opts.wsat
            };
            solve(&comp.model, &cfg)
        });
        let mut all_ok = true;
        let mut parts: Vec<Vec<bool>> = Vec::with_capacity(results.len());
        for (comp, r) in red.components.iter().zip(results) {
            stats.flips += r.flips;
            stats.tries += r.tries;
            if r.feasible {
                parts.push(r.assignment);
            } else if comp.model.num_vars <= opts.bnb_var_cap {
                // Exact cross-check, now per component: decomposition
                // keeps these small enough for BnB far more often than
                // the whole instance was.
                match solve_bnb(&comp.model, opts.bnb_budget) {
                    BnbOutcome::Optimal { assignment, .. } => parts.push(assignment),
                    BnbOutcome::Infeasible | BnbOutcome::Unknown => {
                        all_ok = false;
                        parts.push(r.assignment);
                    }
                }
            } else {
                all_ok = false;
                parts.push(r.assignment);
            }
        }
        (red.stitch(&parts), all_ok)
    };
    if strict_solved {
        debug_assert!(strict_enc.model.feasible(&strict_best));
        return CspOutcome {
            segmentation: decode(&strict_enc, &strict_best, obs),
            status: CspStatus::Solved,
            strict_violation: 0,
            flips: stats.flips,
            tries: stats.tries,
            components: stats.components,
            pruned_vars: stats.pruned_vars,
            warm_start_hits: stats.warm_start_hits,
            reduce_ns: stats.reduce_ns,
        };
    }
    let strict_violation = strict_enc.model.total_violation(&strict_best);

    // Rung 2: relaxed optimization, reduced and warm-started.
    let relaxed_enc = encode(
        obs,
        &EncodeOptions {
            relaxed: true,
            position_constraints: opts.position_constraints,
        },
    );
    // Both encodings enumerate variables from the observation table's
    // occurrence lists alone, so the strict rung's best assignment maps
    // var-for-var onto the relaxed model — the warm seed below.
    debug_assert_eq!(strict_enc.vars, relaxed_enc.vars);
    let t = Instant::now();
    let red = reduce_model(&relaxed_enc.model);
    stats.reduce_ns += t.elapsed().as_nanos() as u64;
    stats.components += red.components.len();
    stats.pruned_vars += red.pruned_vars();
    if red.infeasible {
        return CspOutcome {
            segmentation: Segmentation::unassigned(obs.num_records, obs.items.len()),
            status: CspStatus::Failed,
            strict_violation,
            flips: stats.flips,
            tries: stats.tries,
            components: stats.components,
            pruned_vars: stats.pruned_vars,
            warm_start_hits: stats.warm_start_hits,
            reduce_ns: stats.reduce_ns,
        };
    }
    let results = solve_components(&red.components, opts.wsat.threads, |_, comp| {
        // Exact first: decomposition keeps most relaxed components down to
        // a handful of variables, where branch-and-bound proves the true
        // per-component optimum in microseconds. That optimum becomes the
        // portfolio's objective target: the search used to chase the
        // extract-count upper bound — often unreachable on dirty pages —
        // and so burned its full stall budget per try; against a *proven*
        // target the warm try exits the moment it matches the optimum.
        // The node budget is deliberately small: a component whose search
        // tree is not tiny falls back to the upper-bound target instead of
        // paying for an exponential proof.
        let exact = if comp.model.num_vars <= opts.bnb_var_cap {
            match solve_bnb(&comp.model, opts.bnb_budget.min(BNB_FIRST_BUDGET)) {
                BnbOutcome::Optimal {
                    assignment,
                    objective,
                } => Some((assignment, objective)),
                BnbOutcome::Infeasible | BnbOutcome::Unknown => None,
            }
        } else {
            None
        };
        // Warm seed: the strict rung's best assignment restricted to this
        // component. Objective target: the proven optimum where BnB
        // finished, else the relaxation's per-component upper bound —
        // each extract with a variable here can contribute at most one
        // assignment (its uniqueness constraint lives in this component
        // too).
        let warm: Vec<Vec<bool>> = vec![comp.vars.iter().map(|&v| strict_best[v]).collect()];
        let mut extracts: Vec<usize> = comp.vars.iter().map(|&v| relaxed_enc.vars[v].0).collect();
        extracts.dedup();
        let target = match &exact {
            Some((_, objective)) => *objective,
            None => extracts.len() as i64,
        };
        let cfg = WsatConfig {
            threads: 1,
            objective_target: Some(target),
            ..opts.wsat
        };
        let result = solve_warm(&comp.model, &cfg, &warm);
        // The stochastic pick wins ties (its seeds carry the strict rung's
        // structure); the exact assignment steps in only when the
        // portfolio provably fell short of the optimum.
        match exact {
            Some((assignment, objective)) if !result.feasible || result.objective < objective => {
                WsatResult {
                    feasible: true,
                    violation: 0,
                    objective,
                    flips: result.flips,
                    tries: result.tries,
                    warm_start_hit: false,
                    assignment,
                }
            }
            _ => result,
        }
    });
    let mut feasible = true;
    let mut parts: Vec<Vec<bool>> = Vec::with_capacity(results.len());
    for r in results {
        stats.flips += r.flips;
        stats.tries += r.tries;
        stats.warm_start_hits += u64::from(r.warm_start_hit);
        feasible &= r.feasible;
        parts.push(r.assignment);
    }
    if !feasible {
        return CspOutcome {
            segmentation: Segmentation::unassigned(obs.num_records, obs.items.len()),
            status: CspStatus::Failed,
            strict_violation,
            flips: stats.flips,
            tries: stats.tries,
            components: stats.components,
            pruned_vars: stats.pruned_vars,
            warm_start_hits: stats.warm_start_hits,
            reduce_ns: stats.reduce_ns,
        };
    }
    let stitched = red.stitch(&parts);
    CspOutcome {
        segmentation: decode(&relaxed_enc, &stitched, obs),
        status: CspStatus::SolvedRelaxed,
        strict_violation,
        flips: stats.flips,
        tries: stats.tries,
        components: stats.components,
        pruned_vars: stats.pruned_vars,
        warm_start_hits: stats.warm_start_hits,
        reduce_ns: stats.reduce_ns,
    }
}

/// The pre-reduction whole-instance ladder, kept as the differential
/// oracle (and the `reference_solver` path).
fn segment_whole(obs: &Observations, opts: &CspOptions) -> CspOutcome {
    let solver: fn(&Model, &WsatConfig) -> WsatResult = if opts.reference_solver {
        solve_reference
    } else {
        solve
    };

    // Step 1: strict problem via stochastic search.
    let strict_enc = encode(
        obs,
        &EncodeOptions {
            relaxed: false,
            position_constraints: opts.position_constraints,
        },
    );
    let strict = solver(&strict_enc.model, &opts.wsat);
    if strict.feasible {
        return CspOutcome {
            segmentation: decode(&strict_enc, &strict.assignment, obs),
            status: CspStatus::Solved,
            strict_violation: 0,
            flips: strict.flips,
            tries: strict.tries,
            components: 0,
            pruned_vars: 0,
            warm_start_hits: 0,
            reduce_ns: 0,
        };
    }

    // Step 2: exact cross-check (skipped for oversized encodings).
    let strict_bnb = if strict_enc.model.num_vars <= opts.bnb_var_cap {
        solve_bnb(&strict_enc.model, opts.bnb_budget)
    } else {
        BnbOutcome::Unknown
    };
    match strict_bnb {
        BnbOutcome::Optimal { assignment, .. } => {
            return CspOutcome {
                segmentation: decode(&strict_enc, &assignment, obs),
                status: CspStatus::Solved,
                strict_violation: 0,
                flips: strict.flips,
                tries: strict.tries,
                components: 0,
                pruned_vars: 0,
                warm_start_hits: 0,
                reduce_ns: 0,
            };
        }
        BnbOutcome::Infeasible | BnbOutcome::Unknown => {}
    }

    // Step 3: relaxed optimization.
    let relaxed_enc = encode(
        obs,
        &EncodeOptions {
            relaxed: true,
            position_constraints: opts.position_constraints,
        },
    );
    // The relaxed problem is solved by stochastic search alone, exactly as
    // the paper did with WSAT(OIP): the resulting partial assignment is a
    // good local optimum but not necessarily the global maximum — which is
    // precisely why the paper's relaxed solutions on dirty sites were
    // partial ("not every extract was assigned to a record", Section 6.3).
    // The relaxation itself yields an objective upper bound (one record
    // per extract), letting the search stop as soon as every extract is
    // assigned rather than burning the remaining restart budget.
    let relaxed_cfg = WsatConfig {
        objective_target: relaxed_enc.objective_upper_bound(),
        ..opts.wsat
    };
    let relaxed = solver(&relaxed_enc.model, &relaxed_cfg);
    let flips = strict.flips + relaxed.flips;
    let tries = strict.tries + relaxed.tries;
    if !relaxed.feasible {
        return CspOutcome {
            segmentation: Segmentation::unassigned(obs.num_records, obs.items.len()),
            status: CspStatus::Failed,
            strict_violation: strict.violation,
            flips,
            tries,
            components: 0,
            pruned_vars: 0,
            warm_start_hits: 0,
            reduce_ns: 0,
        };
    }
    let best_assignment = relaxed.assignment;

    CspOutcome {
        segmentation: decode(&relaxed_enc, &best_assignment, obs),
        status: CspStatus::SolvedRelaxed,
        strict_violation: strict.violation,
        flips,
        tries,
        components: 0,
        pruned_vars: 0,
        warm_start_hits: 0,
        reduce_ns: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn segment(list: &str, details: &[&str]) -> (Observations, CspOutcome) {
        let list_toks = tokenize(list);
        let detail_toks: Vec<Vec<tableseg_html::Token>> =
            details.iter().map(|d| tokenize(d)).collect();
        let refs: Vec<&[Token]> = detail_toks.iter().map(Vec::as_slice).collect();
        let obs = build_observations(&list_toks, &[], &refs);
        let out = segment_csp(&obs, &CspOptions::default());
        (obs, out)
    }

    #[test]
    fn clean_data_solved_exactly() {
        let (obs, out) = segment(
            "<td>Alpha One</td><td>100 Main</td><td>Beta Two</td><td>200 Oak</td><td>Gamma Three</td><td>300 Pine</td>",
            &[
                "<p>Alpha One</p><p>100 Main</p>",
                "<p>Beta Two</p><p>200 Oak</p>",
                "<p>Gamma Three</p><p>300 Pine</p>",
            ],
        );
        assert_eq!(out.status, CspStatus::Solved);
        assert!(out.segmentation.is_total());
        assert!(out.segmentation.check(&obs).is_empty());
        assert_eq!(
            out.segmentation.assignments,
            vec![Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]
        );
    }

    #[test]
    fn paper_superpages_example() {
        let obs = crate::encoder::tests::superpages_obs();
        let out = segment_csp(&obs, &CspOptions::default());
        assert_eq!(out.status, CspStatus::Solved, "{out:?}");
        let seg = &out.segmentation;
        assert!(seg.check(&obs).is_empty());
        // The paper's Table 2: E1-E4 → r1, E5-E8 → r2, E9-E11 → r3.
        let expected: Vec<Option<u32>> = [0, 0, 0, 0, 1, 1, 1, 1, 2, 2, 2]
            .into_iter()
            .map(Some)
            .collect();
        assert_eq!(seg.assignments, expected);
    }

    #[test]
    fn clean_sites_are_solved_by_propagation_alone() {
        // The tentpole claim of the reduction pass: on consistent data the
        // uniqueness singletons cascade until everything is forced — no
        // stochastic search, zero flips.
        let obs = crate::encoder::tests::superpages_obs();
        let out = segment_csp(&obs, &CspOptions::default());
        assert_eq!(out.status, CspStatus::Solved);
        assert_eq!(out.flips, 0, "{out:?}");
        assert_eq!(out.components, 0);
        assert!(out.pruned_vars > 0);
    }

    #[test]
    fn inconsistent_data_relaxes_to_partial() {
        // "Parole"/"Parolee" style inconsistency: the list value of record
        // 2 appears on an unrelated detail page (r1) but not on its own, so
        // the strict constraints are unsatisfiable for it.
        let (obs, out) = segment(
            "<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>",
            &[
                "<p>Alpha One</p><p>Parole</p>",
                "<p>Beta Two</p><p>Parolee</p>",
            ],
        );
        // Both "Parole" extracts can only be on r1 — but they flank "Beta
        // Two" (r2 only) so consecutiveness + uniqueness conflict with the
        // position constraint (both at the same r1 position).
        assert_eq!(out.status, CspStatus::SolvedRelaxed, "{out:?}");
        assert!(!out.segmentation.is_total());
        assert!(out.segmentation.assigned_count() >= 2, "{out:?}");
        assert!(out.strict_violation > 0);
        let _ = obs;
    }

    #[test]
    fn reduced_path_agrees_with_whole_instance_oracle() {
        // The differential gate of the PR 9 tentpole: on every fixture the
        // reduced/decomposed/warm-started ladder must reach the same status
        // as the whole-instance ladder, with a valid segmentation.
        let fixtures: Vec<Observations> = vec![crate::encoder::tests::superpages_obs(), {
            let list =
                tokenize("<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>");
            let d1 = tokenize("<p>Alpha One</p><p>Parole</p>");
            let d2 = tokenize("<p>Beta Two</p><p>Parolee</p>");
            let refs: Vec<&[Token]> = vec![&d1, &d2];
            build_observations(&list, &[], &refs)
        }];
        for obs in &fixtures {
            let reduced = segment_csp(obs, &CspOptions::default());
            let whole = segment_csp(
                obs,
                &CspOptions {
                    reduce: false,
                    ..CspOptions::default()
                },
            );
            assert_eq!(reduced.status, whole.status);
            assert_eq!(reduced.strict_violation > 0, whole.strict_violation > 0);
            for (i, &a) in reduced.segmentation.assignments.iter().enumerate() {
                if let Some(r) = a {
                    assert!(obs.items[i].on_page(r));
                }
            }
            if reduced.status == CspStatus::Solved {
                assert_eq!(reduced.segmentation, whole.segmentation);
            }
        }
    }

    #[test]
    fn component_parallelism_is_deterministic() {
        let (_, base) = segment(
            "<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>",
            &[
                "<p>Alpha One</p><p>Parole</p>",
                "<p>Beta Two</p><p>Parolee</p>",
            ],
        );
        let list = tokenize("<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>");
        let d1 = tokenize("<p>Alpha One</p><p>Parole</p>");
        let d2 = tokenize("<p>Beta Two</p><p>Parolee</p>");
        let refs: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &[], &refs);
        for threads in [2, 4, 0] {
            let mut opts = CspOptions::default();
            opts.wsat.threads = threads;
            let out = segment_csp(&obs, &opts);
            assert_eq!(out.segmentation, base.segmentation, "threads={threads}");
            assert_eq!(out.status, base.status);
            assert_eq!(out.flips, base.flips);
            assert_eq!(out.warm_start_hits, base.warm_start_hits);
        }
    }

    #[test]
    fn empty_observation_table() {
        let obs = build_observations(&[], &[], &[]);
        let out = segment_csp(&obs, &CspOptions::default());
        assert_eq!(out.status, CspStatus::Solved);
        assert!(out.segmentation.assignments.is_empty());
    }

    #[test]
    fn deterministic() {
        let obs = crate::encoder::tests::superpages_obs();
        let a = segment_csp(&obs, &CspOptions::default());
        let b = segment_csp(&obs, &CspOptions::default());
        assert_eq!(a.segmentation, b.segmentation);
        assert_eq!(a.status, b.status);
    }

    #[test]
    fn position_constraints_matter_for_shared_values() {
        // Without position constraints, both "John Smith" extracts could
        // legally go to the same record set {r1} ∪ {r2} in several ways;
        // with them, the paper's intended split is forced. Here we only
        // check both modes produce valid (occurrence-respecting) results.
        let obs = crate::encoder::tests::superpages_obs();
        for pc in [true, false] {
            let out = segment_csp(
                &obs,
                &CspOptions {
                    position_constraints: pc,
                    ..CspOptions::default()
                },
            );
            assert_ne!(out.status, CspStatus::Failed);
            for (i, &a) in out.segmentation.assignments.iter().enumerate() {
                if let Some(r) = a {
                    assert!(obs.items[i].on_page(r));
                }
            }
        }
    }
}
