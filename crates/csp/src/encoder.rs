//! Encoding the record-segmentation problem as a pseudo-boolean model
//! (Sections 4.1–4.2 of the paper).
//!
//! Let `x_ij` be the assignment variable: `x_ij = 1` when extract `E_i` is
//! assigned to record `r_j`. Variables exist only for `r_j ∈ D_i`
//! (occurrence); all other `x_ij` are fixed 0 and never materialize.
//!
//! * **Uniqueness** — "Every extract `E_i` belongs to exactly one record
//!   `r_j`": `Σ_j x_ij = 1`, relaxable to `Σ_j x_ij ≤ 1`.
//! * **Consecutiveness** — "only contiguous blocks of extracts can be
//!   assigned to the same record": `x_ij + x_kj ≤ 1` when some extract
//!   between `k` and `i` cannot be in `r_j` at all, and
//!   `x_kj + x_ij − x_nj ≤ 1` for every in-between candidate `n`.
//! * **Position** — extracts observed at the same position of detail page
//!   `j` compete for one field occurrence: exactly one of them may be
//!   assigned to `r_j` (`Σ x_ij = 1`, relaxable to `≤ 1`).

use std::collections::{HashMap, HashSet};

use tableseg_extract::positions::position_groups;
use tableseg_extract::Observations;

use crate::model::{Constraint, Model, Relation, Term};

/// Options controlling the encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EncodeOptions {
    /// Relax equalities to `≤` inequalities and maximize the number of
    /// assigned extracts (the paper's response to unsatisfiable data).
    pub relaxed: bool,
    /// Include the Section 4.2 position constraints.
    pub position_constraints: bool,
}

impl Default for EncodeOptions {
    fn default() -> EncodeOptions {
        EncodeOptions {
            relaxed: false,
            position_constraints: true,
        }
    }
}

/// A pseudo-boolean encoding of a segmentation problem, with the mapping
/// between model variables and `(extract, record)` pairs.
#[derive(Debug, Clone)]
pub struct Encoding {
    /// The model to solve.
    pub model: Model,
    /// `vars[v] = (i, j)`: model variable `v` is the paper's `x_ij`.
    pub vars: Vec<(usize, u32)>,
    /// Reverse lookup from `(i, j)` to the variable index.
    pub var_of: HashMap<(usize, u32), usize>,
}

impl Encoding {
    /// The variable for `x_ij`, if `r_j ∈ D_i`.
    pub fn var(&self, extract: usize, record: u32) -> Option<usize> {
        self.var_of.get(&(extract, record)).copied()
    }

    /// Upper bound on the objective, derived from the relaxation itself:
    /// the objective counts assigned extracts and uniqueness caps each
    /// extract at one record, so no assignment can exceed the number of
    /// distinct extracts with at least one candidate record. `None` when
    /// the encoding has no objective (the strict, pure-satisfaction case).
    pub fn objective_upper_bound(&self) -> Option<i64> {
        if self.model.objective.is_empty() {
            return None;
        }
        let extracts: HashSet<usize> = self.vars.iter().map(|&(i, _)| i).collect();
        Some(extracts.len() as i64)
    }
}

/// Builds the encoding of an observation table.
pub fn encode(obs: &Observations, opts: &EncodeOptions) -> Encoding {
    let mut vars = Vec::new();
    let mut var_of = HashMap::new();
    for (i, item) in obs.items.iter().enumerate() {
        for &j in &item.pages {
            var_of.insert((i, j), vars.len());
            vars.push((i, j));
        }
    }
    let mut model = Model::new(vars.len());
    let uniq_rel = if opts.relaxed {
        Relation::Le
    } else {
        Relation::Eq
    };

    // Uniqueness.
    for (i, item) in obs.items.iter().enumerate() {
        let vs: Vec<usize> = item.pages.iter().map(|&j| var_of[&(i, j)]).collect();
        model.add(Constraint::sum(vs, uniq_rel, 1).labeled(format!("uniq(E{})", i + 1)));
    }

    // Consecutiveness, per record.
    let mut seen_pairs: HashSet<(usize, usize, u32)> = HashSet::new();
    for j in 0..obs.num_records as u32 {
        let members: Vec<usize> = (0..obs.items.len())
            .filter(|&i| obs.items[i].on_page(j))
            .collect();
        for (a_idx, &k) in members.iter().enumerate() {
            for &i in &members[a_idx + 1..] {
                // Any in-between extract that cannot be in r_j makes the
                // pair mutually exclusive.
                let blocked = (k + 1..i).any(|n| !obs.items[n].on_page(j));
                if blocked {
                    if seen_pairs.insert((k, i, j)) {
                        let vs = [var_of[&(k, j)], var_of[&(i, j)]];
                        model.add(Constraint::sum(vs, Relation::Le, 1).labeled(format!(
                            "consec(E{},E{}|r{})",
                            k + 1,
                            i + 1,
                            j + 1
                        )));
                    }
                } else {
                    // Every in-between extract is a candidate: the pair may
                    // co-exist only if each middle is also assigned to r_j.
                    for n in k + 1..i {
                        model.add(Constraint {
                            terms: vec![
                                Term {
                                    var: var_of[&(k, j)],
                                    coef: 1,
                                },
                                Term {
                                    var: var_of[&(i, j)],
                                    coef: 1,
                                },
                                Term {
                                    var: var_of[&(n, j)],
                                    coef: -1,
                                },
                            ],
                            rel: Relation::Le,
                            rhs: 1,
                            label: format!("consec(E{},E{}-E{}|r{})", k + 1, i + 1, n + 1, j + 1),
                        });
                    }
                }
            }
        }
    }

    // Position constraints (Section 4.2).
    if opts.position_constraints {
        let pos_rel = if opts.relaxed {
            Relation::Le
        } else {
            Relation::Eq
        };
        for group in position_groups(obs) {
            let vs: Vec<usize> = group
                .extracts
                .iter()
                .map(|&i| var_of[&(i, group.page)])
                .collect();
            model.add(Constraint::sum(vs, pos_rel, 1).labeled(format!(
                "pos(r{}@{})",
                group.page + 1,
                group.pos
            )));
        }
    }

    if opts.relaxed {
        model.maximize_sum(0..vars.len());
    }

    Encoding {
        model,
        vars,
        var_of,
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    /// The paper's Superpages example (Tables 1-3).
    pub(crate) fn superpages_obs() -> Observations {
        let list = tokenize(
            "<tr><td>John Smith</td><td>221 Washington</td><td>New Holland</td><td>(740) 335-5555</td></tr>\
             <tr><td>John Smith</td><td>221R Washington St</td><td>Wash CH</td><td>(740) 335-5555</td></tr>\
             <tr><td>George W. Smith</td><td>Findlay, OH</td><td>(419) 423-1212</td></tr>",
        );
        let d1 = tokenize(
            "<h1>John Smith</h1><p>221 Washington</p><p>New Holland</p><p>(740) 335-5555</p>",
        );
        let d2 = tokenize(
            "<h1>John Smith</h1><p>221R Washington St</p><p>Wash CH</p><p>(740) 335-5555</p>",
        );
        let d3 = tokenize("<h1>George W. Smith</h1><p>Findlay, OH</p><p>(419) 423-1212</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2, &d3];
        build_observations(&list, &[], &details)
    }

    #[test]
    fn variables_follow_occurrence() {
        let obs = superpages_obs();
        let enc = encode(&obs, &EncodeOptions::default());
        // E1 "John Smith" on r1, r2 → two variables; none for r3.
        assert!(enc.var(0, 0).is_some());
        assert!(enc.var(0, 1).is_some());
        assert!(enc.var(0, 2).is_none());
        // E2 "221 Washington" only on r1.
        assert!(enc.var(1, 0).is_some());
        assert!(enc.var(1, 1).is_none());
        // Total variables = Σ |D_i|.
        let expected: usize = obs.items.iter().map(|it| it.pages.len()).sum();
        assert_eq!(enc.vars.len(), expected);
    }

    #[test]
    fn uniqueness_constraints_present() {
        let obs = superpages_obs();
        let enc = encode(&obs, &EncodeOptions::default());
        let uniq: Vec<&Constraint> = enc
            .model
            .constraints
            .iter()
            .filter(|c| c.label.starts_with("uniq"))
            .collect();
        assert_eq!(uniq.len(), obs.items.len());
        assert!(uniq.iter().all(|c| c.rel == Relation::Eq && c.rhs == 1));
    }

    #[test]
    fn relaxed_encoding_uses_inequalities_and_objective() {
        let obs = superpages_obs();
        let enc = encode(
            &obs,
            &EncodeOptions {
                relaxed: true,
                position_constraints: true,
            },
        );
        assert!(enc.model.constraints.iter().all(|c| c.rel == Relation::Le));
        assert_eq!(enc.model.objective.len(), enc.vars.len());
    }

    #[test]
    fn position_constraints_toggle() {
        let obs = superpages_obs();
        let with = encode(&obs, &EncodeOptions::default());
        let without = encode(
            &obs,
            &EncodeOptions {
                relaxed: false,
                position_constraints: false,
            },
        );
        let count = |e: &Encoding| {
            e.model
                .constraints
                .iter()
                .filter(|c| c.label.starts_with("pos"))
                .count()
        };
        assert!(count(&with) > 0);
        assert_eq!(count(&without), 0);
    }

    #[test]
    fn consecutiveness_blocks_non_contiguous_pairs() {
        let obs = superpages_obs();
        let enc = encode(&obs, &EncodeOptions::default());
        // E1 (John Smith, candidate r2) and E8 (phone, candidate r2):
        // between them sit E2/E3 which cannot be in r2... in this fixture
        // E1..E4 are row 1, E5..E8 row 2. E1 and E8 are both candidates of
        // r1 and r2, with blocked middles for r1 (E6, E7 not on r1).
        let has_pair = enc
            .model
            .constraints
            .iter()
            .any(|c| c.label.starts_with("consec") && c.terms.len() == 2);
        assert!(has_pair);
        let has_triple = enc
            .model
            .constraints
            .iter()
            .any(|c| c.label.starts_with("consec") && c.terms.len() == 3);
        assert!(has_triple);
    }

    #[test]
    fn empty_observations_empty_model() {
        let obs = build_observations(&[], &[], &[]);
        let enc = encode(&obs, &EncodeOptions::default());
        assert_eq!(enc.model.num_vars, 0);
        assert!(enc.model.constraints.is_empty());
    }

    /// The paper lists the Superpages constraints explicitly in Sections
    /// 4.1–4.2; this pins the encoder to that list.
    #[test]
    fn paper_constraint_list() {
        let obs = superpages_obs();
        let enc = encode(&obs, &EncodeOptions::default());
        let m = &enc.model;

        // A helper: the uniqueness constraint for extract i must contain
        // exactly the variables x_ij for j in D_i, with "=1".
        let uniq = |i: usize| {
            m.constraints
                .iter()
                .find(|c| c.label == format!("uniq(E{})", i + 1))
                .expect("uniqueness constraint")
        };
        // x11 + x12 = 1 (the paper's first listed constraint).
        let c = uniq(0);
        assert_eq!(c.rel, Relation::Eq);
        assert_eq!(c.rhs, 1);
        let vars: Vec<usize> = c.terms.iter().map(|t| t.var).collect();
        assert_eq!(vars, vec![enc.var(0, 0).unwrap(), enc.var(0, 1).unwrap()]);
        // x21 = 1 (E2 can only be in r1).
        let c = uniq(1);
        assert_eq!(c.terms.len(), 1);
        assert_eq!(c.terms[0].var, enc.var(1, 0).unwrap());
        // x62 = 1 (E6 can only be in r2).
        let c = uniq(5);
        assert_eq!(c.terms.len(), 1);
        assert_eq!(c.terms[0].var, enc.var(5, 1).unwrap());

        // The paper's consecutiveness example: x11 + x81 <= 1 — E1 and E8
        // cannot both be in r1... actually the paper lists pairs with
        // blocked middles for r1/r2 crossing rows; verify the r2 version:
        // E1 (row 1) and E8 (row 2 phone) for record r1 are blocked by the
        // middles E6, E7 which cannot be in r1.
        let blocked = m.constraints.iter().any(|c| {
            c.label == "consec(E1,E8|r1)"
                && c.rel == Relation::Le
                && c.rhs == 1
                && c.terms.len() == 2
        });
        assert!(blocked, "expected pairwise consecutiveness for E1/E8 on r1");

        // The paper's position constraints: x11 + x51 = 1 and x41 + x81 = 1
        // (shared name at position 0 of r1, shared phone at its tail).
        let has_pos = |a: usize, b: usize, j: u32| {
            m.constraints.iter().any(|c| {
                c.label.starts_with("pos")
                    && c.rel == Relation::Eq
                    && c.rhs == 1
                    && c.terms.len() == 2
                    && c.terms.iter().any(|t| t.var == enc.var(a, j).unwrap())
                    && c.terms.iter().any(|t| t.var == enc.var(b, j).unwrap())
            })
        };
        assert!(has_pos(0, 4, 0), "x11 + x51 = 1");
        assert!(has_pos(0, 4, 1), "x12 + x52 = 1");
        assert!(has_pos(3, 7, 0), "x41 + x81 = 1");
        assert!(has_pos(3, 7, 1), "x42 + x82 = 1");
    }
}
