//! Decoding solver assignments into [`Segmentation`]s.

use tableseg_extract::{Observations, Segmentation};

use crate::encoder::Encoding;

/// Decodes a variable assignment into a segmentation. If several `x_ij`
/// are set for the same extract (only possible for infeasible best-effort
/// assignments), the lowest record wins.
pub fn decode(encoding: &Encoding, assignment: &[bool], obs: &Observations) -> Segmentation {
    let mut seg = Segmentation::unassigned(obs.num_records, obs.items.len());
    for (v, &(i, j)) in encoding.vars.iter().enumerate() {
        if assignment[v] {
            let slot = &mut seg.assignments[i];
            match slot {
                Some(existing) if *existing <= j => {}
                _ => *slot = Some(j),
            }
        }
    }
    seg
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{encode, EncodeOptions};
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    #[test]
    fn decode_roundtrip() {
        let list = tokenize("<td>A</td><td>B</td>");
        let d1 = tokenize("<p>A</p>");
        let d2 = tokenize("<p>B</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &[], &details);
        let enc = encode(&obs, &EncodeOptions::default());
        // A → r1, B → r2.
        let mut assignment = vec![false; enc.model.num_vars];
        assignment[enc.var(0, 0).unwrap()] = true;
        assignment[enc.var(1, 1).unwrap()] = true;
        let seg = decode(&enc, &assignment, &obs);
        assert_eq!(seg.assignments, vec![Some(0), Some(1)]);
        assert!(seg.check(&obs).is_empty());
    }

    #[test]
    fn decode_partial() {
        let list = tokenize("<td>A</td><td>B</td>");
        let d1 = tokenize("<p>A</p>");
        let d2 = tokenize("<p>B</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &[], &details);
        let enc = encode(
            &obs,
            &EncodeOptions {
                relaxed: true,
                position_constraints: true,
            },
        );
        let mut assignment = vec![false; enc.model.num_vars];
        assignment[enc.var(1, 1).unwrap()] = true;
        let seg = decode(&enc, &assignment, &obs);
        assert_eq!(seg.assignments, vec![None, Some(1)]);
        assert_eq!(seg.assigned_count(), 1);
    }

    #[test]
    fn decode_conflict_takes_lowest_record() {
        let list = tokenize("<td>X</td><td>Y</td><td>Z</td>");
        let d1 = tokenize("<p>X</p>");
        let d2 = tokenize("<p>X</p><p>Y</p>");
        let d3 = tokenize("<p>Z</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2, &d3];
        let obs = build_observations(&list, &[], &details);
        let enc = encode(&obs, &EncodeOptions::default());
        let mut assignment = vec![false; enc.model.num_vars];
        assignment[enc.var(0, 0).unwrap()] = true;
        assignment[enc.var(0, 1).unwrap()] = true;
        let seg = decode(&enc, &assignment, &obs);
        assert_eq!(seg.assignments[0], Some(0));
    }
}
