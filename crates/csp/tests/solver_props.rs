//! Property tests cross-checking the stochastic WSAT(OIP) solver against
//! the exact branch-and-bound, and validating the ordered DP's invariants.

use proptest::prelude::*;

use tableseg_csp::exact::{solve_bnb, solve_ordered, BnbOutcome};
use tableseg_csp::model::{Constraint, Model, Relation};
use tableseg_csp::wsat::{solve, WsatConfig};

/// A random small pseudo-boolean model.
fn arb_model() -> impl Strategy<Value = Model> {
    let num_vars = 2usize..8;
    num_vars.prop_flat_map(|n| {
        let constraint = (
            proptest::collection::vec(0..n, 1..=n.min(4)),
            prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
            0i32..3,
        );
        proptest::collection::vec(constraint, 0..6).prop_map(move |cs| {
            let mut m = Model::new(n);
            for (mut vars, rel, rhs) in cs {
                vars.sort_unstable();
                vars.dedup();
                m.add(Constraint::sum(vars, rel, rhs));
            }
            m
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// If B&B proves the model satisfiable, WSAT must find a feasible
    /// assignment too (these models are tiny); if B&B proves infeasibility,
    /// WSAT must never claim feasibility.
    #[test]
    fn wsat_agrees_with_bnb_on_feasibility(model in arb_model()) {
        let exact = solve_bnb(&model, 1_000_000);
        let stochastic = solve(&model, &WsatConfig::default());
        match exact {
            BnbOutcome::Optimal { .. } => {
                prop_assert!(stochastic.feasible, "WSAT missed a solution");
                prop_assert!(model.feasible(&stochastic.assignment));
            }
            BnbOutcome::Infeasible => {
                prop_assert!(!stochastic.feasible, "WSAT claims feasible on infeasible model");
            }
            BnbOutcome::Unknown => unreachable!("budget is ample for <=8 vars"),
        }
    }

    /// With a maximize-sum objective, WSAT must reach the B&B optimum on
    /// these tiny models.
    #[test]
    fn wsat_reaches_optimum_on_small_models(mut model in arb_model()) {
        model.maximize_sum(0..model.num_vars);
        let exact = solve_bnb(&model, 1_000_000);
        if let BnbOutcome::Optimal { objective, .. } = exact {
            let stochastic = solve(&model, &WsatConfig { max_flips: 5_000, ..WsatConfig::default() });
            prop_assert!(stochastic.feasible);
            prop_assert_eq!(stochastic.objective, objective);
        }
    }

    /// Ordered-DP output always satisfies occurrence, uniqueness,
    /// contiguity and monotonicity, and its count is consistent.
    #[test]
    fn ordered_dp_invariants(
        spec in proptest::collection::vec(
            proptest::collection::btree_set(0u32..5, 0..4), 0..12),
    ) {
        let owned: Vec<Vec<u32>> = spec.iter().map(|s| s.iter().copied().collect()).collect();
        let cands: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let sol = solve_ordered(&cands, 5);
        prop_assert_eq!(sol.assignments.len(), cands.len());
        let count = sol.assignments.iter().filter(|a| a.is_some()).count();
        prop_assert_eq!(count, sol.assigned);
        // Occurrence.
        for (i, a) in sol.assignments.iter().enumerate() {
            if let Some(r) = a {
                prop_assert!(cands[i].contains(r));
            }
        }
        // Monotone labels.
        let labels: Vec<u32> = sol.assignments.iter().flatten().copied().collect();
        prop_assert!(labels.windows(2).all(|w| w[0] <= w[1]));
        // Contiguity per record.
        for r in 0..5u32 {
            let idxs: Vec<usize> = sol
                .assignments
                .iter()
                .enumerate()
                .filter_map(|(i, a)| (*a == Some(r)).then_some(i))
                .collect();
            if let (Some(&first), Some(&last)) = (idxs.first(), idxs.last()) {
                prop_assert_eq!(last - first + 1, idxs.len(), "record {} split", r);
            }
        }
    }

    /// The DP count is maximal: no greedy single-record assignment beats it.
    #[test]
    fn ordered_dp_at_least_singleton_lower_bound(
        spec in proptest::collection::vec(
            proptest::collection::btree_set(0u32..4, 0..3), 1..10),
    ) {
        let owned: Vec<Vec<u32>> = spec.iter().map(|s| s.iter().copied().collect()).collect();
        let cands: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let sol = solve_ordered(&cands, 4);
        // Lower bound: the longest contiguous run assignable to a single
        // record r.
        let mut best_run = 0;
        for r in 0..4u32 {
            let mut run = 0;
            for c in &cands {
                if c.contains(&r) {
                    run += 1;
                    best_run = best_run.max(run);
                } else {
                    run = 0;
                }
            }
        }
        prop_assert!(sol.assigned >= best_run);
    }
}
