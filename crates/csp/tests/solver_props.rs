//! Property tests cross-checking the stochastic WSAT(OIP) solver against
//! the exact branch-and-bound, and validating the ordered DP's invariants.

use proptest::prelude::*;

use tableseg_csp::exact::{solve_bnb, solve_ordered, BnbOutcome};
use tableseg_csp::model::{Constraint, Model, Relation, Term};
use tableseg_csp::reduce_model;
use tableseg_csp::wsat::{solve, WsatConfig};

/// A random small pseudo-boolean model.
fn arb_model() -> impl Strategy<Value = Model> {
    let num_vars = 2usize..8;
    num_vars.prop_flat_map(|n| {
        let constraint = (
            proptest::collection::vec(0..n, 1..=n.min(4)),
            prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
            0i32..3,
        );
        proptest::collection::vec(constraint, 0..6).prop_map(move |cs| {
            let mut m = Model::new(n);
            for (mut vars, rel, rhs) in cs {
                vars.sort_unstable();
                vars.dedup();
                m.add(Constraint::sum(vars, rel, rhs));
            }
            m
        })
    })
}

/// A random small model with non-unit (including negative) coefficients —
/// the shape the encoder's consecutiveness triples take.
fn arb_weighted_model() -> impl Strategy<Value = Model> {
    let num_vars = 2usize..7;
    num_vars.prop_flat_map(|n| {
        let term = (0..n, prop_oneof![Just(-2i32), Just(-1), Just(1), Just(2)]);
        let constraint = (
            proptest::collection::vec(term, 1..=n.min(4)),
            prop_oneof![Just(Relation::Le), Just(Relation::Ge), Just(Relation::Eq)],
            -2i32..4,
        );
        proptest::collection::vec(constraint, 0..5).prop_map(move |cs| {
            let mut m = Model::new(n);
            for (terms, rel, rhs) in cs {
                let mut seen = vec![false; n];
                let terms: Vec<Term> = terms
                    .into_iter()
                    .filter(|&(var, _)| !std::mem::replace(&mut seen[var], true))
                    .map(|(var, coef)| Term { var, coef })
                    .collect();
                m.add(Constraint {
                    terms,
                    rel,
                    rhs,
                    label: String::new(),
                });
            }
            m
        })
    })
}

/// Builds the pseudo-boolean translation of an ordered segmentation
/// instance: occurrence (variables only for candidate records), relaxed
/// uniqueness, consecutiveness (pairs and triples, as the encoder emits
/// them), plus the horizontal-layout monotonicity the ordered DP assumes,
/// maximizing the number of assigned extracts.
fn ordered_instance_model(cands: &[&[u32]]) -> (Model, Vec<(usize, u32)>) {
    let mut vars: Vec<(usize, u32)> = Vec::new();
    let mut var_of = std::collections::HashMap::new();
    for (i, c) in cands.iter().enumerate() {
        for &j in *c {
            var_of.insert((i, j), vars.len());
            vars.push((i, j));
        }
    }
    let mut m = Model::new(vars.len());
    // Uniqueness (relaxed): each extract in at most one record.
    for (i, c) in cands.iter().enumerate() {
        m.add(Constraint::sum(
            c.iter().map(|&j| var_of[&(i, j)]),
            Relation::Le,
            1,
        ));
    }
    // Consecutiveness per record.
    for (i, ci) in cands.iter().enumerate() {
        for &j in *ci {
            for (k, ck) in cands.iter().enumerate().skip(i + 1) {
                if !ck.contains(&j) {
                    continue;
                }
                if (i + 1..k).all(|n| cands[n].contains(&j)) {
                    for n in i + 1..k {
                        m.add(Constraint {
                            terms: vec![
                                Term {
                                    var: var_of[&(i, j)],
                                    coef: 1,
                                },
                                Term {
                                    var: var_of[&(k, j)],
                                    coef: 1,
                                },
                                Term {
                                    var: var_of[&(n, j)],
                                    coef: -1,
                                },
                            ],
                            rel: Relation::Le,
                            rhs: 1,
                            label: String::new(),
                        });
                    }
                } else {
                    m.add(Constraint::sum(
                        [var_of[&(i, j)], var_of[&(k, j)]],
                        Relation::Le,
                        1,
                    ));
                }
            }
        }
    }
    // Monotone record labels in stream order.
    for (i, ci) in cands.iter().enumerate() {
        for &j in *ci {
            for (k, ck) in cands.iter().enumerate().skip(i + 1) {
                for &j2 in *ck {
                    if j2 < j {
                        m.add(Constraint::sum(
                            [var_of[&(i, j)], var_of[&(k, j2)]],
                            Relation::Le,
                            1,
                        ));
                    }
                }
            }
        }
    }
    m.maximize_sum(0..vars.len());
    (m, vars)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// If B&B proves the model satisfiable, WSAT must find a feasible
    /// assignment too (these models are tiny); if B&B proves infeasibility,
    /// WSAT must never claim feasibility.
    #[test]
    fn wsat_agrees_with_bnb_on_feasibility(model in arb_model()) {
        let exact = solve_bnb(&model, 1_000_000);
        let stochastic = solve(&model, &WsatConfig::default());
        match exact {
            BnbOutcome::Optimal { .. } => {
                prop_assert!(stochastic.feasible, "WSAT missed a solution");
                prop_assert!(model.feasible(&stochastic.assignment));
            }
            BnbOutcome::Infeasible => {
                prop_assert!(!stochastic.feasible, "WSAT claims feasible on infeasible model");
            }
            BnbOutcome::Unknown => unreachable!("budget is ample for <=8 vars"),
        }
    }

    /// With a maximize-sum objective, WSAT must reach the B&B optimum on
    /// these tiny models.
    #[test]
    fn wsat_reaches_optimum_on_small_models(mut model in arb_model()) {
        model.maximize_sum(0..model.num_vars);
        let exact = solve_bnb(&model, 1_000_000);
        if let BnbOutcome::Optimal { objective, .. } = exact {
            let stochastic = solve(&model, &WsatConfig { max_flips: 5_000, ..WsatConfig::default() });
            prop_assert!(stochastic.feasible);
            prop_assert_eq!(stochastic.objective, objective);
        }
    }

    /// Ordered-DP output always satisfies occurrence, uniqueness,
    /// contiguity and monotonicity, and its count is consistent.
    #[test]
    fn ordered_dp_invariants(
        spec in proptest::collection::vec(
            proptest::collection::btree_set(0u32..5, 0..4), 0..12),
    ) {
        let owned: Vec<Vec<u32>> = spec.iter().map(|s| s.iter().copied().collect()).collect();
        let cands: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let sol = solve_ordered(&cands, 5);
        prop_assert_eq!(sol.assignments.len(), cands.len());
        let count = sol.assignments.iter().filter(|a| a.is_some()).count();
        prop_assert_eq!(count, sol.assigned);
        // Occurrence.
        for (i, a) in sol.assignments.iter().enumerate() {
            if let Some(r) = a {
                prop_assert!(cands[i].contains(r));
            }
        }
        // Monotone labels.
        let labels: Vec<u32> = sol.assignments.iter().flatten().copied().collect();
        prop_assert!(labels.windows(2).all(|w| w[0] <= w[1]));
        // Contiguity per record.
        for r in 0..5u32 {
            let idxs: Vec<usize> = sol
                .assignments
                .iter()
                .enumerate()
                .filter_map(|(i, a)| (*a == Some(r)).then_some(i))
                .collect();
            if let (Some(&first), Some(&last)) = (idxs.first(), idxs.last()) {
                prop_assert_eq!(last - first + 1, idxs.len(), "record {} split", r);
            }
        }
    }

    /// The DP count is maximal: no greedy single-record assignment beats it.
    #[test]
    fn ordered_dp_at_least_singleton_lower_bound(
        spec in proptest::collection::vec(
            proptest::collection::btree_set(0u32..4, 0..3), 1..10),
    ) {
        let owned: Vec<Vec<u32>> = spec.iter().map(|s| s.iter().copied().collect()).collect();
        let cands: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let sol = solve_ordered(&cands, 4);
        // Lower bound: the longest contiguous run assignable to a single
        // record r.
        let mut best_run = 0;
        for r in 0..4u32 {
            let mut run = 0;
            for c in &cands {
                if c.contains(&r) {
                    run += 1;
                    best_run = best_run.max(run);
                } else {
                    run = 0;
                }
            }
        }
        prop_assert!(sol.assigned >= best_run);
    }

    /// Feasibility agreement extends to non-unit (and negative)
    /// coefficients — the shape the encoder's consecutiveness triples use.
    #[test]
    fn wsat_agrees_with_bnb_on_weighted_models(model in arb_weighted_model()) {
        let exact = solve_bnb(&model, 1_000_000);
        let stochastic = solve(&model, &WsatConfig::default());
        match exact {
            BnbOutcome::Optimal { .. } => {
                prop_assert!(stochastic.feasible, "WSAT missed a solution");
                prop_assert!(model.feasible(&stochastic.assignment));
            }
            BnbOutcome::Infeasible => {
                prop_assert!(!stochastic.feasible, "WSAT claims feasible on infeasible model");
            }
            BnbOutcome::Unknown => unreachable!("budget is ample for <=7 vars"),
        }
    }

    /// Three-way differential on ordered segmentation instances: the
    /// branch-and-bound optimum of the pseudo-boolean translation must
    /// equal the ordered DP's assigned count, and WSAT must reach it too.
    #[test]
    fn dp_bnb_wsat_agree_on_segmentation_instances(
        spec in proptest::collection::vec(
            proptest::collection::btree_set(0u32..4, 0..3), 1..8),
    ) {
        let owned: Vec<Vec<u32>> = spec.iter().map(|s| s.iter().copied().collect()).collect();
        let cands: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let dp = solve_ordered(&cands, 4);

        let (model, vars) = ordered_instance_model(&cands);
        let exact = solve_bnb(&model, 1_000_000);
        let BnbOutcome::Optimal { objective, .. } = exact else {
            // All-zero is always feasible under the relaxed encoding.
            return Err(TestCaseError::fail("B&B must find the all-zero solution"));
        };
        prop_assert_eq!(
            objective,
            dp.assigned as i64,
            "B&B optimum disagrees with ordered DP on {:?}",
            owned
        );

        // The DP's own assignment must be feasible in the model.
        let mut assignment = vec![false; model.num_vars];
        for (v, &(i, j)) in vars.iter().enumerate() {
            assignment[v] = dp.assignments[i] == Some(j);
        }
        prop_assert!(model.feasible(&assignment), "DP solution infeasible in PB model");

        // And WSAT, given the same model, reaches the optimum.
        let stochastic = solve(&model, &WsatConfig { max_flips: 10_000, ..WsatConfig::default() });
        prop_assert!(stochastic.feasible);
        prop_assert_eq!(stochastic.objective, objective);
    }

    /// Parallel restarts are a pure scheduling change: 1, 2 and N worker
    /// threads return byte-identical results (assignment, feasibility,
    /// violation, objective *and* total flips) on random weighted models,
    /// for arbitrary seeds, with and without an objective.
    #[test]
    fn parallel_restarts_equal_sequential(
        mut model in arb_weighted_model(),
        with_objective in any::<bool>(),
        seed in any::<u64>(),
    ) {
        if with_objective {
            model.maximize_sum(0..model.num_vars);
        }
        let base = WsatConfig {
            max_flips: 400,
            max_tries: 5,
            seed,
            threads: 1,
            ..WsatConfig::default()
        };
        let sequential = solve(&model, &base);
        for threads in [2, 4, 0] {
            let parallel = solve(&model, &WsatConfig { threads, ..base });
            prop_assert_eq!(&sequential, &parallel, "threads = {}", threads);
        }
    }

    /// Instance reduction is exact: solving the components independently
    /// and stitching the parts back together reaches the same optimum as
    /// the whole-instance oracle on random segmentation instances, and
    /// the stitched assignment is feasible in the *original* model.
    #[test]
    fn reduced_components_equal_whole_instance_oracle(
        spec in proptest::collection::vec(
            proptest::collection::btree_set(0u32..4, 0..3), 1..8),
    ) {
        let owned: Vec<Vec<u32>> = spec.iter().map(|s| s.iter().copied().collect()).collect();
        let cands: Vec<&[u32]> = owned.iter().map(Vec::as_slice).collect();
        let (model, _) = ordered_instance_model(&cands);

        let BnbOutcome::Optimal { objective, .. } = solve_bnb(&model, 1_000_000) else {
            return Err(TestCaseError::fail("all-zero is always feasible here"));
        };

        let red = reduce_model(&model);
        prop_assert!(!red.infeasible, "reduction must not refute a feasible model");
        let mut parts = Vec::with_capacity(red.components.len());
        for comp in &red.components {
            let BnbOutcome::Optimal { assignment, .. } = solve_bnb(&comp.model, 1_000_000) else {
                return Err(TestCaseError::fail("component of a feasible model infeasible"));
            };
            parts.push(assignment);
        }
        let stitched = red.stitch(&parts);
        prop_assert!(model.feasible(&stitched), "stitched assignment violates the model");
        prop_assert_eq!(
            model.objective_value(&stitched),
            objective,
            "decomposed optimum diverged from the whole-instance oracle on {:?}",
            owned
        );
    }

    /// Reduction is exact on arbitrary weighted models too, including
    /// infeasible ones: propagation may refute the model outright, a
    /// component may be infeasible, or the stitched component optima
    /// must match the whole-instance optimum.
    #[test]
    fn reduction_preserves_weighted_model_optimum(mut model in arb_weighted_model()) {
        model.maximize_sum(0..model.num_vars);
        let whole = solve_bnb(&model, 1_000_000);
        let red = reduce_model(&model);
        if red.infeasible {
            prop_assert!(
                matches!(whole, BnbOutcome::Infeasible),
                "reduction refuted a feasible model"
            );
            return Ok(());
        }
        let mut parts = Vec::with_capacity(red.components.len());
        let mut any_infeasible = false;
        for comp in &red.components {
            match solve_bnb(&comp.model, 1_000_000) {
                BnbOutcome::Optimal { assignment, .. } => parts.push(assignment),
                BnbOutcome::Infeasible => {
                    any_infeasible = true;
                    break;
                }
                BnbOutcome::Unknown => unreachable!("budget is ample for <=7 vars"),
            }
        }
        match whole {
            BnbOutcome::Optimal { objective, .. } => {
                prop_assert!(!any_infeasible, "component infeasible on a feasible model");
                let stitched = red.stitch(&parts);
                prop_assert!(model.feasible(&stitched));
                prop_assert_eq!(model.objective_value(&stitched), objective);
            }
            BnbOutcome::Infeasible => {
                prop_assert!(any_infeasible, "every component solvable on an infeasible model");
            }
            BnbOutcome::Unknown => unreachable!("budget is ample for <=7 vars"),
        }
    }

    /// The objective-target early exit never *changes* the answer when the
    /// target is the true optimum — it only saves flips. (A looser bound
    /// could stop at any feasible assignment reaching it; the relaxation
    /// ladder always passes the exact relaxed optimum.)
    #[test]
    fn objective_target_preserves_optimum(model in arb_model()) {
        let mut model = model;
        model.maximize_sum(0..model.num_vars);
        let BnbOutcome::Optimal { objective, .. } = solve_bnb(&model, 1_000_000) else {
            return Ok(()); // infeasible models have no target to reach
        };
        let free = solve(&model, &WsatConfig { max_flips: 5_000, ..WsatConfig::default() });
        let capped = solve(&model, &WsatConfig {
            max_flips: 5_000,
            objective_target: Some(objective),
            ..WsatConfig::default()
        });
        prop_assert!(capped.feasible);
        prop_assert_eq!(capped.objective, free.objective);
        prop_assert!(capped.flips <= free.flips);
    }
}
