//! The combined segmenter the paper's conclusion calls for:
//!
//! "Both techniques (or a combination of the two) are likely to be
//! required for robust and reliable large-scale information extraction."
//! (Section 7)
//!
//! Strategy: run the CSP first. If it solves the strict problem, its
//! answer is final — "the constraint-satisfaction approach is very
//! reliable on clean data". If the CSP had to relax (dirty data), run the
//! probabilistic approach and use it to **fill in** the extracts the
//! relaxed CSP left unassigned, keeping every assignment the CSP did make
//! (they satisfy at least the relaxed constraints). The probabilistic
//! column labels are returned whenever that model ran.

use tableseg_extract::Observations;

use crate::segmenter::{CspSegmenter, ProbSegmenter, Segmenter, SegmenterOutcome};

/// CSP-first segmentation with probabilistic fill-in on dirty data.
#[derive(Debug, Clone, Default)]
pub struct HybridSegmenter {
    /// The CSP stage.
    pub csp: CspSegmenter,
    /// The probabilistic stage (run only when the CSP relaxes).
    pub prob: ProbSegmenter,
}

impl Segmenter for HybridSegmenter {
    fn segment(&self, obs: &Observations) -> SegmenterOutcome {
        let csp = self.csp.segment(obs);
        if !csp.relaxed && csp.segmentation.is_total() {
            return csp;
        }
        let prob = self.prob.segment(obs);
        // Keep CSP assignments; fill gaps from the probabilistic MAP.
        let mut merged = csp.segmentation.clone();
        for (slot, prob_a) in merged
            .assignments
            .iter_mut()
            .zip(&prob.segmentation.assignments)
        {
            if slot.is_none() {
                *slot = *prob_a;
            }
        }
        let mut solver_times = csp.solver_times;
        solver_times.merge(&prob.solver_times);
        let mut metrics = csp.metrics;
        metrics.merge(&prob.metrics);
        SegmenterOutcome {
            segmentation: merged,
            relaxed: csp.relaxed,
            columns: prob.columns,
            solver_times,
            metrics,
        }
    }

    fn name(&self) -> &'static str {
        "hybrid"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn obs(list: &str, details: &[&str]) -> Observations {
        let list = tokenize(list);
        let detail_toks: Vec<Vec<Token>> = details.iter().map(|d| tokenize(d)).collect();
        let refs: Vec<&[Token]> = detail_toks.iter().map(Vec::as_slice).collect();
        build_observations(&list, &[], &refs)
    }

    #[test]
    fn clean_data_is_pure_csp() {
        let obs = obs(
            "<td>Alpha One</td><td>100</td><td>Beta Two</td><td>200</td>",
            &[
                "<p>Alpha One</p><p>100</p>",
                "<p>Beta Two</p><p>200</p>",
                "<p>x</p>",
            ],
        );
        let out = HybridSegmenter::default().segment(&obs);
        assert!(!out.relaxed);
        assert_eq!(
            out.segmentation.assignments,
            vec![Some(0), Some(0), Some(1), Some(1)]
        );
        // Pure CSP path yields no columns.
        assert!(out.columns.is_none());
    }

    #[test]
    fn dirty_data_gets_filled_in() {
        // The Michigan-style inconsistency: the CSP relaxes and leaves
        // extracts unassigned; the hybrid fills them probabilistically.
        let obs = obs(
            "<td>Alpha One</td><td>Parole</td><td>Beta Two</td><td>Parole</td>",
            &[
                "<p>Alpha One</p><p>Parole</p>",
                "<p>Beta Two</p><p>Parolee</p>",
            ],
        );
        let csp_only = CspSegmenter::default().segment(&obs);
        assert!(csp_only.relaxed);
        assert!(!csp_only.segmentation.is_total());

        let hybrid = HybridSegmenter::default().segment(&obs);
        assert!(hybrid.relaxed, "relaxation is still reported");
        assert!(hybrid.segmentation.is_total(), "{hybrid:?}");
        // CSP assignments are preserved.
        for (h, c) in hybrid
            .segmentation
            .assignments
            .iter()
            .zip(&csp_only.segmentation.assignments)
        {
            if let Some(r) = c {
                assert_eq!(h.as_ref(), Some(r));
            }
        }
        // Columns come from the probabilistic stage.
        assert!(hybrid.columns.is_some());
    }

    #[test]
    fn name() {
        assert_eq!(HybridSegmenter::default().name(), "hybrid");
    }
}
