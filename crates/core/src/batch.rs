//! Work-stealing parallel batch execution with deterministic results.
//!
//! [`execute`] runs a fixed set of jobs across worker threads and returns
//! the results **in job order**, so reports built from them are
//! byte-identical regardless of thread count or scheduling. The experiment
//! harness uses it for `(site, page, segmenter)` jobs; the CLI uses it to
//! run several segmentation methods at once.
//!
//! The scheduler is a classic fixed-set work-stealing design built on
//! `std` primitives only: jobs are dealt round-robin onto one deque per
//! worker; a worker pops from the front of its own deque and, when empty,
//! steals from the back of a victim's. Because the job set is fixed (no
//! job spawns another), a worker that finds every deque empty can exit —
//! no condition variables or termination protocol needed.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// The number of worker threads to use by default: the machine's available
/// parallelism, or 1 if that cannot be determined.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `jobs` through `worker` on up to `threads` threads and returns the
/// results in job order.
///
/// `threads` is clamped to `1..=jobs.len()`; with one thread (or one job)
/// the jobs run sequentially on the calling thread. The worker receives
/// `(job_index, job)`. If a worker panics, the panic propagates to the
/// caller once all threads have stopped.
pub fn execute<J, R, F>(threads: usize, jobs: Vec<J>, worker: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(usize, J) -> R + Sync,
{
    if jobs.is_empty() {
        return Vec::new();
    }
    let threads = threads.clamp(1, jobs.len());
    if threads == 1 {
        return jobs
            .into_iter()
            .enumerate()
            .map(|(i, j)| worker(i, j))
            .collect();
    }

    let n_jobs = jobs.len();
    // Deal jobs round-robin onto one deque per worker.
    let mut queues: Vec<VecDeque<(usize, J)>> = (0..threads).map(|_| VecDeque::new()).collect();
    for (i, job) in jobs.into_iter().enumerate() {
        queues[i % threads].push_back((i, job));
    }
    let queues: Vec<Mutex<VecDeque<(usize, J)>>> = queues.into_iter().map(Mutex::new).collect();

    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for me in 0..threads {
            let tx = tx.clone();
            let queues = &queues;
            let worker = &worker;
            scope.spawn(move || {
                loop {
                    // Own queue first (front), then steal (back) walking
                    // the ring from the next worker on. Each lock must be a
                    // statement-scoped temporary: under edition 2021, an
                    // `if let` condition's guard would live through the
                    // `else` branch, so holding our own queue's lock while
                    // probing victims deadlocks two stealing workers.
                    // Poisoning is recovered: a queue is just jobs, valid
                    // regardless of which worker died holding the lock, and
                    // the scope re-raises the panic once all threads stop.
                    let mut found = queues[me]
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)
                        .pop_front();
                    if found.is_none() {
                        for step in 1..queues.len() {
                            let victim = (me + step) % queues.len();
                            found = queues[victim]
                                .lock()
                                .unwrap_or_else(std::sync::PoisonError::into_inner)
                                .pop_back();
                            if found.is_some() {
                                break;
                            }
                        }
                    }
                    let Some((index, job)) = found else { break };
                    let result = worker(index, job);
                    if tx.send((index, result)).is_err() {
                        break;
                    }
                }
            });
        }
    });
    drop(tx);

    // All threads joined (the scope waits, re-raising any panic); the jobs
    // are a fixed set, so every index arrived exactly once.
    let mut slots: Vec<Option<R>> = (0..n_jobs).map(|_| None).collect();
    for (index, result) in rx {
        debug_assert!(slots[index].is_none(), "job {index} ran twice");
        slots[index] = Some(result);
    }
    slots
        .into_iter()
        .enumerate()
        .map(|(i, r)| r.unwrap_or_else(|| panic!("job {i} produced no result")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn results_come_back_in_job_order() {
        for threads in [1, 2, 3, 8] {
            let jobs: Vec<usize> = (0..50).collect();
            let out = execute(threads, jobs, |_, j| {
                // Make late jobs finish first to stress the reordering.
                if j % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
                j * 2
            });
            assert_eq!(
                out,
                (0..50).map(|j| j * 2).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
    }

    #[test]
    fn every_job_runs_exactly_once() {
        let ran = AtomicUsize::new(0);
        let out = execute(4, (0..100).collect::<Vec<usize>>(), |i, j| {
            assert_eq!(i, j);
            ran.fetch_add(1, Ordering::Relaxed);
            j
        });
        assert_eq!(ran.load(Ordering::Relaxed), 100);
        assert_eq!(out.len(), 100);
    }

    #[test]
    fn more_threads_than_jobs_is_fine() {
        let out = execute(64, vec![1, 2, 3], |_, j| j + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_job_set() {
        let out: Vec<u32> = execute(4, Vec::<u32>::new(), |_, j| j);
        assert!(out.is_empty());
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let out = execute(0, vec![10, 20], |_, j| j);
        assert_eq!(out, vec![10, 20]);
    }

    #[test]
    fn stealing_engages_with_unbalanced_jobs() {
        // One huge job on worker 0's queue; the rest must be stolen.
        let slow = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..32).collect();
        let out = execute(4, jobs, |_, j| {
            if j == 0 {
                std::thread::sleep(std::time::Duration::from_millis(20));
                slow.fetch_add(1, Ordering::Relaxed);
            }
            j
        });
        assert_eq!(out.len(), 32);
        assert_eq!(slow.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
