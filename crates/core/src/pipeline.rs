//! The shared front end of both approaches (Sections 3.1–3.2): template
//! finding, table-slot detection, extraction, detail-page matching.

use tableseg_extract::{build_observations, Observations};
use tableseg_html::lexer::tokenize;
use tableseg_html::Token;
use tableseg_template::{assess, induce, TemplateQuality};

/// The input: sample list pages plus the detail pages of the page to
/// segment.
#[derive(Debug, Clone)]
pub struct SitePages<'a> {
    /// HTML of the sample list pages from the site ("Given two, or
    /// preferably more, example list pages"). One page is allowed; the
    /// pipeline then behaves as the whole-page fallback.
    pub list_pages: Vec<&'a str>,
    /// Index into `list_pages` of the page to segment.
    pub target: usize,
    /// HTML of the detail pages linked from the target page's records, in
    /// row order (`detail_pages[j]` belongs to record `r_{j+1}`).
    pub detail_pages: Vec<&'a str>,
}

/// The observation table for the target page, plus provenance data.
#[derive(Debug, Clone)]
pub struct PreparedPage {
    /// The observation table to segment.
    pub observations: Observations,
    /// Byte offset in the target page's HTML of each kept extract
    /// (aligned with `observations.items`). Used by evaluation.
    pub extract_offsets: Vec<usize>,
    /// Byte offsets of the skipped extracts (aligned with
    /// `observations.skipped`).
    pub skipped_offsets: Vec<usize>,
    /// `true` if the induced template was unusable and the whole page was
    /// used as the table slot (the paper's notes `a`/`b`).
    pub used_whole_page: bool,
    /// The template diagnostics that drove the decision.
    pub template_quality: TemplateQuality,
    /// The tokens of the table slot the extracts were derived from.
    /// `Extract::start` indexes into this stream; wrapper induction
    /// ([`crate::wrapper`]) consumes it.
    pub slot_tokens: Vec<Token>,
}

/// Runs the shared front end on a site's pages.
///
/// # Panics
///
/// Panics if `target` is out of bounds — the caller controls both fields.
pub fn prepare(input: &SitePages<'_>) -> PreparedPage {
    assert!(
        input.target < input.list_pages.len(),
        "target page {} out of bounds ({} pages)",
        input.target,
        input.list_pages.len()
    );
    let pages: Vec<Vec<Token>> = input.list_pages.iter().map(|p| tokenize(p)).collect();
    let detail_tokens: Vec<Vec<Token>> =
        input.detail_pages.iter().map(|p| tokenize(p)).collect();

    // Template induction over all sample pages.
    let induction = induce(&pages);
    let quality = assess(&induction, &pages);

    // Table slot: the slot with the most text tokens, unless the template
    // is degenerate — then the entire page (Section 6.2: "In cases where
    // the template finding algorithm could not find a good page template,
    // we have taken the entire text of the list page").
    let target_tokens = &pages[input.target];
    let (slot_tokens, used_whole_page): (&[Token], bool) = if quality.is_usable() {
        let slots = induction.slots(&pages);
        match slots.table_slot(&pages) {
            Some(idx) => {
                let range = slots.slots[idx].ranges[input.target].clone();
                (&target_tokens[range], false)
            }
            None => (&target_tokens[..], true),
        }
    } else {
        (&target_tokens[..], true)
    };

    let other_pages: Vec<&[Token]> = pages
        .iter()
        .enumerate()
        .filter(|&(i, _)| i != input.target)
        .map(|(_, p)| p.as_slice())
        .collect();
    let detail_refs: Vec<&[Token]> = detail_tokens.iter().map(Vec::as_slice).collect();

    let observations = build_observations(slot_tokens, &other_pages, &detail_refs);
    let extract_offsets = observations
        .items
        .iter()
        .map(|it| it.extract.tokens[0].offset)
        .collect();
    let skipped_offsets = observations
        .skipped
        .iter()
        .map(|s| s.extract.tokens[0].offset)
        .collect();

    PreparedPage {
        observations,
        extract_offsets,
        skipped_offsets,
        used_whole_page,
        template_quality: quality,
        slot_tokens: slot_tokens.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(body: &str) -> String {
        format!(
            "<html><h1>Example Search Results</h1><table>{body}</table>\
             <p>Copyright 2004 Example Inc All rights reserved</p></html>"
        )
    }

    fn two_page_site() -> (String, String, Vec<&'static str>) {
        let a = page(
            "<tr><td>Ada Lovelace</td><td>(555) 100-0001</td></tr>\
             <tr><td>Alan Turing</td><td>(555) 100-0002</td></tr>",
        );
        let b = page("<tr><td>Grace Hopper</td><td>(555) 100-0003</td></tr>");
        let details = vec![
            "<html><h2>Ada Lovelace</h2><p>(555) 100-0001</p></html>",
            "<html><h2>Alan Turing</h2><p>(555) 100-0002</p></html>",
        ];
        (a, b, details)
    }

    #[test]
    fn uses_table_slot_on_clean_site() {
        let (a, b, details) = two_page_site();
        let input = SitePages {
            list_pages: vec![&a, &b],
            target: 0,
            detail_pages: details,
        };
        let prep = prepare(&input);
        assert!(!prep.used_whole_page, "{:?}", prep.template_quality);
        // Only the four record values are kept extracts.
        assert_eq!(prep.observations.len(), 4);
        assert_eq!(prep.extract_offsets.len(), 4);
        // Offsets point at the extracts in the source.
        assert!(a[prep.extract_offsets[0]..].starts_with("Ada"));
    }

    #[test]
    fn whole_page_fallback_on_single_page() {
        let (a, _, details) = two_page_site();
        let input = SitePages {
            list_pages: vec![&a],
            target: 0,
            detail_pages: details,
        };
        let prep = prepare(&input);
        assert!(prep.used_whole_page);
        // Record extracts still observed.
        assert!(prep.observations.len() >= 4);
    }

    #[test]
    fn numbered_entries_force_whole_page() {
        let a = page(
            "<tr><td>1. Ada Lovelace</td></tr><tr><td>2. Alan Turing</td></tr>\
             <tr><td>3. Grace Hopper</td></tr><tr><td>4. Donald Knuth</td></tr>",
        );
        let b = page(
            "<tr><td>1. Barbara Liskov</td></tr><tr><td>2. Edsger Dijkstra</td></tr>\
             <tr><td>3. Tony Hoare</td></tr><tr><td>4. Niklaus Wirth</td></tr>",
        );
        let details = vec![
            "<html><h2>Ada Lovelace</h2></html>",
            "<html><h2>Alan Turing</h2></html>",
            "<html><h2>Grace Hopper</h2></html>",
            "<html><h2>Donald Knuth</h2></html>",
        ];
        let input = SitePages {
            list_pages: vec![&a, &b],
            target: 0,
            detail_pages: details,
        };
        let prep = prepare(&input);
        assert!(prep.used_whole_page, "{:?}", prep.template_quality);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_target_panics() {
        let (a, _, details) = two_page_site();
        let input = SitePages {
            list_pages: vec![&a],
            target: 3,
            detail_pages: details,
        };
        let _ = prepare(&input);
    }

    #[test]
    fn skipped_extracts_tracked() {
        let (a, b, details) = two_page_site();
        let input = SitePages {
            list_pages: vec![&a, &b],
            target: 0,
            detail_pages: details,
        };
        let prep = prepare(&input);
        assert_eq!(prep.skipped_offsets.len(), prep.observations.skipped.len());
    }
}
