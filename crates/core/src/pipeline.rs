//! The shared front end of both approaches (Sections 3.1–3.2): template
//! finding, table-slot detection, extraction, detail-page matching.
//!
//! Template induction is the front end's most expensive step and depends
//! only on the site's sample list pages — not on which page is being
//! segmented. [`SiteTemplate`] owns that per-site work (tokenization +
//! induction + quality assessment) so batch runs do it once per site;
//! [`prepare_with_template`] then does the per-page work (extraction,
//! detail matching) against the cached template. [`prepare`] remains the
//! one-shot convenience wrapper.

use tableseg_extract::{derive_extracts, match_extracts_indexed, Observations};
use tableseg_extract::{PageIndex, SeparatorMask};
use tableseg_html::scan::{scan, ScanTokens};
use tableseg_html::{Interner, SegError, Symbol, Token};
use tableseg_obs::{Counter, Hist, Recorder};
use tableseg_template::{assess, induce_with, InduceOptions, Induction, TemplateQuality};

use crate::detect::{detect_regions, DetectOptions, Detection, Region};
use crate::outcome::caught;
use crate::timing::{Stage, StageTimes};

/// The input: sample list pages plus the detail pages of the page to
/// segment.
#[derive(Debug, Clone)]
pub struct SitePages<'a> {
    /// HTML of the sample list pages from the site ("Given two, or
    /// preferably more, example list pages"). One page is allowed; the
    /// pipeline then behaves as the whole-page fallback.
    pub list_pages: Vec<&'a str>,
    /// Index into `list_pages` of the page to segment.
    pub target: usize,
    /// HTML of the detail pages linked from the target page's records, in
    /// row order (`detail_pages[j]` belongs to record `r_{j+1}`).
    pub detail_pages: Vec<&'a str>,
}

/// The observation table for the target page, plus provenance data.
#[derive(Debug, Clone)]
pub struct PreparedPage {
    /// The observation table to segment.
    pub observations: Observations,
    /// Byte offset in the target page's HTML of each kept extract
    /// (aligned with `observations.items`). Used by evaluation.
    pub extract_offsets: Vec<usize>,
    /// Byte offsets of the skipped extracts (aligned with
    /// `observations.skipped`).
    pub skipped_offsets: Vec<usize>,
    /// `true` if the induced template was unusable and the whole page was
    /// used as the table slot (the paper's notes `a`/`b`).
    pub used_whole_page: bool,
    /// The template diagnostics that drove the decision.
    pub template_quality: TemplateQuality,
    /// The tokens of the table slot the extracts were derived from.
    /// `Extract::start` indexes into this stream; wrapper induction
    /// ([`crate::wrapper`]) consumes it.
    pub slot_tokens: Vec<Token>,
    /// Wall-clock time of the per-page stages (detail tokenization,
    /// extraction, matching). [`prepare`] additionally merges in the
    /// per-site stages; [`prepare_with_template`] does not — the caller
    /// owns the site-level [`SiteTemplate::timings`].
    pub timings: StageTimes,
    /// Per-page observability metrics (pages processed, extracts
    /// kept/skipped/matched, whole-page fallbacks, per-page histograms).
    /// Empty unless [`tableseg_obs::set_enabled`] is on. Mirrors
    /// `timings`: [`prepare`] merges in the site-level metrics,
    /// [`prepare_with_template`] leaves them with the template's owner.
    pub metrics: Recorder,
}

/// The per-site front-end state: tokenized sample list pages plus the
/// induced template and its quality verdict. Build it once per site with
/// [`SiteTemplate::build`] (histogram-LCS rolling merge by default;
/// [`SiteTemplate::build_with`] selects the backend), then call
/// [`prepare_with_template`] for each page — template induction runs
/// exactly once no matter how many pages are segmented.
#[derive(Debug, Clone)]
pub struct SiteTemplate {
    /// Token streams of the sample list pages, in input order.
    pub pages: Vec<Vec<Token>>,
    /// The site's token-text interner: every list-page token text, with its
    /// [`tableseg_html::TypeSet`]. Detail pages are projected through it
    /// read-only, so the template stays shareable across batch workers.
    pub interner: Interner,
    /// Interned symbol streams, aligned token-for-token with `pages`.
    pub streams: Vec<Vec<Symbol>>,
    /// The per-symbol separator classification, computed once per site.
    pub separators: SeparatorMask,
    /// Reduced occurrence index of each list page, aligned with `pages`.
    /// [`prepare_with_template`] probes the indexes of the *other* list
    /// pages for the all-list-pages filter, so they are built once here
    /// rather than once per segmented page.
    pub page_indexes: Vec<PageIndex>,
    /// The induced template and its per-page anchors.
    pub induction: Induction,
    /// The template diagnostics driving the slot-vs-whole-page decision.
    pub quality: TemplateQuality,
    /// Wall-clock time of the per-site stages (list-page tokenization +
    /// interning, template induction, list-page index construction).
    pub timings: StageTimes,
    /// Site-level observability metrics (sites processed, template
    /// inductions). Empty unless [`tableseg_obs::set_enabled`] is on.
    pub metrics: Recorder,
}

impl SiteTemplate {
    /// Tokenizes and interns the sample list pages, induces the site's
    /// template (with the default, histogram-LCS backend), and indexes
    /// each list page for extract matching.
    pub fn build(list_pages: &[&str]) -> SiteTemplate {
        SiteTemplate::build_with(list_pages, &InduceOptions::default())
    }

    /// [`SiteTemplate::build`] with an explicit induction backend. The
    /// Hirschberg path (`histogram: false`) is the differential oracle;
    /// benches build both and compare.
    pub fn build_with(list_pages: &[&str], opts: &InduceOptions) -> SiteTemplate {
        let mut timings = StageTimes::new();
        // Zero-copy front end: each list page is scanned into span tokens
        // and interned in one pass; the owned token stream (template
        // induction compares token texts across pages) is materialized
        // from the same scan, so the page text is traversed exactly once.
        let (pages, interner, streams) = timings.time(Stage::Tokenize, || {
            let mut interner = Interner::new();
            let mut pages: Vec<Vec<Token>> = Vec::with_capacity(list_pages.len());
            let mut streams: Vec<Vec<Symbol>> = Vec::with_capacity(list_pages.len());
            for p in list_pages {
                let scanned = scan(p);
                streams.push(interner.intern_scanned(&scanned, p));
                pages.push(scanned.to_tokens(p));
            }
            (pages, interner, streams)
        });
        let (induction, quality, stats, fold_elapsed) =
            timings.time(Stage::TemplateInduction, || {
                let fold_start = std::time::Instant::now();
                let (induction, stats) = induce_with(&pages, &streams, interner.len(), opts);
                let fold_elapsed = fold_start.elapsed();
                let quality = assess(&induction, &pages);
                (induction, quality, stats, fold_elapsed)
            });
        if opts.histogram {
            timings.add(Stage::InduceHistogram, fold_elapsed);
        }
        let (separators, page_indexes) = timings.time(Stage::Matching, || {
            let separators = SeparatorMask::build(&interner);
            let page_indexes: Vec<PageIndex> = streams
                .iter()
                .map(|s| PageIndex::from_interned(s, &separators))
                .collect();
            (separators, page_indexes)
        });
        let mut metrics = Recorder::new();
        metrics.incr(Counter::SitesProcessed);
        metrics.bump(Counter::FrontendPages, list_pages.len() as u64);
        let list_bytes: usize = list_pages.iter().map(|p| p.len()).sum();
        metrics.bump(Counter::FrontendBytes, list_bytes as u64);
        if metrics.is_on() {
            for p in list_pages {
                metrics.observe(Hist::FrontendPageBytes, p.len() as u64);
            }
        }
        metrics.incr(Counter::TemplateInductions);
        metrics.bump(Counter::TemplateMergeFolds, stats.folds as u64);
        metrics.bump(
            Counter::TemplateAnchorsDropped,
            (stats.anchors_dropped + stats.unstable_dropped) as u64,
        );
        metrics.bump(
            Counter::TemplateLcsFallbacks,
            stats.lcs.fallback_windows as u64,
        );
        SiteTemplate {
            pages,
            interner,
            streams,
            separators,
            page_indexes,
            induction,
            quality,
            timings,
            metrics,
        }
    }

    /// Fallible [`SiteTemplate::build`]: empty input is reported as
    /// [`SegError::EmptyInput`] and a panic anywhere in the site-level
    /// stages is caught and attributed to the template stage, so one
    /// poisoned site cannot abort a batch run.
    pub fn try_build(list_pages: &[&str]) -> Result<SiteTemplate, SegError> {
        if list_pages.is_empty() {
            return Err(SegError::EmptyInput { what: "list pages" });
        }
        caught("template", || SiteTemplate::build(list_pages))
    }

    /// Incrementally refreshes this template for an updated page sample:
    /// changed pages are re-tokenized and the **cached** template tokens
    /// are re-anchored onto them (each token must still occur exactly
    /// once, in template order); unchanged pages keep their tokens,
    /// streams and anchors. The anchor-stability pass
    /// ([`tableseg_template::restabilize`]) then re-runs over the full
    /// sample and the quality is re-assessed — but **induction itself
    /// does not re-run**, which is what makes a serving layer's warm
    /// path cheap ([`tableseg_template::induction_count`] stays flat).
    ///
    /// Returns `None` — the caller must fall back to a full
    /// [`SiteTemplate::build`] — when the refresh would degrade the
    /// template rather than maintain it:
    ///
    /// * the sample shape changed (`list_pages`/`changed` length differs
    ///   from the cached sample);
    /// * a template token no longer embeds uniquely and in order into a
    ///   changed page;
    /// * the stability pass halved the template (slot stability
    ///   degraded), or a usable template became unusable.
    ///
    /// A refresh with byte-identical pages reproduces the cached
    /// template exactly; genuinely changed pages yield an approximation
    /// of the full re-induction that keeps every surviving anchor — the
    /// staleness/latency trade documented in DESIGN.md's serving-layer
    /// section.
    pub fn try_refresh(&self, list_pages: &[&str], changed: &[bool]) -> Option<SiteTemplate> {
        if list_pages.len() != self.pages.len() || changed.len() != list_pages.len() {
            return None;
        }
        let mut timings = StageTimes::new();
        let mut interner = self.interner.clone();
        let mut changed_bytes = 0usize;
        let (pages, streams) = timings.time(Stage::Tokenize, || {
            let mut pages: Vec<Vec<Token>> = Vec::with_capacity(list_pages.len());
            let mut streams: Vec<Vec<Symbol>> = Vec::with_capacity(list_pages.len());
            for (i, p) in list_pages.iter().enumerate() {
                if changed[i] {
                    changed_bytes += p.len();
                    let scanned = scan(p);
                    streams.push(interner.intern_scanned(&scanned, p));
                    pages.push(scanned.to_tokens(p));
                } else {
                    pages.push(self.pages[i].clone());
                    streams.push(self.streams[i].clone());
                }
            }
            (pages, streams)
        });

        let refreshed = timings.time(Stage::TemplateInduction, || {
            // The cached template's tokens all exist in the cached
            // interner, so interning them back is a pure lookup.
            let tpl_syms: Vec<Symbol> = self
                .induction
                .template
                .tokens
                .iter()
                .map(|t| interner.intern_token(t))
                .collect();
            let mut anchors: Vec<Vec<usize>> = Vec::with_capacity(pages.len());
            for (i, stream) in streams.iter().enumerate() {
                if !changed[i] {
                    anchors.push(self.induction.anchors[i].clone());
                    continue;
                }
                // Re-embed: every template symbol must occur exactly once
                // on the changed page, in template order.
                let mut occurrences: std::collections::HashMap<Symbol, (usize, usize)> =
                    std::collections::HashMap::new();
                for (pos, &s) in stream.iter().enumerate() {
                    let e = occurrences.entry(s).or_insert((0, pos));
                    e.0 += 1;
                }
                let mut anchor = Vec::with_capacity(tpl_syms.len());
                for &sym in &tpl_syms {
                    match occurrences.get(&sym) {
                        Some(&(1, pos)) => anchor.push(pos),
                        _ => return None,
                    }
                }
                if anchor.windows(2).any(|w| w[0] >= w[1]) {
                    return None;
                }
                anchors.push(anchor);
            }
            let mut induction = Induction {
                template: self.induction.template.clone(),
                anchors,
            };
            let lens: Vec<usize> = pages.iter().map(Vec::len).collect();
            let dropped = tableseg_template::restabilize(&mut induction, &lens);
            let quality = assess(&induction, &pages);
            // Fall back to full re-induction when slot stability degrades:
            // the stability pass gutted the template, or a usable template
            // went unusable under the new sample.
            if induction.template.len() * 2 < self.induction.template.len() {
                return None;
            }
            if self.quality.is_usable() && !quality.is_usable() {
                return None;
            }
            Some((induction, quality, dropped))
        });
        let (induction, quality, dropped) = refreshed?;

        let (separators, page_indexes) = timings.time(Stage::Matching, || {
            let separators = SeparatorMask::build(&interner);
            let page_indexes: Vec<PageIndex> = streams
                .iter()
                .map(|s| PageIndex::from_interned(s, &separators))
                .collect();
            (separators, page_indexes)
        });

        let mut metrics = Recorder::new();
        let changed_pages = changed.iter().filter(|&&c| c).count();
        metrics.bump(Counter::FrontendPages, changed_pages as u64);
        metrics.bump(Counter::FrontendBytes, changed_bytes as u64);
        if metrics.is_on() {
            for (i, p) in list_pages.iter().enumerate() {
                if changed[i] {
                    metrics.observe(Hist::FrontendPageBytes, p.len() as u64);
                }
            }
        }
        metrics.bump(Counter::TemplateAnchorsDropped, dropped as u64);
        Some(SiteTemplate {
            pages,
            interner,
            streams,
            separators,
            page_indexes,
            induction,
            quality,
            timings,
            metrics,
        })
    }
}

/// Runs the shared front end on a site's pages.
///
/// Convenience wrapper over [`SiteTemplate::build`] +
/// [`prepare_with_template`]; the returned page's `timings` include the
/// site-level stages. Batch callers segmenting several pages of one site
/// should build the [`SiteTemplate`] once instead.
///
/// # Panics
///
/// Panics if `target` is out of bounds — the caller controls both fields.
pub fn prepare(input: &SitePages<'_>) -> PreparedPage {
    let template = SiteTemplate::build(&input.list_pages);
    let mut prepared = prepare_with_template(&template, input.target, &input.detail_pages);
    prepared.timings.merge(&template.timings);
    prepared.metrics.merge(&template.metrics);
    prepared
}

/// Fallible [`prepare`]: returns a [`SegError`] instead of panicking on
/// bad input (no list pages, target out of bounds) or an internal bug.
pub fn try_prepare(input: &SitePages<'_>) -> Result<PreparedPage, SegError> {
    let template = SiteTemplate::try_build(&input.list_pages)?;
    let mut prepared = try_prepare_with_template(&template, input.target, &input.detail_pages)?;
    prepared.timings.merge(&template.timings);
    prepared.metrics.merge(&template.metrics);
    Ok(prepared)
}

/// Runs the per-page front end against a prebuilt [`SiteTemplate`]:
/// table-slot selection, extraction, and detail-page matching for the
/// list page at index `target`.
///
/// # Example
///
/// Build the template once per site, then prepare each of its list
/// pages against it:
///
/// ```
/// use tableseg::{prepare_with_template, SiteTemplate};
///
/// let page = "<html><h1>Results</h1><table>\
///             <tr><td>Ada Lovelace</td></tr>\
///             <tr><td>Alan Turing</td></tr></table></html>";
/// let template = SiteTemplate::build(&[page]);
/// let details = ["<html><h2>Ada Lovelace</h2></html>"];
/// let prepared = prepare_with_template(&template, 0, &details);
/// assert!(!prepared.observations.items.is_empty());
/// ```
///
/// # Panics
///
/// Panics if `target` is out of bounds for the template's pages. Use
/// [`try_prepare_with_template`] to get a [`SegError`] instead.
pub fn prepare_with_template(
    template: &SiteTemplate,
    target: usize,
    detail_pages: &[&str],
) -> PreparedPage {
    try_prepare_with_template(template, target, detail_pages).unwrap_or_else(|e| panic!("{e}"))
}

/// Fallible [`prepare_with_template`]: an out-of-bounds target is reported
/// as [`SegError::TargetOutOfBounds`], and a panic in any per-page stage
/// is caught and attributed to that stage — one poisoned page cannot
/// abort a site or a batch.
pub fn try_prepare_with_template(
    template: &SiteTemplate,
    target: usize,
    detail_pages: &[&str],
) -> Result<PreparedPage, SegError> {
    try_prepare_slot(template, target, detail_pages, None)
}

/// Region-scoped [`try_prepare_with_template`]: the table slot is the
/// supplied token range of the target page (a region found by
/// [`detect_regions`]) instead of the template's table-slot choice.
/// Extraction, matching and evaluation offsets all stay relative to the
/// full page, so downstream code is unchanged.
pub fn try_prepare_region(
    template: &SiteTemplate,
    target: usize,
    detail_pages: &[&str],
    region: &Region,
) -> Result<PreparedPage, SegError> {
    try_prepare_slot(template, target, detail_pages, Some(region.tokens.clone()))
}

/// The shared per-page front end. With `slot_override` the supplied token
/// range is the table slot (the detect stage's region path); without it
/// the template picks the slot, falling back to the whole page.
fn try_prepare_slot(
    template: &SiteTemplate,
    target: usize,
    detail_pages: &[&str],
    slot_override: Option<std::ops::Range<usize>>,
) -> Result<PreparedPage, SegError> {
    if target >= template.pages.len() {
        return Err(SegError::TargetOutOfBounds {
            target,
            pages: template.pages.len(),
        });
    }
    let mut timings = StageTimes::new();
    // Zero-copy front end: detail pages are only ever reduced to
    // occurrence indexes, so they are scanned into span tokens here and
    // projected straight into `PageIndex`es below — no owned `Token`
    // stream, no per-token strings.
    let detail_scans: Vec<ScanTokens> = caught("tokenize", || {
        timings.time(Stage::Tokenize, || {
            detail_pages.iter().map(|p| scan(p)).collect()
        })
    })?;

    // Table slot: the slot with the most text tokens, unless the template
    // is degenerate — then the entire page (Section 6.2: "In cases where
    // the template finding algorithm could not find a good page template,
    // we have taken the entire text of the list page").
    let pages = &template.pages;
    let target_tokens = &pages[target];
    let target_syms = &template.streams[target];
    let (slot_range, used_whole_page) = caught("template", || {
        if let Some(region) = slot_override {
            (region, false)
        } else if template.quality.is_usable() {
            let slots = template.induction.slots(pages);
            match slots.table_slot(pages) {
                Some(idx) => (slots.slots[idx].ranges[target].clone(), false),
                None => (0..target_tokens.len(), true),
            }
        } else {
            (0..target_tokens.len(), true)
        }
    })?;
    if slot_range.end > target_tokens.len() || slot_range.start > slot_range.end {
        return Err(SegError::StreamMisaligned {
            what: "table-slot range",
            expected: target_tokens.len(),
            got: slot_range.end,
        });
    }
    let slot_tokens = &target_tokens[slot_range.clone()];
    // Streams align token-for-token with pages, so the slot's symbols are
    // the same range of the target's interned stream.
    let slot_syms = &target_syms[slot_range];

    let extracts = caught("extract", || {
        timings.time(Stage::Extraction, || derive_extracts(slot_tokens))
    })?;
    let observations = caught("match", || {
        timings.time(Stage::Matching, || {
            // Needles are symbol slices of the slot stream: an extract is a
            // contiguous separator-free token run, so its reduced form is the
            // run itself.
            let needles: Vec<&[Symbol]> = extracts
                .iter()
                .map(|e| &slot_syms[e.start..e.start + e.tokens.len()])
                .collect();
            // Other list pages come from the site-level index cache; only the
            // detail pages (new input every call) are indexed here, projected
            // read-only through the site interner.
            let other_indexes: Vec<&PageIndex> = template
                .page_indexes
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != target)
                .map(|(_, idx)| idx)
                .collect();
            let detail_indexes: Vec<PageIndex> = detail_scans
                .iter()
                .zip(detail_pages)
                .map(|(s, p)| PageIndex::from_scanned(s, p, &template.interner))
                .collect();
            let detail_refs: Vec<&PageIndex> = detail_indexes.iter().collect();
            match_extracts_indexed(extracts, &needles, &other_indexes, &detail_refs)
        })
    })?;
    let extract_offsets = observations
        .items
        .iter()
        .map(|it| it.extract.tokens[0].offset)
        .collect();
    let skipped_offsets = observations
        .skipped
        .iter()
        .map(|s| s.extract.tokens[0].offset)
        .collect();

    let mut metrics = Recorder::new();
    metrics.incr(Counter::PagesProcessed);
    metrics.bump(Counter::FrontendPages, detail_pages.len() as u64);
    let detail_bytes: usize = detail_pages.iter().map(|p| p.len()).sum();
    metrics.bump(Counter::FrontendBytes, detail_bytes as u64);
    if metrics.is_on() {
        for p in detail_pages {
            metrics.observe(Hist::FrontendPageBytes, p.len() as u64);
        }
    }
    if used_whole_page {
        metrics.incr(Counter::WholePageFallbacks);
    }
    metrics.bump(Counter::ExtractsKept, observations.items.len() as u64);
    metrics.bump(Counter::ExtractsSkipped, observations.skipped.len() as u64);
    let matched: usize = observations.items.iter().map(|it| it.pages.len()).sum();
    metrics.bump(Counter::ExtractsMatched, matched as u64);
    metrics.observe(Hist::ExtractsPerPage, observations.items.len() as u64);
    metrics.observe(Hist::RecordsPerPage, observations.num_records as u64);
    if metrics.is_on() {
        for item in &observations.items {
            metrics.observe(Hist::DetailPagesPerExtract, item.pages.len() as u64);
        }
    }

    Ok(PreparedPage {
        observations,
        extract_offsets,
        skipped_offsets,
        used_whole_page,
        template_quality: template.quality,
        slot_tokens: slot_tokens.to_vec(),
        timings,
        metrics,
    })
}

/// One detected table region with its region-scoped front-end output.
#[derive(Debug, Clone)]
pub struct RegionPrepared {
    /// The detected region (token and byte ranges, classification).
    pub region: Region,
    /// The region's observation table and provenance. On a pass-through
    /// page this is bit-for-bit the classic whole-page [`PreparedPage`].
    pub prepared: PreparedPage,
}

/// The output of the detect-enabled front end: the detection verdict and
/// one prepared observation table per table region.
#[derive(Debug, Clone)]
pub struct DetectedPage {
    /// Every region detection classified, plus the pass-through flag.
    pub detection: Detection,
    /// One entry per table region, in document order. Exactly one entry,
    /// equal to the classic whole-page preparation, when
    /// `detection.pass_through` is set.
    pub regions: Vec<RegionPrepared>,
    /// Wall-clock time of the detection stage itself (`detect.regions`,
    /// also charged to the `extract` top-level stage). Per-region
    /// front-end timings live on each region's [`PreparedPage`].
    pub timings: StageTimes,
    /// Detection counters (`detect.*`). Empty unless
    /// [`tableseg_obs::set_enabled`] is on.
    pub metrics: Recorder,
}

/// The detect-enabled per-page front end: partitions the target page into
/// regions ([`detect_regions`]), then runs the region-scoped front end on
/// each table region. Non-table regions (navigation, ads, footers) are
/// classified but not prepared.
///
/// **Pass-through guarantee:** on a page with at most one table region —
/// every page of the paper corpus — the result is exactly one region
/// covering the whole page whose `prepared` output is identical to
/// [`try_prepare_with_template`], so enabling detection cannot change
/// single-table results (the table4 golden is enforced at 1/2/N threads
/// with detection on).
///
/// Each table region is matched against all of `detail_pages`; callers
/// that know which detail pages belong to which region (the detectbench
/// harness does) can instead call [`try_prepare_region`] per region.
pub fn try_prepare_detected(
    template: &SiteTemplate,
    target: usize,
    detail_pages: &[&str],
    opts: &DetectOptions,
) -> Result<DetectedPage, SegError> {
    if target >= template.pages.len() {
        return Err(SegError::TargetOutOfBounds {
            target,
            pages: template.pages.len(),
        });
    }
    let mut timings = StageTimes::new();
    let detection = caught("detect", || {
        let start = std::time::Instant::now();
        let detection = detect_regions(&template.pages[target], opts);
        let elapsed = start.elapsed();
        // Detection overlaps the extraction stage; `detect.regions`
        // re-attributes that time, mirroring the solve sub-stages.
        timings.add(Stage::Extraction, elapsed);
        timings.add(Stage::Detect, elapsed);
        detection
    })?;
    let mut metrics = Recorder::new();
    metrics.incr(Counter::DetectPages);
    let tables = detection.table_regions().count();
    metrics.bump(Counter::DetectRegions, tables as u64);
    metrics.bump(
        Counter::DetectNonTable,
        (detection.regions.len() - tables) as u64,
    );
    if detection.pass_through {
        metrics.incr(Counter::DetectPassThrough);
    }
    let mut regions = Vec::with_capacity(tables);
    for region in detection.table_regions() {
        let prepared = if detection.pass_through {
            try_prepare_with_template(template, target, detail_pages)?
        } else {
            try_prepare_region(template, target, detail_pages, region)?
        };
        regions.push(RegionPrepared {
            region: region.clone(),
            prepared,
        });
    }
    Ok(DetectedPage {
        detection,
        regions,
        timings,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(body: &str) -> String {
        format!(
            "<html><h1>Example Search Results</h1><table>{body}</table>\
             <p>Copyright 2004 Example Inc All rights reserved</p></html>"
        )
    }

    fn two_page_site() -> (String, String, Vec<&'static str>) {
        let a = page(
            "<tr><td>Ada Lovelace</td><td>(555) 100-0001</td></tr>\
             <tr><td>Alan Turing</td><td>(555) 100-0002</td></tr>",
        );
        let b = page("<tr><td>Grace Hopper</td><td>(555) 100-0003</td></tr>");
        let details = vec![
            "<html><h2>Ada Lovelace</h2><p>(555) 100-0001</p></html>",
            "<html><h2>Alan Turing</h2><p>(555) 100-0002</p></html>",
        ];
        (a, b, details)
    }

    #[test]
    fn uses_table_slot_on_clean_site() {
        let (a, b, details) = two_page_site();
        let input = SitePages {
            list_pages: vec![&a, &b],
            target: 0,
            detail_pages: details,
        };
        let prep = prepare(&input);
        assert!(!prep.used_whole_page, "{:?}", prep.template_quality);
        // Only the four record values are kept extracts.
        assert_eq!(prep.observations.len(), 4);
        assert_eq!(prep.extract_offsets.len(), 4);
        // Offsets point at the extracts in the source.
        assert!(a[prep.extract_offsets[0]..].starts_with("Ada"));
    }

    #[test]
    fn whole_page_fallback_on_single_page() {
        let (a, _, details) = two_page_site();
        let input = SitePages {
            list_pages: vec![&a],
            target: 0,
            detail_pages: details,
        };
        let prep = prepare(&input);
        assert!(prep.used_whole_page);
        // Record extracts still observed.
        assert!(prep.observations.len() >= 4);
    }

    #[test]
    fn numbered_entries_force_whole_page() {
        let a = page(
            "<tr><td>1. Ada Lovelace</td></tr><tr><td>2. Alan Turing</td></tr>\
             <tr><td>3. Grace Hopper</td></tr><tr><td>4. Donald Knuth</td></tr>",
        );
        let b = page(
            "<tr><td>1. Barbara Liskov</td></tr><tr><td>2. Edsger Dijkstra</td></tr>\
             <tr><td>3. Tony Hoare</td></tr><tr><td>4. Niklaus Wirth</td></tr>",
        );
        let details = vec![
            "<html><h2>Ada Lovelace</h2></html>",
            "<html><h2>Alan Turing</h2></html>",
            "<html><h2>Grace Hopper</h2></html>",
            "<html><h2>Donald Knuth</h2></html>",
        ];
        let input = SitePages {
            list_pages: vec![&a, &b],
            target: 0,
            detail_pages: details,
        };
        let prep = prepare(&input);
        assert!(prep.used_whole_page, "{:?}", prep.template_quality);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bad_target_panics() {
        let (a, _, details) = two_page_site();
        let input = SitePages {
            list_pages: vec![&a],
            target: 3,
            detail_pages: details,
        };
        let _ = prepare(&input);
    }

    #[test]
    fn skipped_extracts_tracked() {
        let (a, b, details) = two_page_site();
        let input = SitePages {
            list_pages: vec![&a, &b],
            target: 0,
            detail_pages: details,
        };
        let prep = prepare(&input);
        assert_eq!(prep.skipped_offsets.len(), prep.observations.skipped.len());
    }

    #[test]
    fn refresh_with_identical_pages_reproduces_template() {
        let (a, b, _) = two_page_site();
        let cached = SiteTemplate::build(&[&a, &b]);
        let before = tableseg_template::induction_count();
        let refreshed = cached
            .try_refresh(&[&a, &b], &[true, true])
            .expect("identical bytes must refresh");
        assert_eq!(tableseg_template::induction_count(), before);
        assert_eq!(
            refreshed.induction.template.tokens, cached.induction.template.tokens,
            "refresh of unchanged pages must keep the template"
        );
        assert_eq!(refreshed.induction.anchors, cached.induction.anchors);
        assert_eq!(refreshed.streams, cached.streams);
        assert_eq!(refreshed.quality.template_len, cached.quality.template_len);
    }

    #[test]
    fn refresh_reanchors_a_changed_page() {
        let (a, b, details) = two_page_site();
        let cached = SiteTemplate::build(&[&a, &b]);
        // Same template skeleton, new record data on page b.
        let b2 = page("<tr><td>Donald Knuth</td><td>(555) 100-0009</td></tr>");
        let refreshed = cached
            .try_refresh(&[&a, &b2], &[false, true])
            .expect("a data-only change must refresh");
        assert_eq!(
            refreshed.induction.template.tokens,
            cached.induction.template.tokens
        );
        // Unchanged page keeps its anchors verbatim.
        assert_eq!(refreshed.induction.anchors[0], cached.induction.anchors[0]);
        // The refreshed template segments the new sample like a full build.
        let full = SiteTemplate::build(&[&a, &b2]);
        let via_refresh = prepare_with_template(&refreshed, 0, &details);
        let via_full = prepare_with_template(&full, 0, &details);
        assert_eq!(via_refresh.extract_offsets, via_full.extract_offsets);
        assert_eq!(via_refresh.used_whole_page, via_full.used_whole_page);
    }

    #[test]
    fn refresh_falls_back_on_shape_or_anchor_loss() {
        let (a, b, _) = two_page_site();
        let cached = SiteTemplate::build(&[&a, &b]);
        // Sample-shape mismatch.
        assert!(cached.try_refresh(&[&a], &[true]).is_none());
        assert!(cached.try_refresh(&[&a, &b], &[true]).is_none());
        // A changed page that no longer embeds the template (the shared
        // header/footer skeleton is gone) must force full re-induction.
        let alien = "<html><div>totally different markup</div></html>".to_string();
        assert!(cached.try_refresh(&[&a, &alien], &[false, true]).is_none());
    }

    /// Two list pages carrying two independent linked tables each, plus a
    /// link footer — the multi-region front-end fixture.
    fn two_table_site() -> (String, String, Vec<&'static str>) {
        let page = |rows_a: &str, rows_b: &str| {
            format!(
                "<html><h1>Example Portal</h1>\
                 <table>{rows_a}</table>\
                 <h3>More Results</h3>\
                 <table>{rows_b}</table>\
                 <ul><li><a href=\"/p\">Privacy</a></li><li><a href=\"/t\">Terms</a></li>\
                 <li><a href=\"/f\">Feedback</a></li></ul>\
                 <p>Copyright 2004 Example Inc All rights reserved</p></html>"
            )
        };
        let a = page(
            "<tr><td><a href=\"/d/0\">Ada Lovelace</a></td><td>(555) 100-0001</td></tr>\
             <tr><td><a href=\"/d/1\">Alan Turing</a></td><td>(555) 100-0002</td></tr>",
            "<tr><td><a href=\"/d/2\">Big Pine Key</a></td><td>$1,200</td></tr>\
             <tr><td><a href=\"/d/3\">Cedar Grove</a></td><td>$2,400</td></tr>",
        );
        let b = page(
            "<tr><td><a href=\"/d/4\">Grace Hopper</a></td><td>(555) 100-0003</td></tr>\
             <tr><td><a href=\"/d/5\">Donald Knuth</a></td><td>(555) 100-0004</td></tr>",
            "<tr><td><a href=\"/d/6\">Dune Road</a></td><td>$3,600</td></tr>\
             <tr><td><a href=\"/d/7\">Elm Hollow</a></td><td>$4,800</td></tr>",
        );
        let details = vec![
            "<html><h2>Ada Lovelace</h2><p>(555) 100-0001</p></html>",
            "<html><h2>Alan Turing</h2><p>(555) 100-0002</p></html>",
            "<html><h2>Big Pine Key</h2><p>$1,200</p></html>",
            "<html><h2>Cedar Grove</h2><p>$2,400</p></html>",
        ];
        (a, b, details)
    }

    #[test]
    fn detected_front_end_prepares_each_table_region() {
        let (a, b, details) = two_table_site();
        let template = SiteTemplate::build(&[&a, &b]);
        let detected = try_prepare_detected(
            &template,
            0,
            &details,
            &crate::detect::DetectOptions::default(),
        )
        .expect("clean two-table page");
        assert!(!detected.detection.pass_through, "two tables must split");
        assert_eq!(detected.regions.len(), 2, "one prepared page per table");
        for rp in &detected.regions {
            assert_eq!(rp.region.kind, crate::detect::RegionKind::Table);
            assert!(
                !rp.prepared.extract_offsets.is_empty(),
                "region extracts derived"
            );
            for &off in &rp.prepared.extract_offsets {
                assert!(
                    rp.region.bytes.contains(&off),
                    "extract offset {off} outside region {:?}",
                    rp.region.bytes
                );
            }
        }
        // The two regions partition the extracts: no offset overlap.
        let (r0, r1) = (&detected.regions[0], &detected.regions[1]);
        assert!(r0.region.bytes.end <= r1.region.bytes.start);
    }

    #[test]
    fn detected_front_end_passes_single_table_through() {
        let (a, b, details) = two_page_site();
        let template = SiteTemplate::build(&[&a, &b]);
        let classic = try_prepare_with_template(&template, 0, &details).expect("classic");
        let detected = try_prepare_detected(
            &template,
            0,
            &details,
            &crate::detect::DetectOptions::default(),
        )
        .expect("single-table page");
        assert!(detected.detection.pass_through);
        assert_eq!(detected.regions.len(), 1);
        let prepared = &detected.regions[0].prepared;
        assert_eq!(prepared.extract_offsets, classic.extract_offsets);
        assert_eq!(prepared.used_whole_page, classic.used_whole_page);
        assert_eq!(prepared.observations.len(), classic.observations.len());
    }
}
