//! Automatic detail-page identification.
//!
//! The paper's experiments downloaded detail pages manually and defer the
//! automation to future work (Section 6.1): "one can download all the
//! pages that are linked on the list pages, and then use a classification
//! algorithm to find a subset that contains the detail pages only. The
//! detail pages, generated from the same template, will look similar to
//! one another and different from advertisement pages, which probably
//! don't share any common structure."
//!
//! This module implements that classifier: pairwise token-LCS similarity
//! over the candidate pages, single-link clustering at a threshold, and
//! selection of the largest cluster. Pages from one detail template share
//! most of their token stream; ad pages do not.

use tableseg_html::lexer::tokenize;
use tableseg_template::intern::Interner;
use tableseg_template::lcs::lcs_length;

/// Similarity threshold for two pages to be considered same-template.
pub const SIMILARITY_THRESHOLD: f64 = 0.6;

/// Normalized token-LCS similarity between two token streams:
/// `|LCS| / max(|a|, |b|)`. 1.0 for identical pages, near 0 for unrelated
/// structures.
pub fn page_similarity(a: &[u32], b: &[u32]) -> f64 {
    let denom = a.len().max(b.len());
    if denom == 0 {
        return 1.0;
    }
    lcs_length(a, b) as f64 / denom as f64
}

/// Identifies the detail pages among candidate linked pages.
///
/// Returns the indices of the largest same-template cluster, in input
/// order. Ties go to the cluster with the lower first index
/// (deterministic). With no candidates the result is empty; a single
/// candidate is returned as-is (nothing to contrast it against).
pub fn identify_detail_pages(candidates: &[&str]) -> Vec<usize> {
    let n = candidates.len();
    if n <= 1 {
        return (0..n).collect();
    }
    let mut interner = Interner::new();
    let streams: Vec<Vec<u32>> = candidates
        .iter()
        .map(|html| {
            let toks = tokenize(html);
            toks.iter().map(|t| interner.intern(&t.text)).collect()
        })
        .collect();

    // Single-link clustering via union-find.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for i in 0..n {
        for j in i + 1..n {
            if page_similarity(&streams[i], &streams[j]) >= SIMILARITY_THRESHOLD {
                let (a, b) = (find(&mut parent, i), find(&mut parent, j));
                if a != b {
                    parent[a.max(b)] = a.min(b);
                }
            }
        }
    }

    // Largest cluster wins.
    let mut clusters: std::collections::HashMap<usize, Vec<usize>> =
        std::collections::HashMap::new();
    for i in 0..n {
        let root = find(&mut parent, i);
        clusters.entry(root).or_default().push(i);
    }
    clusters
        .into_values()
        .max_by_key(|members| (members.len(), std::cmp::Reverse(members[0])))
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn detail(name: &str, phone: &str) -> String {
        format!(
            "<html><h1>Example Pages</h1><h2>{name}</h2><table>\
             <tr><td><b>Name:</b></td><td>{name}</td></tr>\
             <tr><td><b>Phone:</b></td><td>{phone}</td></tr>\
             </table><p>Copyright 2004 Example Inc</p></html>"
        )
    }

    fn ad(n: usize) -> String {
        match n {
            0 => "<html><body><center><font size=7>HUGE SALE</font></center>\
                  <marquee>Buy now pay later great deals every day</marquee></body></html>"
                .to_owned(),
            _ => "<html><frameset><frame src=x></frameset>\
                  <div><div><div>Click here to win a prize now</div></div></div></html>"
                .to_owned(),
        }
    }

    #[test]
    fn picks_the_template_cluster() {
        let pages = [
            ad(0),
            detail("Ada Lovelace", "(555) 100-0001"),
            detail("Alan Turing", "(555) 100-0002"),
            ad(1),
            detail("Grace Hopper", "(555) 100-0003"),
        ];
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        assert_eq!(identify_detail_pages(&refs), vec![1, 2, 4]);
    }

    #[test]
    fn all_details_all_returned() {
        let pages = [
            detail("A B", "(555) 100-0001"),
            detail("C D", "(555) 100-0002"),
        ];
        let refs: Vec<&str> = pages.iter().map(String::as_str).collect();
        assert_eq!(identify_detail_pages(&refs), vec![0, 1]);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(identify_detail_pages(&[]).is_empty());
        assert_eq!(identify_detail_pages(&["<p>x</p>"]), vec![0]);
    }

    #[test]
    fn similarity_bounds() {
        let mut interner = Interner::new();
        let a: Vec<u32> = tokenize("<p>a b c</p>")
            .iter()
            .map(|t| interner.intern(&t.text))
            .collect();
        let b: Vec<u32> = tokenize("<div><div>zz</div></div>")
            .iter()
            .map(|t| interner.intern(&t.text))
            .collect();
        assert_eq!(page_similarity(&a, &a), 1.0);
        assert!(page_similarity(&a, &b) < 0.5);
        assert_eq!(page_similarity(&[], &[]), 1.0);
    }
}
