//! The two segmentation approaches behind one trait.

use std::time::{Duration, Instant};

use tableseg_csp::{segment_csp, CspOptions, CspStatus};
use tableseg_extract::{Observations, Segmentation};
use tableseg_html::SegError;
use tableseg_obs::{Counter, Hist, Recorder};
use tableseg_prob::{segment_prob, ProbOptions};

use crate::timing::{Stage, StageTimes};

/// The result of a segmenter run.
#[derive(Debug, Clone)]
pub struct SegmenterOutcome {
    /// The record segmentation.
    pub segmentation: Segmentation,
    /// `true` if the approach had to relax its constraints (the CSP on
    /// inconsistent data — the paper's notes `c`/`d`).
    pub relaxed: bool,
    /// Column labels per extract, if the approach produces them (the
    /// probabilistic approach does; the CSP does not — Section 3.4).
    pub columns: Option<Vec<u32>>,
    /// The solver's own time, split into the [`Stage::SOLVE_SPLIT`]
    /// sub-stages. Harnesses merge this into their per-site
    /// [`StageTimes`] so reports can break the `solve` total down by
    /// method.
    pub solver_times: StageTimes,
    /// Solver observability metrics (WSAT flips/tries, relaxations, EM
    /// iterations). Empty unless [`tableseg_obs::set_enabled`] is on;
    /// harnesses merge it like `solver_times`.
    pub metrics: Recorder,
}

/// A record-segmentation algorithm operating on an observation table.
///
/// `Send + Sync` so segmenters can be shared across [`crate::batch`]
/// worker threads; every implementation is a plain configuration struct.
pub trait Segmenter: Send + Sync {
    /// Segments the observation table into records.
    fn segment(&self, obs: &Observations) -> SegmenterOutcome;

    /// A short display name ("CSP", "probabilistic").
    fn name(&self) -> &'static str;

    /// Fallible [`Segmenter::segment`]: a panic inside the solver is
    /// caught and reported as [`SegError::SolverFailed`], so a degenerate
    /// observation table (chaos-damaged input) costs one failed page, not
    /// the batch. Provided for every implementation.
    ///
    /// # Example
    ///
    /// ```
    /// use tableseg::{prepare, CspSegmenter, Segmenter, SitePages};
    ///
    /// let page = "<html><h1>Results</h1><table>\
    ///             <tr><td>Ada Lovelace</td></tr>\
    ///             <tr><td>Alan Turing</td></tr></table></html>";
    /// let prepared = prepare(&SitePages {
    ///     list_pages: vec![page],
    ///     target: 0,
    ///     detail_pages: vec!["<html><h2>Ada Lovelace</h2></html>"],
    /// });
    /// let outcome = CspSegmenter::default()
    ///     .try_segment(&prepared.observations)
    ///     .expect("clean input cannot fail the solver");
    /// assert!(outcome.segmentation.num_records > 0);
    /// ```
    fn try_segment(&self, obs: &Observations) -> Result<SegmenterOutcome, SegError> {
        crate::outcome::caught("solve", || self.segment(obs)).map_err(|e| match e {
            SegError::Internal { detail, .. } => SegError::SolverFailed {
                solver: self.name(),
                detail,
            },
            other => other,
        })
    }
}

/// The constraint-satisfaction approach (Section 4).
#[derive(Debug, Clone, Default)]
pub struct CspSegmenter {
    /// Solver and encoding options.
    pub options: CspOptions,
}

impl CspSegmenter {
    /// A segmenter with the Section 4.2 position constraints disabled
    /// (for the ablation experiment).
    pub fn without_position_constraints() -> CspSegmenter {
        CspSegmenter {
            options: CspOptions {
                position_constraints: false,
                ..CspOptions::default()
            },
        }
    }
}

impl Segmenter for CspSegmenter {
    fn segment(&self, obs: &Observations) -> SegmenterOutcome {
        let start = Instant::now();
        let out = segment_csp(obs, &self.options);
        let mut solver_times = StageTimes::new();
        solver_times.add(Stage::SolveCsp, start.elapsed());
        solver_times.add(Stage::SolveReduce, Duration::from_nanos(out.reduce_ns));
        let mut metrics = Recorder::new();
        metrics.bump(Counter::WsatFlips, out.flips);
        metrics.bump(Counter::WsatTries, out.tries);
        metrics.bump(Counter::SolveComponents, out.components as u64);
        metrics.bump(Counter::SolvePrunedVars, out.pruned_vars as u64);
        metrics.bump(Counter::SolveWarmStartHits, out.warm_start_hits);
        metrics.observe(Hist::WsatFlipsPerSolve, out.flips);
        let relaxed = out.status != CspStatus::Solved;
        if relaxed {
            metrics.incr(Counter::CspRelaxed);
        }
        SegmenterOutcome {
            segmentation: out.segmentation,
            relaxed,
            columns: None,
            solver_times,
            metrics,
        }
    }

    fn name(&self) -> &'static str {
        "CSP"
    }
}

/// The probabilistic approach (Section 5).
#[derive(Debug, Clone, Default)]
pub struct ProbSegmenter {
    /// EM and model options.
    pub options: ProbOptions,
}

impl ProbSegmenter {
    /// A segmenter without the hierarchical period model π (the Figure 2
    /// variant, for the ablation experiment).
    pub fn without_period_model() -> ProbSegmenter {
        ProbSegmenter {
            options: ProbOptions {
                period_model: false,
                ..ProbOptions::default()
            },
        }
    }
}

impl Segmenter for ProbSegmenter {
    fn segment(&self, obs: &Observations) -> SegmenterOutcome {
        let start = Instant::now();
        let out = segment_prob(obs, &self.options);
        let mut solver_times = StageTimes::new();
        solver_times.add(Stage::SolveProb, start.elapsed());
        solver_times.add(
            Stage::SolveEmEStep,
            Duration::from_nanos(out.timing.e_step_ns),
        );
        solver_times.add(
            Stage::SolveEmMStep,
            Duration::from_nanos(out.timing.m_step_ns),
        );
        solver_times.add(
            Stage::SolveViterbi,
            Duration::from_nanos(out.timing.viterbi_ns),
        );
        let mut metrics = Recorder::new();
        metrics.bump(Counter::EmIterations, out.iterations as u64);
        metrics.observe(Hist::EmIterationsPerSolve, out.iterations as u64);
        SegmenterOutcome {
            segmentation: out.segmentation,
            relaxed: false,
            columns: Some(out.columns),
            solver_times,
            metrics,
        }
    }

    fn name(&self) -> &'static str {
        "probabilistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    fn obs() -> Observations {
        let list = tokenize("<td>Ada Lovelace</td><td>100</td><td>Alan Turing</td><td>200</td>");
        let d1 = tokenize("<p>Ada Lovelace</p><p>100</p>");
        let d2 = tokenize("<p>Alan Turing</p><p>200</p>");
        let d3 = tokenize("<p>nothing</p>");
        let details: Vec<&[Token]> = vec![&d1, &d2, &d3];
        build_observations(&list, &[], &details)
    }

    #[test]
    fn both_segmenters_agree_on_clean_data() {
        let obs = obs();
        let expected = vec![Some(0), Some(0), Some(1), Some(1)];
        for s in [
            &CspSegmenter::default() as &dyn Segmenter,
            &ProbSegmenter::default(),
        ] {
            let out = s.segment(&obs);
            assert_eq!(out.segmentation.assignments, expected, "{}", s.name());
            assert!(!out.relaxed, "{}", s.name());
        }
    }

    #[test]
    fn only_prob_yields_columns() {
        let obs = obs();
        assert!(CspSegmenter::default().segment(&obs).columns.is_none());
        let cols = ProbSegmenter::default()
            .segment(&obs)
            .columns
            .expect("probabilistic approach labels columns");
        assert_eq!(cols.len(), obs.len());
    }

    #[test]
    fn names() {
        assert_eq!(CspSegmenter::default().name(), "CSP");
        assert_eq!(ProbSegmenter::default().name(), "probabilistic");
    }

    #[test]
    fn ablation_constructors() {
        assert!(
            !CspSegmenter::without_position_constraints()
                .options
                .position_constraints
        );
        assert!(!ProbSegmenter::without_period_model().options.period_model);
    }
}
