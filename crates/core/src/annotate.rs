//! Semantic column annotation.
//!
//! Section 3.4 of the paper: "The column labels will be `L1, ..., Lk` ...
//! To provide them with more semantically meaningful labels, we can use
//! other automatic extraction techniques, such as those described in the
//! Roadrunner system \[2\]." — and Section 6.3 envisions using them to
//! "reconstruct the relational database behind the Web site".
//!
//! This module implements that annotation step: a pattern-based field-type
//! recognizer over an extract's token sequence, and a majority vote per
//! learned column. It is deliberately syntactic (token shapes, not
//! vocabularies) to stay domain independent like the rest of the system.

use std::fmt;

use tableseg_extract::Observations;
use tableseg_html::{Token, TokenType};

/// A recognized semantic field type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SemanticLabel {
    /// `(740) 335-5555` or `740-335-5555`.
    PhoneNumber,
    /// A five-digit code.
    ZipCode,
    /// An amount with a two-digit decimal fraction, e.g. `115000.00`.
    Money,
    /// `03-17-1998`-style dates.
    Date,
    /// A single year between 1800 and 2100.
    Year,
    /// `Findlay, OH`: capitalized word(s), comma, two-letter state code.
    CityState,
    /// `221 Washington St`: leading number, capitalized words.
    StreetAddress,
    /// Two or three capitalized words (possibly with a middle initial).
    PersonName,
    /// Digit-heavy codes: long digit runs or digit groups with dashes.
    Identifier,
    /// Anything textual that fits no stronger pattern.
    Text,
}

impl SemanticLabel {
    /// A short lowercase name.
    pub const fn name(self) -> &'static str {
        match self {
            SemanticLabel::PhoneNumber => "phone",
            SemanticLabel::ZipCode => "zip",
            SemanticLabel::Money => "money",
            SemanticLabel::Date => "date",
            SemanticLabel::Year => "year",
            SemanticLabel::CityState => "city-state",
            SemanticLabel::StreetAddress => "street-address",
            SemanticLabel::PersonName => "person-name",
            SemanticLabel::Identifier => "identifier",
            SemanticLabel::Text => "text",
        }
    }
}

impl fmt::Display for SemanticLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn is_num(t: &Token) -> bool {
    t.types.contains(TokenType::Numeric)
}

fn is_cap(t: &Token) -> bool {
    t.types.contains(TokenType::Capitalized)
}

fn digits(t: &Token) -> usize {
    t.text.chars().filter(char::is_ascii_digit).count()
}

/// Recognizes the semantic type of one extract from its token sequence.
pub fn recognize(tokens: &[Token]) -> SemanticLabel {
    let texts: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
    let n = tokens.len();
    if n == 0 {
        return SemanticLabel::Text;
    }

    // Phone: ( ddd ) ddd - dddd  or  ddd - ddd - dddd.
    if n == 6
        && texts[0] == "("
        && is_num(&tokens[1])
        && texts[2] == ")"
        && is_num(&tokens[3])
        && texts[4] == "-"
        && is_num(&tokens[5])
        && digits(&tokens[5]) == 4
    {
        return SemanticLabel::PhoneNumber;
    }
    if n == 5
        && is_num(&tokens[0])
        && texts[1] == "-"
        && is_num(&tokens[2])
        && texts[3] == "-"
        && is_num(&tokens[4])
        && digits(&tokens[0]) == 3
        && digits(&tokens[4]) == 4
        // North American area codes never start with 0 or 1 — this is
        // what separates dashed phone numbers from parcel-id-style codes.
        && !texts[0].starts_with(['0', '1'])
    {
        return SemanticLabel::PhoneNumber;
    }

    // Date: dd - dd - yyyy.
    if n == 5
        && is_num(&tokens[0])
        && texts[1] == "-"
        && is_num(&tokens[2])
        && texts[3] == "-"
        && is_num(&tokens[4])
        && digits(&tokens[0]) <= 2
        && digits(&tokens[2]) <= 2
        && digits(&tokens[4]) == 4
    {
        return SemanticLabel::Date;
    }

    // Money: d+ . dd
    if n == 3
        && is_num(&tokens[0])
        && texts[1] == "."
        && is_num(&tokens[2])
        && digits(&tokens[2]) == 2
    {
        return SemanticLabel::Money;
    }

    // Single-token cases.
    if n == 1 && is_num(&tokens[0]) {
        let d = digits(&tokens[0]);
        if d == 5 {
            return SemanticLabel::ZipCode;
        }
        if d == 4 {
            if let Ok(y) = tokens[0].text.parse::<u32>() {
                if (1800..=2100).contains(&y) {
                    return SemanticLabel::Year;
                }
            }
        }
        if d >= 6 {
            return SemanticLabel::Identifier;
        }
    }

    // Identifier: digit groups joined by dashes (e.g. 042-118-0937).
    if n >= 3
        && n % 2 == 1
        && tokens.iter().step_by(2).all(is_num)
        && texts.iter().skip(1).step_by(2).all(|&t| t == "-")
        && digits(&tokens[0]) >= 3
    {
        return SemanticLabel::Identifier;
    }

    // City, ST: capitalized word(s) , ALLCAPS-2.
    if n >= 3 {
        let last = &tokens[n - 1];
        if texts[n - 2] == ","
            && last.types.contains(TokenType::Allcaps)
            && last.text.len() == 2
            && tokens[..n - 2].iter().all(is_cap)
        {
            return SemanticLabel::CityState;
        }
    }

    // Street address: number then capitalized words.
    if n >= 2 && is_num(&tokens[0]) && tokens[1..].iter().all(is_cap) {
        return SemanticLabel::StreetAddress;
    }

    // Person name: 2-3 capitalized words, optionally with a middle
    // initial ("George W . Smith").
    let name_like = tokens.iter().all(|t| {
        is_cap(t) || t.text == "." // middle initial dot
    });
    let cap_count = tokens.iter().filter(|t| is_cap(t)).count();
    if name_like && (2..=4).contains(&cap_count) {
        return SemanticLabel::PersonName;
    }

    SemanticLabel::Text
}

/// The annotation of one learned column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnAnnotation {
    /// The column label index (the paper's `L1` is 0).
    pub column: u32,
    /// The majority semantic label of the column's extracts.
    pub label: SemanticLabel,
    /// Fraction of the column's extracts that voted for the label.
    pub confidence: f64,
    /// Number of extracts observed in the column.
    pub support: usize,
}

/// Annotates the columns of a probabilistic segmentation: for each column
/// label, the majority [`SemanticLabel`] over its extracts.
///
/// `columns[i]` is the learned column of `obs.items[i]` (from
/// [`crate::ProbSegmenter`]).
pub fn annotate_columns(obs: &Observations, columns: &[u32]) -> Vec<ColumnAnnotation> {
    assert_eq!(obs.items.len(), columns.len());
    let num_columns = columns.iter().max().map_or(0, |&c| c as usize + 1);
    let mut votes: Vec<std::collections::HashMap<SemanticLabel, usize>> =
        vec![std::collections::HashMap::new(); num_columns];
    for (item, &c) in obs.items.iter().zip(columns) {
        let label = recognize(&item.extract.tokens);
        *votes[c as usize].entry(label).or_default() += 1;
    }
    votes
        .into_iter()
        .enumerate()
        .filter_map(|(c, v)| {
            let support: usize = v.values().sum();
            // An unvoted column yields no max and drops out here.
            v.into_iter()
                .max_by_key(|&(l, n)| (n, std::cmp::Reverse(l.name())))
                .map(|(label, count)| ColumnAnnotation {
                    column: c as u32,
                    label,
                    confidence: count as f64 / support as f64,
                    support,
                })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    fn rec(s: &str) -> SemanticLabel {
        recognize(&tokenize(s))
    }

    #[test]
    fn phone_patterns() {
        assert_eq!(rec("(740) 335-5555"), SemanticLabel::PhoneNumber);
        assert_eq!(rec("740-335-5555"), SemanticLabel::PhoneNumber);
        assert_ne!(rec("335-5555"), SemanticLabel::PhoneNumber);
    }

    #[test]
    fn zip_year_identifier() {
        assert_eq!(rec("45840"), SemanticLabel::ZipCode);
        assert_eq!(rec("1998"), SemanticLabel::Year);
        assert_eq!(rec("123456"), SemanticLabel::Identifier);
        assert_eq!(rec("042-118-0937"), SemanticLabel::Identifier);
    }

    #[test]
    fn money_and_date() {
        assert_eq!(rec("115000.00"), SemanticLabel::Money);
        assert_eq!(rec("24.99"), SemanticLabel::Money);
        assert_eq!(rec("03-17-1998"), SemanticLabel::Date);
    }

    #[test]
    fn city_state() {
        assert_eq!(rec("Findlay, OH"), SemanticLabel::CityState);
        assert_eq!(rec("New Holland, PA"), SemanticLabel::CityState);
        assert_ne!(rec("Findlay, Ohio"), SemanticLabel::CityState);
    }

    #[test]
    fn street_address_and_name() {
        assert_eq!(rec("221 Washington St"), SemanticLabel::StreetAddress);
        assert_eq!(rec("John Smith"), SemanticLabel::PersonName);
        assert_eq!(rec("George W. Smith"), SemanticLabel::PersonName);
    }

    #[test]
    fn fallback_text() {
        assert_eq!(rec("street address not available"), SemanticLabel::Text);
        assert_eq!(rec(""), SemanticLabel::Text);
        // Long capitalized phrases (book titles) are not names.
        assert_eq!(rec("The Hidden Empire of the North"), SemanticLabel::Text);
    }

    #[test]
    fn column_majority_vote() {
        use tableseg_extract::build_observations;
        use tableseg_html::Token;
        let list = tokenize(
            "<td>John Smith</td><td>(740) 335-5555</td>\
             <td>Jane Doe</td><td>(614) 222-1111</td>",
        );
        let d1 = tokenize("<p>John Smith</p><p>(740) 335-5555</p>");
        let d2 = tokenize("<p>Jane Doe</p><p>(614) 222-1111</p>");
        let d3 = tokenize("<p>z</p>");
        let refs: Vec<&[Token]> = vec![&d1, &d2, &d3];
        let obs = build_observations(&list, &[], &refs);
        let columns = vec![0, 1, 0, 1];
        let ann = annotate_columns(&obs, &columns);
        assert_eq!(ann.len(), 2);
        assert_eq!(ann[0].label, SemanticLabel::PersonName);
        assert_eq!(ann[1].label, SemanticLabel::PhoneNumber);
        assert_eq!(ann[0].confidence, 1.0);
        assert_eq!(ann[0].support, 2);
    }
}
