//! Wrapper induction from automatic segmentations.
//!
//! The paper situates itself in the web-wrapper literature (Section 1):
//! classic wrapper induction (Kushmerick's HLRT family) learns row and
//! field delimiters from *user-labeled* example records. The segmentations
//! produced by this system are exactly such labels — obtained with no user
//! at all. This module closes the loop: it induces an HLRT-style row
//! wrapper from one segmented list page, after which **new pages from the
//! same site can be extracted without any detail pages**.
//!
//! The wrapper consists of token sequences: a *head* delimiter preceding
//! each record's first field, one *separator* between each pair of
//! adjacent fields, and a *tail* following the last field. Induction takes
//! the records that display the full field count (the paper's period π)
//! and intersects their delimiter contexts; application scans a token
//! stream for head occurrences and reads fields up to each separator.

use tableseg_extract::Segmentation;
use tableseg_html::Token;

use crate::pipeline::PreparedPage;

/// Maximum delimiter length learned, in tokens.
const MAX_DELIM: usize = 8;

/// Maximum field length accepted during application, in tokens.
const MAX_FIELD: usize = 40;

/// An HLRT-style row wrapper: token-text delimiters around and between
/// the fields of one record row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RowWrapper {
    /// Tokens immediately preceding a record's first field.
    pub head: Vec<String>,
    /// Tokens between field `i` and field `i+1` (`num_fields - 1` entries).
    pub seps: Vec<Vec<String>>,
    /// Tokens immediately following a record's last field.
    pub tail: Vec<String>,
}

impl RowWrapper {
    /// Number of fields per record.
    pub fn num_fields(&self) -> usize {
        self.seps.len() + 1
    }

    /// Extracts records from a token stream (e.g. a *new* list page from
    /// the same site, tokenized with
    /// [`tokenize`](tableseg_html::lexer::tokenize)).
    ///
    /// Returns one `Vec<String>` of field texts per detected record.
    pub fn extract(&self, tokens: &[Token]) -> Vec<Vec<String>> {
        let texts: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        let mut records = Vec::new();
        let mut i = 0;
        while i + self.head.len() <= texts.len() {
            if !matches_at(&texts, i, &self.head) {
                i += 1;
                continue;
            }
            let mut pos = i + self.head.len();
            let mut fields = Vec::with_capacity(self.num_fields());
            let mut ok = true;
            for (f, delim) in self
                .seps
                .iter()
                .map(Vec::as_slice)
                .chain(std::iter::once(self.tail.as_slice()))
                .enumerate()
            {
                match read_field(&texts, pos, delim) {
                    Some((field, next)) => {
                        fields.push(field);
                        pos = next;
                    }
                    None => {
                        ok = false;
                        let _ = f;
                        break;
                    }
                }
            }
            if ok {
                records.push(fields);
                // The tail of one row often overlaps the head of the next
                // (e.g. tail `</td></tr>`, head `</tr><tr><td>` sharing
                // `</tr>`), so rewind by the tail length before scanning
                // for the next head. The record body itself is consumed,
                // so no row can match twice.
                i = pos.saturating_sub(self.tail.len());
            } else {
                i += 1;
            }
        }
        records
    }
}

fn matches_at(texts: &[&str], pos: usize, delim: &[String]) -> bool {
    pos + delim.len() <= texts.len() && delim.iter().zip(&texts[pos..]).all(|(d, t)| d == t)
}

/// Reads one field starting at `pos`, terminated by `delim`. Returns the
/// joined field text and the position *after* the delimiter.
///
/// A field is an extract, and extracts never contain HTML tags
/// (Section 3.2's separator definition) — hitting a tag before the
/// delimiter means the row does not fit the wrapper, so the read fails
/// and the caller resynchronizes. This is what keeps a malformed row from
/// swallowing its successors.
fn read_field(texts: &[&str], pos: usize, delim: &[String]) -> Option<(String, usize)> {
    for len in 1..=MAX_FIELD {
        let end = pos + len;
        if end > texts.len() {
            return None;
        }
        if texts[end - 1].starts_with('<') && texts[end - 1].len() > 1 {
            // A tag inside the would-be field: not a record row.
            return None;
        }
        if matches_at(texts, end, delim) {
            return Some((texts[pos..end].join(" "), end + delim.len()));
        }
    }
    None
}

/// Induces a row wrapper from a prepared page and its segmentation.
///
/// Returns `None` when the page offers no consistent delimiters — fewer
/// than two full records, records with differing field counts only, or
/// empty common contexts.
pub fn induce_wrapper(prepared: &PreparedPage, seg: &Segmentation) -> Option<RowWrapper> {
    let tokens = &prepared.slot_tokens;
    let obs = &prepared.observations;

    // Field spans per record: (start, end) token ranges of each assigned
    // extract, in stream order.
    let mut rows: Vec<Vec<(usize, usize)>> = Vec::new();
    for extracts in seg.records() {
        if extracts.is_empty() {
            continue;
        }
        let spans: Vec<(usize, usize)> = extracts
            .iter()
            .map(|&i| {
                let e = &obs.items[i].extract;
                (e.start, e.start + e.len())
            })
            .collect();
        rows.push(spans);
    }
    // Keep the modal field count.
    let modal = {
        let mut counts = std::collections::HashMap::new();
        for r in &rows {
            *counts.entry(r.len()).or_insert(0usize) += 1;
        }
        counts
            .into_iter()
            .max_by_key(|&(len, n)| (n, len))
            .map(|(len, _)| len)?
    };
    let rows: Vec<&Vec<(usize, usize)>> = rows.iter().filter(|r| r.len() == modal).collect();
    if rows.len() < 2 || modal == 0 {
        return None;
    }

    // Head: longest common suffix of the token texts preceding each
    // record's first field.
    let head = common_suffix(
        rows.iter()
            .map(|r| preceding(tokens, r[0].0))
            .collect::<Vec<_>>(),
    );
    if head.is_empty() {
        return None;
    }

    // Separators between adjacent fields: the between tokens must agree as
    // a common suffix (anchoring the next field's start).
    let mut seps = Vec::with_capacity(modal - 1);
    for f in 0..modal - 1 {
        let sep = common_suffix(
            rows.iter()
                .map(|r| {
                    let (_, end) = r[f];
                    let (next_start, _) = r[f + 1];
                    tokens[end..next_start]
                        .iter()
                        .map(|t| t.text.clone())
                        .collect::<Vec<_>>()
                })
                .collect::<Vec<_>>(),
        );
        if sep.is_empty() {
            return None;
        }
        seps.push(sep);
    }

    // Tail: longest common prefix of the tokens following each record's
    // last field.
    let tail = common_prefix(
        rows.iter()
            .map(|r| following(tokens, r[modal - 1].1))
            .collect::<Vec<_>>(),
    );
    if tail.is_empty() {
        return None;
    }

    Some(RowWrapper { head, seps, tail })
}

/// Up to [`MAX_DELIM`] token texts preceding `pos`.
fn preceding(tokens: &[Token], pos: usize) -> Vec<String> {
    let start = pos.saturating_sub(MAX_DELIM);
    tokens[start..pos].iter().map(|t| t.text.clone()).collect()
}

/// Up to [`MAX_DELIM`] token texts following `pos`.
fn following(tokens: &[Token], pos: usize) -> Vec<String> {
    let end = (pos + MAX_DELIM).min(tokens.len());
    tokens[pos..end].iter().map(|t| t.text.clone()).collect()
}

/// Longest common suffix of several sequences.
fn common_suffix(seqs: Vec<Vec<String>>) -> Vec<String> {
    let min_len = seqs.iter().map(Vec::len).min().unwrap_or(0);
    let mut k = 0;
    'outer: while k < min_len {
        let probe = &seqs[0][seqs[0].len() - 1 - k];
        for s in &seqs[1..] {
            if &s[s.len() - 1 - k] != probe {
                break 'outer;
            }
        }
        k += 1;
    }
    let first = &seqs[0];
    first[first.len() - k..].to_vec()
}

/// Longest common prefix of several sequences.
fn common_prefix(seqs: Vec<Vec<String>>) -> Vec<String> {
    let min_len = seqs.iter().map(Vec::len).min().unwrap_or(0);
    let mut k = 0;
    'outer: while k < min_len {
        let probe = &seqs[0][k];
        for s in &seqs[1..] {
            if &s[k] != probe {
                break 'outer;
            }
        }
        k += 1;
    }
    seqs[0][..k].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare, SitePages};
    use crate::segmenter::{CspSegmenter, Segmenter};
    use tableseg_html::lexer::tokenize;

    fn page(rows: &[(&str, &str)]) -> String {
        let body: String = rows
            .iter()
            .map(|(a, b)| format!("<tr><td>{a}</td><td>{b}</td></tr>"))
            .collect();
        format!(
            "<html><h1>Example Results Page</h1><table>{body}</table>\
             <p>Copyright 2004 Example Inc Footer</p></html>"
        )
    }

    fn prepared_and_seg() -> (PreparedPage, Segmentation) {
        let a = page(&[
            ("Ada Lovelace", "(555) 100-0001"),
            ("Alan Turing", "(555) 100-0002"),
            ("Grace Hopper", "(555) 100-0003"),
        ]);
        let b = page(&[("Donald Knuth", "(555) 100-0004")]);
        let details = vec![
            "<html><h2>Ada Lovelace</h2><p>(555) 100-0001</p></html>",
            "<html><h2>Alan Turing</h2><p>(555) 100-0002</p></html>",
            "<html><h2>Grace Hopper</h2><p>(555) 100-0003</p></html>",
        ];
        let a: &'static str = Box::leak(a.into_boxed_str());
        let b: &'static str = Box::leak(b.into_boxed_str());
        let prepared = prepare(&SitePages {
            list_pages: vec![a, b],
            target: 0,
            detail_pages: details,
        });
        let seg = CspSegmenter::default()
            .segment(&prepared.observations)
            .segmentation;
        (prepared, seg)
    }

    #[test]
    fn induces_row_delimiters() {
        let (prepared, seg) = prepared_and_seg();
        let w = induce_wrapper(&prepared, &seg).expect("wrapper");
        assert_eq!(w.num_fields(), 2);
        assert_eq!(w.head.last().map(String::as_str), Some("<td>"));
        assert_eq!(w.seps[0].last().map(String::as_str), Some("<td>"));
        assert_eq!(w.tail.first().map(String::as_str), Some("</td>"));
    }

    #[test]
    fn wrapper_extracts_from_a_new_page_without_detail_pages() {
        let (prepared, seg) = prepared_and_seg();
        let w = induce_wrapper(&prepared, &seg).expect("wrapper");
        // A brand-new page from the same site.
        let new_page = page(&[
            ("Edsger Dijkstra", "(555) 100-0009"),
            ("Tony Hoare", "(555) 100-0010"),
        ]);
        let records = w.extract(&tokenize(&new_page));
        assert_eq!(records.len(), 2, "{records:?}");
        assert_eq!(records[0][0], "Edsger Dijkstra");
        assert!(records[0][1].contains("100 - 0009"));
        assert_eq!(records[1][0], "Tony Hoare");
    }

    #[test]
    fn too_few_records_yield_no_wrapper() {
        let a = page(&[("Ada Lovelace", "(555) 100-0001")]);
        let b = page(&[("Donald Knuth", "(555) 100-0004")]);
        let details = vec!["<html><h2>Ada Lovelace</h2><p>(555) 100-0001</p></html>"];
        let a: &'static str = Box::leak(a.into_boxed_str());
        let b: &'static str = Box::leak(b.into_boxed_str());
        let prepared = prepare(&SitePages {
            list_pages: vec![a, b],
            target: 0,
            detail_pages: details,
        });
        let seg = CspSegmenter::default()
            .segment(&prepared.observations)
            .segmentation;
        assert!(induce_wrapper(&prepared, &seg).is_none());
    }

    #[test]
    fn common_affix_helpers() {
        let v = |xs: &[&str]| xs.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert_eq!(
            common_suffix(vec![v(&["a", "x", "y"]), v(&["b", "x", "y"])]),
            v(&["x", "y"])
        );
        assert_eq!(
            common_prefix(vec![v(&["x", "y", "a"]), v(&["x", "y", "b"])]),
            v(&["x", "y"])
        );
        assert!(common_suffix(vec![v(&["a"]), v(&["b"])]).is_empty());
        assert!(common_prefix(vec![v(&[]), v(&["b"])]).is_empty());
    }

    #[test]
    fn extract_resyncs_after_damage() {
        let (prepared, seg) = prepared_and_seg();
        let w = induce_wrapper(&prepared, &seg).expect("wrapper");
        // A page with one malformed row between two good ones.
        let html = "<tr><td>Edsger Dijkstra</td><td>(555) 100-0009</td></tr>\
                    <tr><td>broken row no second cell</tr>\
                    <tr><td>Tony Hoare</td><td>(555) 100-0010</td></tr>";
        let records = w.extract(&tokenize(html));
        assert!(records.iter().any(|r| r[0] == "Edsger Dijkstra"));
        assert!(records.iter().any(|r| r[0] == "Tony Hoare"));
    }
}
