//! Run-level robustness accounting.
//!
//! A chaos sweep (or a real crawl) processes hundreds of pages, some of
//! them damaged. [`RobustnessReport`] folds per-page [`PageOutcome`]s into
//! the numbers a run cares about: how many pages were clean, degraded or
//! failed, which warnings fired how often, and which pipeline stage each
//! failure was attributed to (the stage axis matches the timing
//! registry's, so failure counts and wall-clock times pivot together).

use tableseg_html::SegError;

use crate::outcome::PageOutcome;

/// Aggregated outcome counts for one run (or one slice of a run — reports
/// merge).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RobustnessReport {
    /// Pages recorded.
    pub pages: usize,
    /// Pages processed cleanly.
    pub ok: usize,
    /// Pages processed with warnings.
    pub degraded: usize,
    /// Pages that could not be processed.
    pub failed: usize,
    /// Warning counts by label, in first-seen order.
    pub warnings: Vec<(&'static str, usize)>,
    /// Failure counts by attributed pipeline stage, in first-seen order.
    pub failures_by_stage: Vec<(&'static str, usize)>,
}

fn bump(rows: &mut Vec<(&'static str, usize)>, label: &'static str) {
    match rows.iter_mut().find(|(l, _)| *l == label) {
        Some((_, n)) => *n += 1,
        None => rows.push((label, 1)),
    }
}

impl RobustnessReport {
    /// An empty report.
    pub fn new() -> RobustnessReport {
        RobustnessReport::default()
    }

    /// Folds one page outcome into the report.
    pub fn record(&mut self, outcome: &PageOutcome) {
        self.pages += 1;
        match outcome {
            PageOutcome::Ok(_) => self.ok += 1,
            PageOutcome::Degraded { warnings, .. } => {
                self.degraded += 1;
                for w in warnings {
                    bump(&mut self.warnings, w.label());
                }
            }
            PageOutcome::Failed { error } => {
                self.failed += 1;
                bump(&mut self.failures_by_stage, error.stage());
            }
        }
    }

    /// Records a page that failed *outside* the front end (e.g. a solver
    /// failure after a successful prepare): counts one failed page and
    /// attributes the error to its stage. `pages == ok + degraded +
    /// failed` always holds.
    pub fn record_error(&mut self, error: &SegError) {
        self.pages += 1;
        self.failed += 1;
        bump(&mut self.failures_by_stage, error.stage());
    }

    /// Folds `other` into this report.
    pub fn merge(&mut self, other: &RobustnessReport) {
        self.pages += other.pages;
        self.ok += other.ok;
        self.degraded += other.degraded;
        self.failed += other.failed;
        for &(label, n) in &other.warnings {
            match self.warnings.iter_mut().find(|(l, _)| *l == label) {
                Some((_, m)) => *m += n,
                None => self.warnings.push((label, n)),
            }
        }
        for &(label, n) in &other.failures_by_stage {
            match self.failures_by_stage.iter_mut().find(|(l, _)| *l == label) {
                Some((_, m)) => *m += n,
                None => self.failures_by_stage.push((label, n)),
            }
        }
    }

    /// Builds a report from a slice of outcomes.
    pub fn from_outcomes(outcomes: &[PageOutcome]) -> RobustnessReport {
        let mut report = RobustnessReport::new();
        for o in outcomes {
            report.record(o);
        }
        report
    }

    /// `true` if every recorded page was clean.
    pub fn all_clean(&self) -> bool {
        self.degraded == 0 && self.failed == 0
    }

    /// Converts the report into the manifest's robustness section, with
    /// warning and failure rows sorted by label (the report's own
    /// first-seen order is already deterministic — reports are assembled
    /// in job order — but sorted rows make manifests comparable across
    /// configurations that discover warnings in different orders).
    pub fn rollup(&self) -> tableseg_obs::RobustnessRollup {
        let sorted = |rows: &[(&'static str, usize)]| {
            let mut rows: Vec<(String, u64)> = rows
                .iter()
                .map(|&(label, n)| (label.to_string(), n as u64))
                .collect();
            rows.sort();
            rows
        };
        tableseg_obs::RobustnessRollup {
            pages: self.pages as u64,
            ok: self.ok as u64,
            degraded: self.degraded as u64,
            failed: self.failed as u64,
            warnings: sorted(&self.warnings),
            failures_by_stage: sorted(&self.failures_by_stage),
        }
    }

    /// Renders the report as a small fixed-width text block.
    pub fn render(&self) -> String {
        let mut out = format!(
            "pages {}  ok {}  degraded {}  failed {}\n",
            self.pages, self.ok, self.degraded, self.failed
        );
        if !self.warnings.is_empty() {
            out.push_str("warnings:");
            for (label, n) in &self.warnings {
                out.push_str(&format!("  {label} {n}"));
            }
            out.push('\n');
        }
        if !self.failures_by_stage.is_empty() {
            out.push_str("failures by stage:");
            for (label, n) in &self.failures_by_stage {
                out.push_str(&format!("  {label} {n}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Warning;
    use crate::pipeline::{prepare, SitePages};

    fn prepared() -> crate::pipeline::PreparedPage {
        let a = "<html><h1>R</h1><table><tr><td>Ada Lovelace</td></tr>\
                 <tr><td>Alan Turing</td></tr></table></html>";
        prepare(&SitePages {
            list_pages: vec![a],
            target: 0,
            detail_pages: vec!["<html><h2>Ada Lovelace</h2></html>"],
        })
    }

    #[test]
    fn counts_and_merge() {
        let page = prepared();
        let outcomes = vec![
            PageOutcome::Ok(page.clone()),
            PageOutcome::Degraded {
                page: page.clone(),
                warnings: vec![Warning::WholePageFallback, Warning::NoDetailPages],
            },
            PageOutcome::Failed {
                error: SegError::NoExtracts,
            },
        ];
        let mut r = RobustnessReport::from_outcomes(&outcomes);
        assert_eq!((r.pages, r.ok, r.degraded, r.failed), (3, 1, 1, 1));
        assert_eq!(
            r.warnings,
            vec![("whole_page_fallback", 1), ("no_detail_pages", 1)]
        );
        assert_eq!(r.failures_by_stage, vec![("extract", 1)]);
        assert!(!r.all_clean());

        let mut other = RobustnessReport::new();
        other.record(&PageOutcome::Ok(page));
        other.record_error(&SegError::SolverFailed {
            solver: "CSP",
            detail: "x".into(),
        });
        r.merge(&other);
        assert_eq!((r.pages, r.ok, r.failed), (5, 2, 2));
        assert_eq!(r.pages, r.ok + r.degraded + r.failed);
        assert_eq!(r.failures_by_stage, vec![("extract", 1), ("solve", 1)]);
    }

    #[test]
    fn record_error_counts_a_failed_page() {
        let mut r = RobustnessReport::new();
        r.record_error(&SegError::NoObservations { skipped: 2 });
        assert_eq!(r.failed, 1);
        assert_eq!(r.failures_by_stage, vec![("match", 1)]);
    }

    #[test]
    fn render_mentions_everything() {
        let mut r = RobustnessReport::new();
        r.record(&PageOutcome::Failed {
            error: SegError::NoExtracts,
        });
        let text = r.render();
        assert!(text.contains("failed 1"), "{text}");
        assert!(text.contains("extract"), "{text}");
        assert!(RobustnessReport::new().all_clean());
    }
}
