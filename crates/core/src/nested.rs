//! The recursive nested-record pass: re-running template induction and
//! CSP/HMM segmentation *inside* each parent record slot.
//!
//! Some list pages nest a repeating structure inside every record — a
//! book with one row per edition, a person with one row per address
//! ("Extraction of Flat and Nested Data Records from Web Pages",
//! PAPERS.md). The paper's machinery handles one level; this module
//! applies the same machinery one level down:
//!
//! 1. the caller supplies the byte span of each parent record on the list
//!    page (ground truth in the harness, or spans derived from a
//!    parent-level segmentation via [`parent_spans_from_groups`]);
//! 2. the parent slices become the "sample list pages" of a **sub-site**:
//!    they share the parent template's repeated sub-structure, so
//!    [`SiteTemplate`] induction runs over them exactly as it does over a
//!    site's list pages;
//! 3. each parent slice is prepared against that sub-template with the
//!    parent's own sub-detail pages (the pages its nested rows link to)
//!    and segmented by any [`Segmenter`] — a genuine recursive run of the
//!    induction + CSP/HMM stack.
//!
//! Offsets in the result are absolute (relative to the full list page),
//! so `tableseg-eval`'s nested classification can score them directly
//! against nested ground-truth spans.

use std::ops::Range;

use tableseg_html::SegError;
use tableseg_obs::{Counter, Recorder};

use crate::pipeline::{try_prepare_with_template, SiteTemplate};
use crate::segmenter::Segmenter;
use crate::timing::{Stage, StageTimes};

/// The sub-segmentation of one parent record slot.
#[derive(Debug, Clone)]
pub struct NestedParentResult {
    /// The parent's byte span on the list page.
    pub span: Range<usize>,
    /// Sub-record groups: `groups[r]` holds the indices of the extracts
    /// assigned to sub-record `r` (indices into `extract_offsets`).
    pub groups: Vec<Vec<usize>>,
    /// Byte offset of each kept extract, **absolute** in the list page.
    pub extract_offsets: Vec<usize>,
    /// `true` if the sub-solver had to relax its constraints.
    pub relaxed: bool,
}

/// The result of one recursive pass over a page's parent slots.
#[derive(Debug, Clone)]
pub struct NestedRun {
    /// One entry per parent span, in input order.
    pub parents: Vec<NestedParentResult>,
    /// Wall-clock time of the whole pass, charged to `solve` and
    /// re-attributed to the `solve.nested` sub-stage.
    pub timings: StageTimes,
    /// `nested.*` counters. Empty unless [`tableseg_obs::set_enabled`]
    /// is on.
    pub metrics: Recorder,
}

/// Derives parent record byte spans from a parent-level segmentation: each
/// non-empty group starts at its first extract and runs to the start of
/// the next group (document order); the last runs to `end`. This is how
/// the detect/nested harness turns the *predicted* parent segmentation
/// into the slots the recursive pass descends into.
pub fn parent_spans_from_groups(
    groups: &[Vec<usize>],
    extract_offsets: &[usize],
    end: usize,
) -> Vec<Range<usize>> {
    let mut starts: Vec<usize> = groups
        .iter()
        .filter_map(|g| g.iter().filter_map(|&i| extract_offsets.get(i)).min())
        .copied()
        .collect();
    starts.sort_unstable();
    starts.dedup();
    let mut spans = Vec::with_capacity(starts.len());
    for (i, &start) in starts.iter().enumerate() {
        let stop = starts.get(i + 1).copied().unwrap_or(end.max(start));
        spans.push(start..stop);
    }
    spans
}

/// Slices `page[span]`, nudging both ends to the nearest UTF-8 character
/// boundary (chaos-damaged pages can put multi-byte replacement
/// characters under a span edge).
fn slice_lossy(page: &str, span: &Range<usize>) -> Range<usize> {
    let mut start = span.start.min(page.len());
    while start < page.len() && !page.is_char_boundary(start) {
        start += 1;
    }
    let mut end = span.end.min(page.len()).max(start);
    while end > start && !page.is_char_boundary(end) {
        end -= 1;
    }
    start..end
}

/// Runs the recursive nested pass over one list page.
///
/// * `page` — the full list-page HTML;
/// * `parent_spans` — the byte span of each parent record slot;
/// * `details` — the sub-detail pages of each parent, aligned with
///   `parent_spans` (`details[i][j]` belongs to parent `i`'s sub-record
///   `r_{j+1}`);
/// * `segmenter` — the sub-solver (CSP or probabilistic).
///
/// Induction over the parent slices runs **once**; each parent is then
/// prepared and segmented against the shared sub-template. Errors from a
/// degenerate sub-site (all parents empty, solver failure) surface as
/// [`SegError`] — one damaged page cannot abort a batch.
pub fn try_segment_nested(
    page: &str,
    parent_spans: &[Range<usize>],
    details: &[Vec<&str>],
    segmenter: &dyn Segmenter,
) -> Result<NestedRun, SegError> {
    if parent_spans.is_empty() {
        return Err(SegError::EmptyInput {
            what: "parent record spans",
        });
    }
    if details.len() != parent_spans.len() {
        return Err(SegError::StreamMisaligned {
            what: "per-parent detail pages",
            expected: parent_spans.len(),
            got: details.len(),
        });
    }
    let mut timings = StageTimes::new();
    let start = std::time::Instant::now();
    let spans: Vec<Range<usize>> = parent_spans.iter().map(|s| slice_lossy(page, s)).collect();
    let slices: Vec<&str> = spans.iter().map(|s| &page[s.clone()]).collect();
    let template = SiteTemplate::try_build(&slices)?;
    let mut parents = Vec::with_capacity(slices.len());
    let mut sub_records = 0u64;
    for (i, span) in spans.iter().enumerate() {
        let prepared = try_prepare_with_template(&template, i, &details[i])?;
        let outcome = segmenter.try_segment(&prepared.observations)?;
        let groups = outcome.segmentation.records();
        sub_records += groups.iter().filter(|g| !g.is_empty()).count() as u64;
        let extract_offsets = prepared
            .extract_offsets
            .iter()
            .map(|&off| span.start + off)
            .collect();
        parents.push(NestedParentResult {
            span: span.clone(),
            groups,
            extract_offsets,
            relaxed: outcome.relaxed,
        });
    }
    let elapsed = start.elapsed();
    // The recursive pass is solver work: it counts in the solve total and
    // the solve.nested sub-stage re-attributes it, like solve.csp does.
    timings.add(Stage::Solve, elapsed);
    timings.add(Stage::SolveNested, elapsed);
    let mut metrics = Recorder::new();
    metrics.bump(Counter::NestedParents, parents.len() as u64);
    metrics.bump(Counter::NestedSubRecords, sub_records);
    Ok(NestedRun {
        parents,
        timings,
        metrics,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmenter::CspSegmenter;

    /// A page with two parent records, each nesting a two-row sub-table.
    fn nested_page() -> (String, Vec<Range<usize>>, Vec<Vec<&'static str>>) {
        let parent = |name: &str, subs: [(&str, &str); 2]| {
            format!(
                "<p><b>{name}</b></p><table>\
                 <tr><td><a href=\"/s\">{}</a></td><td>{}</td></tr>\
                 <tr><td><a href=\"/s\">{}</a></td><td>{}</td></tr>\
                 </table>",
                subs[0].0, subs[0].1, subs[1].0, subs[1].1
            )
        };
        let p0 = parent("Ada Lovelace", [("London", "1815"), ("Ockham", "1835")]);
        let p1 = parent(
            "Alan Turing",
            [("Maida Vale", "1912"), ("Wilmslow", "1954")],
        );
        let page = format!("<html><div>{p0}</div><div>{p1}</div></html>");
        let s0 = page.find("<p>").unwrap();
        let e0 = page.find("</div>").unwrap();
        let s1 = page[e0..].find("<p>").unwrap() + e0;
        let e1 = page.rfind("</table>").unwrap() + "</table>".len();
        let details = vec![
            vec![
                "<html><h2>London</h2><p>1815</p></html>",
                "<html><h2>Ockham</h2><p>1835</p></html>",
            ],
            vec![
                "<html><h2>Maida Vale</h2><p>1912</p></html>",
                "<html><h2>Wilmslow</h2><p>1954</p></html>",
            ],
        ];
        (page, vec![s0..e0, s1..e1], details)
    }

    #[test]
    fn segments_sub_records_inside_each_parent() {
        let (page, spans, details) = nested_page();
        let run = try_segment_nested(&page, &spans, &details, &CspSegmenter::default())
            .expect("clean nested page");
        assert_eq!(run.parents.len(), 2);
        for (parent, span) in run.parents.iter().zip(&spans) {
            assert_eq!(&parent.span, span);
            let non_empty = parent.groups.iter().filter(|g| !g.is_empty()).count();
            assert_eq!(non_empty, 2, "{:?}", parent.groups);
            for &off in &parent.extract_offsets {
                assert!(span.contains(&off), "absolute offsets inside the parent");
            }
        }
        assert!(run.timings.get(Stage::SolveNested) > std::time::Duration::ZERO);
    }

    #[test]
    fn rejects_misaligned_details() {
        let (page, spans, _) = nested_page();
        let err = try_segment_nested(&page, &spans, &[], &CspSegmenter::default());
        assert!(err.is_err());
    }

    #[test]
    fn parent_spans_follow_group_starts() {
        let groups = vec![vec![2, 3], vec![0, 1], vec![]];
        let offsets = vec![10, 14, 40, 48];
        let spans = parent_spans_from_groups(&groups, &offsets, 100);
        assert_eq!(spans, vec![10..40, 40..100]);
    }
}
