//! Assembling the final records.
//!
//! "Only the strings that appeared on both list and detail pages were used
//! in record segmentation. The rest of the table data are assumed to
//! belong to the same record as the last assigned extract." (Section 6.2)

use tableseg_extract::Segmentation;

use crate::pipeline::PreparedPage;

/// One assembled record: the extracts assigned to it, in stream order,
/// including the unmatched remainder data attached per the paper's rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssembledRecord {
    /// 0-based record index (detail page index).
    pub index: usize,
    /// Field texts, in the order they appear on the list page.
    pub fields: Vec<String>,
}

/// Assembles records from a segmentation: kept extracts go to their
/// assigned records; skipped extracts (not observed on detail pages)
/// attach to the record of the last assigned extract before them.
pub fn assemble_records(prepared: &PreparedPage, seg: &Segmentation) -> Vec<AssembledRecord> {
    // Merge kept and skipped extracts back into stream order; the
    // derivation index on each extract gives the order.
    enum Item<'a> {
        Kept(usize, &'a tableseg_extract::Extract),
        Skipped(&'a tableseg_extract::Extract),
    }
    let obs = &prepared.observations;
    let mut items: Vec<(usize, Item<'_>)> = Vec::with_capacity(obs.items.len() + obs.skipped.len());
    for (i, it) in obs.items.iter().enumerate() {
        items.push((it.extract.index, Item::Kept(i, &it.extract)));
    }
    for s in &obs.skipped {
        items.push((s.extract.index, Item::Skipped(&s.extract)));
    }
    items.sort_by_key(|&(idx, _)| idx);

    let mut fields: Vec<Vec<String>> = vec![Vec::new(); seg.num_records];
    let mut current: Option<u32> = None;
    for (_, item) in items {
        match item {
            Item::Kept(i, extract) => {
                if let Some(r) = seg.assignments.get(i).copied().flatten() {
                    current = Some(r);
                    fields[r as usize].push(extract.text());
                }
                // An unassigned kept extract does not change the current
                // record and is dropped (partial CSP solutions).
            }
            Item::Skipped(extract) => {
                if let Some(r) = current {
                    fields[r as usize].push(extract.text());
                }
                // Remainder data before any assigned extract is page
                // furniture; it belongs to no record.
            }
        }
    }

    fields
        .into_iter()
        .enumerate()
        .filter(|(_, f)| !f.is_empty())
        .map(|(index, fields)| AssembledRecord { index, fields })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare, SitePages};

    fn prepared() -> PreparedPage {
        // "More Info" appears in each row but on no detail page: it is
        // skipped, and must be re-attached to the preceding record.
        let a = "<html><h1>Example Results Here</h1><table>\
                 <tr><td>Ada Lovelace</td><td>(555) 100-0001</td><td>More Info A</td></tr>\
                 <tr><td>Alan Turing</td><td>(555) 100-0002</td><td>More Info B</td></tr>\
                 </table><p>Copyright 2004 Example Inc Notice</p></html>"
            .to_owned();
        let b = "<html><h1>Example Results Here</h1><table>\
                 <tr><td>Grace Hopper</td><td>(555) 100-0003</td><td>More Info C</td></tr>\
                 </table><p>Copyright 2004 Example Inc Notice</p></html>"
            .to_owned();
        let details = vec![
            "<html><h2>Ada Lovelace</h2><p>(555) 100-0001</p></html>",
            "<html><h2>Alan Turing</h2><p>(555) 100-0002</p></html>",
        ];
        let a: &'static str = Box::leak(a.into_boxed_str());
        let b: &'static str = Box::leak(b.into_boxed_str());
        prepare(&SitePages {
            list_pages: vec![a, b],
            target: 0,
            detail_pages: details,
        })
    }

    #[test]
    fn remainder_attaches_to_preceding_record() {
        let prep = prepared();
        let seg = Segmentation {
            num_records: 2,
            assignments: vec![Some(0), Some(0), Some(1), Some(1)],
        };
        let records = assemble_records(&prep, &seg);
        assert_eq!(records.len(), 2);
        assert!(records[0].fields.iter().any(|f| f.contains("Ada")));
        assert!(
            records[0].fields.iter().any(|f| f.contains("More Info A")),
            "{records:?}"
        );
        assert!(records[1].fields.iter().any(|f| f.contains("More Info B")));
    }

    #[test]
    fn unassigned_extracts_are_dropped() {
        let prep = prepared();
        let seg = Segmentation {
            num_records: 2,
            assignments: vec![Some(0), None, Some(1), Some(1)],
        };
        let records = assemble_records(&prep, &seg);
        let all: Vec<&String> = records.iter().flat_map(|r| r.fields.iter()).collect();
        assert!(!all.iter().any(|f| f.contains("100-0001")), "{all:?}");
    }

    #[test]
    fn empty_records_are_omitted() {
        let prep = prepared();
        let seg = Segmentation {
            num_records: 2,
            assignments: vec![Some(0), Some(0), Some(0), Some(0)],
        };
        let records = assemble_records(&prep, &seg);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].index, 0);
    }
}
