//! Per-stage wall-clock timing for batch pipeline runs.
//!
//! The pipeline decomposes into six stages (tokenization, template
//! induction, extraction, detail-page matching, solving, decoding); each
//! job records a [`StageTimes`] and a [`Registry`] aggregates them per
//! label (typically per site) into the RT experiment report.
//!
//! Timing is collected unconditionally — the cost is a handful of
//! `Instant::now()` calls per page — but it is kept out of the default
//! report output so that result tables stay byte-identical across thread
//! counts and machines.

use std::fmt;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use tableseg_obs::{SpanKind, SpanNode};

/// A pipeline stage, in execution order. The first six are the disjoint
/// top-level stages; the rest are *sub-stages* (they overlap a top-level
/// stage, attributing its time to one solver method, EM phase, or the
/// template fold) and are excluded from [`StageTimes::total`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Lexing list and detail pages into token streams.
    Tokenize,
    /// Page-template induction and quality assessment (once per site).
    TemplateInduction,
    /// Deriving extracts from the table slot.
    Extraction,
    /// Matching extracts against the detail pages.
    Matching,
    /// Running a segmenter (CSP / probabilistic / hybrid).
    Solve,
    /// Decoding the solution: truth alignment, classification, assembly.
    Decode,
    /// Sub-stage of `Solve`: instance reduction (propagation, entailment
    /// elimination, component split) ahead of the CSP search.
    SolveReduce,
    /// Sub-stage of `Solve`: the WSAT(OIP)/branch-and-bound CSP solve.
    SolveCsp,
    /// Sub-stage of `Solve`: the whole probabilistic (EM) solve.
    SolveProb,
    /// Sub-stage of `SolveProb`: emissions + forward–backward.
    SolveEmEStep,
    /// Sub-stage of `SolveProb`: parameter updates + chain refreshes.
    SolveEmMStep,
    /// Sub-stage of `SolveProb`: the final MAP decode.
    SolveViterbi,
    /// Sub-stage of `TemplateInduction`: the histogram-LCS rolling merge
    /// (zero when the Hirschberg oracle path is selected).
    InduceHistogram,
    /// Sub-stage of `Extraction`: table-region detection ahead of the
    /// per-region front end (zero on the classic, detect-disabled path).
    Detect,
    /// Sub-stage of `Solve`: the recursive nested-record pass (template
    /// re-induction plus sub-segmentation inside each parent slot).
    SolveNested,
}

impl Stage {
    /// Every *top-level* stage, in execution order. Sub-stages of `Solve`
    /// are listed in [`Stage::SOLVE_SPLIT`] instead.
    pub const ALL: [Stage; 6] = [
        Stage::Tokenize,
        Stage::TemplateInduction,
        Stage::Extraction,
        Stage::Matching,
        Stage::Solve,
        Stage::Decode,
    ];

    /// The sub-stages splitting `Solve` by method, in report order.
    pub const SOLVE_SPLIT: [Stage; 6] = [
        Stage::SolveReduce,
        Stage::SolveCsp,
        Stage::SolveProb,
        Stage::SolveEmEStep,
        Stage::SolveEmMStep,
        Stage::SolveViterbi,
    ];

    /// The sub-stages splitting `TemplateInduction`.
    pub const TEMPLATE_SPLIT: [Stage; 1] = [Stage::InduceHistogram];

    /// The sub-stages added by the scenario-diversity layer: region
    /// detection (under `extract`) and the recursive nested pass (under
    /// `solve`).
    pub const DETECT_SPLIT: [Stage; 2] = [Stage::Detect, Stage::SolveNested];

    /// Short column label for reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::Tokenize => "tokenize",
            Stage::TemplateInduction => "template",
            Stage::Extraction => "extract",
            Stage::Matching => "match",
            Stage::Solve => "solve",
            Stage::Decode => "decode",
            Stage::SolveReduce => "solve.reduce",
            Stage::SolveCsp => "solve.csp",
            Stage::SolveProb => "solve.prob",
            Stage::SolveEmEStep => "solve.em.e_step",
            Stage::SolveEmMStep => "solve.em.m_step",
            Stage::SolveViterbi => "solve.viterbi",
            Stage::InduceHistogram => "induce.histogram",
            Stage::Detect => "detect.regions",
            Stage::SolveNested => "solve.nested",
        }
    }

    fn index(self) -> usize {
        match self {
            Stage::Tokenize => 0,
            Stage::TemplateInduction => 1,
            Stage::Extraction => 2,
            Stage::Matching => 3,
            Stage::Solve => 4,
            Stage::Decode => 5,
            Stage::SolveReduce => 6,
            Stage::SolveCsp => 7,
            Stage::SolveProb => 8,
            Stage::SolveEmEStep => 9,
            Stage::SolveEmMStep => 10,
            Stage::SolveViterbi => 11,
            Stage::InduceHistogram => 12,
            Stage::Detect => 13,
            Stage::SolveNested => 14,
        }
    }
}

/// Number of tracked stages (top-level + sub-stages).
const NUM_STAGES: usize = Stage::ALL.len()
    + Stage::SOLVE_SPLIT.len()
    + Stage::TEMPLATE_SPLIT.len()
    + Stage::DETECT_SPLIT.len();

/// Wall-clock time spent per stage by one job (or merged over many).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StageTimes {
    nanos: [u128; NUM_STAGES],
}

impl StageTimes {
    /// No time recorded anywhere.
    pub fn new() -> StageTimes {
        StageTimes::default()
    }

    /// Adds `elapsed` to one stage.
    pub fn add(&mut self, stage: Stage, elapsed: Duration) {
        self.nanos[stage.index()] += elapsed.as_nanos();
    }

    /// Runs `f`, charging its wall-clock time to `stage`.
    pub fn time<T>(&mut self, stage: Stage, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.add(stage, start.elapsed());
        out
    }

    /// Time recorded for one stage.
    pub fn get(&self, stage: Stage) -> Duration {
        nanos_to_duration(self.nanos[stage.index()])
    }

    /// Sums another record into this one.
    pub fn merge(&mut self, other: &StageTimes) {
        for (a, b) in self.nanos.iter_mut().zip(other.nanos.iter()) {
            *a += b;
        }
    }

    /// Total time across the top-level stages. Solve sub-stages are
    /// excluded: they re-attribute time already counted under `Solve`.
    pub fn total(&self) -> Duration {
        nanos_to_duration(self.nanos[..Stage::ALL.len()].iter().sum())
    }
}

fn nanos_to_duration(n: u128) -> Duration {
    Duration::from_nanos(u64::try_from(n).unwrap_or(u64::MAX))
}

/// Converts one scope's [`StageTimes`] into observability stage spans:
/// the six top-level stages in execution order, with the solver
/// sub-stages nested under `solve` (`solve.csp`, `solve.prob`, the
/// recursive `solve.nested` pass), the EM phases under `solve.prob`,
/// the histogram fold (`induce.histogram`) under `template`, and
/// region detection (`detect.regions`) under `extract`. Every stage is
/// always emitted
/// — zeros included — so the span-tree *shape* depends only on the
/// corpus, never on what happened to take measurable time.
pub fn stage_spans(times: &StageTimes) -> Vec<SpanNode> {
    let span = |stage: Stage, kind: SpanKind| {
        SpanNode::new(kind, stage.label(), times.get(stage).as_nanos())
    };
    Stage::ALL
        .into_iter()
        .map(|stage| {
            let mut node = span(stage, SpanKind::Stage);
            if stage == Stage::TemplateInduction {
                node.push(span(Stage::InduceHistogram, SpanKind::SolverSubstage));
            }
            if stage == Stage::Extraction {
                node.push(span(Stage::Detect, SpanKind::SolverSubstage));
            }
            if stage == Stage::Solve {
                node.push(span(Stage::SolveReduce, SpanKind::SolverSubstage));
                node.push(span(Stage::SolveCsp, SpanKind::SolverSubstage));
                let mut prob = span(Stage::SolveProb, SpanKind::SolverSubstage);
                for sub in [
                    Stage::SolveEmEStep,
                    Stage::SolveEmMStep,
                    Stage::SolveViterbi,
                ] {
                    prob.push(span(sub, SpanKind::SolverSubstage));
                }
                node.push(prob);
                node.push(span(Stage::SolveNested, SpanKind::SolverSubstage));
            }
            node
        })
        .collect()
}

impl fmt::Display for StageTimes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for stage in Stage::ALL {
            if !first {
                write!(f, "  ")?;
            }
            first = false;
            write!(f, "{} {}", stage.label(), human(self.get(stage)))?;
        }
        Ok(())
    }
}

/// Thread-safe aggregation of [`StageTimes`] keyed by label, preserving
/// first-insertion order. Batch runs record one entry per site.
#[derive(Debug, Default)]
pub struct Registry {
    rows: Mutex<Vec<(String, StageTimes)>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Merges `times` into the entry for `label` (created on first use).
    /// Poisoning is recovered — timing rows stay valid even if a worker
    /// panicked while recording.
    pub fn record(&self, label: &str, times: &StageTimes) {
        let mut rows = self
            .rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        match rows.iter_mut().find(|(l, _)| l == label) {
            Some((_, acc)) => acc.merge(times),
            None => rows.push((label.to_owned(), *times)),
        }
    }

    /// A snapshot of every entry, in first-insertion order.
    pub fn rows(&self) -> Vec<(String, StageTimes)> {
        self.rows
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .clone()
    }

    /// Renders the per-stage wall-clock report (the RT table).
    pub fn render(&self) -> String {
        let rows = self.rows();
        let mut out = String::new();
        out.push_str(&format!("{:<24}", "site"));
        for stage in Stage::ALL {
            out.push_str(&format!(" | {:>9}", stage.label()));
        }
        out.push_str(&format!(" | {:>9}\n", "total"));
        let mut grand = StageTimes::new();
        for (label, times) in &rows {
            grand.merge(times);
            out.push_str(&format!("{label:<24}"));
            for stage in Stage::ALL {
                out.push_str(&format!(" | {:>9}", human(times.get(stage))));
            }
            out.push_str(&format!(" | {:>9}\n", human(times.total())));
        }
        if rows.len() > 1 {
            out.push_str(&format!("{:<24}", "TOTAL"));
            for stage in Stage::ALL {
                out.push_str(&format!(" | {:>9}", human(grand.get(stage))));
            }
            out.push_str(&format!(" | {:>9}\n", human(grand.total())));
        }
        out
    }

    /// Renders the `solve` stage split by solver method and EM phase
    /// (the [`Stage::SOLVE_SPLIT`] columns), as a separate table so the
    /// main report keeps its golden shape.
    pub fn render_solve_split(&self) -> String {
        let rows = self.rows();
        let mut out = String::new();
        out.push_str(&format!("{:<24}", "site"));
        out.push_str(&format!(" | {:>9}", Stage::Solve.label()));
        for stage in Stage::SOLVE_SPLIT {
            out.push_str(&format!(" | {:>15}", stage.label()));
        }
        out.push('\n');
        let mut grand = StageTimes::new();
        for (label, times) in &rows {
            grand.merge(times);
            out.push_str(&format!("{label:<24}"));
            out.push_str(&format!(" | {:>9}", human(times.get(Stage::Solve))));
            for stage in Stage::SOLVE_SPLIT {
                out.push_str(&format!(" | {:>15}", human(times.get(stage))));
            }
            out.push('\n');
        }
        if rows.len() > 1 {
            out.push_str(&format!("{:<24}", "TOTAL"));
            out.push_str(&format!(" | {:>9}", human(grand.get(Stage::Solve))));
            for stage in Stage::SOLVE_SPLIT {
                out.push_str(&format!(" | {:>15}", human(grand.get(stage))));
            }
            out.push('\n');
        }
        out
    }
}

/// Compact human-readable duration (`12.3µs`, `4.56ms`, `1.23s`).
fn human(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs < 1e-6 {
        format!("{:.1}ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.1}µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2}ms", secs * 1e3)
    } else {
        format!("{secs:.2}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_charges_the_right_stage() {
        let mut t = StageTimes::new();
        let v = t.time(Stage::Solve, || 41 + 1);
        assert_eq!(v, 42);
        assert!(t.get(Stage::Solve) > Duration::ZERO);
        assert_eq!(t.get(Stage::Tokenize), Duration::ZERO);
        assert_eq!(t.total(), t.get(Stage::Solve));
    }

    #[test]
    fn merge_sums_stages() {
        let mut a = StageTimes::new();
        a.add(Stage::Tokenize, Duration::from_micros(5));
        let mut b = StageTimes::new();
        b.add(Stage::Tokenize, Duration::from_micros(7));
        b.add(Stage::Decode, Duration::from_micros(1));
        a.merge(&b);
        assert_eq!(a.get(Stage::Tokenize), Duration::from_micros(12));
        assert_eq!(a.get(Stage::Decode), Duration::from_micros(1));
    }

    #[test]
    fn registry_merges_by_label_in_order() {
        let reg = Registry::new();
        let mut t = StageTimes::new();
        t.add(Stage::Solve, Duration::from_micros(3));
        reg.record("b", &t);
        reg.record("a", &t);
        reg.record("b", &t);
        let rows = reg.rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, "b");
        assert_eq!(rows[0].1.get(Stage::Solve), Duration::from_micros(6));
        assert_eq!(rows[1].0, "a");
        let report = reg.render();
        assert!(report.contains("solve"), "{report}");
        assert!(report.contains("TOTAL"), "{report}");
    }

    #[test]
    fn stage_indices_match_all_order() {
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
        }
        for (i, stage) in Stage::SOLVE_SPLIT.iter().enumerate() {
            assert_eq!(stage.index(), Stage::ALL.len() + i);
        }
        for (i, stage) in Stage::TEMPLATE_SPLIT.iter().enumerate() {
            assert_eq!(
                stage.index(),
                Stage::ALL.len() + Stage::SOLVE_SPLIT.len() + i
            );
        }
        for (i, stage) in Stage::DETECT_SPLIT.iter().enumerate() {
            assert_eq!(
                stage.index(),
                Stage::ALL.len() + Stage::SOLVE_SPLIT.len() + Stage::TEMPLATE_SPLIT.len() + i
            );
        }
    }

    #[test]
    fn total_excludes_solve_substages() {
        let mut t = StageTimes::new();
        t.add(Stage::Solve, Duration::from_micros(10));
        t.add(Stage::SolveCsp, Duration::from_micros(4));
        t.add(Stage::SolveProb, Duration::from_micros(6));
        t.add(Stage::SolveEmEStep, Duration::from_micros(5));
        t.add(Stage::InduceHistogram, Duration::from_micros(3));
        t.add(Stage::Detect, Duration::from_micros(2));
        t.add(Stage::SolveNested, Duration::from_micros(7));
        assert_eq!(t.total(), Duration::from_micros(10));
    }

    #[test]
    fn stage_spans_nest_detect_under_extract_and_nested_under_solve() {
        let mut t = StageTimes::new();
        t.add(Stage::Extraction, Duration::from_micros(4));
        t.add(Stage::Detect, Duration::from_micros(2));
        t.add(Stage::SolveNested, Duration::from_micros(6));
        let spans = stage_spans(&t);
        let extract = spans
            .iter()
            .find(|s| s.name == "extract")
            .expect("extract span");
        assert_eq!(extract.children.len(), 1);
        assert_eq!(extract.children[0].name, "detect.regions");
        assert_eq!(extract.children[0].nanos, 2_000);
        let solve = spans.iter().find(|s| s.name == "solve").expect("solve");
        assert!(solve.children.iter().any(|c| c.name == "solve.nested"));
    }

    #[test]
    fn stage_spans_nest_induce_histogram_under_template() {
        let mut t = StageTimes::new();
        t.add(Stage::TemplateInduction, Duration::from_micros(8));
        t.add(Stage::InduceHistogram, Duration::from_micros(5));
        let spans = stage_spans(&t);
        let template = spans
            .iter()
            .find(|s| s.name == "template")
            .expect("template span");
        assert_eq!(template.children.len(), 1);
        assert_eq!(template.children[0].name, "induce.histogram");
        assert_eq!(template.children[0].nanos, 5_000);
    }

    #[test]
    fn solve_split_render_lists_substages() {
        let reg = Registry::new();
        let mut t = StageTimes::new();
        t.add(Stage::Solve, Duration::from_micros(9));
        t.add(Stage::SolveCsp, Duration::from_micros(3));
        t.add(Stage::SolveEmMStep, Duration::from_micros(2));
        reg.record("site", &t);
        let report = reg.render_solve_split();
        assert!(report.contains("solve.csp"), "{report}");
        assert!(report.contains("solve.em.m_step"), "{report}");
        assert!(report.contains("solve.viterbi"), "{report}");
    }
}
