//! Vertical table support.
//!
//! Section 3.2 of the paper: "The methods presented below are appropriate
//! for tables that are laid out horizontally, meaning that the records are
//! on separate rows. A table can also be laid out vertically, with records
//! appearing in different columns; fortunately, few Web sites lay out
//! their data in this way."
//!
//! Both segmenters assume horizontal layout (record labels monotone in
//! stream order; each record's extracts contiguous). This module handles
//! the deferred vertical case: [`detect_vertical`] recognizes the
//! characteristic *interleaved* record pattern (the stream visits records
//! `1, 2, 3, 1, 2, 3, ...` — one attribute row at a time), and
//! [`transpose`] reorders the observation table into horizontal order so
//! the ordinary segmenters apply; the returned permutation maps the
//! transposed segmentation back to the original extracts.

use tableseg_extract::{Observations, Segmentation};

/// Fraction of adjacent singleton-evidence pairs that must step
/// *backwards* in record order for the page to be considered vertical.
/// Horizontal pages step backwards only under evidence noise; a vertical
/// page steps backwards once per attribute row, a rate of roughly `1/K`
/// for `K` records.
pub const VERTICAL_THRESHOLD: f64 = 0.1;

/// At least this many backward steps are additionally required, so a
/// single noisy observation set cannot flip a short page to vertical.
pub const MIN_BACKWARD_STEPS: usize = 2;

/// Record hints: for each extract with a *singleton* `D_i`, its record.
fn singleton_hints(obs: &Observations) -> Vec<(usize, u32)> {
    obs.items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.pages.len() == 1)
        .map(|(i, it)| (i, it.pages[0]))
        .collect()
}

/// Detects a vertically laid out table from the observation order.
///
/// In a horizontal table the singleton record hints are non-decreasing
/// along the stream; in a vertical table they cycle. Returns `true` when
/// the fraction of backward steps exceeds [`VERTICAL_THRESHOLD`].
pub fn detect_vertical(obs: &Observations) -> bool {
    let hints = singleton_hints(obs);
    if hints.len() < 4 {
        return false;
    }
    let backward = hints.windows(2).filter(|w| w[1].1 < w[0].1).count();
    backward >= MIN_BACKWARD_STEPS
        && backward as f64 / (hints.len() - 1) as f64 > VERTICAL_THRESHOLD
}

/// Reorders a vertical observation table into horizontal order.
///
/// Every extract is assigned a *record key*: its own singleton hint, or
/// (for shared/ambiguous extracts) the hint of the nearest preceding
/// singleton in the stream (falling back to the nearest following one).
/// Extracts are then stably sorted by that key — stream order within a
/// record is preserved, which keeps attribute order intact because a
/// vertical table emits attributes top-to-bottom.
///
/// Returns the transposed table and the permutation `perm` such that
/// `transposed.items[k]` is the original `obs.items[perm[k]]`.
pub fn transpose(obs: &Observations) -> (Observations, Vec<usize>) {
    let n = obs.items.len();
    // Nearest-singleton record key per extract.
    let mut keys: Vec<Option<u32>> = vec![None; n];
    for (i, item) in obs.items.iter().enumerate() {
        if item.pages.len() == 1 {
            keys[i] = Some(item.pages[0]);
        }
    }
    // Forward fill (nearest preceding singleton)...
    let mut last = None;
    let mut filled: Vec<Option<u32>> = Vec::with_capacity(n);
    for k in &keys {
        if k.is_some() {
            last = *k;
        }
        filled.push(last);
    }
    // ...then backward fill for a leading run without singletons.
    let mut next = None;
    for i in (0..n).rev() {
        if keys[i].is_some() {
            next = keys[i];
        }
        if filled[i].is_none() {
            filled[i] = next;
        }
    }

    let mut perm: Vec<usize> = (0..n).collect();
    perm.sort_by_key(|&i| (filled[i].unwrap_or(u32::MAX), i));

    let items = perm
        .iter()
        .map(|&i| {
            let mut item = obs.items[i].clone();
            // Renumber the extract index to the transposed position so the
            // downstream remainder-assembly ordering stays coherent.
            item.extract.index = usize::MAX; // set below
            item
        })
        .collect::<Vec<_>>();
    let mut items = items;
    for (k, item) in items.iter_mut().enumerate() {
        item.extract.index = k;
    }

    (
        Observations {
            num_records: obs.num_records,
            items,
            skipped: obs.skipped.clone(),
        },
        perm,
    )
}

/// Maps a segmentation of the transposed table back onto the original
/// extract order.
pub fn untranspose(seg: &Segmentation, perm: &[usize]) -> Segmentation {
    let mut assignments = vec![None; seg.assignments.len()];
    for (k, &orig) in perm.iter().enumerate() {
        assignments[orig] = seg.assignments[k];
    }
    Segmentation {
        num_records: seg.num_records,
        assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::segmenter::{CspSegmenter, Segmenter};
    use tableseg_extract::build_observations;
    use tableseg_html::{lexer::tokenize, Token};

    /// A vertical table: each *row* is one attribute, each *column* one
    /// record.
    fn vertical_obs() -> Observations {
        let list = tokenize(
            "<tr><th>Name</th><td>Ada One</td><td>Bob Two</td><td>Cyd Three</td></tr>\
             <tr><th>Dept</th><td>Engines</td><td>Machines</td><td>Compilers</td></tr>\
             <tr><th>Ext</th><td>4411</td><td>4422</td><td>4433</td></tr>",
        );
        let d1 = tokenize("<h2>Ada One</h2><p>Engines</p><p>4411</p>");
        let d2 = tokenize("<h2>Bob Two</h2><p>Machines</p><p>4422</p>");
        let d3 = tokenize("<h2>Cyd Three</h2><p>Compilers</p><p>4433</p>");
        let refs: Vec<&[Token]> = vec![&d1, &d2, &d3];
        build_observations(&list, &[], &refs)
    }

    fn horizontal_obs() -> Observations {
        let list = tokenize(
            "<tr><td>Ada One</td><td>Engines</td></tr>\
             <tr><td>Bob Two</td><td>Machines</td></tr>\
             <tr><td>Cyd Three</td><td>Compilers</td></tr>",
        );
        let d1 = tokenize("<h2>Ada One</h2><p>Engines</p>");
        let d2 = tokenize("<h2>Bob Two</h2><p>Machines</p>");
        let d3 = tokenize("<h2>Cyd Three</h2><p>Compilers</p>");
        let refs: Vec<&[Token]> = vec![&d1, &d2, &d3];
        build_observations(&list, &[], &refs)
    }

    #[test]
    fn detects_vertical_layout() {
        assert!(detect_vertical(&vertical_obs()));
        assert!(!detect_vertical(&horizontal_obs()));
    }

    #[test]
    fn too_little_evidence_defaults_to_horizontal() {
        let list = tokenize("<td>Ada One</td>");
        let d1 = tokenize("<h2>Ada One</h2>");
        let d2 = tokenize("<h2>x</h2>");
        let refs: Vec<&[Token]> = vec![&d1, &d2];
        let obs = build_observations(&list, &[], &refs);
        assert!(!detect_vertical(&obs));
    }

    #[test]
    fn transpose_then_segment_recovers_records() {
        let obs = vertical_obs();
        // Direct segmentation of a vertical table fails the contiguity
        // assumptions (the CSP must relax or mis-group).
        let (transposed, perm) = transpose(&obs);
        // Transposed hints are monotone.
        assert!(!detect_vertical(&transposed));

        let outcome = CspSegmenter::default().segment(&transposed);
        assert!(!outcome.relaxed, "{outcome:?}");
        let seg = untranspose(&outcome.segmentation, &perm);

        // Each record gets its own three attributes in the original table.
        let texts_of = |r: u32| -> Vec<String> {
            seg.assignments
                .iter()
                .enumerate()
                .filter(|(_, a)| **a == Some(r))
                .map(|(i, _)| obs.items[i].extract.text())
                .collect()
        };
        assert_eq!(texts_of(0), vec!["Ada One", "Engines", "4411"]);
        assert_eq!(texts_of(1), vec!["Bob Two", "Machines", "4422"]);
        assert_eq!(texts_of(2), vec!["Cyd Three", "Compilers", "4433"]);
    }

    #[test]
    fn transpose_permutation_is_a_bijection() {
        let obs = vertical_obs();
        let (transposed, perm) = transpose(&obs);
        assert_eq!(transposed.items.len(), obs.items.len());
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..obs.items.len()).collect::<Vec<_>>());
        // Content is preserved under the permutation.
        for (k, &orig) in perm.iter().enumerate() {
            assert_eq!(
                transposed.items[k].extract.text(),
                obs.items[orig].extract.text()
            );
        }
        // Extract indices renumbered consecutively.
        for (k, item) in transposed.items.iter().enumerate() {
            assert_eq!(item.extract.index, k);
        }
    }

    #[test]
    fn untranspose_roundtrip_on_identity() {
        let obs = horizontal_obs();
        let (transposed, perm) = transpose(&obs);
        // A horizontal table transposes to itself.
        assert_eq!(perm, (0..obs.items.len()).collect::<Vec<_>>());
        let outcome = CspSegmenter::default().segment(&transposed);
        let back = untranspose(&outcome.segmentation, &perm);
        assert_eq!(back, outcome.segmentation);
    }
}
