//! Table-region detection: partitioning a tokenized list page into
//! candidate table regions and non-table regions before segmentation.
//!
//! The paper's corpus is flat single-table list pages, but real result
//! pages carry more than one listy block: navigation bars, advertisement
//! blocks, footers, and sometimes several independent result tables
//! ("Identifying Web Tables", PAPERS.md). Segmenting such a page as one
//! table conflates unrelated regions; this module finds the table-like
//! blocks first so each can be fed through the prepare/segment pipeline
//! independently ([`crate::try_prepare_detected`]).
//!
//! Detection works on the already-tokenized page — the same token stream
//! template induction uses — with purely structural features:
//!
//! * **candidate blocks** are the outermost container elements
//!   (`<table>`, `<ul>`, `<ol>`, `<dl>`, `<div>`) in document order;
//! * **rows** are the row-delimiter elements inside a block (`<tr>`,
//!   `<li>`, `<p>`, `<dt>`) — the repeated unit a table template stamps
//!   out;
//! * a block is a **table region** when at least
//!   [`DetectOptions::min_rows`] of its rows carry a link (the paper's
//!   core assumption: each record links to its detail page), the rows'
//!   visible sizes are regular, and the block's text is not dominated by
//!   link anchors;
//! * a block whose rows are links-only is a **navigation** region; any
//!   other block (promo lists, ad blocks, free text) is classified
//!   [`RegionKind::Other`]. Neither is segmented.
//!
//! **Strict pass-through invariant:** when a page yields **at most one**
//! table region, [`detect_regions`] returns exactly one region covering
//! the whole page, flagged [`Detection::pass_through`]. The caller then
//! runs the classic whole-page pipeline unchanged, so every single-table
//! page — the entire paper corpus — produces byte-identical output with
//! detection enabled (`tests/detect_invariance.rs` and the table4 golden
//! enforce this at 1/2/N threads).

use std::ops::Range;

use tableseg_html::Token;

/// Thresholds for classifying candidate blocks. The defaults are tuned so
/// the whole paper corpus (grid, free-form and numbered layouts, promo
/// lists, ad links) stays single-region.
#[derive(Debug, Clone)]
pub struct DetectOptions {
    /// Minimum linked rows for a block to count as a table region.
    pub min_rows: usize,
    /// Maximum fraction of a block's text tokens that may sit inside
    /// `<a>` anchors; blocks above it are navigation, not tables.
    pub max_link_fraction: f64,
    /// Minimum ratio between the smallest and largest row (in visible
    /// tokens) — the row-regularity feature. Rows of wildly different
    /// sizes are not template-stamped records.
    pub min_row_regularity: f64,
}

impl Default for DetectOptions {
    fn default() -> DetectOptions {
        DetectOptions {
            min_rows: 2,
            max_link_fraction: 0.8,
            min_row_regularity: 0.05,
        }
    }
}

/// What a detected region looks like to the rest of the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RegionKind {
    /// A candidate result table: regular linked rows. Fed to the
    /// prepare/segment pipeline.
    Table,
    /// A link-dominated block (navigation bar, link footer). Withheld
    /// from segmentation.
    Navigation,
    /// Any other block: promo lists, ad blocks, free text. Withheld from
    /// segmentation.
    Other,
}

/// One detected region of a tokenized page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    /// The region's token range in the page's token stream.
    pub tokens: Range<usize>,
    /// The region's byte range in the page's HTML source.
    pub bytes: Range<usize>,
    /// The region's classification.
    pub kind: RegionKind,
    /// Rows observed inside the region (row-delimiter elements).
    pub rows: usize,
}

/// The result of detecting regions on one page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Detection {
    /// Every classified region, in document order. On a pass-through
    /// page this is exactly one whole-page [`RegionKind::Table`] region.
    pub regions: Vec<Region>,
    /// `true` when at most one table region was found and the page is
    /// passed through whole — the strict no-op guarantee for
    /// single-table pages.
    pub pass_through: bool,
}

impl Detection {
    /// The table regions, in document order.
    pub fn table_regions(&self) -> impl Iterator<Item = &Region> {
        self.regions.iter().filter(|r| r.kind == RegionKind::Table)
    }
}

const CONTAINER_TAGS: [&str; 5] = ["table", "ul", "ol", "dl", "div"];
const ROW_TAGS: [&str; 4] = ["tr", "li", "p", "dt"];

/// The element name of an HTML token plus whether it is a closing tag.
/// `None` for text/punctuation tokens.
fn tag_name(token: &Token) -> Option<(&str, bool)> {
    if !token.is_html() {
        return None;
    }
    let inner = token.text.strip_prefix('<')?;
    let inner = inner.strip_suffix('>').unwrap_or(inner);
    let (closing, inner) = match inner.strip_prefix('/') {
        Some(rest) => (true, rest),
        None => (false, inner),
    };
    let name_end = inner
        .find(|c: char| c.is_whitespace() || c == '/')
        .unwrap_or(inner.len());
    Some((&inner[..name_end], closing))
}

/// Partitions a tokenized page into table and non-table regions.
///
/// Returns the classified outermost container blocks in document order —
/// unless at most one of them is a table, in which case the whole page is
/// returned as a single pass-through table region (see the module docs).
///
/// # Examples
///
/// A page carrying two result tables separated by a navigation bar is
/// split into three regions, two of them tables:
///
/// ```
/// use tableseg::detect::{detect_regions, DetectOptions, RegionKind};
/// use tableseg::html::lexer::tokenize;
///
/// let page = "<html><body>\
///   <table><tr><td><a href=\"/d/0\">Ada</a></td><td>555-0001</td></tr>\
///           <tr><td><a href=\"/d/1\">Alan</a></td><td>555-0002</td></tr></table>\
///   <ul><li><a href=\"/home\">Home</a></li><li><a href=\"/faq\">FAQ</a></li></ul>\
///   <table><tr><td><a href=\"/d/2\">Grace</a></td><td>555-0003</td></tr>\
///           <tr><td><a href=\"/d/3\">Kurt</a></td><td>555-0004</td></tr></table>\
///   </body></html>";
/// let tokens = tokenize(page);
/// let detection = detect_regions(&tokens, &DetectOptions::default());
/// assert!(!detection.pass_through);
/// assert_eq!(detection.table_regions().count(), 2);
/// assert!(detection
///     .regions
///     .iter()
///     .any(|r| r.kind == RegionKind::Navigation));
/// ```
///
/// A single-table page — however much chrome surrounds the table — is
/// passed through whole:
///
/// ```
/// use tableseg::detect::{detect_regions, DetectOptions};
/// use tableseg::html::lexer::tokenize;
///
/// let page = "<html><h1>Results</h1><table>\
///   <tr><td><a href=\"/d/0\">Ada Lovelace</a></td></tr>\
///   <tr><td><a href=\"/d/1\">Alan Turing</a></td></tr>\
///   </table><p>Copyright 2004</p></html>";
/// let tokens = tokenize(page);
/// let detection = detect_regions(&tokens, &DetectOptions::default());
/// assert!(detection.pass_through);
/// assert_eq!(detection.regions.len(), 1);
/// assert_eq!(detection.regions[0].tokens, 0..tokens.len());
/// ```
pub fn detect_regions(tokens: &[Token], opts: &DetectOptions) -> Detection {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        match tag_name(&tokens[i]) {
            Some((name, false)) if CONTAINER_TAGS.contains(&name) => {
                let end = matching_close(tokens, i, name);
                regions.push(classify_block(tokens, i..end, opts));
                i = end;
            }
            _ => i += 1,
        }
    }
    let tables = regions
        .iter()
        .filter(|r| r.kind == RegionKind::Table)
        .count();
    if tables <= 1 {
        let total_rows = regions.iter().map(|r| r.rows).sum();
        return Detection {
            regions: vec![whole_page_region(tokens, total_rows)],
            pass_through: true,
        };
    }
    Detection {
        regions,
        pass_through: false,
    }
}

/// The single whole-page region of a pass-through page.
fn whole_page_region(tokens: &[Token], rows: usize) -> Region {
    let bytes_end = tokens.last().map(|t| t.offset + t.text.len()).unwrap_or(0);
    Region {
        tokens: 0..tokens.len(),
        bytes: 0..bytes_end,
        kind: RegionKind::Table,
        rows,
    }
}

/// Index one past the close tag matching the container opened at `open`
/// (balanced same-name counting; an unclosed container runs to the end of
/// the stream, which is how damaged chaos pages stay total).
fn matching_close(tokens: &[Token], open: usize, name: &str) -> usize {
    let mut depth = 0usize;
    for (j, t) in tokens.iter().enumerate().skip(open) {
        match tag_name(t) {
            Some((n, false)) if n == name => depth += 1,
            Some((n, true)) if n == name => {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            _ => {}
        }
    }
    tokens.len()
}

/// Scores one candidate block and classifies it.
fn classify_block(tokens: &[Token], range: Range<usize>, opts: &DetectOptions) -> Region {
    let start = range.start;
    let end = range.end;
    let mut rows = 0usize;
    let mut linked_rows = 0usize;
    let mut text_tokens = 0usize;
    let mut link_text_tokens = 0usize;
    let mut link_depth = 0usize;
    // Visible-token size of each row, for the regularity feature.
    let mut row_sizes: Vec<usize> = Vec::new();
    let mut row_linked = false;
    for t in &tokens[range.clone()] {
        match tag_name(t) {
            Some(("a", true)) => {
                link_depth = link_depth.saturating_sub(1);
            }
            Some(("a", false)) => {
                link_depth += 1;
                if !row_sizes.is_empty() {
                    row_linked = true;
                }
            }
            Some((name, false)) if ROW_TAGS.contains(&name) => {
                if row_linked {
                    linked_rows += 1;
                }
                rows += 1;
                row_sizes.push(0);
                row_linked = false;
            }
            None if t.is_text() || t.is_punctuation() => {
                text_tokens += 1;
                if link_depth > 0 {
                    link_text_tokens += 1;
                }
                if let Some(size) = row_sizes.last_mut() {
                    *size += 1;
                }
            }
            _ => {}
        }
    }
    if row_linked {
        linked_rows += 1;
    }
    let link_fraction = if text_tokens == 0 {
        0.0
    } else {
        link_text_tokens as f64 / text_tokens as f64
    };
    let regularity = match (
        row_sizes.iter().filter(|&&s| s > 0).min(),
        row_sizes.iter().max(),
    ) {
        (Some(&min), Some(&max)) if max > 0 => min as f64 / max as f64,
        _ => 0.0,
    };
    let kind = if linked_rows >= opts.min_rows
        && link_fraction <= opts.max_link_fraction
        && regularity >= opts.min_row_regularity
    {
        RegionKind::Table
    } else if linked_rows >= opts.min_rows && link_fraction > opts.max_link_fraction {
        RegionKind::Navigation
    } else {
        RegionKind::Other
    };
    let bytes_start = tokens[start].offset;
    let last = &tokens[end - 1];
    let bytes_end = if last.is_html() {
        last.offset + last.text.len()
    } else {
        // The block ran off the end of a damaged page mid-text; the
        // decoded text length may not equal the source length, so fall
        // back to the start of the following token (or the token's own
        // offset span, whichever is known exactly).
        tokens
            .get(end)
            .map(|t| t.offset)
            .unwrap_or(last.offset + last.text.len())
    };
    Region {
        tokens: range,
        bytes: bytes_start..bytes_end,
        kind,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    fn detect(html: &str) -> Detection {
        detect_regions(&tokenize(html), &DetectOptions::default())
    }

    fn table_block(ids: Range<usize>) -> String {
        let mut rows = String::new();
        for i in ids {
            rows.push_str(&format!(
                "<tr><td><a href=\"/d/{i}\">Person {i}</a></td>\
                 <td>(555) 100-000{i}</td></tr>"
            ));
        }
        format!("<table>{rows}</table>")
    }

    fn nav_block() -> &'static str {
        "<ul><li><a href=\"/home\">Home</a></li>\
         <li><a href=\"/faq\">FAQ</a></li>\
         <li><a href=\"/about\">About Us</a></li></ul>"
    }

    #[test]
    fn single_table_page_passes_through() {
        let html = format!("<html><h1>Results</h1>{}<p>Footer text</p></html>", {
            table_block(0..3)
        });
        let d = detect(&html);
        assert!(d.pass_through);
        assert_eq!(d.regions.len(), 1);
        assert_eq!(d.regions[0].kind, RegionKind::Table);
        assert_eq!(d.regions[0].bytes.start, 0);
        assert_eq!(d.regions[0].bytes.end, html.len());
    }

    #[test]
    fn two_tables_split_into_regions() {
        let html = format!(
            "<html>{}{}{}</html>",
            table_block(0..3),
            nav_block(),
            table_block(3..6)
        );
        let d = detect(&html);
        assert!(!d.pass_through);
        assert_eq!(d.table_regions().count(), 2);
        let kinds: Vec<RegionKind> = d.regions.iter().map(|r| r.kind).collect();
        assert_eq!(
            kinds,
            vec![RegionKind::Table, RegionKind::Navigation, RegionKind::Table]
        );
    }

    #[test]
    fn nav_plus_single_table_is_still_pass_through() {
        let html = format!("<html>{}{}</html>", nav_block(), table_block(0..4));
        let d = detect(&html);
        assert!(d.pass_through, "{:?}", d.regions);
        assert_eq!(d.regions.len(), 1);
    }

    #[test]
    fn promo_list_without_links_is_not_a_table() {
        // The paper corpus's "Customers also bought" list: rows, no links.
        let html = format!(
            "<html>{}<ul><li><i>Some Book</i></li><li><i>Another Book</i></li>\
             <li><i>Third Book</i></li></ul>{}</html>",
            table_block(0..3),
            table_block(3..6)
        );
        let d = detect(&html);
        assert!(!d.pass_through);
        assert_eq!(d.table_regions().count(), 2);
        assert!(d.regions.iter().any(|r| r.kind == RegionKind::Other));
    }

    #[test]
    fn region_bytes_cover_their_tables() {
        let html = format!("<html>{}{}</html>", table_block(0..2), table_block(2..4));
        let d = detect(&html);
        for r in d.table_regions() {
            let slice = &html[r.bytes.clone()];
            assert!(slice.starts_with("<table>"), "{slice:?}");
            assert!(slice.ends_with("</table>"), "{slice:?}");
        }
    }

    #[test]
    fn unclosed_container_runs_to_end_without_panicking() {
        let html = "<html><table><tr><td><a href=\"/d/0\">A</a></td>";
        let d = detect(html);
        assert!(d.pass_through);
    }

    #[test]
    fn empty_page_is_one_empty_region() {
        let d = detect("");
        assert!(d.pass_through);
        assert_eq!(d.regions[0].tokens, 0..0);
        assert_eq!(d.regions[0].bytes, 0..0);
    }
}
