//! `tableseg` — command-line record segmentation for saved HTML pages.
//!
//! ```text
//! tableseg --list page1.html [--list page2.html ...]
//!          --detail d1.html --detail d2.html ...
//!          [--target 0] [--method csp|prob|hybrid[,method...]]
//!          [--threads N] [--time] [--columns] [--wrapper] [--verbose]
//! ```
//!
//! Detail pages must be given in row order of the target list page. The
//! output is one line per record with its `|`-separated fields.
//!
//! `--method` accepts a comma-separated list; multiple methods run as
//! jobs on the batch engine (`--threads` workers) against the same
//! prepared page, and each method's records print under a `== method`
//! header. `--time` reports per-stage wall-clock times on stderr.
//! `--manifest PATH` enables the observability layer and writes the run
//! manifest (summary JSON, `.jsonl` event log, `.prom` Prometheus text;
//! see OBSERVABILITY.md) with one span subtree per requested method.

use std::process::ExitCode;

use tableseg::obs;
use tableseg::timing::{stage_spans, Stage, StageTimes};
use tableseg::{
    annotate_columns, assemble_records, batch, induce_wrapper, prepare, CspSegmenter,
    HybridSegmenter, ProbSegmenter, Segmenter, SitePages,
};

struct Args {
    lists: Vec<String>,
    details: Vec<String>,
    target: usize,
    methods: Vec<String>,
    threads: usize,
    time: bool,
    columns: bool,
    wrapper: bool,
    verbose: bool,
    manifest: Option<String>,
}

fn usage() -> &'static str {
    "usage: tableseg --list FILE [--list FILE ...] --detail FILE [--detail FILE ...]\n\
     \x20       [--target N] [--method csp|prob|hybrid[,method...]] [--threads N]\n\
     \x20       [--time] [--columns] [--wrapper] [--verbose] [--manifest PATH]\n\
     for long-running service use, see the `tablesegd` daemon and its\n\
     `tablesegctl` client in the tableseg-serve crate"
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        lists: Vec::new(),
        details: Vec::new(),
        target: 0,
        methods: vec!["csp".to_owned()],
        threads: batch::default_threads(),
        time: false,
        columns: false,
        wrapper: false,
        verbose: false,
        manifest: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--list" => args.lists.push(it.next().ok_or("--list needs a file")?),
            "--detail" => args.details.push(it.next().ok_or("--detail needs a file")?),
            "--target" => {
                args.target = it
                    .next()
                    .ok_or("--target needs a number")?
                    .parse()
                    .map_err(|e| format!("--target: {e}"))?;
            }
            "--method" => {
                let value = it.next().ok_or("--method needs a value")?;
                args.methods = value.split(',').map(str::to_owned).collect();
            }
            "--threads" => {
                args.threads = it
                    .next()
                    .ok_or("--threads needs a number")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--time" => args.time = true,
            "--columns" => args.columns = true,
            "--wrapper" => args.wrapper = true,
            "--verbose" => args.verbose = true,
            "--manifest" => args.manifest = Some(it.next().ok_or("--manifest needs a path")?),
            "--help" | "-h" => return Err(usage().to_owned()),
            other => return Err(format!("unknown flag {other}\n{}", usage())),
        }
    }
    if args.lists.is_empty() {
        return Err(format!("at least one --list page required\n{}", usage()));
    }
    if args.details.is_empty() {
        return Err(format!("at least one --detail page required\n{}", usage()));
    }
    if args.target >= args.lists.len() {
        return Err("--target out of range".to_owned());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    // Enable metrics before `prepare` runs so the front end records too.
    if args.manifest.is_some() {
        obs::set_enabled(true);
    }

    let read = |path: &String| -> Result<String, String> {
        std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
    };
    let lists: Vec<String> = match args.lists.iter().map(read).collect() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let details: Vec<String> = match args.details.iter().map(read).collect() {
        Ok(v) => v,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let mut segmenters: Vec<(String, Box<dyn Segmenter>)> = Vec::new();
    for method in &args.methods {
        let segmenter: Box<dyn Segmenter> = match method.as_str() {
            "csp" => Box::new(CspSegmenter::default()),
            "prob" => Box::new(ProbSegmenter::default()),
            "hybrid" => Box::new(HybridSegmenter::default()),
            other => {
                eprintln!("unknown method {other} (csp|prob|hybrid)");
                return ExitCode::FAILURE;
            }
        };
        segmenters.push((method.clone(), segmenter));
    }

    let prepared = prepare(&SitePages {
        list_pages: lists.iter().map(String::as_str).collect(),
        target: args.target,
        detail_pages: details.iter().map(String::as_str).collect(),
    });
    if args.verbose {
        eprintln!(
            "front end: {} extracts kept, {} skipped, whole-page fallback: {}",
            prepared.observations.len(),
            prepared.observations.skipped.len(),
            prepared.used_whole_page
        );
    }

    // Solve every requested method as a job on the batch engine; results
    // come back in `--method` order regardless of thread count.
    let jobs: Vec<usize> = (0..segmenters.len()).collect();
    let outcomes = batch::execute(args.threads, jobs, |_, m| {
        let mut times = StageTimes::new();
        let outcome = times.time(Stage::Solve, || {
            segmenters[m].1.segment(&prepared.observations)
        });
        let records = times.time(Stage::Decode, || {
            assemble_records(&prepared, &outcome.segmentation)
        });
        (outcome, records, times)
    });

    let registry = tableseg::timing::Registry::new();
    // One span subtree per method, each over the shared front-end timings
    // plus that method's solve/decode times — mirroring the registry rows.
    let mut metrics = obs::Recorder::new();
    metrics.merge(&prepared.metrics);
    let mut root = obs::SpanNode::new(obs::SpanKind::Run, "tableseg", 0);
    for ((method, _), (outcome, records, times)) in segmenters.iter().zip(&outcomes) {
        if segmenters.len() > 1 {
            println!("== {method}");
        }
        if args.verbose && outcome.relaxed {
            eprintln!("note: [{method}] constraints were relaxed (inconsistent source data)");
        }

        for record in records {
            println!("{}\t{}", record.index + 1, record.fields.join(" | "));
        }

        if args.columns {
            match &outcome.columns {
                Some(columns) => {
                    eprintln!("column annotation:");
                    for ann in annotate_columns(&prepared.observations, columns) {
                        eprintln!(
                            "  L{} -> {} ({:.0}%, n={})",
                            ann.column + 1,
                            ann.label,
                            ann.confidence * 100.0,
                            ann.support
                        );
                    }
                }
                None => eprintln!("--columns requires --method prob or hybrid on dirty data"),
            }
        }

        if args.wrapper {
            match induce_wrapper(&prepared, &outcome.segmentation) {
                Some(w) => {
                    eprintln!("induced row wrapper:");
                    eprintln!("  head: {:?}", w.head);
                    for (i, s) in w.seps.iter().enumerate() {
                        eprintln!("  sep{}: {:?}", i + 1, s);
                    }
                    eprintln!("  tail: {:?}", w.tail);
                }
                None => eprintln!("no consistent row wrapper could be induced"),
            }
        }

        let mut row = prepared.timings;
        row.merge(times);
        registry.record(method, &row);

        metrics.merge(&outcome.metrics);
        let mut span = obs::SpanNode::new(obs::SpanKind::Site, method, row.total().as_nanos());
        for child in stage_spans(&row) {
            span.push(child);
        }
        root.nanos += span.nanos;
        root.push(span);
    }

    if args.time {
        eprintln!("per-stage wall clock ({} thread(s)):\n", args.threads);
        eprint!("{}", registry.render());
    }

    if let Some(path) = &args.manifest {
        let mut manifest = obs::Manifest::new("tableseg")
            .with_config("lists", args.lists.len())
            .with_config("details", args.details.len())
            .with_config("target", args.target)
            .with_config("methods", args.methods.join(","));
        manifest.metrics = metrics;
        manifest.root = root;
        manifest.volatile.threads = args.threads;
        let redact = obs::deterministic_requested();
        match manifest.write_files(std::path::Path::new(path), redact) {
            Ok(written) => {
                for p in &written {
                    eprintln!("manifest: wrote {}", p.display());
                }
            }
            Err(e) => {
                eprintln!("cannot write manifest {path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
