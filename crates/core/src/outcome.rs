//! Per-page outcomes: graceful degradation instead of aborted batches.
//!
//! Real crawls hand the pipeline truncated pages, dead detail links and
//! empty responses. The front end reports those as a three-way
//! [`PageOutcome`]: clean success, success with [`Warning`]s (the page was
//! processed but something about it was off — whole-page fallback, empty
//! detail pages, an empty observation table), or failure with a
//! [`SegError`]. Batch runs fold outcomes into a
//! [`RobustnessReport`](crate::robustness::RobustnessReport) so a poisoned
//! page costs one row of a report, never the run.
//!
//! [`caught`] is the last-resort backstop behind the fallible pipeline
//! entry points: it converts a panic into [`SegError::Internal`] attributed
//! to a pipeline stage. Any `Internal` error in a run is a bug — but a
//! *reported* bug instead of an aborted batch.

use tableseg_html::SegError;

use crate::pipeline::{try_prepare_with_template, PreparedPage, SiteTemplate};

/// Runs `f`, converting a panic into [`SegError::Internal`] attributed to
/// `stage` (one of the timing-registry stage labels).
///
/// Uses `std::panic::catch_unwind` over an `AssertUnwindSafe` closure —
/// safe code; the pipeline works on owned data, so no broken invariant
/// outlives the catch. The process's panic hook still runs (the message
/// appears on stderr); the batch, however, continues.
pub fn caught<T>(stage: &'static str, f: impl FnOnce() -> T) -> Result<T, SegError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(v) => Ok(v),
        Err(payload) => Err(SegError::Internal {
            stage,
            detail: panic_detail(payload.as_ref()),
        }),
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Something off about a page that was still processed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum Warning {
    /// The induced template was unusable (or had no table slot); the whole
    /// page was used instead — the paper's notes `a`/`b`.
    WholePageFallback,
    /// The target list page tokenized to nothing (blank or all-markup).
    EmptyListPage,
    /// The page has no detail pages at all, so no extract can be supported.
    NoDetailPages,
    /// One detail page was empty (a blanked or dead-link response).
    EmptyDetailPage {
        /// Row index of the empty detail page.
        index: usize,
    },
    /// Every derived extract was filtered out of the observation table;
    /// there is nothing to segment.
    NoObservations {
        /// How many extracts were derived (and skipped).
        skipped: usize,
    },
}

impl Warning {
    /// Every warning kind's label, in report order.
    pub const LABELS: [&'static str; 5] = [
        "whole_page_fallback",
        "empty_list_page",
        "no_detail_pages",
        "empty_detail_page",
        "no_observations",
    ];

    /// Short stable label for reports (one per variant; the per-index
    /// detail of [`Warning::EmptyDetailPage`] is collapsed).
    pub fn label(&self) -> &'static str {
        match self {
            Warning::WholePageFallback => "whole_page_fallback",
            Warning::EmptyListPage => "empty_list_page",
            Warning::NoDetailPages => "no_detail_pages",
            Warning::EmptyDetailPage { .. } => "empty_detail_page",
            Warning::NoObservations { .. } => "no_observations",
        }
    }
}

/// What happened to one page.
#[derive(Debug, Clone)]
pub enum PageOutcome {
    /// The page was processed cleanly.
    Ok(PreparedPage),
    /// The page was processed, but degraded — the warnings say how.
    Degraded {
        /// The prepared page (usable; quality may be reduced).
        page: PreparedPage,
        /// What was off, in detection order.
        warnings: Vec<Warning>,
    },
    /// The page could not be processed at all.
    Failed {
        /// Why.
        error: SegError,
    },
}

impl PageOutcome {
    /// The prepared page, if the page was processed (cleanly or degraded).
    pub fn page(&self) -> Option<&PreparedPage> {
        match self {
            PageOutcome::Ok(page) | PageOutcome::Degraded { page, .. } => Some(page),
            PageOutcome::Failed { .. } => None,
        }
    }

    /// The warnings (empty unless degraded).
    pub fn warnings(&self) -> &[Warning] {
        match self {
            PageOutcome::Degraded { warnings, .. } => warnings,
            _ => &[],
        }
    }

    /// The error, if the page failed.
    pub fn error(&self) -> Option<&SegError> {
        match self {
            PageOutcome::Failed { error } => Some(error),
            _ => None,
        }
    }

    /// `true` for [`PageOutcome::Failed`].
    pub fn is_failed(&self) -> bool {
        matches!(self, PageOutcome::Failed { .. })
    }
}

/// Runs the per-page front end and classifies the result: never panics,
/// never aborts — a poisoned page yields [`PageOutcome::Failed`], a shaky
/// one [`PageOutcome::Degraded`] with the reasons attached.
pub fn prepare_outcome(
    template: &SiteTemplate,
    target: usize,
    detail_pages: &[&str],
) -> PageOutcome {
    let page = match try_prepare_with_template(template, target, detail_pages) {
        Ok(page) => page,
        Err(error) => return PageOutcome::Failed { error },
    };
    let mut warnings = Vec::new();
    if template
        .pages
        .get(target)
        .is_some_and(|toks| toks.is_empty())
    {
        warnings.push(Warning::EmptyListPage);
    }
    if detail_pages.is_empty() {
        warnings.push(Warning::NoDetailPages);
    }
    for (index, d) in detail_pages.iter().enumerate() {
        if d.trim().is_empty() {
            warnings.push(Warning::EmptyDetailPage { index });
        }
    }
    if page.used_whole_page {
        warnings.push(Warning::WholePageFallback);
    }
    if page.observations.items.is_empty() {
        warnings.push(Warning::NoObservations {
            skipped: page.observations.skipped.len(),
        });
    }
    if warnings.is_empty() {
        PageOutcome::Ok(page)
    } else {
        PageOutcome::Degraded { page, warnings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(body: &str) -> String {
        format!(
            "<html><h1>Example Search Results</h1><table>{body}</table>\
             <p>Copyright 2004 Example Inc All rights reserved</p></html>"
        )
    }

    fn site() -> (String, String, Vec<&'static str>) {
        let a = page(
            "<tr><td>Ada Lovelace</td><td>(555) 100-0001</td></tr>\
             <tr><td>Alan Turing</td><td>(555) 100-0002</td></tr>",
        );
        let b = page("<tr><td>Grace Hopper</td><td>(555) 100-0003</td></tr>");
        let details = vec![
            "<html><h2>Ada Lovelace</h2><p>(555) 100-0001</p></html>",
            "<html><h2>Alan Turing</h2><p>(555) 100-0002</p></html>",
        ];
        (a, b, details)
    }

    #[test]
    fn clean_site_is_ok() {
        let (a, b, details) = site();
        let template = SiteTemplate::build(&[&a, &b]);
        let out = prepare_outcome(&template, 0, &details);
        assert!(matches!(out, PageOutcome::Ok(_)), "{:?}", out.warnings());
        assert!(out.page().is_some());
        assert!(out.error().is_none());
        assert!(!out.is_failed());
    }

    #[test]
    fn bad_target_fails_without_panicking() {
        let (a, b, details) = site();
        let template = SiteTemplate::build(&[&a, &b]);
        let out = prepare_outcome(&template, 9, &details);
        assert!(out.is_failed());
        assert_eq!(
            out.error(),
            Some(&SegError::TargetOutOfBounds {
                target: 9,
                pages: 2
            })
        );
        assert!(out.page().is_none());
    }

    #[test]
    fn empty_details_degrade() {
        let (a, b, _) = site();
        let template = SiteTemplate::build(&[&a, &b]);
        let out = prepare_outcome(&template, 0, &["", "  "]);
        let labels: Vec<_> = out.warnings().iter().map(Warning::label).collect();
        assert!(labels.contains(&"empty_detail_page"), "{labels:?}");
        assert!(out.page().is_some(), "degraded pages are still usable");
    }

    #[test]
    fn single_page_site_reports_whole_page_fallback() {
        let (a, _, details) = site();
        let template = SiteTemplate::build(&[&a]);
        let out = prepare_outcome(&template, 0, &details);
        assert!(out.warnings().contains(&Warning::WholePageFallback));
    }

    #[test]
    fn no_detail_pages_warn() {
        let (a, b, _) = site();
        let template = SiteTemplate::build(&[&a, &b]);
        let out = prepare_outcome(&template, 0, &[]);
        assert!(out
            .warnings()
            .iter()
            .any(|w| w.label() == "no_detail_pages"));
    }

    #[test]
    fn caught_converts_panics() {
        let err = caught("solve", || panic!("boom {}", 7)).unwrap_err();
        assert_eq!(
            err,
            SegError::Internal {
                stage: "solve",
                detail: "boom 7".into()
            }
        );
        assert_eq!(err.stage(), "solve");
        assert_eq!(caught("solve", || 41 + 1), Ok(42));
    }

    #[test]
    fn warning_labels_are_exhaustive() {
        let all = [
            Warning::WholePageFallback,
            Warning::EmptyListPage,
            Warning::NoDetailPages,
            Warning::EmptyDetailPage { index: 0 },
            Warning::NoObservations { skipped: 3 },
        ];
        for (w, l) in all.iter().zip(Warning::LABELS) {
            assert_eq!(w.label(), l);
        }
    }
}
