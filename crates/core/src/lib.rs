//! # tableseg
//!
//! Automatic segmentation of records from Web tables using the structure
//! of Web sites — a from-scratch reproduction of Lerman, Getoor, Minton &
//! Knoblock, *"Using the Structure of Web Sites for Automatic Segmentation
//! of Tables"* (SIGMOD 2004).
//!
//! Many hidden-web sites answer a query with a **list page** — a table of
//! records — where each row links to a **detail page** with more
//! information about that record. Both pages are generated from templates
//! and present two views of the same record. This crate segments the list
//! page into records *without any training data or labeled examples*, by
//! exploiting that redundancy:
//!
//! 1. [`prepare`] tokenizes the sample list pages, induces the site's page
//!    template, locates the table slot (falling back to the whole page
//!    when the template is unusable), derives the *extracts* (visible
//!    strings) and matches them against the detail pages, producing an
//!    observation table;
//! 2. a [`Segmenter`] assigns extracts to records:
//!    [`CspSegmenter`] encodes the paper's uniqueness, consecutiveness and
//!    position constraints as a pseudo-boolean problem solved WSAT(OIP)-
//!    style (Section 4), while [`ProbSegmenter`] runs EM on a factored HMM
//!    bootstrapped from the detail pages (Section 5) and additionally
//!    labels each extract with a column;
//! 3. [`assemble_records`] attaches the remaining table data to the
//!    segmented records, giving the final relational view.
//!
//! ```
//! use tableseg::{prepare, CspSegmenter, ProbSegmenter, Segmenter, SitePages};
//!
//! let list_a = "<html><h1>Results Page</h1><table>\
//!   <tr><td>Ada Lovelace</td><td>(555) 100-0001</td></tr>\
//!   <tr><td>Alan Turing</td><td>(555) 100-0002</td></tr>\
//!   </table><p>Copyright 2004 Example Inc</p></html>";
//! let list_b = "<html><h1>Results Page</h1><table>\
//!   <tr><td>Grace Hopper</td><td>(555) 100-0003</td></tr>\
//!   </table><p>Copyright 2004 Example Inc</p></html>";
//! let details = [
//!     "<html><h2>Ada Lovelace</h2><p>Phone: (555) 100-0001</p></html>",
//!     "<html><h2>Alan Turing</h2><p>Phone: (555) 100-0002</p></html>",
//! ];
//!
//! let input = SitePages {
//!     list_pages: vec![list_a, list_b],
//!     target: 0,
//!     detail_pages: details.to_vec(),
//! };
//! let prepared = prepare(&input);
//! let outcome = CspSegmenter::default().segment(&prepared.observations);
//! let records = outcome.segmentation.records();
//! assert_eq!(records.len(), 2);
//! assert!(!records[0].is_empty());
//!
//! // The probabilistic approach also assigns columns.
//! let outcome = ProbSegmenter::default().segment(&prepared.observations);
//! assert!(outcome.columns.is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod annotate;
pub mod batch;
pub mod detail_id;
pub mod detect;
pub mod hybrid;
pub mod navigate;
pub mod nested;
pub mod outcome;
pub mod pipeline;
pub mod record;
pub mod robustness;
pub mod segmenter;
pub mod timing;
pub mod vertical;
pub mod wrapper;

pub use annotate::{annotate_columns, recognize, ColumnAnnotation, SemanticLabel};
pub use detail_id::identify_detail_pages;
pub use detect::{detect_regions, DetectOptions, Detection, Region, RegionKind};
pub use hybrid::HybridSegmenter;
pub use navigate::{navigate, NavigatedSite};
pub use nested::{parent_spans_from_groups, try_segment_nested, NestedParentResult, NestedRun};
pub use outcome::{caught, prepare_outcome, PageOutcome, Warning};
pub use pipeline::{
    prepare, prepare_with_template, try_prepare, try_prepare_detected, try_prepare_region,
    try_prepare_with_template, DetectedPage, PreparedPage, RegionPrepared, SitePages, SiteTemplate,
};
pub use record::{assemble_records, AssembledRecord};
pub use robustness::RobustnessReport;
pub use segmenter::{CspSegmenter, ProbSegmenter, Segmenter, SegmenterOutcome};
pub use wrapper::{induce_wrapper, RowWrapper};

// Re-export the building blocks for advanced use.
pub use tableseg_csp as csp;
pub use tableseg_extract as extract;
pub use tableseg_html as html;
pub use tableseg_html::SegError;
pub use tableseg_obs as obs;
pub use tableseg_prob as prob;
pub use tableseg_template as template;
