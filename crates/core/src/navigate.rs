//! Automatic site navigation — the application the paper envisions.
//!
//! "We envision an application where the user provides a pointer to the
//! top-level page — index page or a form — and the system automatically
//! navigates the site, retrieving all pages, classifying them as list and
//! detail pages, and extracting structured data from these pages."
//! (Section 3)
//!
//! [`navigate`] starts from one list page and, using only a fetch
//! function:
//!
//! 1. discovers **sibling list pages** by following links whose content is
//!    template-similar to the start page (the "Next" chain);
//! 2. fetches every other link on each list page and **classifies** the
//!    results with [`identify_detail_pages`]
//!    — same-template pages are the detail pages, advertisements fall out;
//! 3. returns, per list page, the detail pages in link (= row) order —
//!    exactly the input `prepare` needs.

use std::collections::HashMap;

use tableseg_html::lexer::tokenize;
use tableseg_html::links::extract_links;
use tableseg_template::intern::Interner;

use crate::detail_id::{identify_detail_pages, page_similarity};

/// Similarity above which a linked page counts as another *list* page of
/// the same site (the next results page). List pages share the full page
/// template; detail pages do not resemble the list page this strongly.
pub const LIST_SIMILARITY: f64 = 0.55;

/// Everything the navigator discovered, ready for
/// [`prepare`](crate::prepare).
#[derive(Debug, Clone)]
pub struct NavigatedSite {
    /// URLs of the discovered list pages, in discovery order (the start
    /// page first).
    pub list_urls: Vec<String>,
    /// The list pages' HTML, aligned with `list_urls`.
    pub list_pages: Vec<String>,
    /// Per list page: the detail-page URLs in row order.
    pub detail_urls: Vec<Vec<String>>,
    /// Per list page: the detail pages' HTML, aligned with `detail_urls`.
    pub detail_pages: Vec<Vec<String>>,
    /// Linked pages that were fetched but classified as non-detail
    /// (advertisements and other extraneous pages).
    pub rejected: usize,
}

/// Navigates a site from `start_url`, fetching at most `max_list_pages`
/// list pages. `fetch` returns the HTML of a URL, or `None` for dead
/// links. Returns `None` if the start page itself cannot be fetched.
pub fn navigate(
    fetch: &dyn Fn(&str) -> Option<String>,
    start_url: &str,
    max_list_pages: usize,
) -> Option<NavigatedSite> {
    let start_html = fetch(start_url)?;

    // Phase 1: discover the list-page chain.
    let mut interner = Interner::new();
    let tokens_of = |html: &str, interner: &mut Interner| -> Vec<u32> {
        tokenize(html)
            .iter()
            .map(|t| interner.intern(&t.text))
            .collect()
    };
    let start_stream = tokens_of(&start_html, &mut interner);

    let mut list_urls = vec![start_url.to_owned()];
    let mut list_pages = vec![start_html];
    let mut fetched: HashMap<String, Option<String>> = HashMap::new();
    fetched.insert(start_url.to_owned(), None); // never refetch the start

    let mut frontier = 0;
    while frontier < list_pages.len() && list_pages.len() < max_list_pages {
        let links = extract_links(&tokenize(&list_pages[frontier]));
        for link in links {
            if list_pages.len() >= max_list_pages {
                break;
            }
            if fetched.contains_key(&link.href) {
                continue;
            }
            match fetch(&link.href) {
                Some(html)
                    if page_similarity(&start_stream, &tokens_of(&html, &mut interner))
                        >= LIST_SIMILARITY =>
                {
                    fetched.insert(link.href.clone(), None);
                    list_urls.push(link.href);
                    list_pages.push(html);
                }
                // Cache for phase 2 (detail candidates), including dead
                // links as None.
                body => {
                    fetched.insert(link.href, body);
                }
            }
        }
        frontier += 1;
    }

    // Phase 2: per list page, classify the remaining links.
    let mut detail_urls = Vec::with_capacity(list_pages.len());
    let mut detail_pages = Vec::with_capacity(list_pages.len());
    let mut rejected = 0;
    for html in &list_pages {
        let mut urls = Vec::new();
        let mut bodies = Vec::new();
        let mut seen = std::collections::HashSet::new();
        for link in extract_links(&tokenize(html)) {
            if list_urls.contains(&link.href) || !seen.insert(link.href.clone()) {
                continue;
            }
            let body = fetched
                .entry(link.href.clone())
                .or_insert_with(|| fetch(&link.href));
            if let Some(body) = body.clone() {
                urls.push(link.href);
                bodies.push(body);
            }
        }
        let refs: Vec<&str> = bodies.iter().map(String::as_str).collect();
        let keep = identify_detail_pages(&refs);
        rejected += bodies.len() - keep.len();
        detail_urls.push(keep.iter().map(|&i| urls[i].clone()).collect());
        detail_pages.push(keep.iter().map(|&i| bodies[i].clone()).collect());
    }

    Some(NavigatedSite {
        list_urls,
        list_pages,
        detail_urls,
        detail_pages,
        rejected,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{prepare, SitePages};
    use crate::segmenter::{CspSegmenter, Segmenter};
    use tableseg_sitegen::paper_sites;
    use tableseg_sitegen::site::generate;

    fn fetcher(map: std::collections::HashMap<String, String>) -> impl Fn(&str) -> Option<String> {
        move |url: &str| map.get(url).cloned()
    }

    #[test]
    fn discovers_list_chain_and_details() {
        let site = generate(&paper_sites::ohio());
        let truth_counts: Vec<usize> = site.pages.iter().map(|p| p.truth.len()).collect();
        let fetch = fetcher(site.site_map(2));
        let nav = navigate(&fetch, "/list/0", 4).expect("start fetches");
        assert_eq!(nav.list_urls, vec!["/list/0", "/list/1"]);
        assert_eq!(nav.detail_pages.len(), 2);
        for (p, urls) in nav.detail_urls.iter().enumerate() {
            assert_eq!(urls.len(), truth_counts[p], "page {p}: {urls:?}");
            // Row order preserved.
            for (i, url) in urls.iter().enumerate() {
                assert_eq!(url, &format!("/detail/{p}/{i}"));
            }
        }
        // The two ad pages were fetched and rejected (once per list page
        // that links them, deduplicated by the per-page seen set).
        assert!(nav.rejected >= 2, "{}", nav.rejected);
    }

    #[test]
    fn navigated_site_segments_end_to_end() {
        let site = generate(&paper_sites::butler());
        let fetch = fetcher(site.site_map(2));
        let nav = navigate(&fetch, "/list/0", 4).expect("start fetches");
        let prepared = prepare(&SitePages {
            list_pages: nav.list_pages.iter().map(String::as_str).collect(),
            target: 0,
            detail_pages: nav.detail_pages[0].iter().map(String::as_str).collect(),
        });
        let outcome = CspSegmenter::default().segment(&prepared.observations);
        assert!(!outcome.relaxed);
        let non_empty = outcome
            .segmentation
            .records()
            .iter()
            .filter(|r| !r.is_empty())
            .count();
        assert_eq!(non_empty, site.pages[0].truth.len());
    }

    #[test]
    fn dead_start_url_is_none() {
        let fetch = fetcher(std::collections::HashMap::new());
        assert!(navigate(&fetch, "/list/0", 4).is_none());
    }

    #[test]
    fn max_list_pages_caps_the_chain() {
        let site = generate(&paper_sites::ohio());
        let fetch = fetcher(site.site_map(0));
        let nav = navigate(&fetch, "/list/0", 1).expect("start fetches");
        assert_eq!(nav.list_pages.len(), 1);
    }
}
