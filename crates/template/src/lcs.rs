//! Longest common subsequence in linear space (Hirschberg's algorithm).
//!
//! Template induction aligns multi-thousand-token pages; the classic DP
//! table would need `O(n·m)` memory, so we use Hirschberg's divide-and-
//! conquer formulation: `O(n·m)` time but `O(min(n, m))` space.

use crate::intern::Symbol;

/// Computes the matched index pairs of one longest common subsequence of
/// `a` and `b`. Pairs are returned in increasing order of both indices.
pub fn lcs_indices(a: &[Symbol], b: &[Symbol]) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    hirschberg(a, b, 0, 0, &mut out);
    out
}

/// Computes only the *length* of the LCS, in linear space.
pub fn lcs_length(a: &[Symbol], b: &[Symbol]) -> usize {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    *forward_row(a, b).last().expect("row is len b+1") as usize
}

/// Last row of the LCS length DP for `a` vs `b` (forward direction).
/// `row[j]` = LCS length of `a` and `b[..j]`. Shared with the histogram
/// path ([`crate::histogram`]), which uses it for its exact midpoint
/// splits.
pub(crate) fn forward_row(a: &[Symbol], b: &[Symbol]) -> Vec<u32> {
    let mut row = vec![0u32; b.len() + 1];
    for &ai in a {
        let mut diag = 0; // row[j-1] from the previous iteration
        for j in 1..=b.len() {
            let up = row[j];
            row[j] = if ai == b[j - 1] {
                diag + 1
            } else {
                up.max(row[j - 1])
            };
            diag = up;
        }
    }
    row
}

/// Same as [`forward_row`] but over the reversed sequences.
/// `row[j]` = LCS length of `a` reversed and the last `j` items of `b`.
pub(crate) fn backward_row(a: &[Symbol], b: &[Symbol]) -> Vec<u32> {
    let mut row = vec![0u32; b.len() + 1];
    for &ai in a.iter().rev() {
        let mut diag = 0;
        for j in 1..=b.len() {
            let up = row[j];
            let bj = b[b.len() - j];
            row[j] = if ai == bj {
                diag + 1
            } else {
                up.max(row[j - 1])
            };
            diag = up;
        }
    }
    row
}

fn hirschberg(
    a: &[Symbol],
    b: &[Symbol],
    a_off: usize,
    b_off: usize,
    out: &mut Vec<(usize, usize)>,
) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    if a.len() == 1 {
        if let Some(j) = b.iter().position(|&x| x == a[0]) {
            out.push((a_off, b_off + j));
        }
        return;
    }
    let mid = a.len() / 2;
    let fwd = forward_row(&a[..mid], b);
    let bwd = backward_row(&a[mid..], b);
    // Find split point of b maximizing fwd[j] + bwd[b.len() - j].
    let mut best_j = 0;
    let mut best = 0;
    for j in 0..=b.len() {
        let score = fwd[j] + bwd[b.len() - j];
        if score > best {
            best = score;
            best_j = j;
        }
    }
    hirschberg(&a[..mid], &b[..best_j], a_off, b_off, out);
    hirschberg(&a[mid..], &b[best_j..], a_off + mid, b_off + best_j, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Reference quadratic-space LCS for cross-checking.
    fn lcs_reference(a: &[Symbol], b: &[Symbol]) -> usize {
        let mut dp = vec![vec![0usize; b.len() + 1]; a.len() + 1];
        for i in 1..=a.len() {
            for j in 1..=b.len() {
                dp[i][j] = if a[i - 1] == b[j - 1] {
                    dp[i - 1][j - 1] + 1
                } else {
                    dp[i - 1][j].max(dp[i][j - 1])
                };
            }
        }
        dp[a.len()][b.len()]
    }

    fn check_valid(a: &[Symbol], b: &[Symbol], pairs: &[(usize, usize)]) {
        // Pairs strictly increasing in both coordinates, and matching.
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "a indices increase");
            assert!(w[0].1 < w[1].1, "b indices increase");
        }
        for &(i, j) in pairs {
            assert_eq!(a[i], b[j], "pair matches");
        }
    }

    #[test]
    fn simple_cases() {
        assert_eq!(lcs_length(&[1, 2, 3], &[1, 2, 3]), 3);
        assert_eq!(lcs_length(&[1, 2, 3], &[4, 5, 6]), 0);
        assert_eq!(lcs_length(&[], &[1]), 0);
        assert_eq!(lcs_length(&[1], &[]), 0);
        assert_eq!(lcs_length(&[1, 3, 5, 7], &[0, 3, 4, 7, 9]), 2);
    }

    #[test]
    fn indices_match_length() {
        let a = [1, 9, 2, 8, 3, 7, 4];
        let b = [9, 1, 2, 3, 8, 7, 4, 4];
        let pairs = lcs_indices(&a, &b);
        check_valid(&a, &b, &pairs);
        assert_eq!(pairs.len(), lcs_reference(&a, &b));
    }

    /// Regression for the `hirschberg` recursion boundaries: every mix of
    /// length-0 and length-1 slices must terminate and produce a valid
    /// trace. The `a.len() == 1` base case and the `mid = a.len() / 2`
    /// split (`mid == 0` when `a.len() == 1`) are exactly the shapes the
    /// recursion bottoms out on, so each is pinned here explicitly.
    #[test]
    fn degenerate_slice_boundaries() {
        // Empty × {empty, one, many}.
        assert!(lcs_indices(&[], &[]).is_empty());
        assert!(lcs_indices(&[], &[7]).is_empty());
        assert!(lcs_indices(&[7], &[]).is_empty());
        assert!(lcs_indices(&[], &[1, 2, 3]).is_empty());
        // Singleton a: base case scans b for the first occurrence.
        assert_eq!(lcs_indices(&[5], &[9, 5, 5]), vec![(0, 1)]);
        assert_eq!(lcs_indices(&[5], &[9, 8]), vec![]);
        // Singleton b: the split puts everything on one side of b. The
        // trace may pick either 5 of a; only validity and length are
        // pinned.
        let pairs = lcs_indices(&[9, 5, 5], &[5]);
        check_valid(&[9, 5, 5], &[5], &pairs);
        assert_eq!(pairs.len(), 1);
        assert_eq!(lcs_indices(&[3, 4], &[4]), vec![(1, 0)]);
        // Two-element a: mid == 1, both halves are singletons.
        assert_eq!(lcs_indices(&[1, 2], &[1, 2]), vec![(0, 0), (1, 1)]);
        assert_eq!(lcs_indices(&[2, 1], &[1, 2]).len(), 1);
        // Lengths agree with the trace on every shape above.
        for (a, b) in [
            (vec![], vec![]),
            (vec![5], vec![9, 5, 5]),
            (vec![9, 5, 5], vec![5]),
            (vec![2, 1], vec![1, 2]),
        ] {
            let a: Vec<Symbol> = a;
            let b: Vec<Symbol> = b;
            assert_eq!(lcs_indices(&a, &b).len(), lcs_length(&a, &b));
        }
    }

    #[test]
    fn repeated_symbols() {
        let a = [1, 1, 1, 2, 1, 1];
        let b = [1, 2, 1, 1, 2, 1];
        let pairs = lcs_indices(&a, &b);
        check_valid(&a, &b, &pairs);
        assert_eq!(pairs.len(), lcs_reference(&a, &b));
    }

    #[test]
    fn template_like_streams() {
        // Two "pages": shared header/footer, different middles.
        let a = [100, 101, 1, 2, 3, 102, 103];
        let b = [100, 101, 4, 5, 102, 103];
        let pairs = lcs_indices(&a, &b);
        check_valid(&a, &b, &pairs);
        let common: Vec<Symbol> = pairs.iter().map(|&(i, _)| a[i]).collect();
        assert_eq!(common, [100, 101, 102, 103]);
    }

    proptest! {
        #[test]
        fn prop_matches_reference(
            a in proptest::collection::vec(0u32..8, 0..60),
            b in proptest::collection::vec(0u32..8, 0..60),
        ) {
            let pairs = lcs_indices(&a, &b);
            check_valid(&a, &b, &pairs);
            prop_assert_eq!(pairs.len(), lcs_reference(&a, &b));
            prop_assert_eq!(lcs_length(&a, &b), lcs_reference(&a, &b));
        }

        #[test]
        fn prop_lcs_of_self_is_identity(a in proptest::collection::vec(0u32..50, 0..80)) {
            let pairs = lcs_indices(&a, &a);
            prop_assert_eq!(pairs.len(), a.len());
            for (k, &(i, j)) in pairs.iter().enumerate() {
                prop_assert_eq!(i, k);
                prop_assert_eq!(j, k);
            }
        }

        /// Oracle at page-like scale: Hirschberg output equals the naive
        /// quadratic DP on random sequences up to length 200, across
        /// alphabet sizes from near-constant (dense repeats, the worst
        /// case for split-point recursion) to near-unique.
        #[test]
        fn prop_oracle_up_to_length_200(
            ab in (1u32..16).prop_flat_map(|k| (
                proptest::collection::vec(0..k, 0..201),
                proptest::collection::vec(0..k, 0..201),
            )),
        ) {
            let (a, b) = ab;
            let pairs = lcs_indices(&a, &b);
            check_valid(&a, &b, &pairs);
            let want = lcs_reference(&a, &b);
            prop_assert_eq!(pairs.len(), want, "Hirschberg trace shorter than DP optimum");
            prop_assert_eq!(lcs_length(&a, &b), want, "linear-space length disagrees with DP");
        }

        #[test]
        fn prop_subsequence_fully_matched(
            a in proptest::collection::vec(0u32..20, 1..60),
            mask in proptest::collection::vec(proptest::bool::ANY, 1..60),
        ) {
            // b = subsequence of a selected by mask; LCS length must be |b|.
            let b: Vec<Symbol> = a
                .iter()
                .zip(mask.iter().chain(std::iter::repeat(&false)))
                .filter_map(|(&x, &keep)| keep.then_some(x))
                .collect();
            prop_assert_eq!(lcs_length(&a, &b), b.len());
        }
    }
}
