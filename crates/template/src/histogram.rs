//! Histogram-accelerated longest common subsequence over interned
//! symbol streams.
//!
//! Template induction spends its time in pairwise LCS over the candidate
//! streams ([`mod@crate::induce`]), and Hirschberg's algorithm ([`crate::lcs`])
//! costs `O(n·m)` per pair regardless of how similar the pages are. This
//! module applies the histogram idea from histogram diff (imara-diff,
//! `git diff --histogram`): build per-symbol occurrence counts for the
//! window, use them to discard everything that cannot match, and anchor
//! the alignment on the rarest tokens. Unlike the diff tools — which
//! accept approximate answers — every reduction used here is *exact*, so
//! the result is always a true LCS and the Hirschberg path can serve as a
//! differential oracle.
//!
//! The recursion applies, in order:
//!
//! 1. **Common prefix/suffix stripping.** `LCS(xα, xβ) = x · LCS(α, β)`
//!    (and symmetrically for suffixes), so equal margins are matched
//!    outright. Templated pages share their header and footer verbatim,
//!    which makes this the dominant reduction on real sites.
//! 2. **Common-symbol filtering.** A symbol absent from the other side of
//!    the window can never be part of a common subsequence; the histogram
//!    drops it. Page data (names, amounts) rarely repeats across pages,
//!    so this collapses full page streams to near-template size.
//! 3. **Unique-window fast path.** When every remaining symbol occurs
//!    exactly once on each side — the rarest-token degenerate case, and
//!    the *invariant* case for induction's candidate streams (candidates
//!    are once-per-page by construction) — the LCS equals the longest
//!    increasing subsequence of the occurrence pairing, solved by
//!    patience sorting in `O(k log k)`.
//! 4. **Exact midpoint split.** Mixed windows larger than
//!    [`FALLBACK_CUTOFF`] are split at the Hirschberg midpoint (one
//!    forward + one backward DP row over the *filtered* window) and both
//!    sides recurse from step 1, re-filtering as they go.
//! 5. **Hirschberg fallback.** Small mixed windows go straight to the
//!    quadratic DP, which is faster than further bookkeeping.

use tableseg_html::intern::FastMap;

use crate::intern::Symbol;
use crate::lcs::{backward_row, forward_row, lcs_indices};

/// Mixed windows (repeated symbols on both sides) at or below this size
/// are handed to the Hirschberg DP instead of being split further: at
/// `24 × 24` the quadratic table is cheaper than another histogram pass.
pub const FALLBACK_CUTOFF: usize = 24;

/// How the histogram recursion resolved its windows; the differential
/// and perf layers use these to prove the fast path actually ran.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LcsStats {
    /// Windows solved by the unique-symbol patience-LIS fast path.
    pub unique_windows: usize,
    /// Windows solved by the Hirschberg DP fallback.
    pub fallback_windows: usize,
    /// Windows split at an exact midpoint and recursed.
    pub split_windows: usize,
}

impl LcsStats {
    /// Sums another stats record into this one.
    pub fn merge(&mut self, other: &LcsStats) {
        self.unique_windows += other.unique_windows;
        self.fallback_windows += other.fallback_windows;
        self.split_windows += other.split_windows;
    }
}

/// Computes the matched index pairs of one longest common subsequence of
/// `a` and `b` via the histogram recursion. Pairs are returned in
/// increasing order of both indices.
///
/// Produces a trace of the same *length* as [`lcs_indices`]
/// on every input (the reductions are exact); the traces themselves may
/// differ when several LCSs exist.
pub fn lcs_indices_histogram(a: &[Symbol], b: &[Symbol]) -> Vec<(usize, usize)> {
    lcs_indices_histogram_stats(a, b).0
}

/// [`lcs_indices_histogram`] plus the per-call window statistics.
pub fn lcs_indices_histogram_stats(a: &[Symbol], b: &[Symbol]) -> (Vec<(usize, usize)>, LcsStats) {
    let mut out = Vec::new();
    let mut stats = LcsStats::default();
    let aw: Vec<(Symbol, u32)> = a.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
    let bw: Vec<(Symbol, u32)> = b.iter().enumerate().map(|(i, &s)| (s, i as u32)).collect();
    solve(aw, bw, &mut out, &mut stats);
    // Matches are emitted per-window; windows are disjoint and ordered
    // consistently in both sequences, but emission order interleaves
    // (prefix strips come before recursion, suffix strips after).
    out.sort_unstable();
    (out, stats)
}

/// One recursion window. Sequences carry their original indices so the
/// emitted pairs survive filtering and splitting.
fn solve(
    mut a: Vec<(Symbol, u32)>,
    mut b: Vec<(Symbol, u32)>,
    out: &mut Vec<(usize, usize)>,
    stats: &mut LcsStats,
) {
    loop {
        // 1. Strip the common prefix and suffix, matching them outright.
        let mut p = 0;
        while p < a.len() && p < b.len() && a[p].0 == b[p].0 {
            out.push((a[p].1 as usize, b[p].1 as usize));
            p += 1;
        }
        a.drain(..p);
        b.drain(..p);
        let mut s = 0;
        while s < a.len() && s < b.len() && a[a.len() - 1 - s].0 == b[b.len() - 1 - s].0 {
            out.push((a[a.len() - 1 - s].1 as usize, b[b.len() - 1 - s].1 as usize));
            s += 1;
        }
        a.truncate(a.len() - s);
        b.truncate(b.len() - s);
        if a.is_empty() || b.is_empty() {
            return;
        }

        // 2. Histogram the window and drop symbols not common to both
        //    sides. `counts[sym] = [occurrences in a, occurrences in b]`.
        let mut counts: FastMap<Symbol, [u32; 2]> = FastMap::default();
        for &(sym, _) in &a {
            counts.entry(sym).or_default()[0] += 1;
        }
        for &(sym, _) in &b {
            // Symbols absent from `a` can never match; no entry needed.
            if let Some(c) = counts.get_mut(&sym) {
                c[1] += 1;
            }
        }
        let common = |sym: Symbol| counts.get(&sym).is_some_and(|c| c[0] > 0 && c[1] > 0);
        let before = (a.len(), b.len());
        a.retain(|&(sym, _)| common(sym));
        b.retain(|&(sym, _)| common(sym));
        if a.is_empty() || b.is_empty() {
            return;
        }
        if (a.len(), b.len()) != before {
            // Filtering may expose a new common margin; restart the loop.
            continue;
        }

        // 3. Rarest-token degenerate case: every common symbol occurs
        //    exactly once on each side, so the LCS is the longest
        //    increasing subsequence of the occurrence pairing.
        let all_unique = counts
            .values()
            .all(|&[ca, cb]| cb == 0 || (ca == 1 && cb == 1));
        if all_unique {
            stats.unique_windows += 1;
            patience_lis(&a, &b, out);
            return;
        }

        // 5. Small mixed window: quadratic DP beats more bookkeeping.
        if a.len().min(b.len()) <= FALLBACK_CUTOFF {
            stats.fallback_windows += 1;
            let asyms: Vec<Symbol> = a.iter().map(|&(sym, _)| sym).collect();
            let bsyms: Vec<Symbol> = b.iter().map(|&(sym, _)| sym).collect();
            for (i, j) in lcs_indices(&asyms, &bsyms) {
                out.push((a[i].1 as usize, b[j].1 as usize));
            }
            return;
        }

        // 4. Exact midpoint split over the filtered window; both halves
        //    re-enter the reduction pipeline.
        stats.split_windows += 1;
        let mid = a.len() / 2;
        let asyms: Vec<Symbol> = a.iter().map(|&(sym, _)| sym).collect();
        let bsyms: Vec<Symbol> = b.iter().map(|&(sym, _)| sym).collect();
        let fwd = forward_row(&asyms[..mid], &bsyms);
        let bwd = backward_row(&asyms[mid..], &bsyms);
        let mut best_j = 0;
        let mut best = 0;
        for j in 0..=b.len() {
            let score = fwd[j] + bwd[b.len() - j];
            if score > best {
                best = score;
                best_j = j;
            }
        }
        let a_right = a.split_off(mid);
        let b_right = b.split_off(best_j);
        solve(a, b, out, stats);
        solve(a_right, b_right, out, stats);
        return;
    }
}

/// Longest strictly-increasing subsequence of the unique-symbol pairing:
/// iterate `a` in order, map each symbol to its (single) position in `b`,
/// and patience-sort the `b` positions. Emits the matched original-index
/// pairs in window order.
fn patience_lis(a: &[(Symbol, u32)], b: &[(Symbol, u32)], out: &mut Vec<(usize, usize)>) {
    let mut b_pos: FastMap<Symbol, u32> = FastMap::default();
    for (j, &(sym, _)) in b.iter().enumerate() {
        b_pos.insert(sym, j as u32);
    }
    // seq[k] = (position in b, index into a) for the k-th common symbol
    // of a. Every symbol of the filtered window is common and unique, so
    // the lookup always succeeds.
    let seq: Vec<(u32, u32)> = a
        .iter()
        .enumerate()
        .filter_map(|(i, &(sym, _))| b_pos.get(&sym).map(|&j| (j, i as u32)))
        .collect();
    // Patience piles: tails[k] = index into seq of the smallest b-position
    // ending an increasing subsequence of length k + 1.
    let mut tails: Vec<u32> = Vec::new();
    let mut parent: Vec<u32> = vec![u32::MAX; seq.len()];
    for (i, &(bj, _)) in seq.iter().enumerate() {
        let pos = tails.partition_point(|&t| seq[t as usize].0 < bj);
        if pos > 0 {
            parent[i] = tails[pos - 1];
        }
        if pos == tails.len() {
            tails.push(i as u32);
        } else {
            tails[pos] = i as u32;
        }
    }
    let mut picked = Vec::with_capacity(tails.len());
    let mut cur = tails.last().copied();
    while let Some(i) = cur {
        picked.push(i);
        cur = match parent[i as usize] {
            u32::MAX => None,
            p => Some(p),
        };
    }
    for &i in picked.iter().rev() {
        let (bj, ai) = seq[i as usize];
        out.push((a[ai as usize].1 as usize, b[bj as usize].1 as usize));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcs::lcs_length;
    use proptest::prelude::*;

    /// Valid common subsequence: strictly increasing in both coordinates,
    /// every pair matching.
    fn check_valid(a: &[Symbol], b: &[Symbol], pairs: &[(usize, usize)]) {
        for w in pairs.windows(2) {
            assert!(w[0].0 < w[1].0, "a indices increase: {pairs:?}");
            assert!(w[0].1 < w[1].1, "b indices increase: {pairs:?}");
        }
        for &(i, j) in pairs {
            assert_eq!(a[i], b[j], "pair ({i}, {j}) matches");
        }
    }

    fn check_against_oracle(a: &[Symbol], b: &[Symbol]) {
        let (pairs, _) = lcs_indices_histogram_stats(a, b);
        check_valid(a, b, &pairs);
        assert_eq!(
            pairs.len(),
            lcs_length(a, b),
            "histogram LCS length differs from Hirschberg on {a:?} / {b:?}"
        );
    }

    #[test]
    fn degenerate_empty() {
        check_against_oracle(&[], &[]);
        check_against_oracle(&[], &[1, 2, 3]);
        check_against_oracle(&[1, 2, 3], &[]);
    }

    #[test]
    fn degenerate_all_unique() {
        // Disjoint alphabets: everything filtered, LCS empty.
        check_against_oracle(&[1, 2, 3], &[4, 5, 6]);
        // Permuted unique symbols: the patience path.
        let a = [1, 9, 2, 8, 3, 7, 4];
        let b = [9, 1, 2, 3, 8, 7, 4];
        check_against_oracle(&a, &b);
        let (pairs, stats) = lcs_indices_histogram_stats(&a, &b);
        assert!(stats.unique_windows >= 1, "{stats:?}");
        assert_eq!(pairs.len(), 5);
    }

    #[test]
    fn degenerate_all_identical() {
        check_against_oracle(&[7; 40], &[7; 25]);
        let (pairs, _) = lcs_indices_histogram_stats(&[7; 40], &[7; 25]);
        // Prefix stripping matches the whole shorter run.
        assert_eq!(pairs.len(), 25);
    }

    #[test]
    fn degenerate_prefix_of_other() {
        let a: Vec<Symbol> = (0..30).collect();
        let b: Vec<Symbol> = (0..12).collect();
        check_against_oracle(&a, &b);
        let (pairs, _) = lcs_indices_histogram_stats(&a, &b);
        assert_eq!(pairs.len(), 12);
        // A subsequence (not prefix) is still fully matched.
        let sub: Vec<Symbol> = a.iter().copied().step_by(3).collect();
        let (pairs, _) = lcs_indices_histogram_stats(&a, &sub);
        assert_eq!(pairs.len(), sub.len());
    }

    #[test]
    fn template_like_streams_take_the_fast_path() {
        // Shared chrome around differing middles, as induction sees after
        // candidate filtering (every symbol once per page).
        let a = [100, 101, 1, 2, 3, 102, 103];
        let b = [100, 101, 4, 5, 102, 103];
        let (pairs, stats) = lcs_indices_histogram_stats(&a, &b);
        check_valid(&a, &b, &pairs);
        assert_eq!(pairs.len(), 4);
        // Fully resolved by stripping + filtering: no DP fallback, no
        // split.
        assert_eq!(stats.fallback_windows, 0, "{stats:?}");
        assert_eq!(stats.split_windows, 0, "{stats:?}");
    }

    #[test]
    fn mixed_window_falls_back_exactly() {
        // Repeats force the DP fallback; length must still be optimal.
        let a = [1, 1, 2, 1, 3, 1, 2, 9];
        let b = [2, 1, 1, 3, 2, 1, 9, 9];
        let (pairs, stats) = lcs_indices_histogram_stats(&a, &b);
        check_valid(&a, &b, &pairs);
        assert_eq!(pairs.len(), lcs_length(&a, &b));
        assert!(stats.fallback_windows >= 1, "{stats:?}");
    }

    #[test]
    fn large_mixed_window_splits() {
        // Two long interleaved repeat patterns, bigger than the fallback
        // cutoff, with no common margins: must take the split path and
        // still match the oracle.
        let a: Vec<Symbol> = (0..120).map(|i| [5, 6, 5, 7][i % 4]).collect();
        let mut b: Vec<Symbol> = (0..110).map(|i| [6, 5, 7, 7][i % 4]).collect();
        b.insert(0, 99); // kill the common prefix
        b.push(98); // and the common suffix
        let (pairs, stats) = lcs_indices_histogram_stats(&a, &b);
        check_valid(&a, &b, &pairs);
        assert_eq!(pairs.len(), lcs_length(&a, &b));
        assert!(stats.split_windows >= 1, "{stats:?}");
    }

    proptest! {
        /// The tentpole differential property: the histogram path is a
        /// valid common subsequence of the same length as the Hirschberg
        /// oracle, on random interned streams across alphabet densities.
        #[test]
        fn prop_histogram_equals_hirschberg(
            ab in (1u32..24).prop_flat_map(|k| (
                proptest::collection::vec(0..k, 0..120),
                proptest::collection::vec(0..k, 0..120),
            )),
        ) {
            let (a, b) = ab;
            let (pairs, _) = lcs_indices_histogram_stats(&a, &b);
            check_valid(&a, &b, &pairs);
            prop_assert_eq!(pairs.len(), lcs_length(&a, &b));
        }

        /// Unique-symbol streams (the induction invariant) always resolve
        /// without the quadratic fallback.
        #[test]
        fn prop_unique_streams_never_fall_back(
            a in proptest::collection::vec(0u32..10_000, 0..200),
            b in proptest::collection::vec(0u32..10_000, 0..200),
        ) {
            let mut a = a;
            let mut b = b;
            a.sort_unstable();
            a.dedup();
            b.sort_unstable();
            b.dedup();
            // Shuffle determinism isn't needed: sorted unique streams are
            // a valid (if easy) unique case; reverse one side to vary.
            b.reverse();
            let (pairs, stats) = lcs_indices_histogram_stats(&a, &b);
            check_valid(&a, &b, &pairs);
            prop_assert_eq!(pairs.len(), lcs_length(&a, &b));
            prop_assert_eq!(stats.fallback_windows, 0);
            prop_assert_eq!(stats.split_windows, 0);
        }

        /// Histogram LCS of a sequence with itself is the identity.
        #[test]
        fn prop_self_identity(a in proptest::collection::vec(0u32..50, 0..150)) {
            let (pairs, _) = lcs_indices_histogram_stats(&a, &a);
            prop_assert_eq!(pairs.len(), a.len());
            for (k, &(i, j)) in pairs.iter().enumerate() {
                prop_assert_eq!(i, k);
                prop_assert_eq!(j, k);
            }
        }
    }
}
