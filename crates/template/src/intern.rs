//! Token-text interning.
//!
//! Template induction compares token *texts* millions of times; comparing
//! interned `u32` symbols instead of strings keeps the LCS inner loop to a
//! single integer compare.

use std::collections::HashMap;

use tableseg_html::Token;

/// A symbol id for an interned token text.
pub type Symbol = u32;

/// Interns token texts to dense `u32` symbols.
#[derive(Debug, Default)]
pub struct Interner {
    map: HashMap<String, Symbol>,
    texts: Vec<String>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns one text, returning its symbol.
    pub fn intern(&mut self, text: &str) -> Symbol {
        if let Some(&sym) = self.map.get(text) {
            return sym;
        }
        let sym = Symbol::try_from(self.texts.len()).expect("fewer than 2^32 distinct tokens");
        self.map.insert(text.to_owned(), sym);
        self.texts.push(text.to_owned());
        sym
    }

    /// Interns a whole token stream.
    pub fn intern_tokens(&mut self, tokens: &[Token]) -> Vec<Symbol> {
        tokens.iter().map(|t| self.intern(&t.text)).collect()
    }

    /// Looks up the text of a symbol.
    pub fn text(&self, sym: Symbol) -> &str {
        &self.texts[sym as usize]
    }

    /// Number of distinct symbols.
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Returns `true` if no symbol has been interned.
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        let a2 = i.intern("foo");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.text(a), "foo");
        assert_eq!(i.text(b), "bar");
        assert_eq!(i.len(), 2);
    }

    #[test]
    fn intern_tokens_maps_stream() {
        let toks = tableseg_html::lexer::tokenize("<td>a</td><td>a</td>");
        let mut i = Interner::new();
        let syms = i.intern_tokens(&toks);
        assert_eq!(syms.len(), 6);
        assert_eq!(syms[0], syms[3], "<td> interned identically");
        assert_eq!(syms[1], syms[4], "'a' interned identically");
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
