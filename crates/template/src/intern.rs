//! Token-text interning — re-exported from [`tableseg_html::intern`].
//!
//! Interning began life here as a private detail of template induction
//! (the LCS inner loop compares symbols, not strings). It is now the
//! pipeline-wide front end — extract matching, separator classification
//! and evidence building all run on symbols — so the implementation lives
//! in `tableseg-html` next to the tokenizer; this module re-exports it
//! for template-local callers and backwards compatibility.

pub use tableseg_html::intern::{Interner, Symbol, UNKNOWN_SYMBOL};
