//! Slots: the page sections that are not part of the page template.

use std::ops::Range;

use tableseg_html::Token;

/// One slot: for each example page, the token range that fills the gap
/// between two consecutive template anchors (or before the first / after
/// the last anchor).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Slot {
    /// Slot index: slot `i` is the gap *before* template token `i`;
    /// slot `template_len` is the gap after the last template token.
    pub index: usize,
    /// Per-page token ranges filling this slot.
    pub ranges: Vec<Range<usize>>,
}

impl Slot {
    /// Total number of tokens across all pages in this slot.
    pub fn token_count(&self) -> usize {
        self.ranges.iter().map(Range::len).sum()
    }

    /// Total number of visible-text tokens across all pages in this slot.
    pub fn text_token_count(&self, pages: &[Vec<Token>]) -> usize {
        self.ranges
            .iter()
            .zip(pages)
            .map(|(r, page)| page[r.clone()].iter().filter(|t| t.is_text()).count())
            .sum()
    }

    /// Returns `true` if the slot is empty on every page.
    pub fn is_empty(&self) -> bool {
        self.ranges.iter().all(|r| r.is_empty())
    }
}

/// All slots derived from a template over a set of pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlotSet {
    /// Slots in page order. There are `template_len + 1` of them.
    pub slots: Vec<Slot>,
}

impl SlotSet {
    /// The index of the slot containing the most text tokens — the paper's
    /// table-slot heuristic ("we use a heuristic that the table will be
    /// found in the slot that contains the largest number of text tokens").
    ///
    /// Returns `None` if every slot is empty of text.
    pub fn table_slot(&self, pages: &[Vec<Token>]) -> Option<usize> {
        self.slots
            .iter()
            .map(|s| s.text_token_count(pages))
            .enumerate()
            .filter(|&(_, n)| n > 0)
            .max_by_key(|&(_, n)| n)
            .map(|(i, _)| i)
    }

    /// Sum of text tokens over all slots.
    pub fn total_text_tokens(&self, pages: &[Vec<Token>]) -> usize {
        self.slots.iter().map(|s| s.text_token_count(pages)).sum()
    }

    /// Number of slots that are non-empty on at least one page.
    pub fn non_empty_count(&self) -> usize {
        self.slots.iter().filter(|s| !s.is_empty()).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    #[test]
    fn token_counts() {
        let pages = vec![tokenize("<b>a b c</b>"), tokenize("<b>x</b>")];
        let slot = Slot {
            index: 0,
            ranges: vec![1..4, 1..2],
        };
        assert_eq!(slot.token_count(), 4);
        assert_eq!(slot.text_token_count(&pages), 4);
        assert!(!slot.is_empty());
    }

    #[test]
    fn empty_slot() {
        let slot = Slot {
            index: 3,
            ranges: vec![2..2, 5..5],
        };
        assert!(slot.is_empty());
        assert_eq!(slot.token_count(), 0);
    }

    #[test]
    fn table_slot_picks_largest_text_slot() {
        let pages = vec![
            tokenize("h <td>one two three</td> f"),
            tokenize("h <td>x y</td> f"),
        ];
        // Construct a slot set manually: slot 0 = header word, slot 1 = cell
        // contents, slot 2 = footer word.
        let set = SlotSet {
            slots: vec![
                Slot {
                    index: 0,
                    ranges: vec![0..1, 0..1],
                },
                Slot {
                    index: 1,
                    ranges: vec![2..5, 2..4],
                },
                Slot {
                    index: 2,
                    ranges: vec![6..7, 5..6],
                },
            ],
        };
        assert_eq!(set.table_slot(&pages), Some(1));
        assert_eq!(set.total_text_tokens(&pages), 1 + 1 + 5 + 1 + 1);
        assert_eq!(set.non_empty_count(), 3);
    }

    #[test]
    fn table_slot_none_when_all_empty() {
        let pages: Vec<Vec<tableseg_html::Token>> = vec![vec![], vec![]];
        let set = SlotSet {
            slots: vec![Slot {
                index: 0,
                ranges: vec![0..0, 0..0],
            }],
        };
        assert_eq!(set.table_slot(&pages), None);
    }
}
