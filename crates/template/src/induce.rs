//! The template-finding algorithm.
//!
//! The template is computed as the progressive LCS of the pages' token
//! streams: `T₁ = page₁`, `Tᵢ = LCS(Tᵢ₋₁, pageᵢ)`. Every token of the final
//! template appears on every page in template order, which is precisely the
//! paper's definition of the page template ("data that is shared by all
//! list pages and is invariant from page to page"). Everything between
//! consecutive template anchors is a slot.
//!
//! Two LCS backends drive the fold, selected by [`InduceOptions`] through
//! the [`induce_with`] entry point: the histogram path
//! ([`crate::histogram`], production — near-linear on templated pages and
//! the default) and the Hirschberg path ([`crate::lcs`], kept verbatim as
//! the differential oracle). The histogram path folds pages in a
//! *canonical* order (shortest candidate stream first, content
//! tie-break), so the induced template is invariant under permutations of
//! the sample pages — the property that makes multi-page rolling merges
//! (10–100 pages per site) well-defined.

use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};
use tableseg_html::Token;

use crate::histogram::{lcs_indices_histogram_stats, LcsStats};
use crate::intern::{Interner, Symbol};
use crate::lcs::lcs_indices;
use crate::slot::{Slot, SlotSet};

/// Process-wide count of template inductions (any entry point).
static INDUCTIONS: AtomicUsize = AtomicUsize::new(0);

/// How many times induction has run in this process. Template induction
/// is the front end's most expensive step; batch runs cache it per site,
/// and tests assert on the *delta* of this counter to prove the cache
/// works (absolute values include other tests in the same process).
pub fn induction_count() -> usize {
    INDUCTIONS.load(Ordering::Relaxed)
}

/// Selects the template-induction backend. The default is the production
/// histogram path; `histogram: false` selects the verbatim Hirschberg
/// fold, kept as the differential oracle (as was done for MatchStream
/// and the reference WSAT solver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InduceOptions {
    /// Use the histogram-LCS rolling merge ([`crate::histogram`]). When
    /// `false`, fold with Hirschberg LCS in input-page order — the
    /// pre-histogram behavior, bit-for-bit.
    pub histogram: bool,
}

impl Default for InduceOptions {
    fn default() -> InduceOptions {
        InduceOptions { histogram: true }
    }
}

/// What one induction did: fold counts, anchor attrition and LCS window
/// statistics. Flows into the observability counters
/// (`template.merge_folds`, `template.anchors_dropped`,
/// `template.lcs_fallbacks`) via the pipeline layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InduceStats {
    /// Number of sample pages the template was induced from.
    pub pages: usize,
    /// LCS folds performed (pages beyond the base page, when ≥ 2 pages).
    pub folds: usize,
    /// Candidate anchors dropped across all folds (tokens of the running
    /// template that some later page did not confirm).
    pub anchors_dropped: usize,
    /// Anchors removed by the run-stability pass (the linked-run rule
    /// that guards against coincidental anchors inside slots).
    pub unstable_dropped: usize,
    /// Histogram-LCS window statistics (all zero on the Hirschberg path).
    pub lcs: LcsStats,
}

/// The induced page template: a sequence of tokens common to all pages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    /// Representative template tokens (taken from the first page).
    pub tokens: Vec<Token>,
}

impl Template {
    /// Template length in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the template is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// The result of template induction over a set of pages.
#[derive(Debug, Clone)]
pub struct Induction {
    /// The induced template.
    pub template: Template,
    /// For each page, the position of each template token in that page.
    /// `anchors[p][k]` is the index in page `p` of template token `k`.
    pub anchors: Vec<Vec<usize>>,
}

impl Induction {
    /// Derives the slot set: slot `k` is the per-page gap before template
    /// token `k`; the final slot is the gap after the last template token.
    pub fn slots(&self, pages: &[Vec<Token>]) -> SlotSet {
        let t = self.template.len();
        let mut slots = Vec::with_capacity(t + 1);
        for k in 0..=t {
            let ranges = self
                .anchors
                .iter()
                .zip(pages)
                .map(|(anchor, page)| {
                    let start = if k == 0 { 0 } else { anchor[k - 1] + 1 };
                    let end = if k == t { page.len() } else { anchor[k] };
                    start..end
                })
                .collect();
            slots.push(Slot { index: k, ranges });
        }
        SlotSet { slots }
    }

    /// Per-slot width stability across the sample pages: for each of the
    /// `template_len + 1` slots, the minimum and maximum token width over
    /// all pages. Template chrome produces narrow, near-constant slots;
    /// the table slot is the wide, variable one. Multi-page merge tests
    /// use this to show that folding more pages tightens the template
    /// (chrome slots stay narrow) instead of degrading it.
    ///
    /// `page_lens[p]` must be the token length of page `p` (the slots
    /// beyond the last anchor need it).
    pub fn slot_stability(&self, page_lens: &[usize]) -> Vec<(usize, usize)> {
        let t = self.template.len();
        (0..=t)
            .map(|k| {
                let mut min = usize::MAX;
                let mut max = 0usize;
                for (anchor, &len) in self.anchors.iter().zip(page_lens) {
                    let start = if k == 0 { 0 } else { anchor[k - 1] + 1 };
                    let end = if k == t { len } else { anchor[k] };
                    let width = end.saturating_sub(start);
                    min = min.min(width);
                    max = max.max(width);
                }
                if min == usize::MAX {
                    (0, 0)
                } else {
                    (min, max)
                }
            })
            .collect()
    }
}

/// Induces the page template from example pages.
///
/// Template tokens must be *invariant from page to page*: they must appear
/// on every page, in the same relative order, **exactly once per page**.
/// The once-per-page requirement is what keeps repeating table structure
/// out of the template — "If any of the tables on the pages contain more
/// than two rows, the tags specifying the structure of the table will not
/// be part of the page template, because they will appear more than once on
/// that page" (Section 3.1). Candidates are therefore tokens unique within
/// every page; the template is their progressive LCS across pages.
///
/// With fewer than two pages no template can be derived; the result has an
/// empty template and a single slot covering each whole page, which makes
/// the downstream pipeline equivalent to the paper's whole-page fallback.
///
/// Convenience wrapper over [`induce_with`] — the option-selected entry
/// point — with default options (the histogram path) and an internal
/// interner. Pipeline callers that already interned the site's pages
/// should call [`induce_with`] (or its thin wrappers [`induce_histogram`]
/// / [`induce_interned`]) directly.
pub fn induce(pages: &[Vec<Token>]) -> Induction {
    let mut interner = Interner::new();
    let streams: Vec<Vec<Symbol>> = pages.iter().map(|p| interner.intern_tokens(p)).collect();
    induce_with(pages, &streams, interner.len(), &InduceOptions::default()).0
}

/// [`induce`](fn@induce) over pre-interned symbol streams, on the **Hirschberg
/// oracle path** (input-order fold, quadratic LCS). Kept verbatim as the
/// differential baseline; production callers should use [`induce_with`]
/// — the option-selected entry point — or [`induce_histogram`].
///
/// `streams[p]` must be the symbol stream of `pages[p]` (same length, same
/// order) and `num_symbols` an upper bound on the symbol ids appearing in
/// the streams (typically `Interner::len`). The interner itself is not
/// needed: induction compares symbols and takes representative tokens from
/// the first page.
pub fn induce_interned(
    pages: &[Vec<Token>],
    streams: &[Vec<Symbol>],
    num_symbols: usize,
) -> Induction {
    induce_with(
        pages,
        streams,
        num_symbols,
        &InduceOptions { histogram: false },
    )
    .0
}

/// [`induce`](fn@induce) over pre-interned symbol streams on the production
/// **histogram path**: canonical-order rolling merge with the
/// histogram-LCS core. Thin wrapper over [`induce_with`].
pub fn induce_histogram(
    pages: &[Vec<Token>],
    streams: &[Vec<Symbol>],
    num_symbols: usize,
) -> Induction {
    induce_with(
        pages,
        streams,
        num_symbols,
        &InduceOptions { histogram: true },
    )
    .0
}

/// The option-selected induction entry point: derives the template from
/// pre-interned symbol streams with the backend chosen by `opts`, and
/// reports what it did. See [`induce`](fn@induce) for the template semantics and
/// [`induce_interned`] for the stream contract.
pub fn induce_with(
    pages: &[Vec<Token>],
    streams: &[Vec<Symbol>],
    num_symbols: usize,
    opts: &InduceOptions,
) -> (Induction, InduceStats) {
    INDUCTIONS.fetch_add(1, Ordering::Relaxed);
    debug_assert_eq!(pages.len(), streams.len());
    let mut stats = InduceStats {
        pages: pages.len(),
        ..InduceStats::default()
    };
    if pages.len() < 2 {
        return (
            Induction {
                template: Template { tokens: Vec::new() },
                anchors: vec![Vec::new(); pages.len()],
            },
            stats,
        );
    }

    let filtered = candidate_streams(streams, num_symbols);
    let template: Vec<Symbol> = if opts.histogram {
        fold_histogram(pages, &filtered, &mut stats)
    } else {
        fold_hirschberg(&filtered, &mut stats)
    };
    let induction = finish(pages, &filtered, template, &mut stats);
    (induction, stats)
}

/// Computes the per-page candidate streams: tokens occurring **exactly
/// once on every page**, with their original positions. These are the
/// streams the fold aligns pairwise; exposed so benches can time the LCS
/// cores on exactly the inputs induction gives them.
pub fn candidate_streams(streams: &[Vec<Symbol>], num_symbols: usize) -> Vec<Vec<(Symbol, usize)>> {
    let mut counts = vec![0u32; num_symbols];
    let mut candidate = vec![true; num_symbols];
    for stream in streams {
        counts.iter_mut().for_each(|c| *c = 0);
        for &s in stream {
            // Symbols outside the declared range (e.g. UNKNOWN_SYMBOL from
            // a read-only projection) can never be template candidates;
            // ignore them instead of indexing out of bounds.
            if let Some(c) = counts.get_mut(s as usize) {
                *c += 1;
            }
        }
        for (sym, &n) in counts.iter().enumerate() {
            if n != 1 {
                candidate[sym] = false;
            }
        }
    }
    streams
        .iter()
        .map(|stream| {
            stream
                .iter()
                .enumerate()
                .filter(|&(_, &s)| candidate[s as usize])
                .map(|(i, &s)| (s, i))
                .collect()
        })
        .collect()
}

/// The pre-histogram fold, verbatim: progressive Hirschberg LCS over the
/// candidate streams in input-page order. The differential oracle.
fn fold_hirschberg(filtered: &[Vec<(Symbol, usize)>], stats: &mut InduceStats) -> Vec<Symbol> {
    let mut template: Vec<Symbol> = filtered[0].iter().map(|&(s, _)| s).collect();
    for stream in &filtered[1..] {
        let s_syms: Vec<Symbol> = stream.iter().map(|&(s, _)| s).collect();
        let pairs = lcs_indices(&template, &s_syms);
        stats.folds += 1;
        stats.anchors_dropped += template.len() - pairs.len();
        template = pairs.iter().map(|&(ti, _)| template[ti]).collect();
        if template.is_empty() {
            break;
        }
    }
    template
}

/// The production fold: rolling histogram-LCS merge in canonical page
/// order — shortest candidate stream first (the template is a subsequence
/// of every stream, so starting small bounds all later folds), token
/// texts as the deterministic tie-break. The canonical order makes the
/// induced template invariant under permutations of the sample pages,
/// which is what lets a site's template be maintained incrementally as
/// more pages are crawled.
fn fold_histogram(
    pages: &[Vec<Token>],
    filtered: &[Vec<(Symbol, usize)>],
    stats: &mut InduceStats,
) -> Vec<Symbol> {
    let mut order: Vec<usize> = (0..filtered.len()).collect();
    order.sort_by(|&p, &q| {
        filtered[p].len().cmp(&filtered[q].len()).then_with(|| {
            let texts = |page: usize| {
                filtered[page]
                    .iter()
                    .map(move |&(_, i)| pages[page][i].text.as_str())
            };
            texts(p).cmp(texts(q))
        })
    });
    let base = order[0];
    let mut template: Vec<Symbol> = filtered[base].iter().map(|&(s, _)| s).collect();
    for &p in &order[1..] {
        if template.is_empty() {
            break;
        }
        let s_syms: Vec<Symbol> = filtered[p].iter().map(|&(s, _)| s).collect();
        let (pairs, lcs_stats) = lcs_indices_histogram_stats(&template, &s_syms);
        stats.folds += 1;
        stats.anchors_dropped += template.len() - pairs.len();
        stats.lcs.merge(&lcs_stats);
        template = pairs.iter().map(|&(ti, _)| template[ti]).collect();
    }
    template
}

/// Embeds the folded template into every page, takes representative
/// tokens from the first page, and applies the anchor-stability pass.
fn finish(
    pages: &[Vec<Token>],
    filtered: &[Vec<(Symbol, usize)>],
    template: Vec<Symbol>,
    stats: &mut InduceStats,
) -> Induction {
    // Embed the template into every page. Every template symbol occurs
    // exactly once per page, so the embedding is unique: look the position
    // up in the filtered stream. If an embedding is ever missing (the
    // candidate invariant was broken by degenerate input), the offending
    // symbol is dropped from the template rather than panicking — a
    // smaller template degrades the slot decision, not the process.
    let embeddings: Vec<Vec<Option<usize>>> = filtered
        .iter()
        .map(|stream| {
            template
                .iter()
                .map(|&sym| stream.iter().find(|&&(s, _)| s == sym).map(|&(_, pos)| pos))
                .collect()
        })
        .collect();
    let kept: Vec<usize> = (0..template.len())
        .filter(|&col| embeddings.iter().all(|e| e[col].is_some()))
        .collect();
    let anchors: Vec<Vec<usize>> = embeddings
        .iter()
        .map(|e| kept.iter().map(|&col| e[col].unwrap_or_default()).collect())
        .collect();

    let template_tokens: Vec<Token> = kept
        .iter()
        .map(|&col| {
            let first_idx = embeddings[0][col].unwrap_or_default();
            pages[0][first_idx].clone()
        })
        .collect();

    // Anchor positions are increasing on every page because the template is
    // an LCS of every filtered stream and each symbol is unique per page.
    debug_assert!(anchors.iter().all(|a| a.windows(2).all(|w| w[0] < w[1])));

    let mut induction = Induction {
        template: Template {
            tokens: template_tokens,
        },
        anchors,
    };
    stats.unstable_dropped = drop_unstable_anchors(
        &mut induction,
        &pages.iter().map(Vec::len).collect::<Vec<_>>(),
    );
    induction
}

/// Re-runs the anchor-stability pass on an existing induction, returning
/// how many anchors were dropped.
///
/// This is the incremental-maintenance entry point: when a serving layer
/// re-anchors a cached template onto changed pages (instead of re-running
/// the full fold), the changed pages may stretch previously linked anchor
/// runs apart. Applying the same linked-run rule used by
/// [`induce_with`]'s finish step restores the stability invariant without
/// a re-induction; on an induction whose anchors are already stable it is
/// a no-op (the pass iterates to a fixpoint and the fixpoint is reached).
///
/// `page_lens[p]` must be the token length of page `p`, as for
/// [`Induction::slot_stability`].
pub fn restabilize(induction: &mut Induction, page_lens: &[usize]) -> usize {
    drop_unstable_anchors(induction, page_lens)
}

/// Two consecutive anchors are *linked* when they are at most this many
/// tokens apart **on every page**. Template regions (headers, footers,
/// label rows) form long linked runs; data tokens that happen to appear
/// once per page do not.
const LINK_GAP: usize = 4;

/// Minimum linked-run length for anchors to be trusted as template.
const MIN_RUN: usize = 3;

/// Removes anchors outside dense runs, returning how many were dropped.
/// A real page template is written out contiguously by the server, so its
/// tokens cluster; an anchor in a run shorter than [`MIN_RUN`] is almost
/// always record data that happens to appear exactly once per page (or a
/// chance pair, like a shared `City, ST`), and left in place it chops the
/// table slot apart.
///
/// The one deliberate exception is **enumeration chains**: ascending runs
/// `1, 2, 3, ...` from numbered entries. The paper's template finder keeps
/// those and consequently fails on numbered sites (Section 6.3: "the
/// entries were numbered. Thus, sequences such as `1.` will be found on
/// every page"); this reproduction preserves that failure mode. (The paper
/// suggests an enumeration heuristic as *future work*, i.e. the 2004
/// algorithm did not have one.)
fn drop_unstable_anchors(induction: &mut Induction, _page_lens: &[usize]) -> usize {
    let enumeration = enumeration_members(&induction.template.tokens);
    let mut dropped = 0;
    loop {
        let t = induction.template.len();
        if t == 0 {
            return dropped;
        }
        // linked[k]: anchors k and k+1 are close on every page.
        let linked: Vec<bool> = (0..t.saturating_sub(1))
            .map(|k| {
                induction
                    .anchors
                    .iter()
                    .all(|anchor| anchor[k + 1] - anchor[k] <= LINK_GAP)
            })
            .collect();
        let mut drop = vec![false; t];
        let mut run_start = 0;
        // `linked` has t-1 entries; the appended `false` ends the last run.
        for (k, &lk) in linked.iter().chain(std::iter::once(&false)).enumerate() {
            let run_ends = !lk;
            if run_ends {
                let run_len = k + 1 - run_start;
                if run_len < MIN_RUN {
                    for d in drop.iter_mut().take(k + 1).skip(run_start) {
                        *d = true;
                    }
                }
                run_start = k + 1;
            }
        }
        // Enumeration members are exempt.
        for (k, d) in drop.iter_mut().enumerate() {
            if *d
                && enumeration
                    .binary_search(&induction.template.tokens[k].text)
                    .is_ok()
            {
                *d = false;
            }
        }
        if !drop.iter().any(|&d| d) {
            return dropped;
        }
        let keep: Vec<usize> = (0..t).filter(|&k| !drop[k]).collect();
        dropped += t - keep.len();
        induction.template.tokens = keep
            .iter()
            .map(|&k| induction.template.tokens[k].clone())
            .collect();
        for anchor in &mut induction.anchors {
            *anchor = keep.iter().map(|&k| anchor[k]).collect();
        }
    }
}

/// Texts of template tokens that belong to an ascending `+1` integer chain
/// of length ≥ 3 starting at 1 or 2 (entry numbering), sorted for lookup.
fn enumeration_members(tokens: &[Token]) -> Vec<String> {
    let values: Vec<Option<u64>> = tokens.iter().map(|t| t.text.parse::<u64>().ok()).collect();
    let mut members = Vec::new();
    let mut chain: Vec<usize> = Vec::new();
    let flush = |chain: &mut Vec<usize>, members: &mut Vec<String>, values: &[Option<u64>]| {
        if chain.len() >= 3 {
            let first = values[chain[0]].expect("chain holds numerics");
            if first <= 2 {
                for &k in chain.iter() {
                    members.push(tokens[k].text.clone());
                }
            }
        }
        chain.clear();
    };
    for (k, v) in values.iter().enumerate() {
        let Some(n) = v else {
            // Non-numeric template tokens (tags between numbered entries
            // were already excluded by the uniqueness rule, but words may
            // intervene) do not break a chain.
            continue;
        };
        let extends = chain
            .last()
            .and_then(|&prev| values[prev])
            .is_some_and(|p| p + 1 == *n);
        if extends {
            chain.push(k);
        } else if *n <= 2 {
            // A plausible chain start: close out the previous chain.
            flush(&mut chain, &mut members, &values);
            chain.push(k);
        }
        // Any other numeric (a year, a price fragment that happens to
        // align once per page) is an interloper inside the enumeration
        // region; like words, it does not break the chain.
    }
    flush(&mut chain, &mut members, &values);
    members.sort_unstable();
    members.dedup();
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    fn page(body: &str) -> Vec<Token> {
        tokenize(&format!(
            "<html><body><h1>Results</h1><table>{body}</table><p>Copyright 2004</p></body></html>"
        ))
    }

    /// Runs both backends over the same pages and returns (histogram,
    /// hirschberg) inductions.
    fn both_paths(pages: &[Vec<Token>]) -> (Induction, Induction) {
        let mut interner = Interner::new();
        let streams: Vec<Vec<Symbol>> = pages.iter().map(|p| interner.intern_tokens(p)).collect();
        let hist = induce_histogram(pages, &streams, interner.len());
        let hirsch = induce_interned(pages, &streams, interner.len());
        (hist, hirsch)
    }

    #[test]
    fn template_is_shared_structure() {
        let pages = vec![
            page("<tr><td>John Smith</td></tr><tr><td>Jane Doe</td></tr>"),
            page("<tr><td>Bob Jones</td></tr>"),
        ];
        let ind = induce(&pages);
        let tpl: Vec<&str> = ind
            .template
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        // Header and footer must be in the template.
        assert!(tpl.contains(&"Results"));
        assert!(tpl.contains(&"Copyright"));
        // Data must not be.
        assert!(!tpl.contains(&"John"));
        assert!(!tpl.contains(&"Bob"));
    }

    #[test]
    fn anchors_are_valid_embeddings() {
        let pages = vec![
            page("<tr><td>A B</td></tr>"),
            page("<tr><td>C D E</td></tr>"),
        ];
        let ind = induce(&pages);
        for (p, anchor) in ind.anchors.iter().enumerate() {
            assert_eq!(anchor.len(), ind.template.len());
            for (k, &pos) in anchor.iter().enumerate() {
                assert_eq!(
                    pages[p][pos].text, ind.template.tokens[k].text,
                    "anchor {k} of page {p}"
                );
            }
            // Strictly increasing.
            for w in anchor.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn table_found_in_largest_text_slot() {
        let pages = vec![
            page("<tr><td>John Smith</td><td>New Holland</td></tr><tr><td>Mary Major</td><td>Springfield</td></tr>"),
            page("<tr><td>Bob Jones</td><td>Columbus</td></tr><tr><td>Ann Fuller</td><td>Dayton</td></tr><tr><td>Tom Tailor</td><td>Akron</td></tr>"),
        ];
        let ind = induce(&pages);
        let slots = ind.slots(&pages);
        let table = slots.table_slot(&pages).expect("a table slot");
        let slot = &slots.slots[table];
        // The table slot must contain the record data on both pages.
        for (p, r) in slot.ranges.iter().enumerate() {
            let texts: Vec<&str> = pages[p][r.clone()]
                .iter()
                .filter(|t| t.is_text())
                .map(|t| t.text.as_str())
                .collect();
            assert!(texts.len() >= 4, "page {p} table slot has data: {texts:?}");
        }
        let texts0: String = pages[0][slot.ranges[0].clone()]
            .iter()
            .map(|t| t.text.clone())
            .collect::<Vec<_>>()
            .join(" ");
        assert!(texts0.contains("John"));
        assert!(texts0.contains("Mary"));
        assert!(!texts0.contains("Results"));
    }

    #[test]
    fn fewer_than_two_pages_falls_back_to_whole_page() {
        let pages = vec![page("<tr><td>A</td></tr>")];
        let ind = induce(&pages);
        assert!(ind.template.is_empty());
        let slots = ind.slots(&pages);
        assert_eq!(slots.slots.len(), 1);
        assert_eq!(slots.slots[0].ranges[0], 0..pages[0].len());
    }

    #[test]
    fn identical_pages_yield_full_template() {
        let p = page("<tr><td>Same</td></tr>");
        let pages = vec![p.clone(), p.clone()];
        let ind = induce(&pages);
        assert_eq!(ind.template.len(), p.len());
        let slots = ind.slots(&pages);
        assert!(slots.slots.iter().all(Slot::is_empty));
        assert_eq!(slots.table_slot(&pages), None);
    }

    #[test]
    fn disjoint_pages_yield_empty_template() {
        let pages = vec![tokenize("alpha beta"), tokenize("gamma delta")];
        let ind = induce(&pages);
        assert!(ind.template.is_empty());
        let slots = ind.slots(&pages);
        assert_eq!(slots.slots.len(), 1);
        // The single slot covers both whole pages.
        assert_eq!(slots.slots[0].ranges[0], 0..2);
        assert_eq!(slots.slots[0].ranges[1], 0..2);
    }

    #[test]
    fn three_pages_progressive() {
        let pages = vec![
            page("<tr><td>A1 A2</td></tr>"),
            page("<tr><td>B1</td></tr>"),
            page("<tr><td>C1 C2 C3</td></tr>"),
        ];
        let ind = induce(&pages);
        let tpl: Vec<&str> = ind
            .template
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(tpl.contains(&"Results"));
        assert!(!tpl.contains(&"A1"));
        assert!(!tpl.contains(&"B1"));
        assert!(!tpl.contains(&"C1"));
        assert_eq!(ind.anchors.len(), 3);
    }

    #[test]
    fn slot_count_is_template_len_plus_one() {
        let pages = vec![page("<tr><td>X</td></tr>"), page("<tr><td>Y</td></tr>")];
        let ind = induce(&pages);
        let slots = ind.slots(&pages);
        assert_eq!(slots.slots.len(), ind.template.len() + 1);
    }

    #[test]
    fn histogram_and_hirschberg_agree_on_clean_pages() {
        let pages = vec![
            page("<tr><td>John Smith</td><td>New Holland</td></tr>"),
            page("<tr><td>Bob Jones</td><td>Columbus</td></tr><tr><td>Ann Fuller</td><td>Dayton</td></tr>"),
        ];
        let (hist, hirsch) = both_paths(&pages);
        let texts = |i: &Induction| {
            i.template
                .tokens
                .iter()
                .map(|t| t.text.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(texts(&hist), texts(&hirsch));
        assert_eq!(hist.anchors, hirsch.anchors);
    }

    #[test]
    fn induce_with_reports_stats() {
        let pages = vec![
            page("<tr><td>Alpha Beta</td></tr>"),
            page("<tr><td>Gamma Delta</td></tr>"),
            page("<tr><td>Epsilon Zeta</td></tr>"),
        ];
        let mut interner = Interner::new();
        let streams: Vec<Vec<Symbol>> = pages.iter().map(|p| interner.intern_tokens(p)).collect();
        let (ind, stats) = induce_with(&pages, &streams, interner.len(), &InduceOptions::default());
        assert_eq!(stats.pages, 3);
        assert_eq!(stats.folds, 2, "{stats:?}");
        assert!(!ind.template.is_empty());
        // The candidate streams are unique per page by construction, so
        // the histogram core must never hit its quadratic fallback.
        assert_eq!(stats.lcs.fallback_windows, 0, "{stats:?}");
        assert_eq!(stats.lcs.split_windows, 0, "{stats:?}");
    }

    #[test]
    fn histogram_fold_is_page_order_invariant() {
        let pages = vec![
            page("<tr><td>Alpha One</td></tr><tr><td>Beta Two</td></tr>"),
            page("<tr><td>Gamma Three</td></tr>"),
            page("<tr><td>Delta Four</td></tr><tr><td>Epsilon Five</td></tr><tr><td>Zeta Six</td></tr>"),
        ];
        let texts = |i: &Induction| {
            i.template
                .tokens
                .iter()
                .map(|t| t.text.clone())
                .collect::<Vec<_>>()
        };
        let mut interner = Interner::new();
        let streams: Vec<Vec<Symbol>> = pages.iter().map(|p| interner.intern_tokens(p)).collect();
        let baseline = texts(&induce_histogram(&pages, &streams, interner.len()));
        for perm in [[1, 0, 2], [2, 1, 0], [0, 2, 1], [2, 0, 1], [1, 2, 0]] {
            let p: Vec<Vec<Token>> = perm.iter().map(|&i| pages[i].clone()).collect();
            let mut interner = Interner::new();
            let s: Vec<Vec<Symbol>> = p.iter().map(|pg| interner.intern_tokens(pg)).collect();
            let ind = induce_histogram(&p, &s, interner.len());
            assert_eq!(texts(&ind), baseline, "permutation {perm:?}");
        }
    }

    #[test]
    fn restabilize_is_a_noop_on_fresh_inductions() {
        // induce() already ran the stability pass to a fixpoint, so the
        // public re-entry must drop nothing and change nothing.
        let pages = vec![
            page("<tr><td>John Smith</td><td>New Holland</td></tr>"),
            page("<tr><td>Bob Jones</td><td>Columbus</td></tr><tr><td>Ann Fuller</td><td>Dayton</td></tr>"),
        ];
        let mut ind = induce(&pages);
        let before_tokens = ind.template.tokens.clone();
        let before_anchors = ind.anchors.clone();
        let lens: Vec<usize> = pages.iter().map(Vec::len).collect();
        assert_eq!(restabilize(&mut ind, &lens), 0);
        assert_eq!(ind.template.tokens, before_tokens);
        assert_eq!(ind.anchors, before_anchors);
    }

    #[test]
    fn restabilize_drops_stretched_singletons() {
        // A hand-built induction with one isolated anchor far from the
        // rest on one page: the linked-run rule must remove it.
        let pages = vec![
            page("<tr><td>Alpha Beta Gamma</td></tr>"),
            page("<tr><td>Delta Epsilon</td></tr>"),
        ];
        let mut ind = induce(&pages);
        let t = ind.template.len();
        assert!(t >= MIN_RUN, "fixture template too small: {t}");
        // Stretch the final anchor of page 0 to the page end, breaking
        // its link to the previous anchor.
        let last = ind.anchors[0][t - 1];
        let stretched = (pages[0].len() - 1).max(last + LINK_GAP + 1);
        ind.anchors[0][t - 1] = stretched.min(pages[0].len() - 1);
        if ind.anchors[0][t - 1] - ind.anchors[0][t - 2] <= LINK_GAP {
            return; // page too short to stretch; nothing to assert
        }
        let lens: Vec<usize> = pages.iter().map(Vec::len).collect();
        let dropped = restabilize(&mut ind, &lens);
        assert!(dropped >= 1, "stretched anchor must be dropped");
        assert_eq!(ind.template.len(), t - dropped);
    }

    #[test]
    fn slot_stability_widths() {
        let pages = vec![
            page("<tr><td>John Smith</td><td>New Holland</td></tr><tr><td>Mary Major</td><td>Springfield</td></tr>"),
            page("<tr><td>Bob Jones</td><td>Columbus</td></tr>"),
        ];
        let ind = induce(&pages);
        let lens: Vec<usize> = pages.iter().map(Vec::len).collect();
        let stability = ind.slot_stability(&lens);
        assert_eq!(stability.len(), ind.template.len() + 1);
        for &(min, max) in &stability {
            assert!(min <= max);
        }
        // The table slot (widest max) must vary: page 0 has two records,
        // page 1 has one.
        let widest = stability.iter().max_by_key(|&&(_, max)| max).unwrap();
        assert!(widest.1 > widest.0, "{stability:?}");
    }
}
