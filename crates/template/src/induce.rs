//! The template-finding algorithm.
//!
//! The template is computed as the progressive LCS of the pages' token
//! streams: `T₁ = page₁`, `Tᵢ = LCS(Tᵢ₋₁, pageᵢ)`. Every token of the final
//! template appears on every page in template order, which is precisely the
//! paper's definition of the page template ("data that is shared by all
//! list pages and is invariant from page to page"). Everything between
//! consecutive template anchors is a slot.

use std::sync::atomic::{AtomicUsize, Ordering};

use serde::{Deserialize, Serialize};
use tableseg_html::Token;

use crate::intern::{Interner, Symbol};
use crate::lcs::lcs_indices;
use crate::slot::{Slot, SlotSet};

/// Process-wide count of [`induce`](fn@induce) calls.
static INDUCTIONS: AtomicUsize = AtomicUsize::new(0);

/// How many times [`induce`](fn@induce) has run in this process. Template induction
/// is the front end's most expensive step; batch runs cache it per site,
/// and tests assert on the *delta* of this counter to prove the cache
/// works (absolute values include other tests in the same process).
pub fn induction_count() -> usize {
    INDUCTIONS.load(Ordering::Relaxed)
}

/// The induced page template: a sequence of tokens common to all pages.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Template {
    /// Representative template tokens (taken from the first page).
    pub tokens: Vec<Token>,
}

impl Template {
    /// Template length in tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Returns `true` if the template is empty.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// The result of template induction over a set of pages.
#[derive(Debug, Clone)]
pub struct Induction {
    /// The induced template.
    pub template: Template,
    /// For each page, the position of each template token in that page.
    /// `anchors[p][k]` is the index in page `p` of template token `k`.
    pub anchors: Vec<Vec<usize>>,
}

impl Induction {
    /// Derives the slot set: slot `k` is the per-page gap before template
    /// token `k`; the final slot is the gap after the last template token.
    pub fn slots(&self, pages: &[Vec<Token>]) -> SlotSet {
        let t = self.template.len();
        let mut slots = Vec::with_capacity(t + 1);
        for k in 0..=t {
            let ranges = self
                .anchors
                .iter()
                .zip(pages)
                .map(|(anchor, page)| {
                    let start = if k == 0 { 0 } else { anchor[k - 1] + 1 };
                    let end = if k == t { page.len() } else { anchor[k] };
                    start..end
                })
                .collect();
            slots.push(Slot { index: k, ranges });
        }
        SlotSet { slots }
    }
}

/// Induces the page template from example pages.
///
/// Template tokens must be *invariant from page to page*: they must appear
/// on every page, in the same relative order, **exactly once per page**.
/// The once-per-page requirement is what keeps repeating table structure
/// out of the template — "If any of the tables on the pages contain more
/// than two rows, the tags specifying the structure of the table will not
/// be part of the page template, because they will appear more than once on
/// that page" (Section 3.1). Candidates are therefore tokens unique within
/// every page; the template is their progressive LCS across pages.
///
/// With fewer than two pages no template can be derived; the result has an
/// empty template and a single slot covering each whole page, which makes
/// the downstream pipeline equivalent to the paper's whole-page fallback.
///
/// Convenience wrapper over [`induce_interned`] that interns the pages
/// itself; pipeline callers that already interned the site's pages should
/// pass their streams to [`induce_interned`] directly.
pub fn induce(pages: &[Vec<Token>]) -> Induction {
    let mut interner = Interner::new();
    let streams: Vec<Vec<Symbol>> = pages.iter().map(|p| interner.intern_tokens(p)).collect();
    induce_interned(pages, &streams, interner.len())
}

/// [`induce`](fn@induce) over pre-interned symbol streams.
///
/// `streams[p]` must be the symbol stream of `pages[p]` (same length, same
/// order) and `num_symbols` an upper bound on the symbol ids appearing in
/// the streams (typically `Interner::len`). The interner itself is not
/// needed: induction compares symbols and takes representative tokens from
/// the first page.
pub fn induce_interned(
    pages: &[Vec<Token>],
    streams: &[Vec<Symbol>],
    num_symbols: usize,
) -> Induction {
    INDUCTIONS.fetch_add(1, Ordering::Relaxed);
    debug_assert_eq!(pages.len(), streams.len());
    if pages.len() < 2 {
        return Induction {
            template: Template { tokens: Vec::new() },
            anchors: vec![Vec::new(); pages.len()],
        };
    }

    // Count symbol occurrences per page; a candidate occurs exactly once on
    // every page.
    let mut counts = vec![0u32; num_symbols];
    let mut candidate = vec![true; num_symbols];
    for stream in streams {
        counts.iter_mut().for_each(|c| *c = 0);
        for &s in stream {
            // Symbols outside the declared range (e.g. UNKNOWN_SYMBOL from
            // a read-only projection) can never be template candidates;
            // ignore them instead of indexing out of bounds.
            if let Some(c) = counts.get_mut(s as usize) {
                *c += 1;
            }
        }
        for (sym, &n) in counts.iter().enumerate() {
            if n != 1 {
                candidate[sym] = false;
            }
        }
    }

    // Filtered streams: candidate tokens only, remembering original
    // positions.
    let filtered: Vec<Vec<(Symbol, usize)>> = streams
        .iter()
        .map(|stream| {
            stream
                .iter()
                .enumerate()
                .filter(|&(_, &s)| candidate[s as usize])
                .map(|(i, &s)| (s, i))
                .collect()
        })
        .collect();

    // Progressive LCS over the filtered streams. `template` holds
    // (symbol, original-index-in-first-page).
    let mut template: Vec<(Symbol, usize)> = filtered[0].clone();
    for stream in &filtered[1..] {
        let t_syms: Vec<Symbol> = template.iter().map(|&(s, _)| s).collect();
        let s_syms: Vec<Symbol> = stream.iter().map(|&(s, _)| s).collect();
        let pairs = lcs_indices(&t_syms, &s_syms);
        template = pairs.iter().map(|&(ti, _)| template[ti]).collect();
        if template.is_empty() {
            break;
        }
    }

    // Embed the template into every page. Every template symbol occurs
    // exactly once per page, so the embedding is unique: look the position
    // up in the filtered stream. If an embedding is ever missing (the
    // candidate invariant was broken by degenerate input), the offending
    // symbol is dropped from the template rather than panicking — a
    // smaller template degrades the slot decision, not the process.
    let embeddings: Vec<Vec<Option<usize>>> = filtered
        .iter()
        .map(|stream| {
            template
                .iter()
                .map(|&(sym, _)| stream.iter().find(|&&(s, _)| s == sym).map(|&(_, pos)| pos))
                .collect()
        })
        .collect();
    let kept: Vec<usize> = (0..template.len())
        .filter(|&col| embeddings.iter().all(|e| e[col].is_some()))
        .collect();
    if kept.len() < template.len() {
        template = kept.iter().map(|&col| template[col]).collect();
    }
    let anchors: Vec<Vec<usize>> = embeddings
        .iter()
        .map(|e| kept.iter().map(|&col| e[col].unwrap_or_default()).collect())
        .collect();

    let template_tokens: Vec<Token> = template
        .iter()
        .map(|&(_, first_idx)| pages[0][first_idx].clone())
        .collect();

    // Anchor positions are increasing on every page because the template is
    // an LCS of every filtered stream and each symbol is unique per page.
    debug_assert!(anchors.iter().all(|a| a.windows(2).all(|w| w[0] < w[1])));

    let mut induction = Induction {
        template: Template {
            tokens: template_tokens,
        },
        anchors,
    };
    drop_unstable_anchors(
        &mut induction,
        &pages.iter().map(Vec::len).collect::<Vec<_>>(),
    );
    induction
}

/// Two consecutive anchors are *linked* when they are at most this many
/// tokens apart **on every page**. Template regions (headers, footers,
/// label rows) form long linked runs; data tokens that happen to appear
/// once per page do not.
const LINK_GAP: usize = 4;

/// Minimum linked-run length for anchors to be trusted as template.
const MIN_RUN: usize = 3;

/// Removes anchors outside dense runs. A real page template is written out
/// contiguously by the server, so its tokens cluster; an anchor in a run
/// shorter than [`MIN_RUN`] is almost always record data that happens to
/// appear exactly once per page (or a chance pair, like a shared
/// `City, ST`), and left in place it chops the table slot apart.
///
/// The one deliberate exception is **enumeration chains**: ascending runs
/// `1, 2, 3, ...` from numbered entries. The paper's template finder keeps
/// those and consequently fails on numbered sites (Section 6.3: "the
/// entries were numbered. Thus, sequences such as `1.` will be found on
/// every page"); this reproduction preserves that failure mode. (The paper
/// suggests an enumeration heuristic as *future work*, i.e. the 2004
/// algorithm did not have one.)
fn drop_unstable_anchors(induction: &mut Induction, _page_lens: &[usize]) {
    let enumeration = enumeration_members(&induction.template.tokens);
    loop {
        let t = induction.template.len();
        if t == 0 {
            return;
        }
        // linked[k]: anchors k and k+1 are close on every page.
        let linked: Vec<bool> = (0..t.saturating_sub(1))
            .map(|k| {
                induction
                    .anchors
                    .iter()
                    .all(|anchor| anchor[k + 1] - anchor[k] <= LINK_GAP)
            })
            .collect();
        let mut drop = vec![false; t];
        let mut run_start = 0;
        // `linked` has t-1 entries; the appended `false` ends the last run.
        for (k, &lk) in linked.iter().chain(std::iter::once(&false)).enumerate() {
            let run_ends = !lk;
            if run_ends {
                let run_len = k + 1 - run_start;
                if run_len < MIN_RUN {
                    for d in drop.iter_mut().take(k + 1).skip(run_start) {
                        *d = true;
                    }
                }
                run_start = k + 1;
            }
        }
        // Enumeration members are exempt.
        for (k, d) in drop.iter_mut().enumerate() {
            if *d
                && enumeration
                    .binary_search(&induction.template.tokens[k].text)
                    .is_ok()
            {
                *d = false;
            }
        }
        if !drop.iter().any(|&d| d) {
            return;
        }
        let keep: Vec<usize> = (0..t).filter(|&k| !drop[k]).collect();
        induction.template.tokens = keep
            .iter()
            .map(|&k| induction.template.tokens[k].clone())
            .collect();
        for anchor in &mut induction.anchors {
            *anchor = keep.iter().map(|&k| anchor[k]).collect();
        }
    }
}

/// Texts of template tokens that belong to an ascending `+1` integer chain
/// of length ≥ 3 starting at 1 or 2 (entry numbering), sorted for lookup.
fn enumeration_members(tokens: &[Token]) -> Vec<String> {
    let values: Vec<Option<u64>> = tokens.iter().map(|t| t.text.parse::<u64>().ok()).collect();
    let mut members = Vec::new();
    let mut chain: Vec<usize> = Vec::new();
    let flush = |chain: &mut Vec<usize>, members: &mut Vec<String>, values: &[Option<u64>]| {
        if chain.len() >= 3 {
            let first = values[chain[0]].expect("chain holds numerics");
            if first <= 2 {
                for &k in chain.iter() {
                    members.push(tokens[k].text.clone());
                }
            }
        }
        chain.clear();
    };
    for (k, v) in values.iter().enumerate() {
        let Some(n) = v else {
            // Non-numeric template tokens (tags between numbered entries
            // were already excluded by the uniqueness rule, but words may
            // intervene) do not break a chain.
            continue;
        };
        let extends = chain
            .last()
            .and_then(|&prev| values[prev])
            .is_some_and(|p| p + 1 == *n);
        if extends {
            chain.push(k);
        } else if *n <= 2 {
            // A plausible chain start: close out the previous chain.
            flush(&mut chain, &mut members, &values);
            chain.push(k);
        }
        // Any other numeric (a year, a price fragment that happens to
        // align once per page) is an interloper inside the enumeration
        // region; like words, it does not break the chain.
    }
    flush(&mut chain, &mut members, &values);
    members.sort_unstable();
    members.dedup();
    members
}

#[cfg(test)]
mod tests {
    use super::*;
    use tableseg_html::lexer::tokenize;

    fn page(body: &str) -> Vec<Token> {
        tokenize(&format!(
            "<html><body><h1>Results</h1><table>{body}</table><p>Copyright 2004</p></body></html>"
        ))
    }

    #[test]
    fn template_is_shared_structure() {
        let pages = vec![
            page("<tr><td>John Smith</td></tr><tr><td>Jane Doe</td></tr>"),
            page("<tr><td>Bob Jones</td></tr>"),
        ];
        let ind = induce(&pages);
        let tpl: Vec<&str> = ind
            .template
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        // Header and footer must be in the template.
        assert!(tpl.contains(&"Results"));
        assert!(tpl.contains(&"Copyright"));
        // Data must not be.
        assert!(!tpl.contains(&"John"));
        assert!(!tpl.contains(&"Bob"));
    }

    #[test]
    fn anchors_are_valid_embeddings() {
        let pages = vec![
            page("<tr><td>A B</td></tr>"),
            page("<tr><td>C D E</td></tr>"),
        ];
        let ind = induce(&pages);
        for (p, anchor) in ind.anchors.iter().enumerate() {
            assert_eq!(anchor.len(), ind.template.len());
            for (k, &pos) in anchor.iter().enumerate() {
                assert_eq!(
                    pages[p][pos].text, ind.template.tokens[k].text,
                    "anchor {k} of page {p}"
                );
            }
            // Strictly increasing.
            for w in anchor.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn table_found_in_largest_text_slot() {
        let pages = vec![
            page("<tr><td>John Smith</td><td>New Holland</td></tr><tr><td>Mary Major</td><td>Springfield</td></tr>"),
            page("<tr><td>Bob Jones</td><td>Columbus</td></tr><tr><td>Ann Fuller</td><td>Dayton</td></tr><tr><td>Tom Tailor</td><td>Akron</td></tr>"),
        ];
        let ind = induce(&pages);
        let slots = ind.slots(&pages);
        let table = slots.table_slot(&pages).expect("a table slot");
        let slot = &slots.slots[table];
        // The table slot must contain the record data on both pages.
        for (p, r) in slot.ranges.iter().enumerate() {
            let texts: Vec<&str> = pages[p][r.clone()]
                .iter()
                .filter(|t| t.is_text())
                .map(|t| t.text.as_str())
                .collect();
            assert!(texts.len() >= 4, "page {p} table slot has data: {texts:?}");
        }
        let texts0: String = pages[0][slot.ranges[0].clone()]
            .iter()
            .map(|t| t.text.clone())
            .collect::<Vec<_>>()
            .join(" ");
        assert!(texts0.contains("John"));
        assert!(texts0.contains("Mary"));
        assert!(!texts0.contains("Results"));
    }

    #[test]
    fn fewer_than_two_pages_falls_back_to_whole_page() {
        let pages = vec![page("<tr><td>A</td></tr>")];
        let ind = induce(&pages);
        assert!(ind.template.is_empty());
        let slots = ind.slots(&pages);
        assert_eq!(slots.slots.len(), 1);
        assert_eq!(slots.slots[0].ranges[0], 0..pages[0].len());
    }

    #[test]
    fn identical_pages_yield_full_template() {
        let p = page("<tr><td>Same</td></tr>");
        let pages = vec![p.clone(), p.clone()];
        let ind = induce(&pages);
        assert_eq!(ind.template.len(), p.len());
        let slots = ind.slots(&pages);
        assert!(slots.slots.iter().all(Slot::is_empty));
        assert_eq!(slots.table_slot(&pages), None);
    }

    #[test]
    fn disjoint_pages_yield_empty_template() {
        let pages = vec![tokenize("alpha beta"), tokenize("gamma delta")];
        let ind = induce(&pages);
        assert!(ind.template.is_empty());
        let slots = ind.slots(&pages);
        assert_eq!(slots.slots.len(), 1);
        // The single slot covers both whole pages.
        assert_eq!(slots.slots[0].ranges[0], 0..2);
        assert_eq!(slots.slots[0].ranges[1], 0..2);
    }

    #[test]
    fn three_pages_progressive() {
        let pages = vec![
            page("<tr><td>A1 A2</td></tr>"),
            page("<tr><td>B1</td></tr>"),
            page("<tr><td>C1 C2 C3</td></tr>"),
        ];
        let ind = induce(&pages);
        let tpl: Vec<&str> = ind
            .template
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(tpl.contains(&"Results"));
        assert!(!tpl.contains(&"A1"));
        assert!(!tpl.contains(&"B1"));
        assert!(!tpl.contains(&"C1"));
        assert_eq!(ind.anchors.len(), 3);
    }

    #[test]
    fn slot_count_is_template_len_plus_one() {
        let pages = vec![page("<tr><td>X</td></tr>"), page("<tr><td>Y</td></tr>")];
        let ind = induce(&pages);
        let slots = ind.slots(&pages);
        assert_eq!(slots.slots.len(), ind.template.len() + 1);
    }
}
