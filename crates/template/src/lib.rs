//! Page-template induction (Section 3.1 of the paper).
//!
//! "Given two, or preferably more, example list pages from a site, we can
//! derive the template used to generate these pages and use it to identify
//! the table and extract data from it."
//!
//! The **page template** is the part of the page that is invariant from page
//! to page — header, logo, navigation, footer. **Slots** are the sections
//! that are *not* part of the template; since a table's rows repeat and its
//! data varies, "the entire table, data plus separators, will be contained
//! in a single slot". The table is found with the paper's heuristic: "the
//! table will be found in the slot that contains the largest number of text
//! tokens".
//!
//! Implementation: the template is computed as the progressive longest
//! common subsequence (LCS) of the pages' token streams, using Hirschberg's
//! linear-space alignment ([`lcs`]) over interned token symbols
//! ([`intern`]). [`induce`](fn@induce) derives the template and per-page slots;
//! [`quality`] diagnoses degenerate templates (e.g. sites with numbered
//! entries, where sequences like `1.` appear on every page and chop the
//! table into fragments — the failure mode the paper reports for Amazon,
//! BN Books and Minnesota Corrections) so that the pipeline can fall back to
//! using the whole page.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod induce;
pub mod intern;
pub mod lcs;
pub mod quality;
pub mod slot;

pub use histogram::{lcs_indices_histogram, lcs_indices_histogram_stats, LcsStats};
pub use induce::{
    candidate_streams, induce, induce_histogram, induce_interned, induce_with, induction_count,
    restabilize, InduceOptions, InduceStats, Induction, Template,
};
pub use intern::{Interner, Symbol};
pub use quality::{assess, TemplateQuality};
pub use slot::{Slot, SlotSet};
