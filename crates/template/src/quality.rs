//! Template quality diagnostics.
//!
//! "The page template finding algorithm performed poorly on five of the 12
//! sites ... the entries were numbered. Thus, sequences such as `1.` will be
//! found on every page. If the tables are of different lengths, the shortest
//! table will limit what is to be considered a page template ... When we
//! encountered a problem with the page template algorithm, we use the entire
//! page as the table slot." (Section 6.3)
//!
//! [`assess`] computes diagnostics that detect this degenerate shape: when
//! shared in-table tokens (entry numbers, repeated labels) become anchors,
//! the table data is chopped across many small slots, so no single slot
//! dominates the text mass. The pipeline uses [`TemplateQuality::is_usable`]
//! to decide between the induced table slot and the whole-page fallback.

use tableseg_html::Token;

use crate::induce::Induction;

/// Diagnostics for an induced template over its example pages.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemplateQuality {
    /// Number of tokens in the template.
    pub template_len: usize,
    /// Total text tokens across all slots (i.e. all varying page content).
    pub total_slot_text: usize,
    /// Text tokens in the largest slot (the table-slot candidate).
    pub largest_slot_text: usize,
    /// `largest_slot_text / total_slot_text` (0 when there is no text).
    pub largest_slot_fraction: f64,
    /// Number of slots that are non-empty on at least one page.
    pub non_empty_slots: usize,
    /// Number of *significant* slots: slots holding at least
    /// [`SIGNIFICANT_SLOT_TOKENS`] text tokens and at least
    /// [`SIGNIFICANT_SLOT_SHARE`] of all slot text. A healthy template has
    /// one (the table) plus page chrome; numbered entries produce one per
    /// record.
    pub significant_slots: usize,
}

/// Minimum share of the varying text that the table slot must hold for the
/// template to be considered usable. Below this, data is fragmented across
/// slots (the numbered-entries failure mode) and the whole page should be
/// used instead.
pub const MIN_TABLE_SLOT_FRACTION: f64 = 0.5;

/// Minimum template length: shorter templates carry no page structure.
pub const MIN_TEMPLATE_LEN: usize = 4;

/// A slot is significant if it holds at least this many text tokens...
pub const SIGNIFICANT_SLOT_TOKENS: usize = 3;

/// ...and at least this share of all slot text.
pub const SIGNIFICANT_SLOT_SHARE: f64 = 0.05;

/// Maximum number of significant slots for a usable template. The table is
/// one; a couple more cover varying page chrome (result counts, ads). More
/// than that means the table itself was chopped apart.
pub const MAX_SIGNIFICANT_SLOTS: usize = 3;

impl TemplateQuality {
    /// Whether the template is trustworthy enough to use its table slot.
    pub fn is_usable(&self) -> bool {
        self.template_len >= MIN_TEMPLATE_LEN
            && self.total_slot_text > 0
            && self.largest_slot_fraction >= MIN_TABLE_SLOT_FRACTION
            && self.significant_slots <= MAX_SIGNIFICANT_SLOTS
    }
}

/// Assesses an induction result against its example pages.
pub fn assess(induction: &Induction, pages: &[Vec<Token>]) -> TemplateQuality {
    let slots = induction.slots(pages);
    let per_slot: Vec<usize> = slots
        .slots
        .iter()
        .map(|s| s.text_token_count(pages))
        .collect();
    let total: usize = per_slot.iter().sum();
    let largest = per_slot.iter().copied().max().unwrap_or(0);
    let significant = per_slot
        .iter()
        .filter(|&&n| {
            n >= SIGNIFICANT_SLOT_TOKENS
                && total > 0
                && n as f64 / total as f64 >= SIGNIFICANT_SLOT_SHARE
        })
        .count();
    TemplateQuality {
        template_len: induction.template.len(),
        total_slot_text: total,
        largest_slot_text: largest,
        largest_slot_fraction: if total == 0 {
            0.0
        } else {
            largest as f64 / total as f64
        },
        non_empty_slots: slots.non_empty_count(),
        significant_slots: significant,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::induce::induce;
    use tableseg_html::lexer::tokenize;

    fn page(body: &str) -> Vec<Token> {
        tokenize(&format!(
            "<html><h1>Search Results Page</h1><table>{body}</table><p>Copyright Notice Text Here</p></html>"
        ))
    }

    #[test]
    fn clean_site_template_is_usable() {
        let pages = vec![
            page("<tr><td>John Smith</td><td>New Holland</td></tr><tr><td>Mary Major</td><td>Springfield</td></tr>"),
            page("<tr><td>Bob Jones</td><td>Columbus</td></tr><tr><td>Ann Fuller</td><td>Dayton</td></tr>"),
        ];
        let ind = induce(&pages);
        let q = assess(&ind, &pages);
        assert!(q.is_usable(), "{q:?}");
        assert!(q.largest_slot_fraction >= 0.5);
    }

    #[test]
    fn numbered_entries_break_the_template() {
        // Numbered entries: "1 ." / "2 ." etc. appear on both pages, so they
        // become template anchors and chop the data into many small slots.
        let pages = vec![
            page("<li>1. Alpha Author One</li><li>2. Beta Author Two</li><li>3. Gamma Author Three</li>"),
            page("<li>1. Delta Other Name</li><li>2. Epsilon More Words</li><li>3. Zeta Third Entry</li>"),
        ];
        let ind = induce(&pages);
        let q = assess(&ind, &pages);
        // The entry numbers are anchors...
        let tpl: Vec<&str> = ind
            .template
            .tokens
            .iter()
            .map(|t| t.text.as_str())
            .collect();
        assert!(tpl.contains(&"1"), "{tpl:?}");
        assert!(tpl.contains(&"2"), "{tpl:?}");
        // ...so the data is fragmented and the template is not usable.
        assert!(!q.is_usable(), "{q:?}");
        assert!(q.largest_slot_fraction < MIN_TABLE_SLOT_FRACTION, "{q:?}");
    }

    #[test]
    fn identical_pages_are_unusable() {
        let p = page("<tr><td>Same Data</td></tr>");
        let pages = vec![p.clone(), p];
        let ind = induce(&pages);
        let q = assess(&ind, &pages);
        assert_eq!(q.total_slot_text, 0);
        assert!(!q.is_usable());
    }

    #[test]
    fn tiny_template_is_unusable() {
        let pages = vec![tokenize("x a b c d e"), tokenize("x p q r s t")];
        let ind = induce(&pages);
        let q = assess(&ind, &pages);
        assert!(q.template_len < MIN_TEMPLATE_LEN);
        assert!(!q.is_usable());
    }
}
