//! Rendering evaluation results in the format of the paper's Table 4.

use crate::classify::PageCounts;
use crate::metrics::Metrics;

/// One row of a Table-4-style report: a list page of a site, with the
/// counts of both approaches and the per-page notes.
#[derive(Debug, Clone)]
pub struct Row {
    /// Site name (printed on the row of the site's first page only).
    pub site: String,
    /// Probabilistic-approach counts.
    pub prob: PageCounts,
    /// CSP-approach counts.
    pub csp: PageCounts,
    /// Notes, in the paper's notation: `a` page template problem, `b`
    /// entire page used, `c` no solution found, `d` relax constraints.
    pub notes: String,
}

/// Renders the full Table 4: one row per list page, aggregate P/R/F for
/// both approaches at the bottom.
pub fn render_table4(rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str(
        "| Wrapper                 | Prob Cor | InC | FN | FP | CSP Cor | InC | FN | FP | notes |\n",
    );
    out.push_str(
        "|-------------------------|---------:|----:|---:|---:|--------:|----:|---:|---:|-------|\n",
    );
    let mut prob_total = PageCounts::default();
    let mut csp_total = PageCounts::default();
    let mut last_site = String::new();
    for row in rows {
        let label = if row.site == last_site {
            String::new()
        } else {
            row.site.clone()
        };
        last_site.clone_from(&row.site);
        out.push_str(&format!(
            "| {:<23} | {:>8} | {:>3} | {:>2} | {:>2} | {:>7} | {:>3} | {:>2} | {:>2} | {:<5} |\n",
            label,
            row.prob.cor,
            row.prob.incor,
            row.prob.fneg,
            row.prob.fpos,
            row.csp.cor,
            row.csp.incor,
            row.csp.fneg,
            row.csp.fpos,
            row.notes,
        ));
        prob_total = prob_total.add(&row.prob);
        csp_total = csp_total.add(&row.csp);
    }
    let pm = Metrics::from_counts(&prob_total);
    let cm = Metrics::from_counts(&csp_total);
    out.push_str(&format!(
        "| Precision               | {:>8.2} |     |    |    | {:>7.2} |     |    |    |       |\n",
        pm.precision, cm.precision
    ));
    out.push_str(&format!(
        "| Recall                  | {:>8.2} |     |    |    | {:>7.2} |     |    |    |       |\n",
        pm.recall, cm.recall
    ));
    out.push_str(&format!(
        "| F                       | {:>8.2} |     |    |    | {:>7.2} |     |    |    |       |\n",
        pm.f1, cm.f1
    ));
    out
}

/// Renders a compact aggregate block (used by the clean-pages analysis of
/// Section 6.3).
pub fn render_aggregate(label: &str, prob: &PageCounts, csp: &PageCounts) -> String {
    let pm = Metrics::from_counts(prob);
    let cm = Metrics::from_counts(csp);
    format!(
        "{label}\n  probabilistic: {pm}  (Cor={} InC={} FN={} FP={})\n  CSP:           {cm}  (Cor={} InC={} FN={} FP={})\n",
        prob.cor, prob.incor, prob.fneg, prob.fpos, csp.cor, csp.incor, csp.fneg, csp.fpos,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(site: &str, cor: usize) -> Row {
        Row {
            site: site.into(),
            prob: PageCounts {
                cor,
                incor: 1,
                fneg: 0,
                fpos: 0,
            },
            csp: PageCounts {
                cor,
                incor: 0,
                fneg: 1,
                fpos: 0,
            },
            notes: "a, b".into(),
        }
    }

    #[test]
    fn table_has_header_rows_and_aggregates() {
        let rows = vec![row("Amazon", 4), row("Amazon", 2), row("BN", 5)];
        let t = render_table4(&rows);
        assert!(t.contains("Wrapper"));
        assert!(t.contains("Amazon"));
        assert!(t.contains("Precision"));
        assert!(t.contains("Recall"));
        assert!(t.contains("| F "));
        // Site name suppressed on repeated rows.
        assert_eq!(t.matches("Amazon").count(), 1);
        assert!(t.contains("a, b"));
    }

    #[test]
    fn aggregate_block_shows_both_approaches() {
        let c = PageCounts {
            cor: 9,
            incor: 1,
            fneg: 0,
            fpos: 0,
        };
        let s = render_aggregate("all pages", &c, &c);
        assert!(s.contains("all pages"));
        assert!(s.contains("probabilistic"));
        assert!(s.contains("CSP"));
        assert!(s.contains("P=0.90"));
    }
}
