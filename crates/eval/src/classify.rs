//! Record classification: Cor / InCor / FN / FP.

use std::collections::BTreeSet;
use std::ops::Range;

use serde::{Deserialize, Serialize};

/// Per-page classification counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PageCounts {
    /// Correctly segmented records.
    pub cor: usize,
    /// Incorrectly segmented records.
    pub incor: usize,
    /// Unsegmented records (false negatives).
    pub fneg: usize,
    /// Non-records reported as records (false positives).
    pub fpos: usize,
}

impl PageCounts {
    /// Element-wise sum.
    pub fn add(&self, other: &PageCounts) -> PageCounts {
        PageCounts {
            cor: self.cor + other.cor,
            incor: self.incor + other.incor,
            fneg: self.fneg + other.fneg,
            fpos: self.fpos + other.fpos,
        }
    }

    /// Total true records covered by this page (Cor + InCor + FN).
    pub fn total_records(&self) -> usize {
        self.cor + self.incor + self.fneg
    }
}

/// Maps each extract to its ground-truth record via its byte offset in the
/// list-page source. `offsets[i]` is the source offset of extract `i`;
/// `spans[t]` is the byte range of truth record `t`.
pub fn truth_of_extracts(offsets: &[usize], spans: &[Range<usize>]) -> Vec<Option<usize>> {
    offsets
        .iter()
        .map(|&off| spans.iter().position(|s| s.contains(&off)))
        .collect()
}

/// Classifies a segmentation.
///
/// * `groups[p]` — the extract indices the segmenter put in predicted
///   record `p` (empty groups are ignored);
/// * `truth[i]` — the ground-truth record of extract `i` (`None` =
///   extraneous page furniture);
/// * `num_truth` — number of true records on the page.
///
/// Rules, following the paper's record-level accounting:
///
/// * a truth record with no extract assigned anywhere is **unsegmented**
///   (FN); a truth record none of whose extracts were *observed* at all is
///   also FN — the segmenter never had a chance to emit it;
/// * a truth record whose observed extracts are exactly one predicted
///   group (and that group contains nothing else) is **correct** (Cor);
/// * any other truth record with assigned extracts is **incorrect**
///   (InCor);
/// * a non-empty predicted group containing only extraneous extracts is a
///   **non-record** (FP).
pub fn classify(groups: &[Vec<usize>], truth: &[Option<usize>], num_truth: usize) -> PageCounts {
    let mut counts = PageCounts::default();

    // Which group is each extract in?
    let mut group_of: Vec<Option<usize>> = vec![None; truth.len()];
    for (p, group) in groups.iter().enumerate() {
        for &i in group {
            if i < truth.len() {
                group_of[i] = Some(p);
            }
        }
    }

    for t in 0..num_truth {
        // The observed extracts of truth record t.
        let members: Vec<usize> = (0..truth.len()).filter(|&i| truth[i] == Some(t)).collect();
        if members.is_empty() {
            // Nothing of this record was observed: unsegmented.
            counts.fneg += 1;
            continue;
        }
        let assigned_groups: BTreeSet<usize> =
            members.iter().filter_map(|&i| group_of[i]).collect();
        if assigned_groups.is_empty() {
            counts.fneg += 1;
            continue;
        }
        if assigned_groups.len() == 1 {
            let p = *assigned_groups.iter().next().expect("non-empty");
            let group: BTreeSet<usize> = groups[p].iter().copied().collect();
            let member_set: BTreeSet<usize> = members.iter().copied().collect();
            if group == member_set {
                counts.cor += 1;
                continue;
            }
        }
        counts.incor += 1;
    }

    // Non-records: groups made purely of extraneous extracts.
    for group in groups {
        if group.is_empty() {
            continue;
        }
        let all_extraneous = group
            .iter()
            .all(|&i| i >= truth.len() || truth[i].is_none());
        if all_extraneous {
            counts.fpos += 1;
        }
    }

    counts
}

/// Classifies a *span-based* segmentation (used for the layout baselines,
/// which emit byte ranges rather than extract groups).
///
/// A truth record is **Cor** when exactly one predicted span intersects it
/// and that span intersects no other truth record; with no intersecting
/// prediction it is **FN**; otherwise **InCor**. Predictions intersecting
/// no truth record are **FP**.
pub fn classify_spans(pred: &[Range<usize>], truth: &[Range<usize>]) -> PageCounts {
    let intersects = |a: &Range<usize>, b: &Range<usize>| a.start < b.end && b.start < a.end;
    let mut counts = PageCounts::default();
    for t in truth {
        let hits: Vec<&Range<usize>> = pred.iter().filter(|p| intersects(p, t)).collect();
        match hits.as_slice() {
            [] => counts.fneg += 1,
            [p] => {
                let exclusive = truth.iter().filter(|t2| intersects(p, t2)).count() == 1;
                if exclusive {
                    counts.cor += 1;
                } else {
                    counts.incor += 1;
                }
            }
            _ => counts.incor += 1,
        }
    }
    for p in pred {
        if !truth.iter().any(|t| intersects(p, t)) {
            counts.fpos += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_perfect_alignment() {
        let truth = vec![0..10, 10..20];
        let c = classify_spans(&[1..9, 11..19], &truth);
        assert_eq!(c.cor, 2);
        assert_eq!(c.incor + c.fneg + c.fpos, 0);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one span, not a range of values
    fn spans_merged_prediction_is_incorrect() {
        let truth = vec![0..10, 10..20];
        let c = classify_spans(&[0..20], &truth);
        assert_eq!(c.incor, 2);
        assert_eq!(c.cor, 0);
    }

    #[test]
    #[allow(clippy::single_range_in_vec_init)] // one span, not a range of values
    fn spans_split_prediction_is_incorrect() {
        let truth = vec![0..10];
        let c = classify_spans(&[0..4, 5..9], &truth);
        assert_eq!(c.incor, 1);
    }

    #[test]
    fn spans_missing_and_extraneous() {
        let truth = vec![0..10, 20..30];
        let c = classify_spans(&[0..10, 40..50], &truth);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fneg, 1);
        assert_eq!(c.fpos, 1);
    }

    #[test]
    fn truth_mapping_by_offset() {
        let spans = vec![10..20, 20..40];
        let offsets = vec![12, 25, 5, 39];
        assert_eq!(
            truth_of_extracts(&offsets, &spans),
            vec![Some(0), Some(1), None, Some(1)]
        );
    }

    #[test]
    fn perfect_segmentation() {
        // Two records, two extracts each.
        let truth = vec![Some(0), Some(0), Some(1), Some(1)];
        let groups = vec![vec![0, 1], vec![2, 3]];
        let c = classify(&groups, &truth, 2);
        assert_eq!(
            c,
            PageCounts {
                cor: 2,
                incor: 0,
                fneg: 0,
                fpos: 0
            }
        );
    }

    #[test]
    fn merged_records_are_incorrect() {
        let truth = vec![Some(0), Some(0), Some(1), Some(1)];
        let groups = vec![vec![0, 1, 2, 3]];
        let c = classify(&groups, &truth, 2);
        assert_eq!(c.cor, 0);
        assert_eq!(c.incor, 2);
    }

    #[test]
    fn split_record_is_incorrect() {
        let truth = vec![Some(0), Some(0)];
        let groups = vec![vec![0], vec![1]];
        let c = classify(&groups, &truth, 1);
        assert_eq!(c.cor, 0);
        assert_eq!(c.incor, 1);
    }

    #[test]
    fn unassigned_record_is_unsegmented() {
        let truth = vec![Some(0), Some(0), Some(1)];
        let groups = vec![vec![0, 1], vec![]];
        let c = classify(&groups, &truth, 2);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fneg, 1);
    }

    #[test]
    fn unobserved_record_is_unsegmented() {
        // Truth record 1 has no observed extracts at all.
        let truth = vec![Some(0), Some(0)];
        let groups = vec![vec![0, 1]];
        let c = classify(&groups, &truth, 2);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fneg, 1);
    }

    #[test]
    fn extraneous_only_group_is_false_positive() {
        let truth = vec![Some(0), None, None];
        let groups = vec![vec![0], vec![1, 2]];
        let c = classify(&groups, &truth, 1);
        assert_eq!(c.cor, 1);
        assert_eq!(c.fpos, 1);
    }

    #[test]
    fn group_with_extra_extraneous_extract_spoils_correctness() {
        let truth = vec![Some(0), Some(0), None];
        let groups = vec![vec![0, 1, 2]];
        let c = classify(&groups, &truth, 1);
        assert_eq!(c.cor, 0);
        assert_eq!(c.incor, 1);
        assert_eq!(c.fpos, 0, "mixed group is not a pure non-record");
    }

    #[test]
    fn partial_record_is_incorrect() {
        // Only one of record 0's two observed extracts was assigned.
        let truth = vec![Some(0), Some(0)];
        let groups = vec![vec![0]];
        let c = classify(&groups, &truth, 1);
        assert_eq!(c.incor, 1);
    }

    #[test]
    fn empty_everything() {
        let c = classify(&[], &[], 0);
        assert_eq!(c, PageCounts::default());
    }

    #[test]
    fn counts_add() {
        let a = PageCounts {
            cor: 1,
            incor: 2,
            fneg: 3,
            fpos: 4,
        };
        let b = a.add(&a);
        assert_eq!(b.cor, 2);
        assert_eq!(b.fpos, 8);
        assert_eq!(a.total_records(), 6);
    }
}
